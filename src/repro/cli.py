"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``run``       — simulate one workload under a mitigation setup and print
  the headline metrics (slowdown vs the unmitigated Zen baseline, ALERT
  rate, mitigation counts, power).
* ``sweep``     — slowdown table across workloads x mechanisms.
* ``security``  — analytical tolerated thresholds (Appendix A/B) and an
  optional Monte-Carlo attack replay.
* ``campaign``  — adaptive empirical threshold search (SPRT + bisection)
  across {tracker x policy x scenario} cells, cross-checked against the
  analytical model.
* ``workloads`` — the Table V catalog.
* ``storage``   — Section VI-C storage overheads.
* ``serve``     — run the sweep-service daemon on a Unix socket.
* ``submit`` / ``status`` / ``result`` / ``cancel`` — thin clients for a
  running daemon; ``submit`` falls back to in-process execution when no
  daemon is listening.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional

import numpy as np

from repro.analysis.runner import ExperimentRunner, Job
from repro.analysis.storage import storage_overheads
from repro.analysis.tables import render_table
from repro.cpu.system import simulate
from repro.mc.setup import MECHANISMS, POLICIES, TRACKERS, MitigationSetup
from repro.power.model import DramPowerModel
from repro.security.fractal_model import fm_safe_trhd
from repro.security.mint_model import mint_tolerated_trhd
from repro.sim.config import SystemConfig
from repro.workloads.catalog import WORKLOADS
from repro.workloads.rate import make_rate_traces


def _corpus_scenario_listing() -> str:
    """The corpus scenario names, for ``--help`` text.

    Falls back to a pointer at ``repro payload list`` if the corpus
    manifest is unreadable — a broken manifest must not take the whole
    CLI down with it.
    """
    try:
        from repro.payload import scenario_names

        return ", ".join(scenario_names())
    except Exception:
        return "see 'repro payload list'"


def _setup_from_args(args: argparse.Namespace) -> MitigationSetup:
    if args.mechanism == "none":
        return MitigationSetup("none")
    return MitigationSetup(
        mechanism=args.mechanism,
        threshold=args.threshold,
        tracker=args.tracker,
        policy=args.policy,
    )


def _runner_from_args(args: argparse.Namespace) -> ExperimentRunner:
    """Build the batch runner honouring ``--jobs`` (default: REPRO_JOBS)."""
    return ExperimentRunner(config=SystemConfig(), jobs=getattr(args, "jobs", None))


def _obs_config_from_args(args: argparse.Namespace):
    """An ObsConfig when ``--trace``/``--metrics-out`` ask for one."""
    trace = getattr(args, "trace", None)
    metrics_out = getattr(args, "metrics_out", None)
    if not trace and not metrics_out:
        return None
    from repro.obs import ObsConfig

    return ObsConfig(metrics=True, trace=bool(trace))


def _simulate_pair(workload: str, setup: MitigationSetup, args):
    runner = _runner_from_args(args)
    backend = getattr(args, "backend", "scalar")
    baseline, run = runner.run_many(
        [
            Job(workload, MitigationSetup("none"), "zen",
                args.requests, args.seed, backend=backend),
            Job(workload, setup, args.mapping, args.requests, args.seed,
                obs=_obs_config_from_args(args), backend=backend),
        ]
    )
    return runner, baseline, run


def _write_obs_outputs(args: argparse.Namespace, runner, baseline, run) -> None:
    """Handle ``--trace`` / ``--metrics-out`` for an observed run."""
    import json

    from repro.analysis.export import config_record, result_record

    if args.trace:
        with open(args.trace, "w") as handle:
            handle.write(run.obs.trace_jsonl or "")
        dropped = f" ({run.obs.trace_dropped} evicted)" if run.obs.trace_dropped else ""
        print(f"wrote {run.obs.trace_events - run.obs.trace_dropped} trace "
              f"events to {args.trace}{dropped}")
    if args.metrics_out:
        payload = {
            "record": result_record(
                run, args.workload, runner.config, baseline
            ),
            "metrics": run.obs.metrics,
            "profile": {
                "simulation": run.obs.profile,
                "runner": runner.profile_snapshot(),
            },
            "provenance": {
                "obs_schema": run.obs.schema,
                "config": config_record(runner.config),
            },
        }
        with open(args.metrics_out, "w") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote metrics to {args.metrics_out}")


def cmd_run(args: argparse.Namespace) -> int:
    """Simulate one workload and print the headline metrics."""
    if args.workload not in WORKLOADS:
        print(f"unknown workload {args.workload!r}", file=sys.stderr)
        return 2
    setup = _setup_from_args(args)
    runner, baseline, run = _simulate_pair(args.workload, setup, args)
    config = runner.config
    power = DramPowerModel(config).breakdown(run.stats)
    rows = [
        ["configuration", setup.describe() + f" on {args.mapping}"],
        ["slowdown vs Zen baseline", f"{run.slowdown_vs(baseline):.2%}"],
        ["ACT-PKI", f"{run.stats.act_pki:.1f}"],
        ["row-buffer hit rate", f"{run.stats.row_hit_rate:.1%}"],
        ["ALERTs per ACT", f"{run.stats.alerts_per_act:.3%}"],
        ["mitigations", run.stats.total_mitigations],
        ["RFM commands", run.stats.total_rfm_commands],
        ["DRAM power", f"{power.total_mw:.0f} mW"
         f" (mitigation {power.mitig_mw:.0f} mW)"],
    ]
    print(render_table(["metric", "value"], rows,
                       title=f"workload: {args.workload}"))
    if run.obs is not None:
        _write_obs_outputs(args, runner, baseline, run)
    return 0


def cmd_sweep(args: argparse.Namespace) -> int:
    """Print the RFM-vs-AutoRFM slowdown table across workloads."""
    names = args.workloads or list(WORKLOADS)
    unknown = [n for n in names if n not in WORKLOADS]
    if unknown:
        print(f"unknown workloads: {unknown}", file=sys.stderr)
        return 2
    setups = [
        ("RFM", MitigationSetup("rfm", threshold=args.threshold), "zen"),
        (
            "AutoRFM",
            MitigationSetup("autorfm", threshold=args.threshold,
                            policy=args.policy),
            "rubix",
        ),
    ]
    runner = _runner_from_args(args)
    matrix = runner.slowdown_matrix(
        names, setups, requests=args.requests, seed=args.seed,
        backend=getattr(args, "backend", "scalar"),
    )
    rows = [
        [name] + [f"{matrix[tag][name]:.1%}" for tag, _, _ in setups]
        for name in names
    ]
    headers = ["workload"] + [
        f"{tag}-{args.threshold}" for tag, _, _ in setups
    ]
    print(render_table(headers, rows, title="slowdown sweep"))
    return 0


def cmd_security(args: argparse.Namespace) -> int:
    """Print the analytical threshold models (optionally Monte Carlo)."""
    rows = [
        [
            w,
            mint_tolerated_trhd(w, recursive=True),
            mint_tolerated_trhd(w, recursive=False),
        ]
        for w in args.windows
    ]
    print(
        render_table(
            ["window", "TRH-D recursive", "TRH-D fractal"],
            rows,
            title="tolerated Rowhammer thresholds (Appendix A)",
        )
    )
    print(f"\nFractal Mitigation transitive-safety bound: TRH-D >= "
          f"{fm_safe_trhd()} (Appendix B)")
    if args.seeds:
        from repro.payload import PayloadError, parse_params
        from repro.security.thresholds import threshold_sweep

        acts = args.attack_acts or 20_000
        scenario = getattr(args, "scenario", None)
        try:
            scenario_params = parse_params(getattr(args, "param", None) or [])
            points = threshold_sweep(
                args.windows,
                seeds=args.seeds,
                acts=acts,
                tracker=args.tracker,
                policy=args.policy,
                backend=args.backend,
                scenario=scenario,
                scenario_params=scenario_params or None,
            )
        except PayloadError as exc:
            print(f"payload error: {exc}", file=sys.stderr)
            return 2
        sweep_rows = [
            [
                p.window,
                mint_tolerated_trhd(p.window, recursive=False),
                f"{p.max_pressure:.1f}",
                f"{p.mean_pressure:.1f}",
                p.mitigations,
            ]
            for p in points
        ]
        print()
        print(
            render_table(
                ["window", "analytic TRH-D", "worst pressure",
                 "mean pressure", "mitigations"],
                sweep_rows,
                title=(
                    f"empirical {scenario or '(ABCD)^K'} sweep: "
                    f"{args.tracker}/{args.policy}"
                    f", {args.seeds} seeds x {acts} ACTs"
                    f" [{args.backend}]"
                ),
            )
        )
    elif args.attack_acts:
        from repro.core.mitigation import FractalMitigation
        from repro.security.montecarlo import run_attack
        from repro.trackers.mint import MintTracker
        from repro.workloads.attacks import round_robin_attack

        window = args.windows[0]
        tracker = MintTracker(window=window, rng=np.random.default_rng(args.seed))
        policy = FractalMitigation(128 * 1024, np.random.default_rng(args.seed + 1))
        pattern = round_robin_attack(
            [10_000 + 10 * i for i in range(window)], args.attack_acts
        )
        result = run_attack(pattern, tracker, policy, window=window)
        print(
            f"\nMonte-Carlo (ABCD)^K attack, {args.attack_acts} ACTs: "
            f"max unmitigated pressure {result.max_pressure:.0f}, "
            f"{result.mitigations} mitigations"
        )
    return 0


def _campaign_jobs_from_args(args: argparse.Namespace) -> list:
    """The cell grid: every {tracker x policy x window x scenario}."""
    from repro.analysis.runner import CampaignJob
    from repro.payload import parse_params

    scenario_params = parse_params(getattr(args, "param", None) or [])
    jobs = []
    for tracker in args.trackers:
        for policy in args.policies:
            for window in args.windows:
                for scenario in (args.scenarios or [None]):
                    jobs.append(CampaignJob(
                        tracker=tracker,
                        policy=policy,
                        window=window,
                        acts=args.acts,
                        scenario=scenario,
                        scenario_params=(
                            tuple(sorted(scenario_params.items()))
                            if scenario and scenario_params else ()
                        ),
                        max_seeds=args.max_seeds,
                        alpha=args.alpha,
                        beta=args.beta,
                        p0=args.p0,
                        p1=args.p1,
                        backend=args.backend,
                    ))
    return jobs


def cmd_campaign(args: argparse.Namespace) -> int:
    """Run/report an adaptive threshold campaign, or show daemon status."""
    import json
    import time

    from repro.payload import PayloadError
    from repro.security.campaign import summarize_campaign

    if args.campaign_cmd == "status":
        from repro.svc import SweepClient

        try:
            with SweepClient(args.socket) as client:
                records = [
                    r for r in client.status() if r["kind"] == "campaign"
                ]
        except OSError:
            print("no daemon is listening; start one with `repro serve`",
                  file=sys.stderr)
            return 2
        rows = [
            [r["id"], r["state"], r["priority"], r["attempts"],
             "yes" if r["from_cache"] else "no", r["error"] or "-"]
            for r in records
        ]
        print(render_table(
            ["id", "state", "prio", "attempts", "cached", "error"],
            rows, title="campaign cells on the sweep service",
        ))
        return 0

    # run / report share one path: the content-addressed cache answers a
    # finished campaign instantly, so `report` is just a re-run that is
    # expected to hit (and resumes any cell a kill left mid-bisection).
    try:
        jobs = _campaign_jobs_from_args(args)
    except (PayloadError, ValueError) as exc:
        print(f"campaign error: {exc}", file=sys.stderr)
        return 2

    start = time.perf_counter()
    from repro.svc import SweepClient, daemon_available

    if daemon_available(args.socket):
        with SweepClient(args.socket) as client:
            job_ids = client.submit(jobs, priority=args.priority)
            results = [
                client.result(job_id, wait=True)["result"]
                for job_id in job_ids
            ]
        mode = "daemon"
    else:
        runner = _runner_from_args(args)
        results = runner.run_campaign_many(jobs)
        mode = "in-process"
    elapsed = time.perf_counter() - start

    rows = []
    for job, record in zip(jobs, results):
        if job.tracker in ("mint", "mint-transitive"):
            analytic = mint_tolerated_trhd(
                job.window, recursive=(job.policy != "fractal")
            )
        else:
            analytic = "-"
        decided = sum(
            1 for p in record["probes"] if p["decided_by"] == "sprt"
        )
        rows.append([
            job.tracker,
            job.policy,
            job.window,
            job.scenario or "(ABCD)^K",
            record["tolerated_threshold"],
            analytic,
            len(record["probes"]),
            f"{decided}/{len(record['probes'])}",
            record["seeds_spent"],
            f"{record['seeds_saved_pct']:.1f}%",
        ])
    print(render_table(
        ["tracker", "policy", "W", "pattern", "empirical T",
         "analytic T", "probes", "sprt", "seeds", "saved"],
        rows,
        title=(
            f"threshold campaign [{mode}]: alpha={args.alpha} "
            f"beta={args.beta} p0={args.p0} p1={args.p1} "
            f"budget={args.max_seeds} seeds/probe"
        ),
    ))

    from repro.obs import MetricsRegistry

    registry = MetricsRegistry()
    summary = summarize_campaign(results, metrics=registry)
    print()
    for name, value in sorted(registry.snapshot()["counters"].items()):
        print(f"  {name}: {value}")
    print(f"  campaign.cells_per_second: "
          f"{summary['cells'] / elapsed:.2f} (wall, this invocation)")

    if args.json:
        with open(args.json, "w") as handle:
            json.dump(
                {"cells": results, "summary": summary},
                handle, indent=2, sort_keys=True,
            )
            handle.write("\n")
        print(f"\nwrote {args.json}")
    return 0


def cmd_audit(args: argparse.Namespace) -> int:
    """Run a deliberate hammer through the full simulator and audit it."""
    from repro.cpu.system import build_mapping
    from repro.security.audit import audit_hammer_pressure
    from repro.security.mint_model import mint_tolerated_trhd
    from repro.sim.cmdlog import CommandLog
    from repro.workloads.adversarial import hammer_trace

    config = SystemConfig()
    mapping = build_mapping(args.mapping, config, seed=args.seed)
    attacker = hammer_trace(
        mapping,
        [args.row, args.row + 2],
        num_requests=args.acts,
        gap=700,
    )
    victims = make_rate_traces(WORKLOADS["xz"], config, 1000, seed=args.seed)
    setup = _setup_from_args(args)
    log = CommandLog()
    simulate(
        [attacker] + victims[1:], setup, config, args.mapping,
        seed=args.seed, command_log=log,
    )
    audit = audit_hammer_pressure(log, config)
    timing_violations = log.verify(config)
    rows = [
        ["configuration", setup.describe()],
        ["attack", f"double-sided on rows {args.row}/{args.row + 2}, "
                   f"{args.acts} requests"],
        ["worst row pressure", f"{audit.max_pressure:.0f}"],
        ["victim refreshes", audit.victim_refreshes],
        ["timing violations", len(timing_violations)],
        ["MINT-4+FM operating point", mint_tolerated_trhd(4)],
    ]
    print(render_table(["metric", "value"], rows, title="hammer audit"))
    return 0 if not timing_violations else 1


def cmd_tradeoffs(args: argparse.Namespace) -> int:
    """Print the tracker storage-vs-threshold design space."""
    from repro.analysis.tradeoffs import tracker_tradeoffs

    points = tracker_tradeoffs(window=args.window)
    rows = [
        [p.name, f"{p.storage_bytes_per_bank:,.1f} B", p.tolerated_trhd,
         "deterministic" if p.deterministic else "probabilistic"]
        for p in sorted(points, key=lambda p: p.storage_bits_per_bank)
    ]
    print(
        render_table(
            ["tracker", "SRAM/bank", f"TRH-D @ window {args.window}", "kind"],
            rows,
            title="tracker design space",
        )
    )
    return 0


def cmd_workloads(_args: argparse.Namespace) -> int:
    """Print the Table V workload catalog."""
    rows = [
        [w.suite, w.name, w.paper_act_pki, w.paper_act_per_trefi, w.pattern]
        for w in WORKLOADS.values()
    ]
    print(
        render_table(
            ["suite", "workload", "ACT-PKI (paper)", "ACT/tREFI (paper)",
             "pattern"],
            rows,
            title="Table V workload catalog",
        )
    )
    return 0


def cmd_reproduce(args: argparse.Namespace) -> int:
    """Run the bench(es) regenerating a paper experiment by id."""
    import os
    import subprocess

    bench_dir = os.path.join(
        os.path.dirname(os.path.dirname(os.path.dirname(__file__))),
        "benchmarks",
    )
    if not os.path.isdir(bench_dir):
        print(
            "benchmarks/ not found next to the package; run from a source "
            "checkout",
            file=sys.stderr,
        )
        return 2
    available = sorted(
        f[len("bench_"):-len(".py")]
        for f in os.listdir(bench_dir)
        if f.startswith("bench_") and f.endswith(".py")
    )
    if args.experiment == "list" or args.experiment is None:
        print("available experiments:")
        for name in available:
            print(f"  {name}")
        return 0
    matches = [n for n in available if args.experiment in n]
    if not matches:
        print(f"no experiment matches {args.experiment!r}", file=sys.stderr)
        return 2
    files = [os.path.join(bench_dir, f"bench_{n}.py") for n in matches]
    command = [sys.executable, "-m", "pytest", *files, "--benchmark-only"]
    print("running:", " ".join(command))
    return subprocess.call(command)


def cmd_storage(_args: argparse.Namespace) -> int:
    """Print the Section VI-C storage overheads."""
    overheads = storage_overheads(SystemConfig())
    rows = [
        ["MC busy table", f"{overheads.mc_bytes_total} B"],
        ["DRAM SAUM register / bank", f"{overheads.dram_saum_bits_per_bank} bits"],
        ["DRAM tracker / bank", f"{overheads.dram_tracker_bits_per_bank} bits"],
        ["DRAM total / bank", f"{overheads.dram_bytes_per_bank:.3f} B"],
    ]
    print(render_table(["state", "size"], rows,
                       title="AutoRFM storage overheads (Section VI-C)"))
    return 0


def cmd_payload(args: argparse.Namespace) -> int:
    """Inspect, compile, replay, and verify the attack-payload corpus."""
    from repro.payload import (
        PayloadError,
        compile_scenario,
        load_scenario,
        normalize,
        parse_params,
        scenario_names,
        scenario_source,
        verify_corpus,
    )

    try:
        if args.payload_cmd == "list":
            rows = []
            for name in scenario_names():
                s = load_scenario(name)
                params = ", ".join(f"{k}={v}" for k, v in s.params) or "-"
                rows.append(
                    [name, s.version, s.default_acts, params, s.description]
                )
            print(render_table(
                ["scenario", "version", "acts", "params", "description"],
                rows, title="attack-payload corpus",
            ))
            return 0

        if args.payload_cmd == "show":
            s = load_scenario(args.name)
            source = scenario_source(args.name)
            print(f"# {s.name} v{s.version} — {s.description}")
            print(f"# provenance: {s.provenance}")
            print(f"# default_acts: {s.default_acts}")
            print()
            print(normalize(source) if args.normalize else source, end="")
            return 0

        if args.payload_cmd == "compile":
            compiled = compile_scenario(
                args.name, params=parse_params(args.param or []),
                acts=args.acts,
            )
            ops = ", ".join(
                f"{op}={n}" for op, n in sorted(compiled.op_counts().items())
            )
            print(f"{compiled.name}: {compiled.acts} activations ({ops})")
            print(f"rows_sha256: {compiled.rows_digest()}")
            if args.rows:
                print(" ".join(str(r) for r in compiled.rows))
            else:
                head = " ".join(str(r) for r in compiled.rows[:16])
                more = len(compiled.rows) - 16
                print(f"rows: {head}" + (f" … (+{more})" if more > 0 else ""))
            return 0

        if args.payload_cmd == "run":
            from repro.analysis.runner import ExperimentRunner, SecurityJob

            scenario = load_scenario(args.name)
            acts = args.acts if args.acts is not None else scenario.default_acts
            job = SecurityJob(
                acts=acts,
                window=args.window,
                tracker=args.tracker,
                policy=args.policy,
                seeds=args.seeds,
                scenario=args.name,
                scenario_params=tuple(
                    sorted(parse_params(args.param or []).items())
                ),
                backend=args.backend,
            )
            results = ExperimentRunner().run_security(job)
            pressures = [r.max_pressure for r in results]
            print(
                f"{args.name} v{scenario.version}: {args.seeds} seeds x "
                f"{acts} ACTs vs {args.tracker}/{args.policy} "
                f"(window {args.window}) [{args.backend}]"
            )
            print(
                f"worst pressure {max(pressures):.1f}, mean "
                f"{sum(pressures) / len(pressures):.1f}, "
                f"{sum(r.mitigations for r in results)} mitigations"
            )
            return 0

        # verify (optionally --update to re-pin the manifest digests)
        if args.update:
            from repro.payload.corpus import pin_manifest

            doc = pin_manifest()
            print(f"re-pinned {len(doc.get('scenarios', {}))} scenario "
                  "digest(s) in corpus.json")
            return 0
        problems = verify_corpus()
        if problems:
            for problem in problems:
                print(f"corpus: {problem}", file=sys.stderr)
            return 1
        print(f"corpus OK: {len(scenario_names())} scenario(s) verified")
        return 0
    except PayloadError as exc:
        print(f"payload error: {exc}", file=sys.stderr)
        return 2


def _git_changed_files(scope):
    """Modified/untracked ``.py`` files under ``scope`` paths, per git.

    Returns None when git is unavailable or this is not a checkout (the
    caller falls back to a full run). Both unstaged+staged changes against
    HEAD and untracked files count: --changed is a pre-commit convenience,
    and anything not yet committed is exactly what it should look at.
    """
    import subprocess

    files = []
    for cmd in (
        ["git", "diff", "--name-only", "HEAD", "--"],
        ["git", "ls-files", "--others", "--exclude-standard"],
    ):
        try:
            proc = subprocess.run(
                cmd, capture_output=True, text=True, check=True
            )
        except (OSError, subprocess.CalledProcessError):
            return None
        files.extend(line.strip() for line in proc.stdout.splitlines())
    roots = [os.path.normpath(p) for p in scope]
    out = []
    for name in files:
        if not name.endswith(".py") or not os.path.exists(name):
            continue
        norm = os.path.normpath(name)
        if any(
            norm == root or norm.startswith(root + os.sep) for root in roots
        ):
            out.append(name)
    return sorted(dict.fromkeys(out))


def cmd_lint(args: argparse.Namespace) -> int:
    """Run the determinism/contract static-analysis suite."""
    from repro.lint import (
        ALL_PASSES,
        Baseline,
        BaselineError,
        load_baseline,
        render,
        run_lint,
    )

    if args.list_rules:
        for lint_pass in ALL_PASSES:
            for rule in lint_pass.rules:
                print(f"{rule.rule_id}  {rule.name:<22} {rule.summary}")
        return 0
    if args.changed:
        scope = args.paths or ["src/repro"]
        paths = _git_changed_files(scope)
        if paths is None:
            print("lint --changed: not a git checkout (or git missing); "
                  "falling back to a full run", file=sys.stderr)
            paths = scope
        elif not paths:
            print("lint --changed: no modified .py files in scope; "
                  "nothing to do")
            return 0
    else:
        paths = args.paths or ["src/repro"]
    missing = [p for p in paths if not os.path.exists(p)]
    if missing:
        print(f"no such path(s): {missing}", file=sys.stderr)
        return 2
    try:
        baseline = load_baseline(args.baseline)
    except BaselineError as exc:
        print(f"baseline error: {exc}", file=sys.stderr)
        return 2
    result = run_lint(
        paths,
        baseline=baseline,
        rule_filter=args.rule or None,
        # The whole-program passes need the full tree to build a faithful
        # call graph; over a git-diff slice they would see a fragment and
        # either miss or invent findings, so --changed skips them (the
        # fast pre-commit mode; CI runs the full interprocedural set).
        project=not args.changed,
    )
    if args.changed:
        # A scoped run cannot re-derive findings for unscanned files, so
        # baseline entries outside the slice would all look stale; stale
        # detection is meaningful only for full-tree runs.
        result.stale_baseline = []
    if args.update_baseline:
        keep = [f for f in result.findings if f.status != "suppressed"]
        Baseline.from_findings(keep, previous=baseline).save(args.baseline)
        print(f"wrote {args.baseline} ({len(keep)} suppressed finding(s)); "
              "fill in every TODO justification before committing")
        return 0
    print(render(result, args.format, verbose=args.verbose))
    return 0 if result.ok else 1


def cmd_checkpoint(args: argparse.Namespace) -> int:
    """Simulate one workload with periodic checkpoints into a directory."""
    if args.workload not in WORKLOADS:
        print(f"unknown workload {args.workload!r}", file=sys.stderr)
        return 2
    from repro.workloads.rate import make_rate_traces as _make_traces

    config = SystemConfig()
    setup = _setup_from_args(args)
    traces = _make_traces(
        WORKLOADS[args.workload], config, requests=args.requests,
        seed=args.seed,
    )
    result = simulate(
        traces, setup, config, mapping=args.mapping, seed=args.seed,
        checkpoint_every=args.every, checkpoint_dir=args.dir,
    )
    from repro.analysis.storage import load_checkpoint_manifest

    manifest = load_checkpoint_manifest(args.dir)
    rows = [
        ["cycles", result.stats.cycles],
        ["checkpoints written", len(manifest["entries"])],
        ["directory", args.dir],
    ]
    for entry in manifest["entries"]:
        rows.append([f"  {entry['file']}",
                     f"cycle {entry['cycle']} ({entry['bytes']} B)"])
    print(render_table(["checkpoint run", "value"], rows,
                       title=f"workload: {args.workload}"))
    return 0


def cmd_resume(args: argparse.Namespace) -> int:
    """Restore the newest snapshot in a directory and run to completion."""
    from repro.ckpt import load_latest

    snapshot = load_latest(args.dir)
    if snapshot is None:
        print(f"no valid snapshot found in {args.dir}", file=sys.stderr)
        return 2
    from repro.ckpt import restore

    system = restore(snapshot)
    result = system.run()
    rows = [
        ["resumed from cycle", snapshot.cycle],
        ["final cycles", result.stats.cycles],
        ["mitigations", result.stats.total_mitigations],
        ["RFM commands", result.stats.total_rfm_commands],
        ["seed", result.seed],
        ["mapping", result.mapping],
    ]
    print(render_table(["resume", "value"], rows,
                       title=f"checkpoint: {args.dir}"))
    return 0


def _svc_job_from_args(args: argparse.Namespace, workload: str) -> Job:
    """The simulation job a ``submit`` invocation describes."""
    return Job(
        workload,
        _setup_from_args(args),
        args.mapping,
        args.requests,
        args.seed,
        segment_cycles=getattr(args, "segment_cycles", None),
        backend=getattr(args, "backend", "scalar"),
    )


def _print_sim_result_dict(tag: str, data: dict) -> None:
    """Headline metrics of one wire-form simulation result."""
    stats = data["stats"]
    mitigations = sum(b["mitigations"] for b in stats["banks"])
    rfm = sum(b["rfm_commands"] for b in stats["banks"])
    rows = [
        ["cycles", stats["cycles"]],
        ["mitigations", mitigations],
        ["RFM commands", rfm],
        ["seed", data["seed"]],
        ["mapping", data["mapping"]],
    ]
    print(render_table(["metric", "value"], rows, title=tag))


def cmd_serve(args: argparse.Namespace) -> int:
    """Run the sweep-service daemon in the foreground."""
    from repro.svc import SweepService

    service = SweepService(
        args.socket,
        workers=args.workers,
        requests=args.requests,
        cache_dir=args.cache_dir,
        cache_max_mb=args.cache_max_mb,
    )
    print(f"repro.svc listening on {service.socket_path} "
          f"({args.workers} worker(s)); Ctrl-C to stop")
    try:
        service.run()
    except KeyboardInterrupt:
        pass
    return 0


def cmd_submit(args: argparse.Namespace) -> int:
    """Submit jobs to the daemon (in-process fallback without one)."""
    from repro.analysis.runner import result_to_dict
    from repro.svc import SweepClient, daemon_available

    names = args.workloads or ["bwaves"]
    unknown = [n for n in names if n not in WORKLOADS]
    if unknown:
        print(f"unknown workloads: {unknown}", file=sys.stderr)
        return 2
    jobs = [_svc_job_from_args(args, name) for name in names]

    if daemon_available(args.socket):
        with SweepClient(args.socket) as client:
            job_ids = client.submit(jobs, priority=args.priority)
            for name, job_id in zip(names, job_ids):
                print(f"submitted {job_id}  {name}")
            if not args.wait:
                return 0
            for name, job_id in zip(names, job_ids):
                response = client.result(job_id, wait=True)
                tag = "cache hit" if response["from_cache"] else "executed"
                _print_sim_result_dict(
                    f"{job_id} {name} ({tag})", response["result"]
                )
        return 0

    print("no daemon on the socket; executing in-process", file=sys.stderr)
    runner = _runner_from_args(args)
    results = runner.run_many(jobs)
    for name, result in zip(names, results):
        _print_sim_result_dict(f"{name} (in-process)",
                               result_to_dict(result))
    return 0


def cmd_status(args: argparse.Namespace) -> int:
    """Show the daemon's job table (or one job)."""
    from repro.svc import SweepClient

    try:
        with SweepClient(args.socket) as client:
            records = client.status(args.id)
    except OSError:
        print("no daemon is listening; start one with `repro serve`",
              file=sys.stderr)
        return 2
    rows = [
        [r["id"], r["kind"], r["state"], r["priority"], r["attempts"],
         "yes" if r["from_cache"] else "no", r["error"] or "-"]
        for r in records
    ]
    print(render_table(
        ["id", "kind", "state", "prio", "attempts", "cached", "error"],
        rows, title="sweep-service jobs",
    ))
    return 0


def cmd_result(args: argparse.Namespace) -> int:
    """Fetch one job's result from the daemon."""
    import json

    from repro.svc import ServiceError, SweepClient

    try:
        with SweepClient(args.socket) as client:
            response = client.result(
                args.id, wait=args.wait, timeout=args.timeout
            )
    except OSError:
        print("no daemon is listening; start one with `repro serve`",
              file=sys.stderr)
        return 2
    except ServiceError as exc:
        print(f"service error: {exc}", file=sys.stderr)
        return 1
    if args.json:
        print(json.dumps(response["result"], indent=2, sort_keys=True))
        return 0
    if response["kind"] == "sim":
        tag = "cache hit" if response["from_cache"] else "executed"
        _print_sim_result_dict(f"{args.id} ({tag})", response["result"])
    else:
        pressures = [r["max_pressure"] for r in response["result"]]
        print(f"{args.id}: {len(pressures)} seed(s), worst pressure "
              f"{max(pressures):.1f}")
    return 0


def cmd_cancel(args: argparse.Namespace) -> int:
    """Cancel a queued or running job on the daemon."""
    from repro.svc import ServiceError, SweepClient

    try:
        with SweepClient(args.socket) as client:
            state = client.cancel(args.id)
    except OSError:
        print("no daemon is listening; start one with `repro serve`",
              file=sys.stderr)
        return 2
    except ServiceError as exc:
        print(f"service error: {exc}", file=sys.stderr)
        return 1
    print(f"{args.id}: {state}")
    return 0


def cmd_cache(args: argparse.Namespace) -> int:
    """Inspect or prune the persistent result cache."""
    from repro.analysis.runner import (
        ResultCache,
        cache_size_limit_bytes,
        default_cache_dir,
    )

    if getattr(args, "daemon", False):
        from repro.svc import SweepClient

        try:
            with SweepClient(args.socket) as client:
                payload = client.cache_stats()
        except OSError:
            print("no daemon is listening; start one with `repro serve`",
                  file=sys.stderr)
            return 2
        stats = payload["cache"]
        rows = [
            ["directory", stats["directory"]],
            ["results", stats["results"]],
            ["total KiB", f"{stats['total_bytes'] / 1024:.1f}"],
            ["queue depth", payload["queue_depth"]],
            ["workers busy", f"{payload['workers']['busy']}"
                             f"/{payload['workers']['total']}"],
        ]
        metrics = payload["metrics"]
        for name, value in sorted(metrics.get("counters", {}).items()):
            rows.append([name, value])
        for name, value in sorted(metrics.get("gauges", {}).items()):
            rows.append([name, value])
        print(render_table(["cache (daemon)", "value"], rows,
                           title="sweep-service cache"))
        return 0

    cache = ResultCache(args.dir or default_cache_dir())
    if args.prune:
        if args.max_mb is not None:
            limit = int(args.max_mb * 1024 * 1024)
        else:
            limit = cache_size_limit_bytes()
        if limit is None:
            print("no limit given: pass --max-mb or set REPRO_CACHE_MAX_MB",
                  file=sys.stderr)
            return 2
        outcome = cache.prune(limit)
        print(f"pruned {outcome['removed']} files "
              f"({outcome['freed_bytes'] / 1024:.1f} KiB freed)")
    stats = cache.stats()
    rows = [
        ["directory", stats["directory"]],
        ["results", f"{stats['results']} "
                    f"({stats['result_bytes'] / 1024:.1f} KiB)"],
        ["segment snapshots", f"{stats['snapshots']} "
                              f"({stats['snapshot_bytes'] / 1024:.1f} KiB)"],
        ["total", f"{stats['total_bytes'] / 1024:.1f} KiB"],
    ]
    print(render_table(["cache", "value"], rows, title="result cache"))
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the argparse tree for all subcommands."""
    parser = argparse.ArgumentParser(
        prog="repro", description="AutoRFM reproduction toolkit"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="simulate one workload")
    run.add_argument("--workload", default="bwaves")
    run.add_argument("--mechanism", choices=MECHANISMS, default="autorfm")
    run.add_argument("--threshold", type=int, default=4)
    run.add_argument("--tracker", choices=TRACKERS, default="mint")
    run.add_argument("--policy", choices=POLICIES, default="fractal")
    run.add_argument("--mapping", choices=("zen", "rubix"), default="rubix")
    run.add_argument("--requests", type=int, default=2500)
    run.add_argument("--seed", type=int, default=1)
    run.add_argument(
        "--jobs", type=int, default=None,
        help="worker processes (default: REPRO_JOBS or all cores; 1 = serial)",
    )
    run.add_argument(
        "--trace", metavar="PATH", default=None,
        help="write a cycle-stamped JSONL event timeline (ACT/ALERT/SAUM/"
             "RFM/REF) of the mitigated run to PATH",
    )
    run.add_argument(
        "--metrics-out", metavar="PATH", default=None,
        help="write the observability metrics snapshot, profiling data, and "
             "flattened result record as JSON to PATH",
    )
    run.add_argument(
        "--backend", choices=("scalar", "batch"), default="scalar",
        help="timing backend: the scalar event loop or the fused batch "
             "kernel (bit-identical results; ineligible runs fall back to "
             "scalar automatically)",
    )
    run.set_defaults(func=cmd_run)

    sweep = sub.add_parser("sweep", help="RFM vs AutoRFM across workloads")
    sweep.add_argument("--workloads", nargs="*", default=None)
    sweep.add_argument("--threshold", type=int, default=4)
    sweep.add_argument("--policy", choices=POLICIES, default="fractal")
    sweep.add_argument("--requests", type=int, default=2500)
    sweep.add_argument("--seed", type=int, default=1)
    sweep.add_argument(
        "--jobs", type=int, default=None,
        help="worker processes (default: REPRO_JOBS or all cores; 1 = serial)",
    )
    sweep.add_argument(
        "--backend", choices=("scalar", "batch"), default="scalar",
        help="timing backend: the scalar event loop or the fused batch "
             "kernel (bit-identical results; ineligible runs fall back to "
             "scalar automatically)",
    )
    sweep.set_defaults(func=cmd_sweep)

    security = sub.add_parser("security", help="analytical threshold models")
    security.add_argument("--windows", type=int, nargs="*",
                          default=[4, 8, 16, 32])
    security.add_argument("--attack-acts", type=int, default=0)
    security.add_argument("--seed", type=int, default=1)
    security.add_argument(
        "--seeds", type=int, default=0,
        help="run the batched Monte-Carlo sweep across this many seeds",
    )
    security.add_argument(
        "--tracker", default="mint",
        choices=["mint", "mint-transitive", "graphene", "para"],
    )
    security.add_argument(
        "--policy", default="fractal", choices=["fractal", "blast"],
    )
    security.add_argument(
        "--backend", default="numpy", choices=["numpy", "scalar"],
    )
    security.add_argument(
        "--scenario", default=None, metavar="NAME",
        help="replay a corpus payload instead of the (ABCD)^K generator"
             f" (one of: {_corpus_scenario_listing()})",
    )
    security.add_argument(
        "--param", action="append", metavar="NAME=VALUE",
        help="scenario placeholder override (repeatable)",
    )
    security.set_defaults(func=cmd_security)

    campaign = sub.add_parser(
        "campaign",
        help="adaptive empirical threshold search (SPRT + bisection)",
    )
    campaign_sub = campaign.add_subparsers(dest="campaign_cmd", required=True)
    c_run = campaign_sub.add_parser(
        "run",
        help="search every {tracker x policy x window x scenario} cell",
    )
    c_report = campaign_sub.add_parser(
        "report",
        help="re-print a finished campaign's cross-check table (answers "
             "from the result cache; resumes any cell a kill interrupted)",
    )
    for c_parser in (c_run, c_report):
        c_parser.add_argument(
            "--trackers", nargs="*",
            default=["mint"],
            choices=["mint", "mint-transitive", "graphene", "para"],
        )
        c_parser.add_argument(
            "--policies", nargs="*", default=["fractal"],
            choices=["fractal", "blast"],
        )
        c_parser.add_argument("--windows", type=int, nargs="*", default=[4])
        c_parser.add_argument(
            "--scenarios", nargs="*", default=None, metavar="NAME",
            help="corpus payloads to probe (default: the window-optimal "
                 f"(ABCD)^K generator; available: {_corpus_scenario_listing()})",
        )
        c_parser.add_argument(
            "--param", action="append", metavar="NAME=VALUE",
            help="scenario placeholder override (repeatable, applies to "
                 "every scenario cell)",
        )
        c_parser.add_argument("--acts", type=int, default=6_000)
        c_parser.add_argument(
            "--max-seeds", type=int, default=400,
            help="per-probe seed budget (the fixed-sweep cost one probe "
                 "would pay; the SPRT usually stops far earlier)",
        )
        c_parser.add_argument(
            "--alpha", type=float, default=1e-3,
            help="bound on calling a safe threshold unsafe",
        )
        c_parser.add_argument(
            "--beta", type=float, default=1e-3,
            help="bound on calling an unsafe threshold safe",
        )
        c_parser.add_argument(
            "--p0", type=float, default=0.01,
            help="exceedance probability read as safe",
        )
        c_parser.add_argument(
            "--p1", type=float, default=0.10,
            help="exceedance probability read as unsafe",
        )
        c_parser.add_argument(
            "--backend", default="numpy", choices=["numpy", "scalar"],
        )
        c_parser.add_argument(
            "--priority", type=int, default=0,
            help="daemon queue priority (higher dispatches first)",
        )
        c_parser.add_argument(
            "--socket", default=None,
            help="daemon socket (default: REPRO_SVC_SOCKET); without a "
                 "live daemon the cells execute in-process",
        )
        c_parser.add_argument(
            "--jobs", type=int, default=None,
            help="worker processes for the in-process path",
        )
        c_parser.add_argument(
            "--json", metavar="PATH", default=None,
            help="also write the full per-cell records as JSON to PATH",
        )
    c_status = campaign_sub.add_parser(
        "status", help="list campaign cells on the sweep service"
    )
    c_status.add_argument("--socket", default=None)
    for c_parser in (c_run, c_report, c_status):
        c_parser.set_defaults(func=cmd_campaign)

    audit = sub.add_parser(
        "audit", help="hammer the simulator and audit row pressure"
    )
    audit.add_argument("--mechanism", choices=MECHANISMS, default="autorfm")
    audit.add_argument("--threshold", type=int, default=4)
    audit.add_argument("--tracker", choices=TRACKERS, default="mint")
    audit.add_argument("--policy", choices=POLICIES, default="fractal")
    audit.add_argument("--mapping", choices=("zen", "rubix"), default="rubix")
    audit.add_argument("--row", type=int, default=70_000)
    audit.add_argument("--acts", type=int, default=4000)
    audit.add_argument("--seed", type=int, default=1)
    audit.set_defaults(func=cmd_audit)

    tradeoffs = sub.add_parser(
        "tradeoffs", help="tracker storage-vs-threshold design space"
    )
    tradeoffs.add_argument("--window", type=int, default=4)
    tradeoffs.set_defaults(func=cmd_tradeoffs)

    workloads = sub.add_parser("workloads", help="list the Table V catalog")
    workloads.set_defaults(func=cmd_workloads)

    storage = sub.add_parser("storage", help="Section VI-C storage overheads")
    storage.set_defaults(func=cmd_storage)

    payload = sub.add_parser(
        "payload", help="the attack-payload DSL corpus (list/show/compile/run/verify)"
    )
    payload_sub = payload.add_subparsers(dest="payload_cmd", required=True)

    p_list = payload_sub.add_parser("list", help="list corpus scenarios")

    p_show = payload_sub.add_parser("show", help="print a scenario's source")
    p_show.add_argument("name")
    p_show.add_argument(
        "--normalize", action="store_true",
        help="print the canonical formatting (format∘parse) instead of "
             "the file bytes",
    )

    p_compile = payload_sub.add_parser(
        "compile", help="compile a scenario and print its shape"
    )
    p_compile.add_argument("name")
    p_compile.add_argument(
        "--param", action="append", metavar="NAME=VALUE",
        help="placeholder override (repeatable)",
    )
    p_compile.add_argument(
        "--acts", type=int, default=None,
        help="activation budget (default: the manifest's default_acts)",
    )
    p_compile.add_argument(
        "--rows", action="store_true",
        help="dump the full compiled row sequence",
    )

    p_run = payload_sub.add_parser(
        "run", help="replay a scenario through the Monte-Carlo engine"
    )
    p_run.add_argument("name")
    p_run.add_argument(
        "--param", action="append", metavar="NAME=VALUE",
        help="placeholder override (repeatable)",
    )
    p_run.add_argument("--acts", type=int, default=None)
    p_run.add_argument("--window", type=int, default=4)
    p_run.add_argument(
        "--tracker", default="mint",
        choices=["mint", "mint-transitive", "graphene", "para"],
    )
    p_run.add_argument(
        "--policy", default="fractal", choices=["fractal", "blast"],
    )
    p_run.add_argument("--seeds", type=int, default=50)
    p_run.add_argument(
        "--backend", default="numpy", choices=["numpy", "scalar"],
    )

    p_verify = payload_sub.add_parser(
        "verify", help="check every manifest digest against the corpus"
    )
    p_verify.add_argument(
        "--update", action="store_true",
        help="re-pin the manifest digests (maintainer action: review the "
             "diff and bump versions before committing)",
    )

    for sub_parser in (p_list, p_show, p_compile, p_run, p_verify):
        sub_parser.set_defaults(func=cmd_payload)

    reproduce = sub.add_parser(
        "reproduce", help="run the bench for a paper experiment (or 'list')"
    )
    reproduce.add_argument("experiment", nargs="?", default="list")
    reproduce.set_defaults(func=cmd_reproduce)

    lint = sub.add_parser(
        "lint", help="determinism & contract static analysis"
    )
    lint.add_argument(
        "paths", nargs="*", default=None,
        help="files/directories to lint (default: src/repro)",
    )
    lint.add_argument(
        "--format", choices=("text", "json", "sarif"), default="text",
        help="report format (default: text)",
    )
    lint.add_argument(
        "--baseline", default="lint-baseline.json",
        help="suppression baseline file (default: lint-baseline.json; "
             "a missing file just means no baseline)",
    )
    lint.add_argument(
        "--update-baseline", action="store_true",
        help="rewrite the baseline to cover every current finding "
             "(preserving existing justifications), then exit 0",
    )
    lint.add_argument(
        "--rule", action="append", metavar="RULE",
        help="only report this rule (id or name; repeatable)",
    )
    lint.add_argument(
        "--list-rules", action="store_true",
        help="print the rule catalog and exit",
    )
    lint.add_argument(
        "--verbose", action="store_true",
        help="also show pragma-suppressed findings and justifications",
    )
    lint.add_argument(
        "--changed", action="store_true",
        help="lint only git-modified/untracked .py files in scope and "
             "skip the whole-program passes (fast pre-commit mode; CI "
             "always runs the full tree)",
    )
    lint.set_defaults(func=cmd_lint)

    checkpoint = sub.add_parser(
        "checkpoint", help="simulate with periodic snapshots to a directory"
    )
    checkpoint.add_argument("--workload", default="bwaves")
    checkpoint.add_argument("--mechanism", choices=MECHANISMS, default="autorfm")
    checkpoint.add_argument("--threshold", type=int, default=4)
    checkpoint.add_argument("--tracker", choices=TRACKERS, default="mint")
    checkpoint.add_argument("--policy", choices=POLICIES, default="fractal")
    checkpoint.add_argument("--mapping", choices=("zen", "rubix"),
                            default="rubix")
    checkpoint.add_argument("--requests", type=int, default=2500)
    checkpoint.add_argument("--seed", type=int, default=1)
    checkpoint.add_argument(
        "--every", type=int, default=100_000,
        help="cycles between snapshots (default 100000)",
    )
    checkpoint.add_argument(
        "--dir", required=True,
        help="directory for snapshots and their manifest",
    )
    checkpoint.set_defaults(func=cmd_checkpoint)

    resume = sub.add_parser(
        "resume", help="restore the newest snapshot and run to completion"
    )
    resume.add_argument(
        "--dir", required=True, help="checkpoint directory to resume from"
    )
    resume.set_defaults(func=cmd_resume)

    cache = sub.add_parser(
        "cache", help="inspect or prune the persistent result cache"
    )
    cache.add_argument(
        "--dir", default=None,
        help="cache directory (default: REPRO_CACHE_DIR or the repo cache)",
    )
    cache.add_argument(
        "--stats", action="store_true",
        help="print occupancy (the default action)",
    )
    cache.add_argument(
        "--prune", action="store_true",
        help="evict least-recently-used entries down to the size budget",
    )
    cache.add_argument(
        "--max-mb", type=float, default=None,
        help="size budget in MiB for --prune (default: REPRO_CACHE_MAX_MB)",
    )
    cache.add_argument(
        "--daemon", action="store_true",
        help="query a running sweep-service daemon instead of reading the "
             "cache directory (adds service metrics and queue state)",
    )
    cache.add_argument(
        "--socket", default=None,
        help="daemon socket for --daemon (default: REPRO_SVC_SOCKET)",
    )
    cache.set_defaults(func=cmd_cache)

    serve = sub.add_parser(
        "serve", help="run the sweep-service daemon on a Unix socket"
    )
    serve.add_argument(
        "--socket", default=None,
        help="Unix socket path (default: REPRO_SVC_SOCKET or a per-user "
             "/tmp path)",
    )
    serve.add_argument(
        "--workers", type=int, default=2,
        help="concurrent worker processes (default 2)",
    )
    serve.add_argument(
        "--requests", type=int, default=None,
        help="default request slice for jobs that leave it unset",
    )
    serve.add_argument(
        "--cache-dir", default=None,
        help="shared result-cache directory (default: REPRO_CACHE_DIR)",
    )
    serve.add_argument(
        "--cache-max-mb", type=float, default=None,
        help="prune the shared cache to this budget after completions "
             "(default: REPRO_CACHE_MAX_MB)",
    )
    serve.set_defaults(func=cmd_serve)

    submit = sub.add_parser(
        "submit", help="submit simulation jobs to the sweep service"
    )
    submit.add_argument("--workloads", nargs="*", default=None)
    submit.add_argument("--mechanism", choices=MECHANISMS, default="autorfm")
    submit.add_argument("--threshold", type=int, default=4)
    submit.add_argument("--tracker", choices=TRACKERS, default="mint")
    submit.add_argument("--policy", choices=POLICIES, default="fractal")
    submit.add_argument("--mapping", choices=("zen", "rubix"),
                        default="rubix")
    submit.add_argument("--requests", type=int, default=2500)
    submit.add_argument("--seed", type=int, default=1)
    submit.add_argument(
        "--segment-cycles", type=int, default=None,
        help="snapshot segment length in cycles (enables crash resume)",
    )
    submit.add_argument(
        "--backend", choices=("scalar", "batch"), default="scalar",
    )
    submit.add_argument(
        "--priority", type=int, default=0,
        help="queue priority (higher dispatches first; FIFO within a "
             "priority)",
    )
    submit.add_argument(
        "--wait", action="store_true",
        help="block until every submitted job finishes and print results",
    )
    submit.add_argument(
        "--socket", default=None,
        help="daemon socket (default: REPRO_SVC_SOCKET); without a live "
             "daemon the jobs execute in-process",
    )
    submit.add_argument(
        "--jobs", type=int, default=None,
        help="worker processes for the in-process fallback",
    )
    submit.set_defaults(func=cmd_submit)

    status = sub.add_parser(
        "status", help="list the sweep service's jobs"
    )
    status.add_argument("id", nargs="?", default=None,
                        help="one job id (default: all jobs)")
    status.add_argument("--socket", default=None)
    status.set_defaults(func=cmd_status)

    result = sub.add_parser(
        "result", help="fetch one job's result from the sweep service"
    )
    result.add_argument("id")
    result.add_argument(
        "--wait", action="store_true",
        help="block until the job finishes",
    )
    result.add_argument(
        "--timeout", type=float, default=None,
        help="give up after this many seconds of --wait",
    )
    result.add_argument(
        "--json", action="store_true",
        help="print the raw result payload as JSON",
    )
    result.add_argument("--socket", default=None)
    result.set_defaults(func=cmd_result)

    cancel = sub.add_parser(
        "cancel", help="cancel a queued or running sweep-service job"
    )
    cancel.add_argument("id")
    cancel.add_argument("--socket", default=None)
    cancel.set_defaults(func=cmd_cancel)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
