"""BlockHammer-style rate limiting [52] (Section VII-D).

BlockHammer prevents Rowhammer *at the memory controller* by throttling any
row activated faster than a safe rate. Row activation counts are estimated
with a pair of counting Bloom filters that swap roles every half refresh
window (so stale history ages out); a row whose estimate crosses the
blacklist threshold has its activations spaced out far enough that it can
never reach the Rowhammer threshold within tREFW.

The safe spacing: with ``trh`` activations allowed per ``trefw_cycles``,
a blacklisted row's ACTs are separated by at least ``trefw / trh`` cycles.
Counting Bloom filters never undercount, so the defense is sound; false
positives only cost benign performance.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.sim.config import SystemConfig
from repro.ckpt.contract import checkpointable


@checkpointable(
    state=("_counters",),
    const=("bits", "hashes"),
)
class CountingBloomFilter:
    """A counting Bloom filter with conservative-increment updates."""

    def __init__(self, bits: int, hashes: int):
        if bits < 1 or hashes < 1:
            raise ValueError("bits and hashes must be positive")
        self.bits = bits
        self.hashes = hashes
        self._counters: List[int] = [0] * bits

    def _indices(self, key: int) -> List[int]:
        indices = []
        x = key + 0x9E3779B9
        for i in range(self.hashes):
            x ^= (x >> 15) + i * 0x85EBCA6B
            x = (x * 0xC2B2AE35) & 0xFFFFFFFF
            indices.append(x % self.bits)
        return indices

    def insert(self, key: int) -> int:
        """Conservative increment; returns the new estimate."""
        indices = self._indices(key)
        current = min(self._counters[i] for i in indices)
        for i in indices:
            if self._counters[i] == current:
                self._counters[i] += 1
        return current + 1

    def estimate(self, key: int) -> int:
        """Upper-bounded count estimate for ``key`` (never undercounts)."""
        return min(self._counters[i] for i in self._indices(key))

    def clear(self) -> None:
        """Reset every counter (epoch rotation)."""
        for i in range(self.bits):
            self._counters[i] = 0


@checkpointable(
    state=("_active", "_history", "_epoch_start", "_next_allowed",
           "throttled_acts"),
    const=("config", "trh", "blacklist_threshold", "epoch_cycles",
           "throttle_delay"),
)
class BlockHammerLimiter:
    """Dual-filter activation-rate limiter for one channel.

    ``observe`` is called per ACT and returns the earliest cycle the *next*
    ACT to that row may issue (0 = unthrottled).
    """

    def __init__(
        self,
        config: SystemConfig,
        trh: int,
        blacklist_threshold: int = None,
        filter_bits: int = 1024,
        hashes: int = 4,
    ):
        if trh < 2:
            raise ValueError("trh must be at least 2")
        self.config = config
        self.trh = trh
        # Blacklist once a row has used half its budget for the half-window.
        self.blacklist_threshold = (
            blacklist_threshold if blacklist_threshold is not None
            else max(1, trh // 4)
        )
        self.epoch_cycles = config.timing.trefw // 2
        # Safe spacing so a blacklisted row stays under trh per tREFW.
        self.throttle_delay = max(1, config.timing.trefw // trh)

        self._active = CountingBloomFilter(filter_bits, hashes)
        self._history = CountingBloomFilter(filter_bits, hashes)
        self._epoch_start = 0
        self._next_allowed: Dict[Tuple[int, int], int] = {}
        self.throttled_acts = 0

    def _rotate_if_needed(self, now: int) -> None:
        if now - self._epoch_start >= self.epoch_cycles:
            self._active, self._history = self._history, self._active
            self._active.clear()
            self._epoch_start = now
            self._next_allowed.clear()

    def is_blacklisted(self, bank: int, row: int) -> bool:
        """True when the row's estimated rate crosses the blacklist bar."""
        key = (bank << 20) | row
        count = max(self._active.estimate(key), self._history.estimate(key))
        return count >= self.blacklist_threshold

    def earliest_act(self, bank: int, row: int, now: int) -> int:
        """Earliest cycle an ACT to (bank, row) may issue."""
        self._rotate_if_needed(now)
        return self._next_allowed.get((bank, row), 0)

    def observe(self, bank: int, row: int, now: int) -> None:
        """Record an issued ACT; arms the throttle if blacklisted."""
        self._rotate_if_needed(now)
        key = (bank << 20) | row
        self._active.insert(key)
        if self.is_blacklisted(bank, row):
            self._next_allowed[(bank, row)] = now + self.throttle_delay
            self.throttled_acts += 1

    @property
    def storage_bits(self) -> int:
        counter_bits = max(1, self.blacklist_threshold.bit_length() + 2)
        return 2 * self._active.bits * counter_bits
