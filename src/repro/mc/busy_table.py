"""Per-bank busy-bit + timestamp table (Fig. 7).

When an ACT fails with an ALERT, the memory controller marks the bank busy
and records the cycle at which it frees up (current time + t_M). A busy bank
receives no demand requests until the timestamp passes. This is the paper's
*simple* MC design; the per-request alternative (Section IV-C) is modeled by
:class:`repro.mc.controller.MemoryController` with ``per_request_retry``.
"""

from __future__ import annotations

from typing import List
from repro.ckpt.contract import checkpointable


@checkpointable(
    state=("_busy_until",),
    const=("num_banks",),
)
class BankBusyTable:
    """Busy bit and free-up timestamp for each bank."""

    #: Storage per bank: 1 busy bit + 15-bit timestamp (Section VI-C).
    BITS_PER_BANK = 16

    def __init__(self, num_banks: int):
        self.num_banks = num_banks
        self._busy_until: List[int] = [0] * num_banks

    def mark_busy(self, bank: int, until: int) -> None:
        """Set the busy bit; the timestamp only ever extends."""
        self._busy_until[bank] = max(self._busy_until[bank], until)

    def is_busy(self, bank: int, now: int) -> bool:
        """True while the bank may not receive demand requests."""
        return now < self._busy_until[bank]

    def busy_until(self, bank: int) -> int:
        """The cycle at which the bank frees up (0 when never marked)."""
        return self._busy_until[bank]

    @property
    def storage_bytes(self) -> int:
        return self.num_banks * self.BITS_PER_BANK // 8
