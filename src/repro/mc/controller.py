"""Memory controller and command scheduler.

One :class:`MemoryController` owns both subchannels. Scheduling is
event-driven at request granularity:

* per-bank FIFO queues with row-hit-first service (FR-FCFS-lite) under the
  closed-page-with-tRAS-window policy of the paper;
* all-bank REF per subchannel every tREFI (blocking tRFC), staggered between
  subchannels;
* RFM mode — RAA counters; RFM issued eagerly at the precharge once RAA
  reaches RFMTH, blocking the bank for tRFM;
* AutoRFM mode — ACTs that conflict with the Subarray-Under-Mitigation are
  declined with an ALERT; the per-bank busy table (Fig. 7) blocks the bank
  for t_M before the retry. ``per_request_retry`` switches to the complex-MC
  ablation of Section IV-C where only the conflicted request waits;
* PRAC mode — scaled tRC plus ABO: an over-threshold row stalls the whole
  subchannel for tRFM while the chip mitigates.
"""

from __future__ import annotations

import dataclasses
from functools import partial
from typing import Callable, Dict, List, Optional

from repro.ckpt.contract import checkpointable
from repro.core.autorfm import AutoRfmEngine
from repro.dram.bank import NO_ROW, Bank
from repro.mapping.base import MemoryMapping
from repro.mc.blockhammer import BlockHammerLimiter
from repro.mc.busy_table import BankBusyTable
from repro.mc.request import Request
from repro.mc.setup import MitigationSetup, build_policy, build_tracker
from repro.obs import DEPTH_EDGES, LATENCY_EDGES, Observability
from repro.rfm.prac import PracModel, abo_threshold_for, prac_timing
from repro.rfm.rfm import RfmController
from repro.sim.cmdlog import (
    ACT,
    ALERT,
    MITIGATION,
    REF,
    RFM,
    VICTIM_REFRESH,
    CommandLog,
)
from repro.sim.config import (
    DEFAULT_LOCATE_CACHE,
    SystemConfig,
    locate_cache_capacity,
)
from repro.sim.engine import Engine
from repro.sim.rng import RngStreams
from repro.sim.stats import SimStats


# The locate-memo env knob (REPRO_LOCATE_CACHE) moved to repro.sim.config,
# the designated os.environ home (determinism lint DET003); the names stay
# re-exported here for existing importers.
__all__ = ["DEFAULT_LOCATE_CACHE", "locate_cache_capacity", "MemoryController"]


class _ObsHooks:
    """Pre-resolved observability hook points for one controller.

    Bundled into a single slotted object so the controller's instance dict
    grows by exactly one key (``_obs``) when observability is enabled and
    disabled runs keep their original attribute layout: each hook site pays
    one ``is None`` load-and-branch, nothing more. ``tracer``/``metrics``
    mirror :class:`~repro.obs.Observability` so the bank/engine
    ``attach_obs`` hooks accept either object.

    Emission is deferred to drain boundaries: hot paths append to plain
    per-bank int accumulators (``acts``/``alerts``/...), buffer raw
    histogram values, and queue pre-built trace records on the single
    shared ``trace_pending`` list (one list so records from the
    controller, the per-bank AutoRFM engines, and the RFM layer stay in
    exact emission order). :meth:`flush` publishes everything into the
    registry/tracer; it runs at every REF (the natural drain boundary),
    at :meth:`~repro.cpu.system.SimulatedSystem.finalize`, and before a
    checkpoint capture — the flush cadence never changes the final
    values, only when they land.
    """

    __slots__ = (
        "tracer", "metrics", "m_acts", "m_alerts", "m_rfm_cmds", "m_refs",
        "h_queue_depth", "h_retry_wait",
        "acts", "alerts", "rfm_cmds", "refs",
        "queue_depth_pending", "retry_wait_pending", "trace_pending",
        "children",
    )

    def __init__(self, obs: Observability, config: SystemConfig,
                 n_banks: int):
        self.tracer = obs.tracer
        metrics = obs.metrics
        self.metrics = metrics
        self.m_acts = None
        self.m_alerts = None
        self.m_rfm_cmds = None
        self.m_refs = None
        self.h_queue_depth = None
        self.h_retry_wait = None
        self.acts = None
        self.alerts = None
        self.rfm_cmds = None
        self.refs = None
        self.queue_depth_pending = None
        self.retry_wait_pending = None
        self.trace_pending = [] if self.tracer is not None else None
        # Child hook bundles (AutoRFM engines, RFM-mode banks, the RFM
        # layer) that accumulate their own counters; flushed with ours.
        self.children = []
        if metrics is not None:
            self.m_acts = [
                metrics.counter("mc.act", bank=i) for i in range(n_banks)
            ]
            self.m_alerts = [
                metrics.counter("mc.alert", bank=i) for i in range(n_banks)
            ]
            self.m_rfm_cmds = [
                metrics.counter("mc.rfm", bank=i) for i in range(n_banks)
            ]
            self.m_refs = [
                metrics.counter("mc.ref", bank=i) for i in range(n_banks)
            ]
            self.h_queue_depth = [
                metrics.histogram("mc.queue_depth", DEPTH_EDGES,
                                  subchannel=sc)
                for sc in range(config.num_subchannels)
            ]
            self.h_retry_wait = metrics.histogram(
                "mc.retry_wait", LATENCY_EDGES
            )
            self.acts = [0] * n_banks
            self.alerts = [0] * n_banks
            self.rfm_cmds = [0] * n_banks
            self.refs = [0] * n_banks
            self.queue_depth_pending = [
                [] for _ in range(config.num_subchannels)
            ]
            self.retry_wait_pending = []

    def flush(self) -> None:
        """Publish every deferred accumulation (drain boundary)."""
        if self.metrics is not None:
            for accumulator, counters in (
                (self.acts, self.m_acts),
                (self.alerts, self.m_alerts),
                (self.rfm_cmds, self.m_rfm_cmds),
                (self.refs, self.m_refs),
            ):
                for flat, n in enumerate(accumulator):
                    if n:
                        counters[flat].inc(n)
                        accumulator[flat] = 0
            for sc, values in enumerate(self.queue_depth_pending):
                if values:
                    self.h_queue_depth[sc].observe_many(values)
                    values.clear()
            if self.retry_wait_pending:
                self.h_retry_wait.observe_many(self.retry_wait_pending)
                self.retry_wait_pending.clear()
        pending = self.trace_pending
        if pending:
            self.tracer.emit_raw(pending)
            # Clear in place: the per-bank engine bundles alias this list,
            # so rebinding it would silently orphan their queue.
            pending.clear()
        for child in self.children:
            child.flush()


@checkpointable(
    state=(
        "queues",
        "_recent_acts",
        "busy_table",
        "_write_buffers",
        "bus_free_at",
        "_wakeups",
        "_order",
        "_ref_cursor",
        "rfm",
        "prac",
        "blockhammer",
        "banks",
    ),
    const=(
        "config",
        "timing",
        "setup",
        "_open_page",
        "_banks_per_sc",
        "_trp",
        "_tras",
        "_trcd",
        "_tfaw",
        "_cas_latency",
        "_burst",
        "_completion_tail",
    ),
    derived=(
        "mapping",
        "engine",
        "stats",
        "keep_running",
        "command_log",
        "_obs",
        "_streams",
        "_locate_cache",
        "_locate_cache_cap",
    ),
)
class MemoryController:
    """Request queues, per-bank schedulers, and maintenance commands."""

    def __init__(
        self,
        config: SystemConfig,
        mapping: MemoryMapping,
        engine: Engine,
        setup: MitigationSetup,
        streams: RngStreams,
        stats: SimStats,
        keep_running: Optional[Callable[[], bool]] = None,
        command_log: Optional[CommandLog] = None,
        obs: Optional[Observability] = None,
    ):
        config.validate()
        if setup.mechanism == "prac":
            config = dataclasses.replace(config, timing=prac_timing(config.timing))
        self.config = config
        self.timing = config.timing
        self.mapping = mapping
        self.engine = engine
        self.setup = setup
        self.stats = stats
        self.keep_running = keep_running or (lambda: True)
        self.command_log = command_log

        self._open_page = config.page_policy == "open"
        # Hot-path constants, pre-resolved once: the scheduler consults these
        # on every request, and the timing values live behind computed
        # properties on the (frozen) config objects.
        timing = self.timing
        self._banks_per_sc = config.banks_per_subchannel
        self._trp = timing.trp
        self._tras = timing.tras
        self._trcd = timing.trcd
        self._tfaw = timing.tfaw
        self._cas_latency = timing.cas_latency
        self._burst = timing.burst
        self._completion_tail = (
            timing.burst + config.static_mem_latency + mapping.extra_latency
        )
        n_banks = config.num_banks
        self.queues: List[List[Request]] = [[] for _ in range(n_banks)]
        # tFAW: timestamps of the last four ACTs per subchannel.
        self._recent_acts: List[List[int]] = [
            [] for _ in range(config.num_subchannels)
        ]
        self.busy_table = BankBusyTable(n_banks)
        # Optional write buffering (read-priority): writes park here until
        # the high watermark triggers a burst drain.
        self._write_buffers: List[List[Request]] = [
            [] for _ in range(config.num_subchannels)
        ]
        self.bus_free_at: List[int] = [0] * config.num_subchannels
        self._wakeups: List[Optional[int]] = [None] * n_banks
        self._order = 0
        # Memoized line->location decode. The mapping is a pure static
        # function of the line address for the whole run (even Rubix: the
        # cipher key is fixed at construction), so entries never need
        # invalidating; the bound only caps memory. Eviction is FIFO in
        # insertion order — hits pay one dict probe and nothing else (LRU
        # move-to-end bookkeeping on this path costs more than the decode
        # it saves). Derived, not state: a restored controller restarts
        # cold with identical results.
        self._locate_cache: Dict[int, object] = {}
        self._locate_cache_cap = locate_cache_capacity()

        self.rfm: Optional[RfmController] = None
        self.prac: Optional[PracModel] = None
        self.blockhammer: Optional[BlockHammerLimiter] = None
        if setup.mechanism == "rfm":
            self.rfm = RfmController(n_banks, setup.threshold)
        elif setup.mechanism == "prac":
            self.prac = PracModel(n_banks, abo_threshold_for(setup.prac_trh_d))
        elif setup.mechanism == "blockhammer":
            self.blockhammer = BlockHammerLimiter(
                config, trh=setup.blockhammer_trh
            )

        # Observability: one pre-resolved hook bundle (see _ObsHooks) or
        # None; when observability is off the per-event cost is a single
        # is-None branch next to the existing command_log check.
        self._obs: Optional[_ObsHooks] = None
        if obs is not None and obs.enabled:
            self._obs = _ObsHooks(obs, config, n_banks)
            if self.rfm is not None:
                self.rfm.attach_obs(self._obs)

        self._streams = streams
        self.banks: List[Bank] = [
            self._build_bank(flat) for flat in range(n_banks)
        ]
        self._schedule_refreshes()

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def _build_bank(self, flat: int) -> Bank:
        setup, config = self.setup, self.config
        bank_stats = self.stats.banks[flat]
        autorfm = None
        rfm_tracker = None
        rfm_policy = None
        if setup.mechanism == "autorfm":
            autorfm = AutoRfmEngine(
                config=config,
                tracker=build_tracker(setup, self._streams, flat),
                policy=build_policy(setup, config, self._streams, flat),
                autorfm_th=setup.threshold,
                stats=bank_stats,
            )
        elif setup.mechanism == "smd":
            # Self-Managed DRAM (Section VII-B): same transparent-decline
            # machinery, but PARA sampling at every precharge and a coarse
            # maintenance-region lock instead of a single subarray.
            smd_setup = dataclasses.replace(
                setup, tracker="para", policy="blast2"
            )
            autorfm = AutoRfmEngine(
                config=config,
                tracker=build_tracker(smd_setup, self._streams, flat),
                policy=build_policy(smd_setup, config, self._streams, flat),
                autorfm_th=1,
                stats=bank_stats,
                regions_per_bank=setup.smd_regions_per_bank,
            )
        elif setup.mechanism == "rfm":
            rfm_tracker = build_tracker(setup, self._streams, flat)
            rfm_policy = build_policy(setup, config, self._streams, flat)
        if autorfm is not None and self._obs is not None:
            autorfm.attach_obs(self._obs, flat)
        if autorfm is not None and self.command_log is not None:
            autorfm.mitigation_listener = (
                lambda t, f=flat: self.command_log.record(t, MITIGATION, f)
            )
            autorfm.victim_listener = (
                lambda t, victim, f=flat: self.command_log.record(
                    t, VICTIM_REFRESH, f, victim
                )
            )
        bank = Bank(
            config=config,
            stats=bank_stats,
            autorfm=autorfm,
            rfm_tracker=rfm_tracker,
            rfm_policy=rfm_policy,
        )
        if self._obs is not None:
            bank.attach_obs(self._obs, flat)
        return bank

    def _schedule_refreshes(self) -> None:
        trefi = self.timing.trefi
        if self.config.refresh_mode == "same_bank":
            # REFsb: one bank per tREFI / banks slot, round-robin, so every
            # bank still refreshes once per tREFI.
            self._ref_cursor = [0] * self.config.num_subchannels
            interval = max(1, trefi // self.config.banks_per_subchannel)
            for sc in range(self.config.num_subchannels):
                offset = (sc * interval) // self.config.num_subchannels
                self.engine.schedule(
                    offset + interval,
                    partial(self._refresh_same_bank, sc),
                )
        else:
            for sc in range(self.config.num_subchannels):
                offset = (sc * trefi) // self.config.num_subchannels
                first = offset if offset > 0 else trefi
                self.engine.schedule(first, partial(self._refresh, sc))
        if self.prac is not None:
            self.engine.schedule(self.timing.trefw, self._prac_refresh_window)

    # ------------------------------------------------------------------
    # Request entry point
    # ------------------------------------------------------------------
    def submit(self, request: Request) -> None:
        """Accept a request at the current cycle."""
        line = request.line_addr
        cache = self._locate_cache
        location = cache.get(line)
        if location is None:
            location = self.mapping.locate(line)
            if self._locate_cache_cap:
                if len(cache) >= self._locate_cache_cap:
                    cache.pop(next(iter(cache)))
                cache[line] = location
        request.location = location
        request.flat_bank = location.flat_bank(self._banks_per_sc)
        request._order = self._order
        self._order += 1
        if request.is_write and self.config.write_drain:
            sc = request.flat_bank // self._banks_per_sc
            buffer = self._write_buffers[sc]
            buffer.append(request)
            watermark = (3 * self.config.write_buffer_size) // 4
            if len(buffer) >= watermark:
                self.drain_writes(sc)
            return
        self.queues[request.flat_bank].append(request)
        obs = self._obs
        if obs is not None and obs.queue_depth_pending is not None:
            sc = request.flat_bank // self._banks_per_sc
            obs.queue_depth_pending[sc].append(
                len(self.queues[request.flat_bank])
            )
        self._try_service(request.flat_bank, self.engine.now)

    def drain_writes(self, sc: Optional[int] = None) -> int:
        """Flush buffered writes into the bank queues; returns the count.

        Called at the high watermark, at every REF (idle-ish moment), and
        by :func:`repro.cpu.system.simulate` at end of run so no write is
        ever lost.
        """
        subchannels = (
            range(self.config.num_subchannels) if sc is None else (sc,)
        )
        drained = 0
        for s in subchannels:
            buffer = self._write_buffers[s]
            if not buffer:
                continue
            drained += len(buffer)
            for request in buffer:
                self.queues[request.flat_bank].append(request)
            # Service banks in index order: iterating the raw set would
            # order them by hash-table layout, and that order assigns the
            # engine's tie-breaking sequence numbers (DET005).
            touched = sorted({r.flat_bank for r in buffer})
            buffer.clear()
            for flat in touched:
                self._try_service(flat, self.engine.now)
        return drained

    def buffered_writes(self) -> int:
        """Writes currently parked in the drain buffers."""
        return sum(len(b) for b in self._write_buffers)

    def pending_requests(self) -> int:
        """Requests currently waiting in the per-bank queues."""
        return sum(len(q) for q in self.queues)

    # ------------------------------------------------------------------
    # Scheduler
    # ------------------------------------------------------------------
    def _try_service(self, flat: int, now: int) -> None:
        queue = self.queues[flat]
        bank = self.banks[flat]
        sc = flat // self._banks_per_sc

        while queue:
            # 1) Row-buffer hits first (FR-FCFS within the tRAS window).
            # One pass serves every hit in queue order and compacts the
            # queue in place (no per-hit O(n) remove, no re-filtering).
            open_row = bank.open_row
            if open_row != NO_ROW and now <= bank.open_until:
                kept = []
                for request in queue:
                    if request.location.row == open_row:
                        bank.record_hit()
                        self._serve(request, bank, sc, now, hit=True)
                    else:
                        kept.append(request)
                if len(kept) != len(queue):
                    queue[:] = kept
                    continue

            # 2) Pick the ACT candidate.
            idx = self._pick_candidate(flat, queue, now)
            if idx is None:
                return
            request = queue[idx]

            # 3) RFM gating: RAA at the cap means RFM before any ACT.
            if self.rfm is not None and self.rfm.rfm_needed(flat):
                if bank.open_row != NO_ROW and self._open_page:
                    bank.precharge_for_conflict(now)
                if bank.open_row == NO_ROW:
                    free_at = bank.issue_rfm(now)
                    self.rfm.on_rfm(flat)
                    if self.command_log is not None:
                        self.command_log.record(
                            free_at - self.timing.trfm, RFM, flat
                        )
                    if self._obs is not None:
                        self._obs_on_rfm(flat, free_at)
                    self._wakeup(flat, free_at)
                else:
                    self._wakeup(flat, bank.ready_at)
                return

            # 4) Bank timing. Open-page closes a conflicting row on demand;
            # closed-page rows auto-precharge at tRAS.
            if bank.open_row != NO_ROW and self._open_page:
                bank.precharge_for_conflict(now)
            if bank.open_row != NO_ROW or now < bank.ready_at:
                self._wakeup(flat, bank.ready_at)
                return

            # 4a) tFAW: at most four ACTs per rolling window per subchannel.
            recent = self._recent_acts[sc]
            if len(recent) == 4 and now - recent[0] < self._tfaw:
                self._wakeup(flat, recent[0] + self._tfaw)
                return

            row = request.location.row

            # 4b) BlockHammer: a blacklisted row's ACTs are spaced out.
            if self.blockhammer is not None:
                allowed = self.blockhammer.earliest_act(flat, row, now)
                if now < allowed:
                    self._wakeup(flat, allowed)
                    return

            # 5) AutoRFM: conflict with the SAUM declines the ACT (ALERT).
            if bank.autorfm is not None and bank.autorfm.conflicts(row, now):
                self._handle_alert(request, bank, flat, now)
                if self.setup.per_request_retry:
                    continue
                return

            # 6) Issue the ACT.
            bank.activate(row, now)
            recent.append(now)
            if len(recent) > 4:
                recent.pop(0)
            if self.command_log is not None:
                self.command_log.record(now, ACT, flat, row)
            obs = self._obs
            if obs is not None:
                if obs.acts is not None:
                    obs.acts[flat] += 1
                if obs.trace_pending is not None:
                    obs.trace_pending.append(
                        {"t": now, "kind": "ACT", "bank": flat, "row": row}
                    )
            if not self._open_page:
                self.engine.schedule(
                    now + self.timing.tras,
                    partial(self._auto_precharge, flat),
                )
            if self.rfm is not None:
                self.rfm.on_activation(flat)
            if self.prac is not None and self.prac.on_activation(flat, row):
                self._abo_stall(sc, flat, now)
            if self.blockhammer is not None:
                self.blockhammer.observe(flat, row, now)
            self._serve(request, bank, sc, now, hit=False)
            del queue[idx]
            # Loop: younger queued requests may now hit the open row.

    def _pick_candidate(
        self, flat: int, queue: List[Request], now: int
    ) -> Optional[int]:
        """Index of the next ACT candidate in ``queue``, or None to defer."""
        if self.setup.per_request_retry:
            earliest = queue[0].retry_at
            for i, request in enumerate(queue):
                retry_at = request.retry_at
                if retry_at <= now:
                    return i
                if retry_at < earliest:
                    earliest = retry_at
            self._wakeup(flat, earliest)
            return None
        if self.busy_table.is_busy(flat, now):
            self._wakeup(flat, self.busy_table.busy_until(flat))
            return None
        if self.config.write_drain:
            # Read priority: drained writes yield to demand reads.
            for i, request in enumerate(queue):
                if not request.is_write:
                    return i
        return 0

    def _handle_alert(
        self, request: Request, bank: Bank, flat: int, now: int
    ) -> None:
        bank.stats.alerts += 1
        request.alerts += 1
        if self.command_log is not None:
            self.command_log.record(now, ALERT, flat, request.location.row)
        if request.alerts > self.stats.max_request_alerts:
            self.stats.max_request_alerts = request.alerts
        tm = self.setup.tm_retry_cycles or bank.autorfm.mitigation_busy_cycles
        retry_time = now + tm
        obs = self._obs
        if obs is not None:
            if obs.alerts is not None:
                obs.alerts[flat] += 1
                obs.retry_wait_pending.append(tm)
            if obs.trace_pending is not None:
                # One record carries the whole ACT->ALERT->retry link: the
                # declined row, how many ALERTs this request has eaten, and
                # when the MC will retry.
                obs.trace_pending.append({
                    "t": now, "kind": "ALERT", "bank": flat,
                    "row": request.location.row,
                    "alerts": request.alerts, "retry_at": retry_time,
                })
        # The MC precharges the bank so every chip holds the conflicted row
        # closed (footnote 1 of the paper).
        bank.stall_until(now + self._trp)
        if self.setup.per_request_retry:
            request.retry_at = retry_time
        else:
            self.busy_table.mark_busy(flat, retry_time)
            self._wakeup(flat, retry_time)

    def _serve(
        self, request: Request, bank: Bank, sc: int, now: int, hit: bool
    ) -> None:
        if hit:
            data_ready = max(now, bank.act_time + self._trcd)
        else:
            data_ready = now + self._trcd
        data_start = max(data_ready + self._cas_latency, self.bus_free_at[sc])
        self.bus_free_at[sc] = data_start + self._burst
        # _completion_tail = burst + static latency + mapping extra latency.
        completion = data_start + self._completion_tail
        if request.is_write:
            bank.stats.writes += 1
        else:
            bank.stats.reads += 1
        if request.on_complete is not None:
            self.engine.schedule(completion, request.on_complete)

    # ------------------------------------------------------------------
    # Maintenance events
    # ------------------------------------------------------------------
    def _auto_precharge(self, flat: int, now: int) -> None:
        bank = self.banks[flat]
        bank.auto_precharge(now)
        if self.rfm is not None and self.rfm.rfm_due(flat):
            # Opportunistic RFM: a due RFM is issued at the precharge when no
            # demand is waiting (hiding the stall in idle time); with demand
            # pending it is deferred until the RAAMMT hard cap forces it.
            if not self.queues[flat] or self.rfm.rfm_needed(flat):
                free_at = bank.issue_rfm(now)
                self.rfm.on_rfm(flat)
                if self.command_log is not None:
                    self.command_log.record(
                        free_at - self.timing.trfm, RFM, flat
                    )
                if self._obs is not None:
                    self._obs_on_rfm(flat, free_at)
                if self.queues[flat]:
                    self._wakeup(flat, free_at)
                return
        if self.queues[flat]:
            self._wakeup(flat, bank.ready_at)

    def _refresh(self, sc: int, now: int) -> None:
        base = sc * self.config.banks_per_subchannel
        obs = self._obs
        for local in range(self.config.banks_per_subchannel):
            flat = base + local
            self.banks[flat].start_refresh(now)
            if self.rfm is not None:
                self.rfm.on_refresh(flat)
            if self.command_log is not None:
                self.command_log.record(now, REF, flat)
            if obs is not None and obs.refs is not None:
                obs.refs[flat] += 1
            if self.queues[flat]:
                self._wakeup(flat, self.banks[flat].ready_at)
        if obs is not None and obs.trace_pending is not None:
            obs.trace_pending.append({
                "t": now, "kind": "REF", "end": now + self.timing.trfc,
                "subchannel": sc,
            })
        self.stats.refresh_windows += 1
        if self.config.write_drain:
            self.drain_writes(sc)  # REF is a natural drain point
        if obs is not None:
            obs.flush()  # REF is the observability drain boundary too
        if self.keep_running():
            self.engine.schedule(
                now + self.timing.trefi, partial(self._refresh, sc)
            )

    def _refresh_same_bank(self, sc: int, now: int) -> None:
        base = sc * self.config.banks_per_subchannel
        local = self._ref_cursor[sc]
        self._ref_cursor[sc] = (local + 1) % self.config.banks_per_subchannel
        flat = base + local
        self.banks[flat].start_refresh(now, duration=self.timing.trfc_sb)
        if self.rfm is not None:
            self.rfm.on_refresh(flat)
        if self.command_log is not None:
            self.command_log.record(now, REF, flat)
        obs = self._obs
        if obs is not None:
            if obs.refs is not None:
                obs.refs[flat] += 1
            if obs.trace_pending is not None:
                obs.trace_pending.append({
                    "t": now, "kind": "REF",
                    "end": now + self.timing.trfc_sb,
                    "bank": flat, "subchannel": sc,
                })
            obs.flush()
        if self.queues[flat]:
            self._wakeup(flat, self.banks[flat].ready_at)
        if local == self.config.banks_per_subchannel - 1:
            self.stats.refresh_windows += 1
        if self.keep_running():
            interval = max(
                1, self.timing.trefi // self.config.banks_per_subchannel
            )
            self.engine.schedule(
                now + interval, partial(self._refresh_same_bank, sc)
            )

    def _prac_refresh_window(self, now: int) -> None:
        self.prac.on_refresh_window()
        if self.keep_running():
            self.engine.schedule(
                now + self.timing.trefw, self._prac_refresh_window
            )

    def _abo_stall(self, sc: int, flat: int, now: int) -> None:
        """ABO ALERT: back off the whole subchannel for a mitigation slot."""
        until = now + self.timing.trfm
        base = sc * self.config.banks_per_subchannel
        for local in range(self.config.banks_per_subchannel):
            self.banks[base + local].stall_until(until)
        alerting = self.stats.banks[flat]
        alerting.alerts += 1
        alerting.mitigations += 1
        alerting.victim_refreshes += 4
        obs = self._obs
        if obs is not None:
            if obs.alerts is not None:
                obs.alerts[flat] += 1
            if obs.trace_pending is not None:
                obs.trace_pending.append({
                    "t": now, "kind": "ABO", "end": until,
                    "bank": flat, "subchannel": sc,
                })

    # ------------------------------------------------------------------
    # Observability hook points
    # ------------------------------------------------------------------
    def _obs_on_rfm(self, flat: int, free_at: int) -> None:
        """Publish one blocking RFM command: counter plus stall span."""
        obs = self._obs
        if obs.rfm_cmds is not None:
            obs.rfm_cmds[flat] += 1
        if obs.trace_pending is not None:
            obs.trace_pending.append({
                "t": free_at - self.timing.trfm, "kind": "RFM",
                "end": free_at, "bank": flat,
            })

    def flush_obs(self) -> None:
        """Publish deferred observability accumulations.

        Called at every REF (the drain boundary), by
        :meth:`~repro.cpu.system.SimulatedSystem.finalize`, and by the
        checkpoint layer before a capture. No-op when observability is
        off; safe to call at any cycle (cadence never changes the final
        metrics or trace)."""
        if self._obs is not None:
            self._obs.flush()

    # ------------------------------------------------------------------
    # Wakeup bookkeeping
    # ------------------------------------------------------------------
    def _wakeup(self, flat: int, time: int) -> None:
        now = self.engine.now
        if time <= now:
            time = now + 1
        pending = self._wakeups[flat]
        if pending is not None and pending <= time:
            return
        self._wakeups[flat] = time
        self.engine.schedule(time, partial(self._wakeup_fired, flat))

    def _wakeup_fired(self, flat: int, now: int) -> None:
        if self._wakeups[flat] is not None and self._wakeups[flat] <= now:
            self._wakeups[flat] = None
        self._try_service(flat, now)
