"""Memory controller: request queues, scheduler, ALERT retry machinery."""

from repro.mc.busy_table import BankBusyTable
from repro.mc.controller import MemoryController
from repro.mc.request import Request
from repro.mc.setup import MitigationSetup

__all__ = ["BankBusyTable", "MemoryController", "Request", "MitigationSetup"]
