"""Mitigation setup: which mechanism/tracker/policy a simulation runs.

The setup is a small declarative record; :func:`build_tracker` and
:func:`build_policy` construct the per-bank objects from it with properly
derived RNG streams so that every bank's stochastic choices are independent
and reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.mitigation import (
    BlastRadiusMitigation,
    FractalMitigation,
    MitigationPolicy,
)
from repro.sim.config import SystemConfig
from repro.sim.rng import RngStreams
from repro.trackers import (
    MintTracker,
    MithrilTracker,
    ParaTracker,
    ParfmTracker,
    PrideTracker,
    Tracker,
)

MECHANISMS = ("none", "rfm", "autorfm", "prac", "smd", "blockhammer")
TRACKERS = ("mint", "pride", "parfm", "mithril", "para", "hydra")
POLICIES = ("fractal", "recursive", "blast2", "rowswap", "aqua")


@dataclass(frozen=True)
class MitigationSetup:
    """What Rowhammer machinery the memory system runs.

    * ``mechanism`` — "none" (baseline), "rfm" (blocking DDR5 RFM),
      "autorfm" (the paper's transparent RFM), "prac" (PRAC + ABO).
    * ``threshold`` — RFMTH / AutoRFMTH: activations per mitigation window.
    * ``tracker`` — aggressor tracker ("mint" is the paper's default).
    * ``policy`` — victim-refresh policy: "fractal" (FM), "recursive"
      (RM: MINT transitive slot + level-shifted blast radius), or "blast2"
      (plain blast-radius-2, insecure against transitive attacks).
    * ``prac_trh_d`` — tolerated TRH-D target for the PRAC+ABO model.
    * ``per_request_retry`` — the complex-MC ablation of Section IV-C.
    * ``smd_regions_per_bank`` — Self-Managed-DRAM comparison (Section
      VII-B): "smd" locks coarse maintenance regions instead of single
      subarrays and uses PARA sampling with p = 1/threshold.
    """

    mechanism: str = "none"
    threshold: int = 4
    tracker: str = "mint"
    policy: str = "fractal"
    pride_fifo_entries: int = 4
    mithril_entries: int = 1024
    prac_trh_d: int = 100
    per_request_retry: bool = False
    #: ALERT retry time t_M in cycles; 0 means the mitigation busy time
    #: (4 * tRC). The t_M-sensitivity ablation sets this explicitly.
    tm_retry_cycles: int = 0
    smd_regions_per_bank: int = 8
    #: Rowhammer threshold target for the BlockHammer rate limiter.
    blockhammer_trh: int = 1000

    def __post_init__(self):
        if self.mechanism not in MECHANISMS:
            raise ValueError(f"unknown mechanism {self.mechanism!r}")
        if self.tracker not in TRACKERS:
            raise ValueError(f"unknown tracker {self.tracker!r}")
        if self.policy not in POLICIES:
            raise ValueError(f"unknown policy {self.policy!r}")
        if self.mechanism in ("rfm", "autorfm", "smd") and self.threshold < 1:
            raise ValueError("threshold must be >= 1")

    @property
    def uses_tracker(self) -> bool:
        return self.mechanism in ("rfm", "autorfm", "smd")

    def describe(self) -> str:
        """Human-readable one-liner for logs and reports."""
        if self.mechanism == "none":
            return "baseline (no mitigation)"
        if self.mechanism == "prac":
            return f"PRAC+ABO (TRH-D {self.prac_trh_d})"
        if self.mechanism == "smd":
            return (
                f"SMD (PARA p=1/{self.threshold}, "
                f"{self.smd_regions_per_bank} regions/bank)"
            )
        if self.mechanism == "blockhammer":
            return f"BlockHammer (TRH {self.blockhammer_trh})"
        name = "RFM" if self.mechanism == "rfm" else "AutoRFM"
        return f"{name}-{self.threshold} ({self.tracker}, {self.policy})"


def build_tracker(
    setup: MitigationSetup, streams: RngStreams, bank: int
) -> Tracker:
    """Construct the per-bank tracker named by ``setup``."""
    rng = streams.get(f"tracker/{bank}")
    # AutoRFM mitigates every `threshold` ACTs exactly; blocking RFM may be
    # deferred to the RAAMMT cap, so its trackers tolerate window overruns.
    strict = setup.mechanism != "rfm"
    if setup.tracker == "mint":
        return MintTracker(
            window=setup.threshold,
            rng=rng,
            transitive_slot=(setup.policy == "recursive"),
            strict=strict,
        )
    if setup.tracker == "pride":
        return PrideTracker(
            sample_probability=1.0 / setup.threshold,
            rng=rng,
            fifo_entries=setup.pride_fifo_entries,
        )
    if setup.tracker == "parfm":
        return ParfmTracker(window=setup.threshold, rng=rng, strict=strict)
    if setup.tracker == "para":
        return ParaTracker(probability=1.0 / setup.threshold, rng=rng)
    if setup.tracker == "hydra":
        from repro.trackers.hydra import HydraTracker

        return HydraTracker(rng=rng)
    if setup.tracker == "mithril":
        return MithrilTracker(entries=setup.mithril_entries, rng=rng)
    raise ValueError(f"unknown tracker {setup.tracker!r}")


def build_policy(
    setup: MitigationSetup, config: SystemConfig, streams: RngStreams, bank: int
) -> MitigationPolicy:
    """Construct the per-bank victim-refresh policy named by ``setup``."""
    if setup.policy == "fractal":
        return FractalMitigation(
            rows_per_bank=config.rows_per_bank,
            rng=streams.get(f"fractal/{bank}"),
        )
    if setup.policy == "rowswap":
        from repro.core.rowswap import RowSwapMitigation

        return RowSwapMitigation(
            rows_per_bank=config.rows_per_bank,
            rng=streams.get(f"rowswap/{bank}"),
        )
    if setup.policy == "aqua":
        from repro.core.rowswap import QuarantineMitigation

        return QuarantineMitigation(
            rows_per_bank=config.rows_per_bank,
            rng=streams.get(f"aqua/{bank}"),
        )
    # Both "recursive" and "blast2" refresh with the level-shifted blast
    # radius; the difference is whether the tracker escalates levels.
    return BlastRadiusMitigation(rows_per_bank=config.rows_per_bank)
