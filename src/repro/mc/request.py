"""Memory request record passed from the cores to the controller."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.mapping.base import LineLocation

CompletionCallback = Callable[[int], None]


@dataclass
class Request:
    """One 64 B read or write.

    ``on_complete`` fires (with the completion cycle) when the data transfer
    finishes; writes are fire-and-forget and usually pass ``None``.
    ``retry_at`` is used by the per-request ALERT-retry ablation; the default
    per-bank busy table never sets it.
    """

    core_id: int
    line_addr: int
    is_write: bool
    arrival: int
    location: Optional[LineLocation] = None
    flat_bank: int = -1
    on_complete: Optional[CompletionCallback] = None
    alerts: int = 0
    retry_at: int = 0
    _order: int = field(default=0, repr=False)
