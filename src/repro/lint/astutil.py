"""Shared AST helpers for the lint passes and the checkpoint contract.

This module is deliberately dependency-free within ``repro`` (stdlib only):
:mod:`repro.ckpt.contract` delegates its ``self.X``-assignment walk here, so
it must stay importable from any layer without cycles.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional, Set, Tuple


def dotted_name(node: ast.AST) -> Optional[Tuple[str, ...]]:
    """Resolve an ``ast.Name``/``ast.Attribute`` chain to its parts.

    ``np.random.default_rng`` -> ``("np", "random", "default_rng")``;
    returns ``None`` for anything rooted in a call or subscript (those
    chains have no static name).
    """
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return tuple(reversed(parts))
    return None


def call_name(call: ast.Call) -> Optional[Tuple[str, ...]]:
    """The dotted name of a call's callee, or ``None``."""
    return dotted_name(call.func)


def first_arg(call: ast.Call, keyword: Optional[str] = None,
              position: int = 0) -> Optional[ast.expr]:
    """The argument at ``position`` (or keyword ``keyword``) of a call."""
    if len(call.args) > position:
        return call.args[position]
    if keyword is not None:
        for kw in call.keywords:
            if kw.arg == keyword:
                return kw.value
    return None


def constant_str(node: Optional[ast.expr]) -> Optional[str]:
    """The literal value when ``node`` is a string constant, else None."""
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    return None


def walk_functions(tree: ast.AST) -> Iterator[ast.AST]:
    """Yield every function/async-function/lambda body owner in ``tree``."""
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node


def decorator_names(node: ast.ClassDef) -> Set[str]:
    """The trailing identifier of each decorator on a class.

    ``@checkpointable(state=...)`` and ``@repro.ckpt.checkpointable(...)``
    both contribute ``"checkpointable"``.
    """
    names: Set[str] = set()
    for dec in node.decorator_list:
        target = dec.func if isinstance(dec, ast.Call) else dec
        parts = dotted_name(target)
        if parts:
            names.add(parts[-1])
    return names


def class_is_frozen_dataclass(node: ast.ClassDef) -> bool:
    """True for ``@dataclass(frozen=True)`` (any spelling of dataclass)."""
    for dec in node.decorator_list:
        if not isinstance(dec, ast.Call):
            continue
        parts = dotted_name(dec.func)
        if not parts or parts[-1] != "dataclass":
            continue
        for kw in dec.keywords:
            if kw.arg == "frozen" and isinstance(kw.value, ast.Constant):
                if kw.value.value is True:
                    return True
    return False


# ----------------------------------------------------------------------
# self.X assignment collection (shared with repro.ckpt.contract)
# ----------------------------------------------------------------------

def _collect_assign_target(node: ast.AST, names: Set[str]) -> None:
    if isinstance(node, ast.Attribute):
        if isinstance(node.value, ast.Name) and node.value.id == "self":
            names.add(node.attr)
    elif isinstance(node, (ast.Tuple, ast.List)):
        for element in node.elts:
            _collect_assign_target(element, names)
    # Subscript / Starred targets mutate existing containers, not bindings.


def collect_self_assignment_targets(tree: ast.AST) -> Set[str]:
    """Every attribute name bound via ``self.X = ...`` anywhere in ``tree``.

    Covers plain, augmented, and annotated assignments, and tuple/list
    unpacking targets. Subscript targets (``self.d[k] = v``) mutate an
    existing container rather than binding a new attribute, so they do not
    count — exactly the semantics the checkpoint contract lint needs.
    """
    names: Set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Assign):
            for target in node.targets:
                _collect_assign_target(target, names)
        elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
            _collect_assign_target(node.target, names)
    return names


def self_assignments(tree: ast.AST) -> Iterator[Tuple[str, ast.AST, ast.AST]]:
    """Yield ``(attr, value, node)`` for each ``self.X = value`` in ``tree``.

    Only plain single-target assignments carry a usable value expression;
    augmented assignments yield their value too (``self.x += [..]``).
    """
    for node in ast.walk(tree):
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                ):
                    yield target.attr, node.value, node
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            target = node.target
            if (
                isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"
            ):
                yield target.attr, node.value, node
