"""Structured lint findings.

A :class:`Finding` is one rule violation at one source location. Findings
are plain data: the driver (:mod:`repro.lint.driver`) decides what to do
with them (fail, warn because baselined, hide because pragma-suppressed),
and the renderers (:mod:`repro.lint.report`) turn them into text, JSON, or
SARIF. Nothing in this module imports the rest of ``repro``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple


#: Suppression states the driver attaches after pragma/baseline matching.
NEW = "new"              # not suppressed: fails the run
BASELINED = "baselined"  # matched a checked-in baseline entry: warns only
SUPPRESSED = "suppressed"  # matched an inline ``# repro: lint-ignore[...]``

ERROR = "error"
WARNING = "warning"


@dataclass(frozen=True)
class Rule:
    """One lint rule: a stable id, a short kebab-case name, a summary.

    ``rule_id`` (e.g. ``DET003``) is what SARIF and the baseline key on;
    ``name`` (e.g. ``env-read``) is the human handle accepted by pragmas
    and ``--rule`` filters interchangeably with the id.
    """

    rule_id: str
    name: str
    summary: str

    def matches_token(self, token: str) -> bool:
        """True when a pragma/filter token refers to this rule."""
        token = token.strip().lower()
        return token in ("*", self.rule_id.lower(), self.name.lower())


@dataclass
class Finding:
    """One rule violation at one source location."""

    rule_id: str
    path: str
    line: int
    message: str
    severity: str = ERROR
    #: Last source line of the flagged node; pragmas anywhere in
    #: ``[line, end_line]`` suppress the finding (multi-line calls).
    end_line: Optional[int] = None
    col: int = 0
    #: Set by the driver: one of NEW / BASELINED / SUPPRESSED.
    status: str = NEW
    #: The stripped source text of ``line`` — the baseline's line-drift-
    #: tolerant context key.
    context: str = ""
    #: Baseline justification, when ``status == BASELINED``.
    justification: str = ""

    def sort_key(self) -> Tuple[str, int, int, str]:
        """Stable ordering key: (path, line, col, rule)."""
        return (self.path, self.line, self.col, self.rule_id)

    def location(self) -> str:
        """Human-readable ``path:line`` anchor for reports."""
        return f"{self.path}:{self.line}"


@dataclass
class LintResult:
    """Everything one lint run produced, pre-sorted and pre-classified."""

    findings: list = field(default_factory=list)
    #: Baseline entries that matched no finding (candidates for removal).
    stale_baseline: list = field(default_factory=list)
    files_scanned: int = 0

    @property
    def new_findings(self) -> list:
        return [f for f in self.findings if f.status == NEW]

    @property
    def baselined_findings(self) -> list:
        return [f for f in self.findings if f.status == BASELINED]

    @property
    def suppressed_findings(self) -> list:
        return [f for f in self.findings if f.status == SUPPRESSED]

    @property
    def ok(self) -> bool:
        """True when the run should exit 0 (no new findings)."""
        return not self.new_findings
