"""Interprocedural dataflow over the project call graph.

Two closures power the whole-program passes:

* :func:`attribute_reads` — every attribute *read* performed on values of
  one class, anywhere in the project, found by tracking typed parameters
  (``def f(job: SecurityJob)``) and ``self`` through call-graph argument
  passing to a fixpoint. This is the read set the ``KEY001`` cache-key
  soundness pass compares against the key function's field coverage.
* :func:`escaped_attribute_writes` — every attribute *write* performed on
  an instance of one class by code **outside** that class (a helper the
  object was passed to), again to a fixpoint. The runtime contract walk
  (:func:`repro.ckpt.contract.verify_contract`) only sees ``self.X = ...``
  inside the class's own methods; this closure is the ``CKPT002`` half it
  cannot see.

Both are flow-insensitive within a function (any read/write anywhere in
the body counts) and path-insensitive across calls — exactly as
conservative as a lint should be: over-approximating the read set can
only demand a ``key-blind`` pragma, never hide a hole.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Iterator, List, Optional, Set, Tuple

from repro.lint.graph import (
    CallSite,
    ClassInfo,
    FunctionInfo,
    ProjectIndex,
    own_statements,
)

#: One tracked binding: this parameter of this function holds an instance
#: of the class under analysis.
TrackedParam = Tuple[str, str]  # (function qname, parameter name)


@dataclass(frozen=True)
class AttributeAccess:
    """One attribute read or write on a tracked value."""

    attr: str
    function: str  # qname of the function the access happens in
    node: ast.AST  # the Attribute (read) or assignment (write) node


def _tracked_seed(
    project: ProjectIndex, cls: ClassInfo, include_self: bool = True
) -> Set[TrackedParam]:
    """Initial tracked set: annotated params plus ``self`` in the class."""
    tracked: Set[TrackedParam] = set()
    if include_self:
        for method in cls.methods.values():
            if method.params and method.params[0] == "self":
                tracked.add((method.qname, "self"))
    for info in project.functions.values():
        for param, annotation in info.annotations.items():
            if annotation == cls.name:
                tracked.add((info.qname, param))
    return tracked


def _argument_bindings(
    project: ProjectIndex, site: CallSite, param: str
) -> Iterator[TrackedParam]:
    """Callee params that receive ``param`` (a plain name) at ``site``."""
    if site.callee is None:
        return
    callee = project.functions.get(site.callee)
    if callee is None:
        return
    # Bound-style calls (`self.m(x)`, `obj.m(x)`) skip the receiver slot;
    # direct function / unbound `Class.method(self, x)` calls do not.
    offset = 0
    if callee.is_method and callee.params and callee.params[0] == "self":
        bound = len(site.parts) > 1 and site.parts[0] != callee.class_name
        if bound or site.parts == (callee.class_name,):
            # Constructor calls bind the object being built, not our value.
            offset = 1
        if site.parts and site.parts[-1] == "__init__":
            offset = 1
    for position, arg in enumerate(site.node.args):
        if isinstance(arg, ast.Name) and arg.id == param:
            index = position + offset
            if index < len(callee.params):
                yield (callee.qname, callee.params[index])
    for keyword in site.node.keywords:
        if (
            keyword.arg is not None
            and isinstance(keyword.value, ast.Name)
            and keyword.value.id == param
            and keyword.arg in callee.params
        ):
            yield (callee.qname, keyword.arg)


def _close_over_calls(
    project: ProjectIndex, tracked: Set[TrackedParam]
) -> Set[TrackedParam]:
    """Fixpoint: propagate tracked values through call-site arguments."""
    queue: List[TrackedParam] = list(tracked)
    while queue:
        qname, param = queue.pop()
        for site in project.calls_from(qname):
            for binding in _argument_bindings(project, site, param):
                if binding not in tracked:
                    tracked.add(binding)
                    queue.append(binding)
    return tracked


def attribute_reads(
    project: ProjectIndex, cls: ClassInfo
) -> List[AttributeAccess]:
    """Every attribute read on instances of ``cls``, project-wide."""
    tracked = _close_over_calls(project, _tracked_seed(project, cls))
    reads: List[AttributeAccess] = []
    for qname, param in sorted(tracked):
        info = project.functions.get(qname)
        if info is None:
            continue
        for node in own_statements(info.node):
            if (
                isinstance(node, ast.Attribute)
                and isinstance(node.ctx, ast.Load)
                and isinstance(node.value, ast.Name)
                and node.value.id == param
            ):
                reads.append(AttributeAccess(node.attr, qname, node))
    return reads


def escaped_attribute_writes(
    project: ProjectIndex, cls: ClassInfo
) -> List[AttributeAccess]:
    """Attribute writes on ``cls`` instances made outside the class.

    The tracked set starts from ``self`` in the class's own methods and
    from parameters annotated with the class name, then closes over
    argument passing; writes are reported only for functions that are not
    methods of ``cls`` itself (those are the runtime contract walk's job).
    """
    tracked = _close_over_calls(project, _tracked_seed(project, cls))
    own_methods = {m.qname for m in cls.methods.values()}
    writes: List[AttributeAccess] = []
    for qname, param in sorted(tracked):
        if qname in own_methods:
            continue
        info = project.functions.get(qname)
        if info is None:
            continue
        for access in _writes_on(info, param):
            writes.append(access)
    return writes


def _writes_on(info: FunctionInfo, param: str) -> Iterator[AttributeAccess]:
    """``param.X = ...`` style bindings inside ``info`` (incl. augmented)."""
    def targets(node: ast.AST) -> Iterator[ast.Attribute]:
        if isinstance(node, ast.Attribute):
            if isinstance(node.value, ast.Name) and node.value.id == param:
                yield node
        elif isinstance(node, (ast.Tuple, ast.List)):
            for element in node.elts:
                for found in targets(element):
                    yield found

    for node in own_statements(info.node):
        if isinstance(node, ast.Assign):
            for target in node.targets:
                for attr in targets(target):
                    yield AttributeAccess(attr.attr, info.qname, node)
        elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
            for attr in targets(node.target):
                yield AttributeAccess(attr.attr, info.qname, node)


# ----------------------------------------------------------------------
# Key-function field coverage (shared by KEY001 and WIRE001)
# ----------------------------------------------------------------------

@dataclass
class FieldCoverage:
    """Which dataclass fields a function's payload provably includes."""

    #: Fields covered (reads, dict keys, or asdict minus popped).
    covered: Set[str]
    #: True when coverage came from an ``asdict(obj)`` whole-object copy.
    from_asdict: bool = False


def field_coverage(
    info: FunctionInfo, param: str, fields: Set[str]
) -> FieldCoverage:
    """How ``info`` covers ``fields`` of the object bound to ``param``.

    Covered means any of:

    * an attribute read ``param.X``;
    * a string dict-literal key equal to a field name (the explicit
      payload-building idiom: ``{"requests": requests, ...}``);
    * ``dataclasses.asdict(param)`` — all fields, **minus** any field
      popped *unconditionally* (a top-level ``fields.pop("X")`` statement
      of the function body; a pop nested under ``if`` still counts as
      covered, since on some path the field reaches the payload).
    """
    covered: Set[str] = set()
    saw_asdict = False
    for node in own_statements(info.node):
        if (
            isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == param
            and node.attr in fields
        ):
            covered.add(node.attr)
        elif isinstance(node, ast.Dict):
            for key in node.keys:
                if (
                    isinstance(key, ast.Constant)
                    and isinstance(key.value, str)
                    and key.value in fields
                ):
                    covered.add(key.value)
        elif isinstance(node, ast.Call):
            parts = _call_parts(node)
            if (
                parts
                and parts[-1] == "asdict"
                and node.args
                and isinstance(node.args[0], ast.Name)
                and node.args[0].id == param
            ):
                saw_asdict = True
    if saw_asdict:
        covered |= fields - _unconditional_pops(info)
    return FieldCoverage(covered=covered, from_asdict=saw_asdict)


def constructor_coverage(
    info: FunctionInfo, class_name: str, fields: Set[str]
) -> FieldCoverage:
    """Which ``fields`` a decode function passes to ``class_name(...)``.

    ``Cls(**anything)`` covers every field (the splat carries whatever the
    wire had); otherwise coverage is the set of explicit keyword names,
    plus any string subscript/`.get` keys pulled off the wire dict (the
    ``data["workload"]`` idiom).
    """
    covered: Set[str] = set()
    splat = False
    for node in own_statements(info.node):
        if not isinstance(node, ast.Call):
            continue
        parts = _call_parts(node)
        if not parts or parts[-1] != class_name:
            continue
        for keyword in node.keywords:
            if keyword.arg is None:
                splat = True
            elif keyword.arg in fields:
                covered.add(keyword.arg)
    if splat:
        covered |= fields
    return FieldCoverage(covered=covered, from_asdict=splat)


def _unconditional_pops(info: FunctionInfo) -> Set[str]:
    """Field names removed by top-level ``<x>.pop("name")`` statements."""
    popped: Set[str] = set()
    for stmt in info.node.body:
        calls: List[ast.Call] = []
        if isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Call):
            calls.append(stmt.value)
        elif isinstance(stmt, ast.Assign) and isinstance(stmt.value, ast.Call):
            calls.append(stmt.value)
        for call in calls:
            parts = _call_parts(call)
            if (
                parts
                and parts[-1] == "pop"
                and call.args
                and isinstance(call.args[0], ast.Constant)
                and isinstance(call.args[0].value, str)
            ):
                popped.add(call.args[0].value)
    return popped


def _call_parts(call: ast.Call) -> Optional[Tuple[str, ...]]:
    node: ast.AST = call.func
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return tuple(reversed(parts))
    return None
