"""The checked-in suppression baseline.

A baseline entry grandfathers one *justified* existing finding: the run
reports it as a warning instead of failing. Entries key on
``(rule, path, context)`` where ``context`` is the stripped source text of
the flagged line — tolerant to line-number drift from unrelated edits, but
strict enough that changing the flagged code itself expires the entry.
``count`` allows N identical occurrences on distinct lines of one file.

Every entry must carry a non-empty ``justification``; the driver refuses
baselines with silent entries, so the file cannot quietly become a
dumping ground.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.lint.findings import BASELINED, Finding

BASELINE_VERSION = 1


class BaselineError(ValueError):
    """The baseline file is malformed."""


@dataclass
class BaselineEntry:
    rule: str
    path: str
    context: str
    justification: str
    count: int = 1

    def key(self) -> Tuple[str, str, str]:
        """Line-drift-tolerant identity: (rule, normalized path, context)."""
        return (self.rule, _norm_path(self.path), self.context)


@dataclass
class Baseline:
    entries: List[BaselineEntry] = field(default_factory=list)

    # ------------------------------------------------------------------
    @classmethod
    def load(cls, path: str) -> "Baseline":
        with open(path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
        if not isinstance(payload, dict) or "entries" not in payload:
            raise BaselineError(f"{path}: not a lint baseline file")
        version = payload.get("version")
        if version != BASELINE_VERSION:
            raise BaselineError(
                f"{path}: unsupported baseline version {version!r}"
            )
        entries = []
        for raw in payload["entries"]:
            try:
                entry = BaselineEntry(
                    rule=raw["rule"],
                    path=raw["path"],
                    context=raw["context"],
                    justification=raw.get("justification", ""),
                    count=int(raw.get("count", 1)),
                )
            except (KeyError, TypeError) as exc:
                raise BaselineError(f"{path}: malformed entry {raw!r}") from exc
            if not entry.justification.strip():
                raise BaselineError(
                    f"{path}: entry for {entry.rule} at {entry.path} has no "
                    "justification — every suppression must say why"
                )
            entries.append(entry)
        return cls(entries)

    def save(self, path: str) -> None:
        """Write the baseline to ``path`` as sorted, versioned JSON."""
        payload = {
            "version": BASELINE_VERSION,
            "entries": [
                {
                    "rule": e.rule,
                    "path": e.path,
                    "context": e.context,
                    "count": e.count,
                    "justification": e.justification,
                }
                for e in sorted(
                    self.entries, key=lambda e: (e.path, e.rule, e.context)
                )
            ],
        }
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")

    # ------------------------------------------------------------------
    def apply(self, findings: List[Finding]) -> List[BaselineEntry]:
        """Mark matching findings BASELINED; return the stale entries.

        Each entry suppresses up to ``count`` findings with the same rule,
        (normalised) path, and stripped line text. Entries left with unused
        capacity on code that no longer triggers them are *stale* — the
        caller reports them so the baseline shrinks as code heals.
        """
        budget: Dict[Tuple[str, str, str], int] = {}
        by_key: Dict[Tuple[str, str, str], BaselineEntry] = {}
        for entry in self.entries:
            budget[entry.key()] = budget.get(entry.key(), 0) + entry.count
            by_key[entry.key()] = entry
        used: Dict[Tuple[str, str, str], int] = {}
        for finding in findings:
            key = (finding.rule_id, _norm_path(finding.path), finding.context)
            if budget.get(key, 0) > 0:
                budget[key] -= 1
                used[key] = used.get(key, 0) + 1
                finding.status = BASELINED
                finding.justification = by_key[key].justification
        return [
            by_key[key] for key, remaining in sorted(budget.items())
            if remaining > 0
        ]

    @classmethod
    def from_findings(
        cls, findings: List[Finding], previous: Optional["Baseline"] = None
    ) -> "Baseline":
        """A baseline covering ``findings``, keeping prior justifications."""
        prior: Dict[Tuple[str, str, str], str] = {}
        if previous is not None:
            for entry in previous.entries:
                prior[entry.key()] = entry.justification
        counts: Dict[Tuple[str, str, str], int] = {}
        for finding in findings:
            key = (finding.rule_id, _norm_path(finding.path), finding.context)
            counts[key] = counts.get(key, 0) + 1
        entries = [
            BaselineEntry(
                rule=rule,
                path=path,
                context=context,
                count=count,
                justification=prior.get(
                    (rule, path, context),
                    "TODO: justify this suppression",
                ),
            )
            for (rule, path, context), count in sorted(counts.items())
        ]
        return cls(entries)


def _norm_path(path: str) -> str:
    """Forward-slash relative-ish path so baselines are OS/cwd-portable."""
    norm = path.replace(os.sep, "/")
    while norm.startswith("./"):
        norm = norm[2:]
    return norm
