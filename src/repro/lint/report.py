"""Renderers: text for humans, JSON for tooling, SARIF for code scanning."""

from __future__ import annotations

import json
from typing import Dict, List

from repro.lint.findings import BASELINED, NEW, SUPPRESSED, LintResult
from repro.lint.passes import ALL_RULES

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)
TOOL_NAME = "repro-lint"
TOOL_URI = "https://github.com/autorfm-repro/repro/blob/main/docs/static-analysis.md"

FORMATS = ("text", "json", "sarif")


def _rule_name(rule_id: str) -> str:
    rule = ALL_RULES.get(rule_id)
    return rule.name if rule is not None else rule_id


def render_text(result: LintResult, verbose: bool = False) -> str:
    """Human-readable report; suppressed findings only with ``verbose``."""
    lines: List[str] = []
    for finding in result.findings:
        if finding.status == SUPPRESSED and not verbose:
            continue
        marker = {NEW: "error", BASELINED: "baselined", SUPPRESSED: "ignored"}[
            finding.status
        ]
        lines.append(
            f"{finding.location()}: {finding.rule_id} "
            f"[{_rule_name(finding.rule_id)}] {marker}: {finding.message}"
        )
        if finding.status == BASELINED and verbose:
            lines.append(f"    baseline justification: {finding.justification}")
    for entry in result.stale_baseline:
        lines.append(
            f"{entry.path}: stale baseline entry for {entry.rule} "
            f"(context {entry.context!r} no longer triggers); remove it or "
            "run with --update-baseline"
        )
    new = len(result.new_findings)
    lines.append(
        f"{result.files_scanned} files scanned: {new} new finding(s), "
        f"{len(result.baselined_findings)} baselined, "
        f"{len(result.suppressed_findings)} pragma-suppressed, "
        f"{len(result.stale_baseline)} stale baseline entr"
        f"{'y' if len(result.stale_baseline) == 1 else 'ies'}"
    )
    lines.append("lint: PASS" if result.ok else "lint: FAIL (new findings)")
    return "\n".join(lines)


def render_json(result: LintResult) -> str:
    """Render a lint result as a machine-readable JSON document."""
    payload: Dict = {
        "version": 1,
        "ok": result.ok,
        "files_scanned": result.files_scanned,
        "findings": [
            {
                "rule": finding.rule_id,
                "rule_name": _rule_name(finding.rule_id),
                "path": finding.path,
                "line": finding.line,
                "col": finding.col,
                "message": finding.message,
                "severity": finding.severity,
                "status": finding.status,
                "context": finding.context,
                **(
                    {"justification": finding.justification}
                    if finding.justification
                    else {}
                ),
            }
            for finding in result.findings
        ],
        "stale_baseline": [
            {"rule": e.rule, "path": e.path, "context": e.context}
            for e in result.stale_baseline
        ],
        "summary": {
            "new": len(result.new_findings),
            "baselined": len(result.baselined_findings),
            "suppressed": len(result.suppressed_findings),
        },
    }
    return json.dumps(payload, indent=2, sort_keys=True)


def render_sarif(result: LintResult) -> str:
    """SARIF 2.1.0: one run, suppressed/baselined findings marked as such."""
    rules = [
        {
            "id": rule.rule_id,
            "name": rule.name,
            "shortDescription": {"text": rule.summary},
            "helpUri": TOOL_URI,
        }
        for rule in sorted(ALL_RULES.values(), key=lambda r: r.rule_id)
    ]
    results = []
    for finding in result.findings:
        entry: Dict = {
            "ruleId": finding.rule_id,
            "level": "error" if finding.status == NEW else "warning",
            "message": {"text": finding.message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {"uri": finding.path.replace("\\", "/")},
                        "region": {
                            "startLine": finding.line,
                            "startColumn": finding.col + 1,
                        },
                    }
                }
            ],
        }
        if finding.status == SUPPRESSED:
            entry["suppressions"] = [{"kind": "inSource"}]
        elif finding.status == BASELINED:
            entry["suppressions"] = [
                {
                    "kind": "external",
                    "justification": finding.justification,
                }
            ]
        results.append(entry)
    payload = {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": TOOL_NAME,
                        "informationUri": TOOL_URI,
                        "rules": rules,
                    }
                },
                "results": results,
            }
        ],
    }
    return json.dumps(payload, indent=2, sort_keys=True)


def render(result: LintResult, fmt: str, verbose: bool = False) -> str:
    """Render ``result`` in ``fmt`` (one of :data:`FORMATS`)."""
    if fmt == "text":
        return render_text(result, verbose=verbose)
    if fmt == "json":
        return render_json(result)
    if fmt == "sarif":
        return render_sarif(result)
    raise ValueError(f"unknown format {fmt!r} (choose from {FORMATS})")
