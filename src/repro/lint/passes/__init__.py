"""The built-in analysis passes.

``ALL_PASSES`` is the registry the driver runs by default; ``ALL_RULES``
maps every rule id to its :class:`~repro.lint.findings.Rule` for reports,
SARIF rule metadata, and pragma validation.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.lint.base import LintPass
from repro.lint.findings import Rule
from repro.lint.passes.async_blocking import AsyncBlockingPass
from repro.lint.passes.cache_key import CacheKeyPass
from repro.lint.passes.callbacks import CallbackPass
from repro.lint.passes.ckpt_flow import CkptFlowPass
from repro.lint.passes.contract import ContractPass
from repro.lint.passes.determinism import DeterminismPass
from repro.lint.passes.obs_hotloop import ObsHotLoopPass
from repro.lint.passes.obs_names import ObsNamesPass
from repro.lint.passes.payload_literals import PayloadLiteralPass
from repro.lint.passes.rng_stream import RngStreamPass
from repro.lint.passes.svc_clock import SvcClockPass
from repro.lint.passes.wire_schema import WireSchemaPass

#: Per-module passes first, then the whole-program (project) passes; the
#: driver runs the former per file and the latter once over the full set.
ALL_PASSES: Tuple[LintPass, ...] = (
    DeterminismPass(),
    RngStreamPass(),
    ContractPass(),
    CallbackPass(),
    ObsNamesPass(),
    ObsHotLoopPass(),
    PayloadLiteralPass(),
    SvcClockPass(),
    CacheKeyPass(),
    WireSchemaPass(),
    CkptFlowPass(),
    AsyncBlockingPass(),
)

ALL_RULES: Dict[str, Rule] = {
    rule.rule_id: rule
    for lint_pass in ALL_PASSES
    for rule in lint_pass.rules
}

__all__ = [
    "ALL_PASSES",
    "ALL_RULES",
    "AsyncBlockingPass",
    "CacheKeyPass",
    "CallbackPass",
    "CkptFlowPass",
    "ContractPass",
    "DeterminismPass",
    "ObsHotLoopPass",
    "ObsNamesPass",
    "PayloadLiteralPass",
    "RngStreamPass",
    "SvcClockPass",
    "WireSchemaPass",
]
