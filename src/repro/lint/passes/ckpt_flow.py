"""Flow-sensitive checkpoint-contract completeness (``CKPT002``).

The runtime contract walk (:func:`repro.ckpt.contract.verify_contract`)
and the per-module ``CKPT001`` pass both see only ``self.X = ...``
assignments inside a class's *own* methods. But state can also be written
by a helper the object escapes to — ``attach_obs(controller)`` doing
``controller.obs = ...`` — and such a write is invisible to both: the
attribute silently misses the snapshot, and a restored run diverges from
the original exactly when that attribute mattered.

``CKPT002`` closes the gap interprocedurally: for every class decorated
``@checkpointable(...)`` / ``@checkpointable_dataclass(...)`` with a
literal contract, it tracks instances through the call graph (annotated
parameters plus ``self`` passed onward) and flags attribute writes made
*outside* the class's own methods that name an attribute absent from the
declared ``state``/``derived``/``const`` sets (and, for dataclasses, the
field list). Classes whose contract is not a literal tuple are skipped —
the pass never guesses at a computed contract.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional, Set, Tuple

from repro.lint.base import ProjectLintPass
from repro.lint.dataflow import escaped_attribute_writes
from repro.lint.findings import Finding, Rule
from repro.lint.graph import ClassInfo, ProjectIndex

#: Decorator names that declare a checkpoint contract.
_CONTRACT_DECORATORS = frozenset({"checkpointable", "checkpointable_dataclass"})

#: The keyword arguments whose union forms the declared contract.
_CONTRACT_KWARGS = ("state", "derived", "const")


class CkptFlowPass(ProjectLintPass):
    """Flags escaped state writes missing from the contract (``CKPT002``)."""

    name = "ckpt-flow"
    rules: Tuple[Rule, ...] = (
        Rule("CKPT002", "escaped-state-write",
             "helper-assigned attribute missing from the checkpoint "
             "contract"),
    )

    def check_project(self, project: ProjectIndex) -> Iterator[Finding]:
        for qname in sorted(project.classes):
            cls = project.classes[qname]
            contract = _declared_contract(cls)
            if contract is None:
                continue
            for access in escaped_attribute_writes(project, cls):
                if access.attr in contract:
                    continue
                info = project.functions.get(access.function)
                if info is None:
                    continue
                yield self.finding(
                    "CKPT002", info.module, access.node,
                    f"{access.function}() assigns `{access.attr}` on a "
                    f"{cls.name} instance, but the @checkpointable "
                    f"contract of {cls.name} does not declare it; a "
                    "restored run would silently lose this attribute — "
                    "add it to state/derived/const or move the write into "
                    "the class",
                )


def _declared_contract(cls: ClassInfo) -> Optional[Set[str]]:
    """The literal contract of ``cls``, or None when absent/non-literal.

    ``None`` means "do not check": the class is not checkpointable, or its
    contract is computed and the pass cannot know what it covers.
    """
    if not _CONTRACT_DECORATORS & set(cls.decorators):
        return None
    contract: Set[str] = set()
    saw_call = False
    for call in cls.decorator_calls:
        target = call.func
        name = target.attr if isinstance(target, ast.Attribute) else (
            target.id if isinstance(target, ast.Name) else None
        )
        if name not in _CONTRACT_DECORATORS:
            continue
        saw_call = True
        for keyword in call.keywords:
            if keyword.arg not in _CONTRACT_KWARGS:
                continue
            names = _literal_names(keyword.value)
            if names is None:
                return None
            contract |= names
    if not saw_call and "checkpointable" in cls.decorators:
        # Bare @checkpointable without arguments declares nothing the
        # pass can reason about; leave it to the runtime walk.
        return None
    if "checkpointable_dataclass" in cls.decorators:
        contract |= set(cls.fields)
    return contract


def _literal_names(node: ast.expr) -> Optional[Set[str]]:
    """The string elements of a literal tuple/list, or None if non-literal."""
    if not isinstance(node, (ast.Tuple, ast.List)):
        return None
    names: Set[str] = set()
    for element in node.elts:
        if not (
            isinstance(element, ast.Constant)
            and isinstance(element.value, str)
        ):
            return None
        names.add(element.value)
    return names
