"""Blocking-call detection on the svc event loop (``ASYNC001``).

:mod:`repro.svc` runs the whole job farm on a single asyncio event loop
(PR 8): one blocking call anywhere the loop can reach — a stray
``time.sleep`` backoff, a ``Process.join`` without a thread hop, a
synchronous ``open()`` in a handler — stalls every client and every
worker heartbeat at once. The per-module ``SVC001`` pass quarantines
clock *reads*; this pass guards the loop's *liveness*, and it does so
interprocedurally: the dangerous call is rarely in the ``async def``
itself but in a sync helper three frames down.

``ASYNC001`` roots at every ``async def`` in the svc package, closes over
the call graph (staying inside svc — the analysis/cache layers run in
worker processes, not on the loop), and flags in any reachable function:

* any non-awaited ``*.sleep(...)`` call (``time.sleep``, ``CLOCK.sleep``,
  a forgotten ``await`` on ``asyncio.sleep``);
* zero-argument ``.join()`` calls (``Process``/``Thread`` joins;
  ``str.join`` always takes an argument, so it never matches);
* ``subprocess.run/call/check_call/check_output/Popen`` and
  ``os.system``;
* non-awaited ``.wait()`` and bare ``open(...)`` directly inside an
  ``async def`` body (in sync helpers these are too common as false
  positives — a queue's non-blocking ``wait`` flavours, config loads at
  startup — so the deeper check stays scoped to the loop functions
  themselves).

Every finding names the ``async def`` root the blocking call is reachable
from, so the report reads as a path, not a point.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Set, Tuple

from repro.lint.base import ProjectLintPass
from repro.lint.findings import Finding, Rule
from repro.lint.graph import FunctionInfo, ProjectIndex, own_statements

_SUBPROCESS_CALLS = frozenset({
    "run", "call", "check_call", "check_output", "Popen",
})


class AsyncBlockingPass(ProjectLintPass):
    """Flags blocking calls reachable from svc ``async def``s (``ASYNC001``)."""

    name = "async-blocking"
    rules: Tuple[Rule, ...] = (
        Rule("ASYNC001", "blocking-call-in-event-loop",
             "blocking call reachable from an async def in repro.svc"),
    )

    def check_project(self, project: ProjectIndex) -> Iterator[Finding]:
        roots = [
            info.qname for info in project.functions_in_package("svc")
            if info.is_async
        ]
        if not roots:
            return
        origin = project.reachable(roots, package="svc")
        for qname in sorted(origin):
            info = project.functions.get(qname)
            if info is None:
                continue
            root = origin[qname]
            for finding in self._check_function(info, root):
                yield finding

    def _check_function(
        self, info: FunctionInfo, root: str
    ) -> Iterator[Finding]:
        # A call anywhere under an `await` counts as awaited: that covers
        # both `await x.sleep()` and the combinator idiom
        # `await asyncio.wait_for(event.wait(), timeout)`, where the inner
        # call builds a coroutine rather than blocking.
        awaited: Set[int] = set()
        for node in own_statements(info.node):
            if isinstance(node, ast.Await):
                for inner in ast.walk(node.value):
                    if isinstance(inner, ast.Call):
                        awaited.add(id(inner))
        via = "" if info.qname == root else f" (reachable from async {root})"
        for node in own_statements(info.node):
            if not isinstance(node, ast.Call):
                continue
            parts = _call_parts(node)
            if not parts:
                continue
            dotted = ".".join(parts)
            if parts[-1] == "sleep" and id(node) not in awaited:
                yield self.finding(
                    "ASYNC001", info.module, node,
                    f"non-awaited `{dotted}(...)` in {info.qname}{via} "
                    "blocks the svc event loop; use `await asyncio.sleep` "
                    "or move the wait off the loop",
                )
            elif parts[-1] == "join" and not node.args and len(parts) > 1:
                yield self.finding(
                    "ASYNC001", info.module, node,
                    f"`{dotted}()` in {info.qname}{via} joins a process/"
                    "thread on the svc event loop; bound the join with a "
                    "timeout off the loop or await an executor",
                )
            elif (
                len(parts) == 2
                and parts[0] == "subprocess"
                and parts[1] in _SUBPROCESS_CALLS
            ) or parts == ("os", "system"):
                yield self.finding(
                    "ASYNC001", info.module, node,
                    f"`{dotted}(...)` in {info.qname}{via} runs a "
                    "subprocess synchronously on the svc event loop; use "
                    "asyncio.create_subprocess_* or a worker process",
                )
            elif (
                info.is_async
                and parts[-1] == "wait"
                and id(node) not in awaited
                and len(parts) > 1
            ):
                yield self.finding(
                    "ASYNC001", info.module, node,
                    f"non-awaited `{dotted}(...)` inside async "
                    f"{info.qname} blocks the svc event loop",
                )
            elif info.is_async and parts == ("open",):
                yield self.finding(
                    "ASYNC001", info.module, node,
                    f"synchronous `open(...)` inside async {info.qname} "
                    "blocks the svc event loop on file IO; read in a "
                    "worker or an executor",
                )


def _call_parts(call: ast.Call) -> Tuple[str, ...]:
    node: ast.AST = call.func
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return tuple(reversed(parts))
    return ()
