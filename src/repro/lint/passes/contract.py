"""Checkpoint-contract pass: mutable sim state must declare a contract.

The runtime half of this check lives in :mod:`repro.ckpt.contract` (which
delegates its AST walk to :mod:`repro.lint.astutil`): every *registered*
class must classify each attribute it assigns. This pass covers the gap
the runtime lint cannot see — a class in a sim-critical package that was
never registered at all. If it holds mutable containers, its state silently
escapes every snapshot and ``capture``/``restore`` round trips diverge.

* ``CKPT001`` a sim-critical class assigns a mutable container
  (list/dict/set/deque/... literal, comprehension, or constructor) to
  ``self`` — or declares a dataclass field with one — without being
  ``@checkpointable`` / ``@checkpointable_dataclass`` / frozen.

Pre-resolved observability handle bundles (pure derived wiring rebuilt at
attach time) are the legitimate exception; they carry a baseline entry with
that justification rather than a contract.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional, Tuple

from repro.lint.astutil import (
    call_name,
    class_is_frozen_dataclass,
    decorator_names,
    self_assignments,
)
from repro.lint.base import LintPass, ModuleSource
from repro.lint.findings import Finding, Rule

#: Decorators that register a state contract.
_CONTRACT_DECORATORS = frozenset({
    "checkpointable", "checkpointable_dataclass", "register_class",
})

#: Constructors whose results are mutable containers.
_MUTABLE_CONSTRUCTORS = frozenset({
    "list", "dict", "set", "deque", "OrderedDict", "defaultdict",
    "Counter", "bytearray", "array", "zeros", "empty", "full", "ones",
})


def _mutable_initializer(value: ast.AST) -> Optional[str]:
    """A short description when ``value`` builds a mutable container."""
    if isinstance(value, (ast.List, ast.Dict, ast.Set)):
        return type(value).__name__.lower() + " literal"
    if isinstance(value, (ast.ListComp, ast.DictComp, ast.SetComp)):
        return "comprehension"
    if isinstance(value, ast.Call):
        parts = call_name(value)
        if parts and parts[-1] in _MUTABLE_CONSTRUCTORS:
            return f"{parts[-1]}(...)"
    return None


def _dataclass_mutable_fields(node: ast.ClassDef) -> List[Tuple[str, str]]:
    """(field, description) for mutable dataclass field declarations."""
    out: List[Tuple[str, str]] = []
    for stmt in node.body:
        if not isinstance(stmt, ast.AnnAssign):
            continue
        if not isinstance(stmt.target, ast.Name):
            continue
        value = stmt.value
        if value is None:
            continue
        described = _mutable_initializer(value)
        if described is None and isinstance(value, ast.Call):
            parts = call_name(value)
            if parts and parts[-1] == "field":
                for kw in value.keywords:
                    if kw.arg == "default_factory":
                        factory = kw.value
                        factory_parts = (
                            call_name(factory)
                            if isinstance(factory, ast.Call)
                            else None
                        )
                        name = None
                        if isinstance(factory, ast.Name):
                            name = factory.id
                        elif factory_parts:
                            name = factory_parts[-1]
                        if name in _MUTABLE_CONSTRUCTORS:
                            described = f"default_factory={name}"
        if described is not None:
            out.append((stmt.target.id, described))
    return out


def _is_dataclass(node: ast.ClassDef) -> bool:
    return "dataclass" in decorator_names(node)


class ContractPass(LintPass):
    """Flags unregistered mutable sim-critical classes (``CKPT001``)."""

    name = "checkpoint-contract"
    rules: Tuple[Rule, ...] = (
        Rule("CKPT001", "ckpt-mutable",
             "mutable sim-critical class without a state contract"),
    )

    def applies_to(self, module: ModuleSource) -> bool:
        return module.is_sim_critical

    def check(self, module: ModuleSource) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            decorators = decorator_names(node)
            if decorators & _CONTRACT_DECORATORS:
                continue
            if class_is_frozen_dataclass(node):
                continue
            mutable: List[Tuple[str, str]] = []
            for attr, value, _assign in self_assignments(node):
                described = _mutable_initializer(value)
                if described is not None:
                    mutable.append((attr, described))
            if _is_dataclass(node):
                mutable.extend(_dataclass_mutable_fields(node))
            if not mutable:
                continue
            attrs = ", ".join(
                f"self.{name} = {desc}" for name, desc in sorted(mutable)[:3]
            )
            yield self.finding(
                "CKPT001", module, node,
                f"class {node.name} holds mutable state ({attrs}) but "
                "declares no state contract: it will silently escape every "
                "snapshot; register it with @checkpointable (or classify "
                "the attribute as derived) — see docs/checkpointing.md",
            )
