"""Payload-literal pass: attack sequences belong in the DSL, not in code.

The payload DSL (:mod:`repro.payload`) is the single source of truth for
activation sequences: programs are versioned in the corpus, replayed
identically by every engine, and covered by the differential battery. A
hard-coded row/activation sequence literal in an attack-generation module
is a second, untracked pattern implementation — it drifts silently, never
enters the corpus manifest, and bypasses the cache-key provenance that
``(scenario, version, params)`` provides.

* ``PAY001`` a list/tuple literal of :data:`_MIN_SEQUENCE` or more plain
  integer constants inside the ``workloads``/``security`` packages (the
  attack-generation surface). Express the sequence as a ``*.payload``
  program (or a :func:`repro.payload.parse`-able generator like
  ``hammer_program``) instead.

Short literals — a handful of thresholds, a config tuple — stay below the
bar on purpose; the rule targets inlined *sequences*, not parameters.
Deliberate exceptions belong in the baseline or under a
``# repro: lint-ignore[PAY001]`` pragma with justification.
"""

from __future__ import annotations

import ast
from typing import Iterator, Tuple

from repro.lint.base import LintPass, ModuleSource
from repro.lint.findings import Finding, Rule

#: Packages that generate or replay attack patterns: the only places an
#: inline activation sequence could masquerade as a payload.
_PAYLOAD_PACKAGES = ("workloads", "security")

#: Fewest integer elements that read as a *sequence* rather than a couple
#: of scalar parameters. Eight is comfortably above every legitimate
#: constant tuple in the scanned packages and below any useful hammer.
_MIN_SEQUENCE = 8


def _is_int_sequence(node: ast.AST) -> bool:
    """A list/tuple literal made purely of >=8 plain int constants."""
    if not isinstance(node, (ast.List, ast.Tuple)):
        return False
    if len(node.elts) < _MIN_SEQUENCE:
        return False
    return all(
        isinstance(e, ast.Constant)
        and isinstance(e.value, int)
        and not isinstance(e.value, bool)
        for e in node.elts
    )


class PayloadLiteralPass(LintPass):
    """Flags hard-coded activation-sequence literals (``PAY001``)."""

    name = "payload-literal"
    rules: Tuple[Rule, ...] = (
        Rule("PAY001", "payload-literal",
             "hard-coded activation-sequence literal in attack code"),
    )

    def applies_to(self, module: ModuleSource) -> bool:
        return any(module.in_package(pkg) for pkg in _PAYLOAD_PACKAGES)

    def check(self, module: ModuleSource) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not _is_int_sequence(node):
                continue
            yield self.finding(
                "PAY001", module, node,
                f"literal sequence of {len(node.elts)} integers in attack "
                "code: express it as a payload-DSL program (corpus "
                "scenario or repro.payload.parse-able generator) so it is "
                "versioned, replayable, and differentially tested",
            )
