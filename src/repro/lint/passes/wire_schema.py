"""Wire-schema drift pass: dataclasses vs codecs, daemon vs client.

The sweep service (PR 8) ships jobs between processes through versioned
wire envelopes; the schema lives in three places that must agree — the
job dataclass, its ``*_to_wire`` encoder, and its ``*_from_wire`` decoder
— plus a fourth for the request protocol: the daemon's op dispatch and
``SweepClient``'s call sites. Each pair can drift silently: add a field
to ``Job`` and forget ``job_to_wire`` and the field is dropped on the
wire, resurrected as its default on the far side, and every remote result
quietly diverges from the local one.

* ``WIRE001`` — a field of a wire-crossing job dataclass that its encoder
  never writes (no attribute read, no matching dict key, no covering
  ``asdict``) or its decoder never passes to the constructor (no keyword,
  no ``**splat``).
* ``WIRE002`` — protocol op-set drift: an op in the module-level ``OPS``
  tuple that no daemon branch handles, an ``OPS`` op the client never
  issues, or a handled/issued op missing from ``OPS``.

Op detection is syntactic but anchored to the tree's idioms: the daemon
dispatches with ``if op == "name"`` chains, the client funnels every
request through ``self._call("name", ...)``.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, Optional, Sequence, Set, Tuple

from repro.lint.base import ModuleSource, ProjectLintPass
from repro.lint.dataflow import constructor_coverage, field_coverage
from repro.lint.findings import Finding, Rule
from repro.lint.graph import ProjectIndex
from repro.lint.passes.cache_key import _unique_class, _unique_function

#: The wire-crossing job types: (dataclass, encoder, decoder) — looked up
#: by bare name project-wide so fixtures can exercise the pass; a triple
#: with any member absent from the scanned set is skipped.
WIRE_CONTRACTS: Tuple[Tuple[str, str, str], ...] = (
    ("Job", "job_to_wire", "job_from_wire"),
    ("SecurityJob", "security_job_to_wire", "security_job_from_wire"),
    ("CampaignJob", "campaign_job_to_wire", "campaign_job_from_wire"),
)


class WireSchemaPass(ProjectLintPass):
    """Flags codec field drift (``WIRE001``) and op-set drift (``WIRE002``)."""

    name = "wire-schema"
    rules: Tuple[Rule, ...] = (
        Rule("WIRE001", "wire-field-drift",
             "job dataclass field missing from its to_wire/from_wire codec"),
        Rule("WIRE002", "protocol-op-drift",
             "protocol op known to only some of OPS / daemon / client"),
    )

    def check_project(self, project: ProjectIndex) -> Iterator[Finding]:
        for finding in self._check_codecs(project):
            yield finding
        for finding in self._check_ops(project):
            yield finding

    # ------------------------------------------------------------------
    # WIRE001: dataclass fields vs codec coverage
    # ------------------------------------------------------------------
    def _check_codecs(self, project: ProjectIndex) -> Iterator[Finding]:
        for class_name, to_name, from_name in WIRE_CONTRACTS:
            cls = _unique_class(project, class_name)
            if cls is None:
                continue
            fields = set(cls.fields)
            to_fn = _unique_function(project, to_name)
            if to_fn is not None and to_fn.params:
                covered = field_coverage(
                    to_fn, to_fn.params[0], fields
                ).covered
                for field_name in sorted(fields - covered):
                    yield self.finding(
                        "WIRE001", to_fn.module, to_fn.node,
                        f"{class_name}.{field_name} never reaches the wire: "
                        f"{to_name}() does not encode it, so the far side "
                        "resurrects the default and results diverge",
                    )
            from_fn = _unique_function(project, from_name)
            if from_fn is not None:
                covered = constructor_coverage(
                    from_fn, class_name, fields
                ).covered
                for field_name in sorted(fields - covered):
                    yield self.finding(
                        "WIRE001", from_fn.module, from_fn.node,
                        f"{class_name}.{field_name} is dropped on decode: "
                        f"{from_name}() never passes it to "
                        f"{class_name}(...)",
                    )

    # ------------------------------------------------------------------
    # WIRE002: OPS tuple vs daemon dispatch vs client calls
    # ------------------------------------------------------------------
    def _check_ops(self, project: ProjectIndex) -> Iterator[Finding]:
        ops_node: Optional[ast.Assign] = None
        ops_module: Optional[ModuleSource] = None
        declared: Set[str] = set()
        svc_modules = [
            m for parts, m in sorted(project.modules.items())
            if parts and parts[0] == "svc"
        ]
        for module in svc_modules:
            found = _declared_ops(module)
            if found is not None:
                ops_node, declared = found
                ops_module = module
                break
        if ops_module is None or ops_node is None:
            return
        handled = _handled_ops(svc_modules)
        called = _called_ops(svc_modules)
        for op in sorted(declared - set(handled)):
            yield self.finding(
                "WIRE002", ops_module, ops_node,
                f"protocol op {op!r} is declared in OPS but no daemon "
                "branch handles it (no `op == \"" + op + "\"` dispatch)",
            )
        for op in sorted(declared - set(called)):
            yield self.finding(
                "WIRE002", ops_module, ops_node,
                f"protocol op {op!r} is declared in OPS but the client "
                "never issues it (no `self._call(\"" + op + "\", ...)`)",
            )
        for op, (module, node) in sorted(handled.items()):
            if op not in declared:
                yield self.finding(
                    "WIRE002", module, node,
                    f"daemon handles op {op!r} which is missing from OPS; "
                    "add it to the protocol or drop the branch",
                )
        for op, (module, node) in sorted(called.items()):
            if op not in declared:
                yield self.finding(
                    "WIRE002", module, node,
                    f"client issues op {op!r} which is missing from OPS; "
                    "the daemon will reject it as unknown",
                )


def _declared_ops(
    module: ModuleSource,
) -> Optional[Tuple[ast.Assign, Set[str]]]:
    """The module-level ``OPS = ("...", ...)`` tuple, if this module has it."""
    for node in ast.iter_child_nodes(module.tree):
        if not isinstance(node, ast.Assign):
            continue
        if not any(
            isinstance(t, ast.Name) and t.id == "OPS" for t in node.targets
        ):
            continue
        if isinstance(node.value, (ast.Tuple, ast.List)):
            ops = {
                e.value for e in node.value.elts
                if isinstance(e, ast.Constant) and isinstance(e.value, str)
            }
            return node, ops
    return None


def _handled_ops(
    modules: Sequence[ModuleSource],
) -> Dict[str, Tuple[ModuleSource, ast.AST]]:
    """Every ``op == "name"`` comparison in the svc tree (daemon dispatch)."""
    handled: Dict[str, Tuple[ModuleSource, ast.AST]] = {}
    for module in modules:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Compare):
                continue
            if not (isinstance(node.left, ast.Name) and node.left.id == "op"):
                continue
            if len(node.ops) != 1 or not isinstance(node.ops[0], ast.Eq):
                continue
            comparator = node.comparators[0]
            if isinstance(comparator, ast.Constant) and isinstance(
                comparator.value, str
            ):
                handled.setdefault(comparator.value, (module, node))
    return handled


def _called_ops(
    modules: Sequence[ModuleSource],
) -> Dict[str, Tuple[ModuleSource, ast.AST]]:
    """Every literal first argument of a ``*._call("name", ...)`` call."""
    called: Dict[str, Tuple[ModuleSource, ast.AST]] = {}
    for module in modules:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not (isinstance(func, ast.Attribute) and func.attr == "_call"):
                continue
            if node.args and isinstance(node.args[0], ast.Constant) and (
                isinstance(node.args[0].value, str)
            ):
                called.setdefault(node.args[0].value, (module, node))
    return called
