"""Obs-hot-loop pass: no per-event emission inside heap-drain loops.

The observability layer is built around drain-boundary aggregation: hot
paths accumulate into plain counters and pending lists, and a ``flush()``
publishes the totals into the metrics registry / tracer at refresh
boundaries (and finalize, and checkpoint capture). A per-event
``.inc()`` / ``.observe()`` / ``.event()`` / ``.span()`` inside a
``while``-drain body reintroduces exactly the per-event overhead that
aggregation removed — measured at ~50% wall-clock on the perf smoke
before the deferral landed, vs ~22% after.

* ``OBS003`` a per-event emission primitive called inside a ``while``
  loop body of a hot-path module (the ``sim``/``mc``/``dram`` packages,
  whose ``while`` loops are the event-heap and queue drains).

Batched primitives (``observe_many``, ``emit_raw``) and plain-int
accumulator updates are the sanctioned alternatives and are not flagged.
Justified remnants — e.g. a sample that is already strided to amortise
its cost — belong in the checked-in baseline with their justification.
"""

from __future__ import annotations

import ast
from typing import Iterator, Tuple

from repro.lint.base import LintPass, ModuleSource
from repro.lint.findings import Finding, Rule

#: The per-event emission primitives of :mod:`repro.obs`: counter/gauge
#: updates and tracer records. ``observe_many``/``emit_raw`` (the batched
#: forms) are deliberately absent — calling those at a drain boundary is
#: the pattern this rule exists to protect.
_PER_EVENT_METHODS = frozenset({"inc", "observe", "event", "span"})

#: Packages whose ``while`` loops are per-event hot paths (the engine's
#: heap drains, the controller's queue/alert loops, the bank state
#: machines). Analytical packages may loop over whole result sets, where
#: a per-iteration emission is fine.
_HOT_PACKAGES = ("sim", "mc", "dram")


class ObsHotLoopPass(LintPass):
    """Flags per-event obs emission inside hot drain loops (``OBS003``)."""

    name = "obs-hot-loop"
    rules: Tuple[Rule, ...] = (
        Rule("OBS003", "obs-hot-loop",
             "per-event metric/tracer emission inside a hot drain loop"),
    )

    def applies_to(self, module: ModuleSource) -> bool:
        return any(module.in_package(pkg) for pkg in _HOT_PACKAGES)

    def check(self, module: ModuleSource) -> Iterator[Finding]:
        for loop in ast.walk(module.tree):
            if not isinstance(loop, ast.While):
                continue
            for node in ast.walk(loop):
                if not isinstance(node, ast.Call):
                    continue
                func = node.func
                if not isinstance(func, ast.Attribute):
                    continue
                if func.attr not in _PER_EVENT_METHODS:
                    continue
                yield self.finding(
                    "OBS003", module, node,
                    f"per-event .{func.attr}() inside a hot drain loop: "
                    "accumulate into a plain counter / pending list and "
                    "publish via flush() at the drain boundary "
                    "(observe_many/emit_raw) instead",
                )
