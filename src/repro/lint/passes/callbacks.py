"""Schedulable-callback pass: event-heap callbacks must snapshot cleanly.

Checkpointing serialises pending engine events as ``(owner, method, args)``
descriptors (:mod:`repro.ckpt.state`): a callback must therefore be a bound
method or a ``functools.partial`` over one. A lambda or a nested closure
captures live cell variables that have no stable descriptor form — the
snapshot either fails or, worse, restores a callback detached from the
state it closed over. PR 3's lambda-to-partial refactor in
``mc.controller``/``cpu.core`` established the convention; this pass keeps
it from regressing.

* ``CB001`` a ``lambda`` (or a function defined inside the enclosing
  function) passed to ``Engine.schedule`` / ``Engine.schedule_in``.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional, Set, Tuple

from repro.lint.base import LintPass, ModuleSource
from repro.lint.findings import Finding, Rule

_SCHEDULE_METHODS = frozenset({"schedule", "schedule_in"})


def _callback_arg(call: ast.Call) -> Optional[ast.expr]:
    """The callback argument of a schedule call (2nd positional)."""
    if len(call.args) >= 2:
        return call.args[1]
    for kw in call.keywords:
        if kw.arg == "callback":
            return kw.value
    return None


def _nested_function_names(func: ast.AST) -> Set[str]:
    """Names of functions defined inside ``func`` (closure candidates)."""
    names: Set[str] = set()
    for node in ast.walk(func):
        if node is func:
            continue
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            names.add(node.name)
    return names


class CallbackPass(LintPass):
    """Flags lambdas/closures scheduled on the event heap (``CB001``)."""

    name = "schedulable-callback"
    rules: Tuple[Rule, ...] = (
        Rule("CB001", "sched-callback",
             "unsnapshottable callback passed to the event heap"),
    )

    def check(self, module: ModuleSource) -> Iterator[Finding]:
        functions: List[ast.AST] = [
            node for node in ast.walk(module.tree)
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        ]
        for func in functions:
            nested = _nested_function_names(func)
            for node in ast.walk(func):
                if not isinstance(node, ast.Call):
                    continue
                if not (
                    isinstance(node.func, ast.Attribute)
                    and node.func.attr in _SCHEDULE_METHODS
                ):
                    continue
                callback = _callback_arg(node)
                if callback is None:
                    continue
                if isinstance(callback, ast.Lambda):
                    yield self.finding(
                        "CB001", module, callback,
                        "lambda scheduled on the event heap: lambdas have "
                        "no (owner, method, args) snapshot descriptor; use "
                        "a bound method or functools.partial",
                    )
                elif (
                    isinstance(callback, ast.Name)
                    and callback.id in nested
                ):
                    yield self.finding(
                        "CB001", module, callback,
                        f"nested function `{callback.id}` scheduled on the "
                        "event heap: closures capture cells no snapshot "
                        "descriptor can restore; use a bound method or "
                        "functools.partial",
                    )
