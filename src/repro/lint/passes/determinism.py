"""Determinism pass: sources of run-to-run divergence in sim-critical code.

The whole reproduction rests on "same seed, same bits": the result cache
keys on inputs only, checkpoint restore is bit-identical, and the security
argument is probabilistic *over seeds*. This pass forbids, inside the
sim-critical packages, the constructs that silently break that property:

* ``DET001`` wall-clock reads (``time.time``/``monotonic``/``perf_counter``,
  ``datetime.now``/``utcnow``/``today``) — simulated behaviour must depend
  on engine cycles only; wall-clock profiling lives in the quarantined
  :mod:`repro.obs.profile`.
* ``DET002`` module-level RNG state (``random.random()``,
  ``np.random.seed``/``rand``/...): global streams are perturbed by any
  other consumer and by import order; draw from
  :class:`repro.sim.rng.RngStreams` instead.
* ``DET003`` ``os.environ`` reads outside :mod:`repro.sim.config` (the
  designated env home): an env var that changes simulated behaviour is an
  input the cache key and the snapshot metadata never see.
* ``DET004`` ``id()``-based keys: CPython addresses vary per process, so
  any container keyed (or probed) by ``id(x)`` iterates and resolves
  differently across runs and across checkpoint restores.
* ``DET005`` iteration over non-literal sets: set order depends on
  ``PYTHONHASHSEED`` for str/object elements; iterate ``sorted(s)`` or keep
  an insertion-ordered dict instead. Literal sets of constants are allowed
  (membership tables), as is any ``sorted(...)`` wrapper.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, Set, Tuple

from repro.lint.astutil import call_name, dotted_name
from repro.lint.base import LintPass, ModuleSource
from repro.lint.findings import Finding, Rule

#: time.* attributes that read the host clock.
_CLOCK_TIME_ATTRS = frozenset({
    "time", "time_ns", "monotonic", "monotonic_ns", "perf_counter",
    "perf_counter_ns", "process_time", "process_time_ns", "clock",
})

#: datetime-ish constructors that read the host clock.
_CLOCK_DATETIME_ATTRS = frozenset({"now", "utcnow", "today"})

#: np.random module-level functions that touch the global bit generator.
#: (``default_rng``/``SeedSequence``/``Generator`` construct fresh streams
#: and are the RNG pass's business, not global state.)
_NUMPY_GLOBAL_EXEMPT = frozenset({"default_rng", "SeedSequence", "Generator",
                                  "BitGenerator", "PCG64", "Philox",
                                  "RandomState"})

#: dict/set methods whose first argument acts as a key probe.
_KEYED_METHODS = frozenset({"get", "setdefault", "pop", "add", "discard",
                            "remove"})


def _is_id_call(node: ast.AST) -> bool:
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id == "id"
    )


def _find_id_calls(node: ast.AST) -> Iterator[ast.Call]:
    for sub in ast.walk(node):
        if _is_id_call(sub):
            yield sub


def _is_set_expression(node: ast.AST, local_sets: Set[str]) -> bool:
    """Statically set-typed expressions whose iteration order is unstable."""
    if isinstance(node, ast.Call):
        parts = call_name(node)
        if parts and parts[-1] in ("set", "frozenset"):
            return True
        return False
    if isinstance(node, ast.SetComp):
        return True
    if isinstance(node, ast.Set):
        # A literal set of constants is a fixed membership table; flag only
        # sets built from non-literal elements.
        return any(not isinstance(e, ast.Constant) for e in node.elts)
    if isinstance(node, ast.Name):
        return node.id in local_sets
    return False


def _walk_scope(scope: ast.AST) -> Iterator[ast.AST]:
    """Walk ``scope`` without descending into nested function bodies.

    Each function gets its own scope walk (with its own local set
    bindings), so descending here would visit every loop twice.
    """
    stack = [scope]
    while stack:
        node = stack.pop()
        yield node
        for child in ast.iter_child_nodes(node):
            if child is not scope and isinstance(
                child, (ast.FunctionDef, ast.AsyncFunctionDef)
            ):
                continue
            stack.append(child)


def _local_set_bindings(func: ast.AST) -> Set[str]:
    """Names bound to set constructors/literals within one function body."""
    names: Set[str] = set()
    for node in _walk_scope(func):
        if isinstance(node, ast.Assign) and len(node.targets) == 1:
            target = node.targets[0]
            if isinstance(target, ast.Name):
                value = node.value
                if isinstance(value, (ast.Set, ast.SetComp)):
                    names.add(target.id)
                elif isinstance(value, ast.Call):
                    parts = call_name(value)
                    if parts and parts[-1] in ("set", "frozenset"):
                        names.add(target.id)
    return names


class DeterminismPass(LintPass):
    """Flags nondeterminism sources in sim-critical code (``DET001``-``DET005``)."""

    name = "determinism"
    rules: Tuple[Rule, ...] = (
        Rule("DET001", "wall-clock",
             "wall-clock read in sim-critical code"),
        Rule("DET002", "global-rng",
             "module-level RNG global state in sim-critical code"),
        Rule("DET003", "env-read",
             "os.environ read outside the sim.config env home"),
        Rule("DET004", "id-key",
             "id()-based container key"),
        Rule("DET005", "set-iter",
             "iteration over a non-literal set"),
    )

    #: Modules (dotted parts) where env reads are the designed behaviour.
    ENV_ALLOWLIST: Tuple[Tuple[str, ...], ...] = (("sim", "config"),)

    def applies_to(self, module: ModuleSource) -> bool:
        return module.is_sim_critical

    def check(self, module: ModuleSource) -> Iterator[Finding]:
        env_allowed = module.parts in self.ENV_ALLOWLIST
        # Map each function body to its locally inferred set bindings so
        # DET005 can follow ``s = set(...); for x in s``.
        set_bindings: Dict[ast.AST, Set[str]] = {}
        for node in ast.walk(module.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                set_bindings[node] = _local_set_bindings(node)
        module_level_sets = _local_set_bindings(module.tree)

        for func, locals_ in [(module.tree, module_level_sets)] + list(
            set_bindings.items()
        ):
            yield from self._check_iteration(module, func, locals_)

        for node in ast.walk(module.tree):
            if isinstance(node, ast.Call):
                yield from self._check_call(module, node, env_allowed)
            elif isinstance(node, (ast.Attribute, ast.Subscript)):
                yield from self._check_environ(module, node, env_allowed)
            if isinstance(node, (ast.Subscript, ast.Dict, ast.Call)):
                yield from self._check_id_keys(module, node)

    # ------------------------------------------------------------------
    def _check_call(self, module: ModuleSource, node: ast.Call,
                    env_allowed: bool) -> Iterator[Finding]:
        parts = call_name(node)
        if not parts:
            return
        # DET001 — wall clock.
        if len(parts) == 2 and parts[0] == "time" and parts[1] in _CLOCK_TIME_ATTRS:
            yield self.finding(
                "DET001", module, node,
                f"wall-clock read `{'.'.join(parts)}` in sim-critical code; "
                "simulated behaviour must depend on engine cycles only "
                "(wall-clock profiling belongs in repro.obs.profile)",
            )
        elif (parts[-1] in _CLOCK_DATETIME_ATTRS and "datetime" in parts[:-1]) or (
            len(parts) == 2 and parts[0] == "date" and parts[1] == "today"
        ):
            yield self.finding(
                "DET001", module, node,
                f"wall-clock read `{'.'.join(parts)}` in sim-critical code",
            )
        # DET002 — module-level RNG state.
        if (
            len(parts) == 2
            and parts[0] == "random"
            and parts[1][:1].islower()
        ):
            yield self.finding(
                "DET002", module, node,
                f"module-level RNG call `{'.'.join(parts)}` mutates global "
                "stream state; draw from repro.sim.rng.RngStreams instead",
            )
        elif (
            len(parts) == 3
            and parts[0] in ("np", "numpy")
            and parts[1] == "random"
            and parts[2] not in _NUMPY_GLOBAL_EXEMPT
            and parts[2][:1].islower()
        ):
            yield self.finding(
                "DET002", module, node,
                f"numpy global-RNG call `{'.'.join(parts)}`; use a "
                "Generator from repro.sim.rng.RngStreams instead",
            )
        # DET003 — os.getenv is an environ read in function clothing.
        if parts == ("os", "getenv") and not env_allowed:
            yield self.finding(
                "DET003", module, node,
                "os.getenv read outside repro.sim.config; route the "
                "environment variable through the designated env home so "
                "cache keys and snapshots see it",
            )

    def _check_environ(self, module: ModuleSource, node: ast.AST,
                       env_allowed: bool) -> Iterator[Finding]:
        if env_allowed:
            return
        # Flag the *root* os.environ attribute itself, once, by looking at
        # Attribute nodes spelling exactly ``os.environ``. Enclosing reads
        # (``os.environ.get(...)``, ``os.environ["X"]``) contain it.
        if isinstance(node, ast.Attribute):
            parts = dotted_name(node)
            if parts == ("os", "environ"):
                yield self.finding(
                    "DET003", module, node,
                    "os.environ read outside repro.sim.config; an env var "
                    "that changes simulated behaviour is an input the "
                    "result-cache key and snapshot metadata never see",
                )

    def _check_id_keys(self, module: ModuleSource,
                       node: ast.AST) -> Iterator[Finding]:
        candidates = []
        if isinstance(node, ast.Subscript):
            candidates.append(node.slice)
        elif isinstance(node, ast.Dict):
            candidates.extend(k for k in node.keys if k is not None)
        elif isinstance(node, ast.Call):
            func = node.func
            if (
                isinstance(func, ast.Attribute)
                and func.attr in _KEYED_METHODS
                and node.args
            ):
                candidates.append(node.args[0])
        for candidate in candidates:
            for id_call in _find_id_calls(candidate):
                yield self.finding(
                    "DET004", module, id_call,
                    "id()-based key: CPython object addresses differ per "
                    "process, so lookups and iteration order diverge across "
                    "runs and checkpoint restores; key on a stable field "
                    "instead",
                )

    def _check_iteration(self, module: ModuleSource, scope: ast.AST,
                         local_sets: Set[str]) -> Iterator[Finding]:
        for node in _walk_scope(scope):
            iters = []
            if isinstance(node, ast.For):
                iters.append(node.iter)
            elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp,
                                   ast.GeneratorExp)):
                iters.extend(gen.iter for gen in node.generators)
            for it in iters:
                if _is_set_expression(it, local_sets):
                    yield self.finding(
                        "DET005", module, it,
                        "iteration over a non-literal set: element order "
                        "depends on PYTHONHASHSEED for str/object elements; "
                        "iterate sorted(...) or an insertion-ordered dict",
                    )
