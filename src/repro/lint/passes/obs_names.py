"""Obs-naming pass: metric and span names are literal, convention-shaped.

The metrics registry byte-compares snapshots across worker counts, so the
series namespace must be closed and greppable: a name computed at runtime
can collide, drift, or depend on iteration order, and nothing in the docs
or dashboards can reference it. Span kinds are the trace's event alphabet
(``ACT``/``ALERT``/``SAUM``/``RFM``/``REF``/...), equally closed.

* ``OBS001`` non-literal name passed to ``counter``/``gauge``/``histogram``
  (first argument) or ``span`` (third argument, the kind).
* ``OBS002`` a literal name that breaks the registry convention: metric
  names are dotted lower-snake (``mc.queue_depth``); span kinds are
  upper-snake tokens (``SAUM``).

The :mod:`repro.obs` package itself is exempt — its snapshot-restore path
legitimately rebuilds series from recorded names. The wall-clock profiler
is also out of scope: its phase names never enter deterministic,
byte-compared artifacts.
"""

from __future__ import annotations

import ast
import re
from typing import Iterator, Optional, Tuple

from repro.lint.astutil import constant_str, first_arg
from repro.lint.base import LintPass, ModuleSource
from repro.lint.findings import Finding, Rule

#: metric-name convention: at least two dotted lower-snake segments.
METRIC_NAME_RE = re.compile(r"^[a-z][a-z0-9_]*(\.[a-z][a-z0-9_]*)+$")
#: span-kind convention: one upper-snake token.
SPAN_KIND_RE = re.compile(r"^[A-Z][A-Z0-9_]*$")

_METRIC_METHODS = frozenset({"counter", "gauge", "histogram"})


class ObsNamesPass(LintPass):
    """Flags non-literal or convention-breaking obs names (``OBS001``/``OBS002``)."""

    name = "obs-naming"
    rules: Tuple[Rule, ...] = (
        Rule("OBS001", "obs-name-literal",
             "non-literal metric/span name passed to repro.obs"),
        Rule("OBS002", "obs-name-convention",
             "metric/span name breaks the registry naming convention"),
    )

    def applies_to(self, module: ModuleSource) -> bool:
        return not module.in_package("obs")

    def check(self, module: ModuleSource) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not isinstance(func, ast.Attribute):
                continue
            if func.attr in _METRIC_METHODS:
                yield from self._check_name(
                    module, node, first_arg(node, keyword="name"),
                    kind="metric", method=func.attr,
                    convention=METRIC_NAME_RE,
                    hint="dotted lower-snake, e.g. `mc.queue_depth`",
                )
            elif func.attr == "span":
                yield from self._check_name(
                    module, node, first_arg(node, keyword="kind", position=2),
                    kind="span kind", method="span",
                    convention=SPAN_KIND_RE,
                    hint="one upper-snake token, e.g. `SAUM`",
                )

    def _check_name(self, module: ModuleSource, node: ast.Call,
                    name_arg: Optional[ast.expr], kind: str, method: str,
                    convention: re.Pattern, hint: str) -> Iterator[Finding]:
        if name_arg is None:
            return
        literal = constant_str(name_arg)
        if literal is None:
            yield self.finding(
                "OBS001", module, name_arg,
                f"non-literal {kind} passed to .{method}(): the series "
                "namespace must be closed and greppable — pass a string "
                "literal (and pre-resolve the handle once if the site is "
                "hot)",
            )
        elif not convention.match(literal):
            yield self.finding(
                "OBS002", module, name_arg,
                f"{kind} {literal!r} breaks the registry convention "
                f"({hint})",
            )
