"""Service-clock pass: wall-clock quarantine inside :mod:`repro.svc`.

The sweep service's core guarantee is deterministic scheduling — dispatch
order is a pure function of ``(priority, submit sequence)``. The easiest
way to lose that guarantee is for some queue or scheduling path to grow a
casual ``time.time()`` read or a ``time.sleep()`` backoff. This pass
holds the package to the design in :mod:`repro.svc.clock`:

* ``SVC001`` — direct host-clock access (``time.time``/``monotonic``/
  ``perf_counter``/..., ``datetime.now``/``utcnow``/``today``, and
  ``time.sleep``) anywhere in :mod:`repro.svc` *except* the quarantined
  ``svc/clock.py`` itself. Heartbeat ages and wait timeouts go through
  the :class:`~repro.svc.clock.Clock` object; everything else in the
  package must not know what time it is.

This is the service-layer sibling of ``DET001``: DET guards simulated
behaviour, SVC001 guards scheduling determinism.
"""

from __future__ import annotations

import ast
from typing import Iterator, Tuple

from repro.lint.astutil import call_name
from repro.lint.base import LintPass, ModuleSource
from repro.lint.findings import Finding, Rule

#: time.* attributes that read the host clock or block on it.
_CLOCK_TIME_ATTRS = frozenset({
    "time", "time_ns", "monotonic", "monotonic_ns", "perf_counter",
    "perf_counter_ns", "process_time", "process_time_ns", "clock",
    "sleep",
})

#: datetime-ish constructors that read the host clock.
_CLOCK_DATETIME_ATTRS = frozenset({"now", "utcnow", "today"})

#: The one module allowed to touch the host clock: the quarantine itself.
_QUARANTINE: Tuple[str, ...] = ("svc", "clock")


class SvcClockPass(LintPass):
    """Flags host-clock access outside the svc quarantine (``SVC001``)."""

    name = "svc-clock"
    rules: Tuple[Rule, ...] = (
        Rule("SVC001", "svc-wall-clock",
             "host-clock access in repro.svc outside the Clock quarantine"),
    )

    def applies_to(self, module: ModuleSource) -> bool:
        return module.in_package("svc") and module.parts != _QUARANTINE

    def check(self, module: ModuleSource) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            parts = call_name(node)
            if not parts:
                continue
            if (
                len(parts) == 2
                and parts[0] == "time"
                and parts[1] in _CLOCK_TIME_ATTRS
            ):
                yield self.finding(
                    "SVC001", module, node,
                    f"host-clock access `{'.'.join(parts)}` in repro.svc; "
                    "scheduling must stay a pure function of (priority, "
                    "submit sequence) — route heartbeat/timeout time through "
                    "repro.svc.clock.CLOCK",
                )
            elif (
                parts[-1] in _CLOCK_DATETIME_ATTRS
                and "datetime" in parts[:-1]
            ) or (
                len(parts) == 2 and parts[0] == "date"
                and parts[1] == "today"
            ):
                yield self.finding(
                    "SVC001", module, node,
                    f"host-clock read `{'.'.join(parts)}` in repro.svc; "
                    "route wall-clock access through repro.svc.clock.CLOCK",
                )
