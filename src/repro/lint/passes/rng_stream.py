"""RNG-stream discipline pass: every generator flows from a managed seed.

The reproduction's seeding convention (:mod:`repro.sim.rng`) derives every
stream from a single root seed by name, and the batched security kernels
spawn via ``np.random.SeedSequence``. A generator constructed from a bare
literal (``default_rng(0)``) silently aliases any other literal-0 stream,
and one constructed with *no* seed (``random.Random()``,
``default_rng()``) pulls OS entropy — the run is unrepeatable.

* ``RNG001`` literal seed: the seed argument is a numeric constant. Derive
  it from ``RngStreams.integer_seed(name)``, ``_child_seed``, or a
  ``SeedSequence`` parameter instead.
* ``RNG002`` unseeded construction: no seed argument at all.

Any non-constant seed expression (a parameter, an attribute, a derivation
call, arithmetic on a seed) is accepted: the pass enforces *flow from a
parameter or stream*, not a particular spelling.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional, Tuple

from repro.lint.astutil import call_name
from repro.lint.base import LintPass, ModuleSource
from repro.lint.findings import Finding, Rule

#: Callee suffixes that construct a generator from a seed-ish first arg.
_CONSTRUCTORS = ("default_rng", "Random", "RandomState", "SeedSequence")


def _constructor_of(parts: Tuple[str, ...]) -> Optional[str]:
    tail = parts[-1]
    if tail not in _CONSTRUCTORS:
        return None
    if tail == "Random":
        # ``random.Random`` or a bare ``Random`` import; leave user classes
        # named ``*.Random`` alone only when clearly namespaced elsewhere.
        if len(parts) == 1 or parts[0] in ("random",):
            return "Random"
        return None
    return tail


class RngStreamPass(LintPass):
    """Flags literal-seeded and unseeded RNG constructions (``RNG001``/``RNG002``)."""

    name = "rng-stream"
    rules: Tuple[Rule, ...] = (
        Rule("RNG001", "rng-literal-seed",
             "RNG constructed from a bare literal seed"),
        Rule("RNG002", "rng-unseeded",
             "RNG constructed without a seed (entropy/clock-seeded)"),
    )

    def check(self, module: ModuleSource) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            parts = call_name(node)
            if not parts:
                continue
            ctor = _constructor_of(parts)
            if ctor is None:
                continue
            seed = node.args[0] if node.args else None
            if seed is None:
                for kw in node.keywords:
                    if kw.arg in ("seed", "x", "entropy"):
                        seed = kw.value
                        break
            if seed is None:
                yield self.finding(
                    "RNG002", module, node,
                    f"`{'.'.join(parts)}()` with no seed draws OS entropy: "
                    "the run cannot be reproduced; derive the seed from "
                    "repro.sim.rng.RngStreams or a SeedSequence parameter",
                )
            elif isinstance(seed, ast.Constant) and isinstance(
                seed.value, (int, float)
            ):
                yield self.finding(
                    "RNG001", module, node,
                    f"`{'.'.join(parts)}({seed.value!r})` seeds from a bare "
                    "literal: it aliases every other stream built from the "
                    "same constant and bypasses the root-seed derivation; "
                    "use RngStreams.integer_seed(name) or a SeedSequence "
                    "parameter",
                )
