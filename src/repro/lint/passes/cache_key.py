"""Cache-key soundness pass: every read job field reaches its key.

The result cache (PR 1/4/9) keys each job by an explicit payload built in
``job_key``/``security_job_key``/``campaign_job_key``. The contract is
semantic, not syntactic: *any field the execution path reads can change
behaviour, so it must enter the key* — otherwise two behaviourally
different jobs collide on one cache entry and the sweep silently serves
the wrong result. A field can legitimately stay out of the key only when
it provably cannot change simulated behaviour (``backend`` selects an
equivalent kernel, ``segment_cycles`` a drain boundary), and that claim
must be written down where it can be audited:

* ``KEY001`` — a dataclass field of a keyed job type is read somewhere on
  the execution path (interprocedurally, through the call graph) but
  never reaches the key function's payload, and is not declared
  ``# repro: key-blind[field]`` on the field's definition.
* ``KEY002`` — a ``key-blind`` pragma that has gone stale: it names a
  field the key function covers after all, or a field that no longer
  exists. Stale exemptions are as dangerous as missing ones — they
  train readers to ignore the pragma.

Key coverage understands the two payload idioms the tree uses: explicit
dict literals (``{"workload": job.workload, ...}``) and the
``asdict(job)`` copy minus *unconditional* top-level ``.pop("field")``
statements (a pop nested under ``if`` still reaches the payload on some
path, so it counts as keyed).
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

from repro.lint.base import ModuleSource, ProjectLintPass
from repro.lint.dataflow import attribute_reads, field_coverage
from repro.lint.findings import Finding, Rule
from repro.lint.graph import ClassInfo, FunctionInfo, ProjectIndex

#: The keyed job contracts: (dataclass name, key-function name). Both are
#: looked up by bare name project-wide, so fixture trees exercise the pass
#: without replicating the real module layout; a contract whose class or
#: key function is absent from the scanned set is skipped silently.
KEYED_CONTRACTS: Tuple[Tuple[str, str], ...] = (
    ("Job", "job_key"),
    ("SecurityJob", "security_job_key"),
    ("CampaignJob", "campaign_job_key"),
)


class CacheKeyPass(ProjectLintPass):
    """Flags key-blind field reads (``KEY001``) and stale pragmas (``KEY002``)."""

    name = "cache-key"
    rules: Tuple[Rule, ...] = (
        Rule("KEY001", "cache-key-blind-read",
             "job field read on the execution path but absent from the "
             "cache key and not declared key-blind"),
        Rule("KEY002", "stale-key-blind",
             "key-blind pragma naming a field that is keyed or gone"),
    )

    def check_project(self, project: ProjectIndex) -> Iterator[Finding]:
        for class_name, key_name in KEYED_CONTRACTS:
            cls = _unique_class(project, class_name)
            key_fn = _unique_function(project, key_name)
            if cls is None or key_fn is None or not key_fn.params:
                continue
            fields = set(cls.fields)
            keyed = field_coverage(key_fn, key_fn.params[0], fields).covered
            reads = {
                access.attr
                for access in attribute_reads(project, cls)
                if access.attr in fields
            }
            declared = _declared_key_blind(cls)
            for field_name in sorted(reads - keyed - set(declared)):
                node = cls.fields[field_name]
                yield self.finding(
                    "KEY001", cls.module, node,
                    f"{class_name}.{field_name} is read on the execution "
                    f"path but never reaches {key_name}(); key it or "
                    f"declare `# repro: key-blind[{field_name}]` on the "
                    "field with the reason it cannot affect behaviour",
                )
            for field_name, lineno in sorted(declared.items()):
                if field_name not in fields:
                    yield _pragma_finding(
                        cls.module, lineno,
                        f"key-blind pragma names `{field_name}`, which is "
                        f"not a field of {class_name}; remove or fix the "
                        "pragma",
                    )
                elif field_name in keyed:
                    yield _pragma_finding(
                        cls.module, lineno,
                        f"stale key-blind pragma: {class_name}."
                        f"{field_name} is covered by {key_name}() after "
                        "all; remove the pragma so the exemption list "
                        "stays trustworthy",
                    )


def _unique_class(
    project: ProjectIndex, name: str
) -> Optional[ClassInfo]:
    candidates = project.classes_by_name.get(name, [])
    return candidates[0] if len(candidates) == 1 else None


def _unique_function(
    project: ProjectIndex, name: str
) -> Optional[FunctionInfo]:
    candidates: List[FunctionInfo] = [
        f for f in project.functions_by_name.get(name, [])
        if f.class_name is None
    ]
    return candidates[0] if len(candidates) == 1 else None


def _declared_key_blind(cls: ClassInfo) -> Dict[str, int]:
    """``field -> pragma line`` for key-blind pragmas inside the class body."""
    module: ModuleSource = cls.module
    start = cls.node.lineno
    stop = cls.node.end_lineno or start
    declared: Dict[str, int] = {}
    for lineno, names in module.key_blind.items():
        if start <= lineno <= stop:
            for name in names:
                declared[name] = lineno
    return declared


def _pragma_finding(module: ModuleSource, lineno: int, message: str) -> Finding:
    return Finding(
        rule_id="KEY002",
        path=module.path,
        line=lineno,
        message=message,
    )
