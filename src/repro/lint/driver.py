"""The lint driver: discover, parse, run passes, suppress, classify.

The pipeline per run:

1. discover ``.py`` files under the given paths (skipping ``__pycache__``),
2. parse each into a :class:`~repro.lint.base.ModuleSource`,
3. run every pass that applies, deduplicating identical findings,
4. drop findings covered by a same-line ``# repro: lint-ignore[rule]``
   pragma (kept in the result, marked ``suppressed``),
5. downgrade findings matched by the checked-in baseline to warnings,
6. report stale baseline entries so the suppression file shrinks as the
   code heals.

The exit contract (used by ``repro lint`` and CI): new findings fail,
baselined findings warn, suppressed findings are invisible by default.
"""

from __future__ import annotations

import os
from typing import Dict, Iterable, List, Optional, Sequence

from repro.lint.base import LintPass, ModuleSource, ProjectLintPass
from repro.lint.baseline import Baseline
from repro.lint.findings import Finding, LintResult, SUPPRESSED
from repro.lint.graph import build_project
from repro.lint.passes import ALL_PASSES, ALL_RULES


def discover_files(paths: Sequence[str]) -> List[str]:
    """Every ``.py`` file under ``paths`` (files pass through), sorted."""
    out: List[str] = []
    for path in paths:
        if os.path.isfile(path):
            out.append(path)
            continue
        for root, dirs, files in os.walk(path):
            dirs[:] = sorted(
                d for d in dirs if d != "__pycache__" and not d.startswith(".")
            )
            for name in sorted(files):
                if name.endswith(".py"):
                    out.append(os.path.join(root, name))
    return sorted(dict.fromkeys(out))


def _display_path(path: str, relative_to: Optional[str]) -> str:
    """Stable forward-slash path for reports and baseline matching."""
    base = relative_to if relative_to is not None else os.getcwd()
    try:
        rel = os.path.relpath(path, base)
    except ValueError:  # different drive on Windows
        rel = path
    if not rel.startswith(".."):
        path = rel
    return path.replace(os.sep, "/")


def _select_passes(
    passes: Optional[Iterable[LintPass]],
    rule_filter: Optional[Sequence[str]],
) -> List[LintPass]:
    selected = list(passes) if passes is not None else list(ALL_PASSES)
    if not rule_filter:
        return selected
    filtered = []
    for lint_pass in selected:
        kept = tuple(
            rule for rule in lint_pass.rules
            if any(rule.matches_token(token) for token in rule_filter)
        )
        if kept:
            filtered.append(lint_pass)
    return filtered


def lint_module(
    module: ModuleSource,
    passes: Optional[Iterable[LintPass]] = None,
    rule_filter: Optional[Sequence[str]] = None,
) -> List[Finding]:
    """Run the passes over one parsed module; pragma-classify, dedupe, sort.

    With ``rule_filter``, only findings for the named rules (by id or name)
    are kept — the passes still run whole, the filter applies to output.
    """
    findings: List[Finding] = []
    seen: set = set()
    for lint_pass in _select_passes(passes, None):
        for finding in lint_pass.run(module):
            key = (finding.rule_id, finding.path, finding.line, finding.col,
                   finding.message)
            if key in seen:
                continue
            seen.add(key)
            if rule_filter and not any(
                ALL_RULES[finding.rule_id].matches_token(token)
                for token in rule_filter
                if finding.rule_id in ALL_RULES
            ):
                continue
            tokens = module.ignored_rules(finding.line, finding.end_line)
            if tokens:
                rule = ALL_RULES.get(finding.rule_id)
                if rule is not None and any(
                    rule.matches_token(token) for token in tokens
                ):
                    finding.status = SUPPRESSED
            findings.append(finding)
    findings.sort(key=lambda f: f.sort_key())
    return findings


def lint_source(
    text: str,
    path: str = "src/repro/sim/fixture.py",
    passes: Optional[Iterable[LintPass]] = None,
) -> List[Finding]:
    """Lint a source snippet as if it lived at ``path`` (test helper)."""
    return lint_module(ModuleSource.from_text(text, path), passes=passes)


def _project_findings(
    modules: Sequence[ModuleSource],
    passes: Optional[Iterable[LintPass]] = None,
    rule_filter: Optional[Sequence[str]] = None,
) -> List[Finding]:
    """Run the whole-program passes once over ``modules``.

    The :class:`~repro.lint.graph.ProjectIndex` is built once and shared by
    every project pass — graph construction dominates the interprocedural
    cost, so this is the lever that keeps the full-tree run under the CI
    wall-time budget. Findings are mapped back to their module for pragma
    suppression and context, exactly like per-module findings.
    """
    selected = [
        p for p in _select_passes(passes, rule_filter)
        if isinstance(p, ProjectLintPass)
    ]
    if not selected:
        return []
    project = build_project(modules)
    by_path = {module.path: module for module in modules}
    findings: List[Finding] = []
    seen: set = set()
    for lint_pass in selected:
        for finding in lint_pass.check_project(project):
            key = (finding.rule_id, finding.path, finding.line, finding.col,
                   finding.message)
            if key in seen:
                continue
            seen.add(key)
            if rule_filter and not any(
                ALL_RULES[finding.rule_id].matches_token(token)
                for token in rule_filter
                if finding.rule_id in ALL_RULES
            ):
                continue
            module = by_path.get(finding.path)
            if module is not None:
                finding.context = module.line_text(finding.line)
                tokens = module.ignored_rules(finding.line, finding.end_line)
                if tokens:
                    rule = ALL_RULES.get(finding.rule_id)
                    if rule is not None and any(
                        rule.matches_token(token) for token in tokens
                    ):
                        finding.status = SUPPRESSED
            findings.append(finding)
    findings.sort(key=lambda f: f.sort_key())
    return findings


def lint_project(
    files: Dict[str, str],
    passes: Optional[Iterable[LintPass]] = None,
    rule_filter: Optional[Sequence[str]] = None,
) -> List[Finding]:
    """Lint an in-memory file set with the whole-program passes (test helper).

    ``files`` maps display paths to source text. Only project passes run by
    default, so fixture trees exercise KEY/WIRE/CKPT002/ASYNC rules without
    noise from the per-module passes; pass ``passes`` explicitly to mix in
    per-module ones (they run per file first, then the project passes).
    """
    modules = [
        ModuleSource.from_text(text, path)
        for path, text in sorted(files.items())
    ]
    findings: List[Finding] = []
    if passes is not None:
        for module in modules:
            findings.extend(
                lint_module(module, passes=passes, rule_filter=rule_filter)
            )
    findings.extend(_project_findings(modules, passes, rule_filter))
    findings.sort(key=lambda f: f.sort_key())
    return findings


def run_lint(
    paths: Sequence[str],
    baseline: Optional[Baseline] = None,
    passes: Optional[Iterable[LintPass]] = None,
    rule_filter: Optional[Sequence[str]] = None,
    relative_to: Optional[str] = None,
    project: bool = True,
) -> LintResult:
    """Lint every file under ``paths`` and classify against ``baseline``.

    ``project=False`` skips the whole-program passes (no call graph is
    built) — the fast pre-commit mode behind ``repro lint --changed`` and
    ``make lint-fast``; CI always runs the full interprocedural set.
    """
    result = LintResult()
    all_findings: List[Finding] = []
    modules: List[ModuleSource] = []
    for filename in discover_files(paths):
        with open(filename, "r", encoding="utf-8") as handle:
            text = handle.read()
        display = _display_path(filename, relative_to)
        try:
            module = ModuleSource.from_text(text, display)
        except SyntaxError as exc:
            finding = Finding(
                rule_id="PARSE",
                path=display,
                line=exc.lineno or 1,
                message=f"file does not parse: {exc.msg}",
            )
            all_findings.append(finding)
            result.files_scanned += 1
            continue
        modules.append(module)
        all_findings.extend(
            lint_module(module, passes=passes, rule_filter=rule_filter)
        )
        result.files_scanned += 1
    if project:
        all_findings.extend(_project_findings(modules, passes, rule_filter))
    if baseline is not None:
        active = [f for f in all_findings if f.status != SUPPRESSED]
        result.stale_baseline = baseline.apply(active)
    all_findings.sort(key=lambda f: f.sort_key())
    result.findings = all_findings
    return result


def load_baseline(path: Optional[str]) -> Optional[Baseline]:
    """Load ``path`` when given/present; missing default is simply no baseline."""
    if path is None:
        return None
    if not os.path.exists(path):
        return None
    return Baseline.load(path)
