"""``repro.lint`` — determinism & contract static analysis for the repro tree.

An AST-based framework with five built-in passes that enforce, at analysis
time, the invariants the differential test suites can only check after a
violation ships:

* **determinism** (``DET001``–``DET005``) — no wall clocks, global RNG
  state, stray ``os.environ`` reads, ``id()`` keys, or unordered set
  iteration in sim-critical packages;
* **rng-stream** (``RNG001``/``RNG002``) — every RNG construction flows
  from :class:`repro.sim.rng.RngStreams` or a ``SeedSequence`` parameter;
* **checkpoint-contract** (``CKPT001``) — mutable sim-critical classes
  declare a state contract (the runtime half lives in
  :mod:`repro.ckpt.contract`, which shares this package's AST walk);
* **schedulable-callback** (``CB001``) — event-heap callbacks are bound
  methods or partials, never closures;
* **obs-naming** (``OBS001``/``OBS002``) — metric/span names are literal
  and convention-shaped.

On top of the per-module passes sits a whole-program layer
(:mod:`repro.lint.graph` + :mod:`repro.lint.dataflow`) whose passes see
the full ``src/repro`` tree through one call graph per run:

* **cache-key** (``KEY001``/``KEY002``) — every job field read on the
  execution path reaches its cache key, or is declared
  ``# repro: key-blind[field]``;
* **wire-schema** (``WIRE001``/``WIRE002``) — job dataclasses round-trip
  through their ``*_to_wire``/``*_from_wire`` twins, and daemon/client
  agree on the protocol op set;
* **checkpoint-flow** (``CKPT002``) — self-attributes written by helpers
  the object escapes to are covered by the ``@checkpointable`` contract;
* **async-blocking** (``ASYNC001``) — nothing reachable from the
  ``repro.svc`` event loop blocks it.

Run it as ``python -m repro lint [paths]`` (or ``make lint``); suppress a
justified finding inline with ``# repro: lint-ignore[rule-id]`` or in the
checked-in ``lint-baseline.json``. ``repro lint --changed`` (or ``make
lint-fast``) lints only git-modified files and skips the whole-program
layer for quick pre-commit runs. See ``docs/static-analysis.md`` for the
rule catalog.

This package (like :mod:`repro.ckpt.contract`, which imports it) stays
dependency-free within ``repro`` so any layer can use it without cycles.
"""

from repro.lint.base import LintPass, ModuleSource, ProjectLintPass
from repro.lint.baseline import Baseline, BaselineEntry, BaselineError
from repro.lint.driver import (
    discover_files,
    lint_module,
    lint_project,
    lint_source,
    load_baseline,
    run_lint,
)
from repro.lint.findings import Finding, LintResult, Rule
from repro.lint.graph import ProjectIndex, build_project
from repro.lint.passes import ALL_PASSES, ALL_RULES
from repro.lint.report import FORMATS, render

__all__ = [
    "ALL_PASSES",
    "ALL_RULES",
    "Baseline",
    "BaselineEntry",
    "BaselineError",
    "FORMATS",
    "Finding",
    "LintPass",
    "LintResult",
    "ModuleSource",
    "ProjectIndex",
    "ProjectLintPass",
    "Rule",
    "build_project",
    "discover_files",
    "lint_module",
    "lint_project",
    "lint_source",
    "load_baseline",
    "render",
    "run_lint",
]
