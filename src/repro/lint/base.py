"""Pass infrastructure: parsed module sources, pragmas, and the pass ABC.

A :class:`ModuleSource` is one parsed file plus everything a pass needs to
scope itself (the module's dotted path under ``repro``) and everything the
driver needs to suppress findings (the per-line pragma map). Passes are
stateless visitors: ``run(module)`` yields findings; the driver owns
suppression and reporting.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import PurePath
from typing import (
    TYPE_CHECKING, Dict, FrozenSet, Iterable, Iterator, List, Optional, Tuple,
)

from repro.lint.findings import ERROR, Finding, Rule

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (graph imports base)
    from repro.lint.graph import ProjectIndex

#: Packages whose modules feed simulated behaviour: a nondeterminism here
#: silently invalidates every seed-keyed result. ``security.kernels`` is the
#: one sim-critical module inside an otherwise analytical package.
SIM_CRITICAL_PACKAGES: Tuple[str, ...] = (
    "sim", "mc", "dram", "core", "rfm", "trackers",
)
SIM_CRITICAL_MODULES: Tuple[Tuple[str, ...], ...] = (
    ("security", "kernels"),
)

#: ``# repro: lint-ignore[DET003]`` / ``# repro: lint-ignore[env-read, RNG001]``
PRAGMA_RE = re.compile(
    r"#\s*repro:\s*lint-ignore\[([A-Za-z0-9_\-\*,\s]+)\]"
)

#: ``# repro: key-blind[backend]`` / ``# repro: key-blind[backend, segment_cycles]``
#: — declares that the dataclass field(s) on this line are *deliberately*
#: excluded from the cache key, exempting them from KEY001. Unlike
#: ``lint-ignore`` this names fields, not rules, so the exemption is
#: auditable: KEY002 flags pragmas naming fields that are keyed after all.
KEY_BLIND_RE = re.compile(
    r"#\s*repro:\s*key-blind\[([A-Za-z0-9_,\s]+)\]"
)


def module_parts(path: str) -> Tuple[str, ...]:
    """Dotted-module parts of ``path`` relative to the ``repro`` package.

    ``src/repro/mc/controller.py`` -> ``("mc", "controller")``. Paths not
    under a ``repro`` directory fall back to their bare stem, so fixture
    files in tests can still opt into a package by spelling a synthetic
    path like ``src/repro/sim/fixture.py``.
    """
    parts = PurePath(path).parts
    if "repro" in parts:
        rel = parts[len(parts) - 1 - parts[::-1].index("repro"):]
        rel = rel[1:]
    else:
        rel = parts[-1:]
    rel = tuple(p[:-3] if p.endswith(".py") else p for p in rel)
    return tuple(p for p in rel if p != "__init__")


def parse_pragmas(lines: Iterable[str]) -> Dict[int, FrozenSet[str]]:
    """Map 1-based line numbers to the rule tokens ignored on that line."""
    pragmas: Dict[int, FrozenSet[str]] = {}
    for lineno, line in enumerate(lines, start=1):
        match = PRAGMA_RE.search(line)
        if match:
            tokens = frozenset(
                t.strip().lower() for t in match.group(1).split(",")
                if t.strip()
            )
            if tokens:
                pragmas[lineno] = tokens
    return pragmas


def parse_key_blind(lines: Iterable[str]) -> Dict[int, FrozenSet[str]]:
    """Map 1-based line numbers to field names declared key-blind there.

    Field names keep their case (they must match dataclass field names
    exactly), unlike ``lint-ignore`` tokens which are case-folded.
    """
    blind: Dict[int, FrozenSet[str]] = {}
    for lineno, line in enumerate(lines, start=1):
        match = KEY_BLIND_RE.search(line)
        if match:
            names = frozenset(
                t.strip() for t in match.group(1).split(",") if t.strip()
            )
            if names:
                blind[lineno] = names
    return blind


@dataclass
class ModuleSource:
    """One parsed source file, ready for the passes."""

    path: str
    text: str
    tree: ast.AST
    lines: List[str] = field(default_factory=list)
    parts: Tuple[str, ...] = ()
    pragmas: Dict[int, FrozenSet[str]] = field(default_factory=dict)
    #: 1-based line -> dataclass fields declared ``key-blind`` on that line.
    key_blind: Dict[int, FrozenSet[str]] = field(default_factory=dict)

    @classmethod
    def from_text(cls, text: str, path: str) -> "ModuleSource":
        lines = text.splitlines()
        return cls(
            path=path,
            text=text,
            tree=ast.parse(text, filename=path),
            lines=lines,
            parts=module_parts(path),
            pragmas=parse_pragmas(lines),
            key_blind=parse_key_blind(lines),
        )

    @property
    def is_sim_critical(self) -> bool:
        if self.parts and self.parts[0] in SIM_CRITICAL_PACKAGES:
            return True
        return self.parts in SIM_CRITICAL_MODULES

    def in_package(self, package: str) -> bool:
        """True when the module sits under ``package`` within repro."""
        return bool(self.parts) and self.parts[0] == package

    def line_text(self, lineno: int) -> str:
        """The stripped source text of 1-based ``line`` (empty if absent)."""
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1].strip()
        return ""

    def ignored_rules(self, line: int, end_line: Optional[int]) -> FrozenSet[str]:
        """Union of pragma tokens anywhere in ``[line, end_line]``."""
        stop = end_line if end_line and end_line >= line else line
        tokens: set = set()
        for lineno in range(line, stop + 1):
            tokens |= self.pragmas.get(lineno, frozenset())
        return frozenset(tokens)

    def key_blind_fields(
        self, line: int, end_line: Optional[int] = None
    ) -> FrozenSet[str]:
        """Union of key-blind field names anywhere in ``[line, end_line]``."""
        stop = end_line if end_line and end_line >= line else line
        names: set = set()
        for lineno in range(line, stop + 1):
            names |= self.key_blind.get(lineno, frozenset())
        return frozenset(names)


class LintPass:
    """Base class for one analysis pass.

    Subclasses set ``name``/``rules`` and implement :meth:`check`; the
    shared :meth:`run` handles scoping and fills in per-finding context.
    """

    #: Pass name used in reports and ``--pass`` filters.
    name: str = ""
    #: The rules this pass can emit.
    rules: Tuple[Rule, ...] = ()

    def applies_to(self, module: ModuleSource) -> bool:
        """Whether this pass scans ``module`` at all (default: yes)."""
        return True

    def check(self, module: ModuleSource) -> Iterator[Finding]:
        """Yield the findings this pass produces for ``module``."""
        raise NotImplementedError

    def run(self, module: ModuleSource) -> List[Finding]:
        """Run the pass over ``module``, filling in finding context lines."""
        if not self.applies_to(module):
            return []
        findings = []
        for finding in self.check(module):
            finding.context = module.line_text(finding.line)
            findings.append(finding)
        return findings

    # ------------------------------------------------------------------
    def rule(self, rule_id: str) -> Rule:
        """Look up one of this pass's rules by id."""
        for rule in self.rules:
            if rule.rule_id == rule_id:
                return rule
        raise KeyError(f"pass {self.name!r} has no rule {rule_id!r}")

    def finding(self, rule_id: str, module: ModuleSource, node: ast.AST,
                message: str) -> Finding:
        """Build a finding anchored at ``node``."""
        return Finding(
            rule_id=rule_id,
            path=module.path,
            line=getattr(node, "lineno", 1),
            end_line=getattr(node, "end_lineno", None),
            col=getattr(node, "col_offset", 0),
            message=message,
            severity=ERROR,
        )


class ProjectLintPass(LintPass):
    """Base class for whole-program passes.

    A project pass sees every parsed module at once through a
    :class:`~repro.lint.graph.ProjectIndex` instead of one module at a
    time, so it can follow calls and dataflow across files. The driver
    builds the index once per run and calls :meth:`check_project`; the
    per-module :meth:`check` never runs (``applies_to`` is False).

    Findings carry the path of whatever module they anchor in; the driver
    maps them back to that module for pragma suppression and context.
    """

    def applies_to(self, module: ModuleSource) -> bool:
        return False

    def check(self, module: ModuleSource) -> Iterator[Finding]:
        return iter(())

    def check_project(self, project: "ProjectIndex") -> Iterator[Finding]:
        """Yield findings for the whole project."""
        raise NotImplementedError
