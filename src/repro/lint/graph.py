"""Whole-program symbol table and call graph for the project passes.

A :class:`ProjectIndex` is built once per lint run from every parsed
:class:`~repro.lint.base.ModuleSource` and answers the questions the
interprocedural passes ask: *which functions and classes exist, who calls
whom, and what is reachable from here?* Everything is stdlib-``ast``
name resolution — no imports are executed — so the index is safe to build
over broken or hostile fixture trees and costs well under a second for
the full ``src/repro`` tree (the CI budget pins it below ten).

Resolution is deliberately conservative: an edge is recorded only when
the callee can be named statically (``self.helper(...)``, a module-level
function, an ``from repro.x import y`` binding, or a ``mod.attr`` chain
through an import alias). Unresolvable calls keep their dotted name parts
on the :class:`CallSite` so passes can still pattern-match on them.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple, Union

from repro.lint.base import ModuleSource

#: The two def-statement node flavours the index records.
FunctionNode = Union[ast.FunctionDef, ast.AsyncFunctionDef]


def _annotation_name(node: Optional[ast.expr]) -> Optional[str]:
    """The trailing identifier of a parameter annotation, if nameable.

    ``job: Job``, ``job: "SecurityJob"``, ``job: runner.CampaignJob`` and
    ``job: Optional[Job]`` all resolve to the bare class name; anything
    else (unions of several classes, subscripted containers) returns None.
    """
    if node is None:
        return None
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        # A string annotation: take the last dotted identifier.
        text = node.value.strip().strip('"').strip("'")
        if text.endswith("]") and "[" in text:  # Optional["Job"] spelled oddly
            text = text[text.index("[") + 1:-1].strip().strip('"').strip("'")
        name = text.split("[")[0].split(".")[-1].strip()
        return name if name.isidentifier() else None
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Subscript):
        # Optional[Job] / "Optional[Job]": look inside one subscript level.
        outer = _annotation_name(node.value)
        if outer == "Optional" and isinstance(node.slice, ast.expr):
            return _annotation_name(node.slice)
    return None


def own_statements(node: ast.AST) -> Iterator[ast.AST]:
    """Walk ``node``'s body without descending into nested def/class.

    A nested function's body only runs when the nested function is called,
    so its statements must not be attributed to the enclosing function;
    nested defs get their own :class:`FunctionInfo` only when they are
    module-level or class methods (lexical helpers stay opaque — calls to
    them simply do not resolve, which is the conservative direction).
    """
    stack: List[ast.AST] = list(ast.iter_child_nodes(node))
    while stack:
        child = stack.pop()
        yield child
        if isinstance(
            child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef, ast.Lambda)
        ):
            continue
        stack.extend(ast.iter_child_nodes(child))


@dataclass
class FunctionInfo:
    """One indexed function or method."""

    qname: str
    name: str
    node: FunctionNode
    module: ModuleSource
    class_name: Optional[str] = None
    is_async: bool = False
    #: Positional-or-keyword parameter names, in order (``self`` included).
    params: Tuple[str, ...] = ()
    #: Parameter name -> trailing annotation identifier (``"Job"``).
    annotations: Dict[str, str] = field(default_factory=dict)

    @property
    def is_method(self) -> bool:
        return self.class_name is not None


@dataclass
class CallSite:
    """One call expression inside an indexed function."""

    node: ast.Call
    caller: str
    #: Dotted callee name parts (``("self", "helper")``), empty when the
    #: callee has no static name (a call on a call, a subscript, ...).
    parts: Tuple[str, ...]
    #: Fully-resolved callee qname, when resolution succeeded.
    callee: Optional[str] = None


@dataclass
class ClassInfo:
    """One indexed class definition."""

    qname: str
    name: str
    node: ast.ClassDef
    module: ModuleSource
    methods: Dict[str, FunctionInfo] = field(default_factory=dict)
    #: Trailing identifiers of base-class expressions.
    bases: Tuple[str, ...] = ()
    #: Trailing identifiers of decorators.
    decorators: Tuple[str, ...] = ()
    #: Decorator Call nodes, for passes that read decorator arguments.
    decorator_calls: Tuple[ast.Call, ...] = ()
    is_dataclass: bool = False
    #: Annotated class-body fields (dataclass fields), name -> AnnAssign.
    fields: Dict[str, ast.AnnAssign] = field(default_factory=dict)


def _index_function(
    node: FunctionNode,
    module: ModuleSource,
    qname: str,
    class_name: Optional[str],
) -> FunctionInfo:
    args = node.args
    params: List[str] = [a.arg for a in args.posonlyargs + args.args]
    annotations: Dict[str, str] = {}
    for a in args.posonlyargs + args.args + args.kwonlyargs:
        name = _annotation_name(a.annotation)
        if name is not None:
            annotations[a.arg] = name
    return FunctionInfo(
        qname=qname,
        name=node.name,
        node=node,
        module=module,
        class_name=class_name,
        is_async=isinstance(node, ast.AsyncFunctionDef),
        params=tuple(params),
        annotations=annotations,
    )


class ProjectIndex:
    """Symbol table + call graph over one set of parsed modules.

    Build it once per run with :func:`build_project`; every query after
    construction is a dictionary lookup or a cached BFS.
    """

    def __init__(self, modules: Sequence[ModuleSource]):
        #: module parts -> source (last write wins on duplicate parts).
        self.modules: Dict[Tuple[str, ...], ModuleSource] = {}
        self.functions: Dict[str, FunctionInfo] = {}
        self.classes: Dict[str, ClassInfo] = {}
        self.functions_by_name: Dict[str, List[FunctionInfo]] = {}
        self.classes_by_name: Dict[str, List[ClassInfo]] = {}
        #: module parts -> local name -> absolute target parts under repro.
        self.imports: Dict[Tuple[str, ...], Dict[str, Tuple[str, ...]]] = {}
        self._calls: Dict[str, List[CallSite]] = {}
        for module in modules:
            self._index_module(module)
        for module in modules:
            self._collect_calls(module)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def _index_module(self, module: ModuleSource) -> None:
        self.modules[module.parts] = module
        bindings: Dict[str, Tuple[str, ...]] = {}
        for node in ast.iter_child_nodes(module.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    parts = tuple(alias.name.split("."))
                    if parts and parts[0] == "repro":
                        local = alias.asname or parts[-1]
                        bindings[local] = parts[1:]
            elif isinstance(node, ast.ImportFrom):
                if node.module is None or node.level:
                    continue  # relative imports are not used in this tree
                base = tuple(node.module.split("."))
                if not base or base[0] != "repro":
                    continue
                for alias in node.names:
                    local = alias.asname or alias.name
                    bindings[local] = base[1:] + (alias.name,)
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qname = self._qname(module, node.name)
                info = _index_function(node, module, qname, None)
                self.functions[qname] = info
                self.functions_by_name.setdefault(node.name, []).append(info)
            elif isinstance(node, ast.ClassDef):
                self._index_class(module, node)
        self.imports[module.parts] = bindings

    def _index_class(self, module: ModuleSource, node: ast.ClassDef) -> None:
        qname = self._qname(module, node.name)
        decorators: List[str] = []
        decorator_calls: List[ast.Call] = []
        for dec in node.decorator_list:
            target = dec.func if isinstance(dec, ast.Call) else dec
            parts = _dotted(target)
            if parts:
                decorators.append(parts[-1])
            if isinstance(dec, ast.Call):
                decorator_calls.append(dec)
        bases: List[str] = []
        for base in node.bases:
            parts = _dotted(base)
            if parts:
                bases.append(parts[-1])
        info = ClassInfo(
            qname=qname,
            name=node.name,
            node=node,
            module=module,
            bases=tuple(bases),
            decorators=tuple(decorators),
            decorator_calls=tuple(decorator_calls),
            is_dataclass="dataclass" in decorators
            or "checkpointable_dataclass" in decorators,
        )
        for stmt in node.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                mq = f"{qname}.{stmt.name}"
                method = _index_function(stmt, module, mq, node.name)
                info.methods[stmt.name] = method
                self.functions[mq] = method
                self.functions_by_name.setdefault(stmt.name, []).append(method)
            elif isinstance(stmt, ast.AnnAssign) and isinstance(
                stmt.target, ast.Name
            ):
                info.fields[stmt.target.id] = stmt
        self.classes[qname] = info
        self.classes_by_name.setdefault(node.name, []).append(info)

    @staticmethod
    def _qname(module: ModuleSource, name: str) -> str:
        return ".".join(module.parts + (name,)) if module.parts else name

    # ------------------------------------------------------------------
    # Call graph
    # ------------------------------------------------------------------
    def _collect_calls(self, module: ModuleSource) -> None:
        for info in list(self.functions.values()):
            if info.module is not module or info.qname in self._calls:
                continue
            sites: List[CallSite] = []
            for node in own_statements(info.node):
                if not isinstance(node, ast.Call):
                    continue
                parts = _dotted(node.func) or ()
                sites.append(
                    CallSite(
                        node=node,
                        caller=info.qname,
                        parts=parts,
                        callee=self._resolve(info, parts),
                    )
                )
            self._calls[info.qname] = sites

    def _resolve(
        self, caller: FunctionInfo, parts: Tuple[str, ...]
    ) -> Optional[str]:
        if not parts:
            return None
        module = caller.module
        bindings = self.imports.get(module.parts, {})
        # self.method() -> a method of the caller's class (or named bases).
        if parts[0] == "self" and caller.class_name is not None:
            if len(parts) != 2:
                return None
            return self._resolve_method(module, caller.class_name, parts[1])
        if len(parts) == 1:
            name = parts[0]
            local = self.functions.get(self._qname(module, name))
            if local is not None:
                return local.qname
            target = bindings.get(name)
            if target is not None and ".".join(target) in self.functions:
                return ".".join(target)
            # A constructor call resolves to the class's __init__.
            cls = self.classes.get(self._qname(module, name))
            if cls is None and target is not None:
                cls = self.classes.get(".".join(target))
            if cls is not None and "__init__" in cls.methods:
                return cls.methods["__init__"].qname
            return None
        # mod.func() / Class.method() through an import binding or a
        # same-module class name.
        head = bindings.get(parts[0])
        if head is None and self._qname(module, parts[0]) in self.classes:
            head = module.parts + (parts[0],)
        if head is None:
            return None
        candidate = ".".join(head + parts[1:])
        if candidate in self.functions:
            return candidate
        return None

    def _resolve_method(
        self, module: ModuleSource, class_name: str, method: str
    ) -> Optional[str]:
        seen: Set[str] = set()
        queue: List[str] = [class_name]
        while queue:
            name = queue.pop(0)
            if name in seen:
                continue
            seen.add(name)
            cls = self._class_named(module, name)
            if cls is None:
                continue
            if method in cls.methods:
                return cls.methods[method].qname
            queue.extend(cls.bases)
        return None

    def _class_named(
        self, module: ModuleSource, name: str
    ) -> Optional[ClassInfo]:
        """A class by bare name: same module first, else unique project-wide."""
        local = self.classes.get(self._qname(module, name))
        if local is not None:
            return local
        target = self.imports.get(module.parts, {}).get(name)
        if target is not None:
            imported = self.classes.get(".".join(target))
            if imported is not None:
                return imported
        candidates = self.classes_by_name.get(name, [])
        if len(candidates) == 1:
            return candidates[0]
        return None

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def calls_from(self, qname: str) -> List[CallSite]:
        """Every call site inside function ``qname`` (empty if unknown)."""
        return self._calls.get(qname, [])

    def class_of(self, info: FunctionInfo) -> Optional[ClassInfo]:
        """The class a method belongs to, or None for plain functions."""
        if info.class_name is None:
            return None
        return self._class_named(info.module, info.class_name)

    def functions_in_package(self, package: str) -> List[FunctionInfo]:
        """Every indexed function whose module sits under ``package``."""
        return [
            f for f in self.functions.values()
            if f.module.parts and f.module.parts[0] == package
        ]

    def reachable(
        self,
        roots: Iterable[str],
        package: Optional[str] = None,
    ) -> Dict[str, str]:
        """BFS closure of resolved call edges from ``roots``.

        Returns ``{reached qname: root qname it was first reached from}``
        (roots map to themselves). With ``package``, traversal stays inside
        modules of that top-level package — the right scope for "what can
        the svc event loop end up executing *in svc*".
        """
        origin: Dict[str, str] = {}
        queue: List[str] = []
        for root in roots:
            if root not in origin:
                origin[root] = root
                queue.append(root)
        while queue:
            current = queue.pop(0)
            for site in self.calls_from(current):
                callee = site.callee
                if callee is None or callee in origin:
                    continue
                info = self.functions.get(callee)
                if info is None:
                    continue
                if package is not None and (
                    not info.module.parts or info.module.parts[0] != package
                ):
                    continue
                origin[callee] = origin[current]
                queue.append(callee)
        return origin


def _dotted(node: ast.AST) -> Optional[Tuple[str, ...]]:
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return tuple(reversed(parts))
    return None


def build_project(modules: Sequence[ModuleSource]) -> ProjectIndex:
    """Build the per-run project index (symbol table + call graph)."""
    return ProjectIndex(modules)
