"""Metrics registry: counters, gauges, and fixed-bucket histograms.

Every metric is identified by a ``name`` plus an optional set of labels
(``bank=3``, ``subchannel=0``, ``tracker="MintTracker"``); the registry
hands out one shared instance per ``(name, labels)`` pair, so two
instrumentation points that name the same series accumulate into the same
object. Publishers pre-resolve their metric objects once (at construction
time) and pay only an attribute increment per event on the hot path.

Determinism contract: metric values are derived exclusively from simulated
quantities — integer engine cycles, counts, queue depths. Nothing in this
module may read the wall clock; wall-clock profiling lives in
:mod:`repro.obs.profile` and is kept out of the deterministic snapshot.

Snapshots (:meth:`MetricsRegistry.snapshot`) are plain nested dicts with
stable, sorted keys, so ``json.dumps(snapshot, sort_keys=True)`` is
byte-identical for identical simulations regardless of worker count.
"""

from __future__ import annotations

from collections import Counter as _Counter
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union
from repro.ckpt.contract import checkpointable

LabelItems = Tuple[Tuple[str, Union[int, str]], ...]

#: Default bucket edges (cycles) for latency-ish histograms: powers of two
#: covering a tRP-sized stall up to several tREFI.
LATENCY_EDGES: Tuple[int, ...] = (
    64, 128, 256, 512, 1024, 2048, 4096, 8192, 16384, 32768, 65536,
)

#: Default bucket edges for queue-depth/occupancy histograms.
DEPTH_EDGES: Tuple[int, ...] = (0, 1, 2, 4, 8, 16, 32, 64, 128)


def _label_items(labels: Dict[str, Union[int, str]]) -> LabelItems:
    return tuple(sorted(labels.items()))


def _series_name(name: str, labels: LabelItems) -> str:
    """Stable flat key: ``name`` or ``name{k=v,k2=v2}`` (sorted)."""
    if not labels:
        return name
    inner = ",".join(f"{k}={v}" for k, v in labels)
    return f"{name}{{{inner}}}"


@checkpointable(state=("value",))
class Counter:
    """Monotonically non-decreasing event count. Never negative."""

    __slots__ = ("value",)

    def __init__(self):
        self.value = 0

    def inc(self, n: int = 1) -> None:
        """Add ``n`` (>= 0) events to the count."""
        if n < 0:
            raise ValueError(f"counters only count up, got {n}")
        self.value += n

    def merge(self, other: "Counter") -> None:
        """Accumulate another counter (shard merge); order-insensitive."""
        self.inc(other.value)


@checkpointable(state=("value",))
class Gauge:
    """A point-in-time value (heap depth, final cycle count)."""

    __slots__ = ("value",)

    def __init__(self):
        self.value = 0

    def set(self, value: Union[int, float]) -> None:
        """Record the current value of the observed quantity."""
        self.value = value

    def inc(self, n: Union[int, float] = 1) -> None:
        """Move the gauge up by ``n``."""
        self.value += n

    def dec(self, n: Union[int, float] = 1) -> None:
        """Move the gauge down by ``n``."""
        self.value -= n

    def merge(self, other: "Gauge") -> None:
        """Combine with another shard: keep the most extreme observation.

        Gauges here are "last/peak value" style, and max is commutative
        and associative, so merge order can never matter.
        """
        self.value = max(self.value, other.value)


@checkpointable(
    state=("counts", "sum", "count", "min", "max"),
    const=("edges",),
)
class Histogram:
    """Fixed-bucket histogram: ``counts[i]`` counts values <= ``edges[i]``,
    with one overflow bucket at the end. Also tracks sum/count/min/max so
    means survive the bucketing.

    ``merge`` of two histograms with identical edges adds bucket counts —
    an associative, commutative operation (the property tests in
    ``tests/test_obs.py`` pin this down), which is what makes per-worker
    metric shards safe to combine in any order.
    """

    __slots__ = ("edges", "counts", "sum", "count", "min", "max")

    def __init__(self, edges: Sequence[Union[int, float]]):
        if not edges:
            raise ValueError("histogram needs at least one bucket edge")
        if list(edges) != sorted(edges):
            raise ValueError(f"bucket edges must be sorted, got {edges!r}")
        if len(set(edges)) != len(edges):
            raise ValueError(f"bucket edges must be distinct, got {edges!r}")
        self.edges: Tuple[Union[int, float], ...] = tuple(edges)
        self.counts: List[int] = [0] * (len(self.edges) + 1)
        self.sum = 0
        self.count = 0
        self.min: Optional[Union[int, float]] = None
        self.max: Optional[Union[int, float]] = None

    def observe(self, value: Union[int, float]) -> None:
        """Count ``value`` into its bucket and update sum/count/min/max."""
        lo, hi = 0, len(self.edges)
        while lo < hi:  # first edge >= value (bisect, inlined: hot path)
            mid = (lo + hi) // 2
            if self.edges[mid] < value:
                lo = mid + 1
            else:
                hi = mid
        self.counts[lo] += 1
        self.sum += value
        self.count += 1
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    def observe_many(self, values: Sequence[Union[int, float]]) -> None:
        """Observe a batch of values; equivalent to ``observe`` per value.

        This is the drain-boundary aggregation entry point: hot paths
        buffer raw values and publish them in one call per boundary. The
        bisect runs once per *distinct* value (via a Counter), so bursts
        of repeated observations — queue depths, fixed retry waits — cost
        far less than per-event emission. The final counts/sum/count/
        min/max are identical to sequential observes for the integer
        quantities the simulator records (for floats, the sum uses
        ``value * n`` which can differ from repeated addition in the last
        ulp).
        """
        if not values:
            return
        edges = self.edges
        n_edges = len(edges)
        counts = self.counts
        total = 0
        for value, n in _Counter(values).items():
            lo, hi = 0, n_edges
            while lo < hi:  # first edge >= value (see observe)
                mid = (lo + hi) // 2
                if edges[mid] < value:
                    lo = mid + 1
                else:
                    hi = mid
            counts[lo] += n
            total += value * n
        self.sum += total
        self.count += len(values)
        lo_val = min(values)
        hi_val = max(values)
        if self.min is None or lo_val < self.min:
            self.min = lo_val
        if self.max is None or hi_val > self.max:
            self.max = hi_val

    def merge(self, other: "Histogram") -> None:
        """Add another histogram's buckets in place (same edges required).

        Associative and commutative — see the property tests.
        """
        if self.edges != other.edges:
            raise ValueError(
                f"cannot merge histograms with different edges: "
                f"{self.edges} vs {other.edges}"
            )
        for i, c in enumerate(other.counts):
            self.counts[i] += c
        self.sum += other.sum
        self.count += other.count
        for bound in (other.min,):
            if bound is not None and (self.min is None or bound < self.min):
                self.min = bound
        for bound in (other.max,):
            if bound is not None and (self.max is None or bound > self.max):
                self.max = bound

    def copy(self) -> "Histogram":
        """Independent deep copy (for pure merges)."""
        dup = Histogram(self.edges)
        dup.merge(self)
        return dup

    @property
    def mean(self) -> float:
        """Exact mean of the observed values (not bucket-approximated)."""
        return self.sum / self.count if self.count else 0.0

    def as_dict(self) -> Dict[str, object]:
        """Plain-JSON form: edges, counts, sum, count, min, max."""
        return {
            "edges": list(self.edges),
            "counts": list(self.counts),
            "sum": self.sum,
            "count": self.count,
            "min": self.min,
            "max": self.max,
        }

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Histogram):
            return NotImplemented
        return self.as_dict() == other.as_dict()


def merge_histograms(*histograms: Histogram) -> Histogram:
    """Pure merge: a new histogram combining all inputs (inputs untouched)."""
    if not histograms:
        raise ValueError("need at least one histogram")
    merged = histograms[0].copy()
    for h in histograms[1:]:
        merged.merge(h)
    return merged


@checkpointable(state=("_series",))
class MetricsRegistry:
    """One shared instance per ``(name, labels)`` series.

    The accessor methods are idempotent: asking twice for the same series
    returns the same object, and asking for an existing name with a
    conflicting metric type raises instead of silently shadowing.
    """

    def __init__(self):
        self._series: Dict[Tuple[str, LabelItems], object] = {}

    # ------------------------------------------------------------------
    def _get(self, cls, name: str, labels: Dict[str, Union[int, str]],
             *args):
        key = (name, _label_items(labels))
        metric = self._series.get(key)
        if metric is None:
            metric = cls(*args)
            self._series[key] = metric
        elif type(metric) is not cls:
            raise TypeError(
                f"metric {name!r} already registered as "
                f"{type(metric).__name__}, not {cls.__name__}"
            )
        return metric

    def counter(self, name: str, **labels: Union[int, str]) -> Counter:
        """The counter series ``name{labels}`` (created on first use)."""
        return self._get(Counter, name, labels)

    def gauge(self, name: str, **labels: Union[int, str]) -> Gauge:
        """The gauge series ``name{labels}`` (created on first use)."""
        return self._get(Gauge, name, labels)

    def histogram(
        self,
        name: str,
        edges: Sequence[Union[int, float]] = LATENCY_EDGES,
        **labels: Union[int, str],
    ) -> Histogram:
        """The histogram series ``name{labels}`` with the given bucket
        ``edges`` (created on first use; edges must agree thereafter)."""
        hist = self._get(Histogram, name, labels, edges)
        if hist.edges != tuple(edges):
            raise ValueError(
                f"histogram {name!r} already registered with edges "
                f"{hist.edges}, asked for {tuple(edges)}"
            )
        return hist

    # ------------------------------------------------------------------
    def series(self) -> Iterable[Tuple[str, LabelItems, object]]:
        """Every registered ``(name, labels, metric)`` in sorted order."""
        for (name, labels), metric in sorted(self._series.items()):
            yield name, labels, metric

    def sum_counters(self, name: str) -> int:
        """Total of every labelled child of counter ``name``."""
        total = 0
        for series_name, _, metric in self.series():
            if series_name == name and isinstance(metric, Counter):
                total += metric.value
        return total

    def merge(self, other: "MetricsRegistry") -> None:
        """Accumulate another registry (e.g. a per-worker shard) into this
        one; series present only in ``other`` are deep-copied over."""
        for (name, labels), metric in sorted(other._series.items()):
            if isinstance(metric, Histogram):
                mine = self._get(Histogram, name, dict(labels), metric.edges)
            else:
                mine = self._get(type(metric), name, dict(labels))
            mine.merge(metric)

    def dump_state(self) -> List[Dict[str, object]]:
        """Checkpoint form: every series with its full internal state.

        Unlike :meth:`snapshot` (a reporting view), this is lossless — a
        :meth:`restore_state` round trip reproduces byte-identical
        snapshots afterwards.
        """
        out: List[Dict[str, object]] = []
        for name, labels, metric in self.series():
            entry: Dict[str, object] = {
                "name": name,
                "labels": [[k, v] for k, v in labels],
            }
            if isinstance(metric, Counter):
                entry["type"] = "counter"
                entry["value"] = metric.value
            elif isinstance(metric, Gauge):
                entry["type"] = "gauge"
                entry["value"] = metric.value
            else:
                entry["type"] = "histogram"
                entry.update(metric.as_dict())
            out.append(entry)
        return out

    def restore_state(self, entries: Iterable[Dict[str, object]]) -> None:
        """Restore a :meth:`dump_state` dump *in place*.

        Existing metric objects are mutated, never replaced: publishers
        (the obs hook bundles) pre-resolve metric references at
        construction, and those references must observe restored values.
        """
        for entry in entries:
            labels = {k: v for k, v in entry["labels"]}
            kind = entry["type"]
            if kind == "counter":
                self.counter(entry["name"], **labels).value = entry["value"]
            elif kind == "gauge":
                self.gauge(entry["name"], **labels).value = entry["value"]
            elif kind == "histogram":
                hist = self.histogram(
                    entry["name"], tuple(entry["edges"]), **labels
                )
                hist.counts = list(entry["counts"])
                hist.sum = entry["sum"]
                hist.count = entry["count"]
                hist.min = entry["min"]
                hist.max = entry["max"]
            else:
                raise ValueError(f"unknown metric type {kind!r}")

    def snapshot(self) -> Dict[str, Dict[str, object]]:
        """Plain-JSON form with stable sorted keys.

        ``{"counters": {series: int}, "gauges": {series: number},
        "histograms": {series: {edges, counts, sum, count, min, max}}}``
        """
        out: Dict[str, Dict[str, object]] = {
            "counters": {},
            "gauges": {},
            "histograms": {},
        }
        for name, labels, metric in self.series():
            key = _series_name(name, labels)
            if isinstance(metric, Counter):
                out["counters"][key] = metric.value
            elif isinstance(metric, Gauge):
                out["gauges"][key] = metric.value
            else:
                out["histograms"][key] = metric.as_dict()
        return out
