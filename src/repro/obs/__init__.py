"""Simulation observability: metrics, tracing, and profiling (``repro.obs``).

Three concerns, three modules, one facade:

* :mod:`repro.obs.metrics` — a registry of counters / gauges / fixed-bucket
  histograms with per-bank / per-subchannel labels. Deterministic: values
  derive only from simulated quantities.
* :mod:`repro.obs.trace` — a cycle-stamped JSONL event timeline
  (ACT→ALERT→retry chains, SAUM busy intervals, RFM stalls) with bounded
  memory (ring buffer) and optional streaming flush.
* :mod:`repro.obs.profile` — wall-clock phase profiling (events/sec,
  cache hit/miss), deliberately quarantined from the deterministic outputs.

The facade is :class:`Observability`; instrumented components accept an
optional instance and publish through pre-resolved hook points that are a
single ``is None`` branch when observability is off — the disabled path
must stay within the <2 % events/sec budget that
``benchmarks/bench_perf_smoke.py`` enforces.

Typical use::

    from repro.obs import Observability, ObsConfig

    obs = Observability(ObsConfig(metrics=True, trace=True))
    result = simulate(traces, setup, config, mapping="rubix", seed=1,
                      obs=obs)
    print(result.obs.trace_jsonl)         # JSONL timeline
    print(result.obs.metrics["counters"]) # flat series -> value

Or, one layer up, attach an :class:`ObsConfig` to a runner
:class:`~repro.analysis.runner.Job` — the observability outputs come back
on the :class:`~repro.cpu.system.SimulationResult` even when the
simulation ran in a worker process, and are byte-identical to a serial
run of the same seed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import IO, Optional

from repro.obs.metrics import (
    Counter,
    DEPTH_EDGES,
    Gauge,
    Histogram,
    LATENCY_EDGES,
    MetricsRegistry,
    merge_histograms,
)
from repro.obs.profile import PhaseProfiler
from repro.obs.trace import SpanTracer

__all__ = [
    "Counter",
    "DEPTH_EDGES",
    "Gauge",
    "Histogram",
    "LATENCY_EDGES",
    "MetricsRegistry",
    "ObsConfig",
    "ObsResult",
    "Observability",
    "PhaseProfiler",
    "SpanTracer",
    "merge_histograms",
]

#: Bump when the metric/trace record schema changes shape; exported in
#: every ObsResult so downstream consumers can detect stale files.
OBS_SCHEMA_VERSION = 1


@dataclass(frozen=True)
class ObsConfig:
    """What to observe. Frozen and picklable: it rides inside runner jobs
    (and their cache keys) across process-pool boundaries."""

    metrics: bool = True
    trace: bool = False
    trace_capacity: int = 65536

    def __post_init__(self):
        if self.trace_capacity < 1:
            raise ValueError(
                f"trace_capacity must be >= 1, got {self.trace_capacity}"
            )

    @property
    def enabled(self) -> bool:
        """True when any deterministic collection (metrics/trace) is on."""
        return self.metrics or self.trace


@dataclass
class ObsResult:
    """Collected observability outputs for one finished simulation.

    ``metrics`` and ``trace_jsonl`` are deterministic (cycle-stamped);
    ``profile`` carries wall-clock provenance and is expected to differ
    between hosts and runs.
    """

    schema: int = OBS_SCHEMA_VERSION
    metrics: Optional[dict] = None
    trace_jsonl: Optional[str] = None
    trace_events: int = 0
    trace_dropped: int = 0
    profile: dict = field(default_factory=dict)


class Observability:
    """Facade bundling the registry, tracer, and profiler for one run."""

    def __init__(
        self,
        config: Optional[ObsConfig] = None,
        trace_stream: Optional[IO[str]] = None,
    ):
        self.config = config if config is not None else ObsConfig()
        self.metrics: Optional[MetricsRegistry] = (
            MetricsRegistry() if self.config.metrics else None
        )
        self.tracer: Optional[SpanTracer] = (
            SpanTracer(self.config.trace_capacity, stream=trace_stream)
            if self.config.trace
            else None
        )
        self.profiler = PhaseProfiler()

    @property
    def enabled(self) -> bool:
        """True when any collector (metrics registry / tracer) is live."""
        return self.metrics is not None or self.tracer is not None

    def result(self) -> ObsResult:
        """Freeze the collected state into a transportable record."""
        return ObsResult(
            schema=OBS_SCHEMA_VERSION,
            metrics=self.metrics.snapshot() if self.metrics else None,
            trace_jsonl=self.tracer.to_jsonl() if self.tracer else None,
            trace_events=self.tracer.emitted if self.tracer else 0,
            trace_dropped=self.tracer.dropped if self.tracer else 0,
            profile=self.profiler.snapshot(),
        )
