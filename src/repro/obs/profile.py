"""Wall-clock profiling, deliberately quarantined from metrics/tracing.

The metrics registry and span tracer are cycle-stamped and deterministic;
anything that reads the host clock lives here instead, so the deterministic
outputs can be compared byte-for-byte across worker counts while the
profiler still answers "how fast is the *simulator*": wall-time per phase,
events per wall-second, cache hit/miss counts.

A :class:`PhaseProfiler` snapshot travels alongside results as provenance —
it is informational and must never feed back into simulated behaviour.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Dict, Iterator, Optional, Union


class PhaseProfiler:
    """Accumulates wall seconds and entry counts per named phase."""

    def __init__(self):
        self.seconds: Dict[str, float] = {}
        self.entries: Dict[str, int] = {}
        self.counts: Dict[str, Union[int, float]] = {}

    # ------------------------------------------------------------------
    @contextmanager
    def phase(self, name: str) -> Iterator[None]:
        """Time one entry of phase ``name`` (re-entrant across calls)."""
        start = time.perf_counter()
        try:
            yield
        finally:
            self.record(name, time.perf_counter() - start)

    def record(self, name: str, seconds: float) -> None:
        """Accumulate one timed entry of phase ``name``."""
        self.seconds[name] = self.seconds.get(name, 0.0) + seconds
        self.entries[name] = self.entries.get(name, 0) + 1

    def count(self, name: str, n: Union[int, float] = 1) -> None:
        """Accumulate a free-form profiling counter (cache hits, events)."""
        self.counts[name] = self.counts.get(name, 0) + n

    def set_count(self, name: str, value: Union[int, float]) -> None:
        """Overwrite a profiling counter with an absolute value."""
        self.counts[name] = value

    # ------------------------------------------------------------------
    def rate(self, count_name: str, phase_name: str) -> Optional[float]:
        """``counts[count_name]`` per wall-second of ``phase_name``."""
        seconds = self.seconds.get(phase_name)
        total = self.counts.get(count_name)
        if not seconds or total is None:
            return None
        return total / seconds

    def snapshot(self, provenance: Optional[Dict[str, object]] = None
                 ) -> Dict[str, object]:
        """Plain-JSON form; ``provenance`` (schema versions, config hash,
        worker count) is attached verbatim when given."""
        out: Dict[str, object] = {
            "phases": {
                name: {
                    "seconds": round(self.seconds[name], 6),
                    "entries": self.entries[name],
                }
                for name in sorted(self.seconds)
            },
            "counts": {k: self.counts[k] for k in sorted(self.counts)},
        }
        events_per_sec = self.rate("events", "engine")
        if events_per_sec is not None:
            out["events_per_second"] = round(events_per_sec, 1)
        if provenance is not None:
            out["provenance"] = provenance
        return out

    def merge(self, other: "PhaseProfiler") -> None:
        """Fold another profiler's phases and counts into this one."""
        for name, seconds in other.seconds.items():
            self.seconds[name] = self.seconds.get(name, 0.0) + seconds
        for name, entries in other.entries.items():
            self.entries[name] = self.entries.get(name, 0) + entries
        for name, value in other.counts.items():
            self.counts[name] = self.counts.get(name, 0) + value
