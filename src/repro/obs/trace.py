"""Span tracer: a bounded, cycle-stamped JSONL event timeline.

Each emitted record is one JSON object per line with stable sorted keys:

* point events — ``{"t": <cycle>, "kind": "ACT", "bank": 3, "row": 70000}``
* spans — the same plus ``"end": <cycle>`` (SAUM busy intervals, RFM
  stalls, mitigation windows).

Memory is bounded by a ring buffer (``capacity`` events, oldest evicted
first, emission order preserved); attaching a ``stream`` additionally
writes every event through as it is emitted, so arbitrarily long runs can
stream to disk while the in-memory tail stays small.

Determinism contract: timestamps are the integer engine cycles the caller
passes in — this module never reads the wall clock — so serial and
parallel runs of the same seed produce byte-identical JSONL.
"""

from __future__ import annotations

import json
from collections import deque
from typing import Deque, Dict, IO, List, Optional, Union
from repro.ckpt.contract import checkpointable

Field = Union[int, float, str]

#: Well-known event kinds (callers may emit others; these are the ones the
#: built-in instrumentation produces and docs/observability.md documents).
ACT = "ACT"
ALERT = "ALERT"
RETRY = "RETRY"
RFM_STALL = "RFM"
REF = "REF"
SAUM = "SAUM"
MITIGATION = "MITIGATION"
VICTIM_REFRESH = "VICTIM_REFRESH"


# One shared encoder: json.dumps with non-default options constructs a
# fresh JSONEncoder per call, which is the bulk of the encoding cost when
# a whole timeline is serialised at finalize.
_ENCODE = json.JSONEncoder(sort_keys=True, separators=(",", ":")).encode


def encode_event(event: Dict[str, Field]) -> str:
    """One canonical JSONL line (sorted keys, no whitespace)."""
    return _ENCODE(event)


@checkpointable(
    state=("_buffer", "emitted"),
    const=("capacity",),
    derived=("stream",),
)
class SpanTracer:
    """Ring-buffered event recorder with optional streaming flush."""

    def __init__(self, capacity: int = 65536, stream: Optional[IO[str]] = None):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.stream = stream
        self._buffer: Deque[Dict[str, Field]] = deque(maxlen=capacity)
        #: Events emitted over the tracer's lifetime (kept + evicted).
        self.emitted = 0

    # ------------------------------------------------------------------
    # Emission
    # ------------------------------------------------------------------
    def event(self, cycle: int, kind: str, **fields: Field) -> None:
        """Record a point event at engine cycle ``cycle``."""
        record: Dict[str, Field] = {"t": cycle, "kind": kind}
        record.update(fields)
        self.emitted += 1
        self._buffer.append(record)
        if self.stream is not None:
            self.stream.write(encode_event(record) + "\n")

    def span(self, start: int, end: int, kind: str, **fields: Field) -> None:
        """Record an interval ``[start, end)`` in engine cycles."""
        if end < start:
            raise ValueError(f"span ends ({end}) before it starts ({start})")
        self.event(start, kind, end=end, **fields)

    def emit_raw(self, records: List[Dict[str, Field]]) -> None:
        """Bulk-append pre-built records, in order (deferred emission).

        The drain-boundary aggregation path builds record dicts on the hot
        path, queues them, and hands the whole batch over here at the next
        boundary; the result — ring contents, ``emitted`` total, stream
        bytes — is identical to calling :meth:`event` once per record at
        the moment each was queued. The tracer takes ownership of the
        record dicts (callers must not mutate them afterwards).
        """
        self.emitted += len(records)
        self._buffer.extend(records)
        stream = self.stream
        if stream is not None:
            for record in records:
                stream.write(encode_event(record) + "\n")

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    @property
    def dropped(self) -> int:
        """Events evicted by the ring buffer (oldest-first)."""
        return self.emitted - len(self._buffer)

    def events(self) -> List[Dict[str, Field]]:
        """Retained events, in emission order (copies of the records)."""
        return [dict(e) for e in self._buffer]

    def to_jsonl(self) -> str:
        """Retained events as JSONL (one canonical line per event)."""
        if not self._buffer:
            return ""
        return "\n".join(map(_ENCODE, self._buffer)) + "\n"

    def write(self, path: str) -> int:
        """Write the retained timeline to ``path``; returns event count."""
        with open(path, "w") as handle:
            handle.write(self.to_jsonl())
        return len(self._buffer)

    def clear(self) -> None:
        """Drop the retained events (the emitted total keeps counting)."""
        self._buffer.clear()

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------
    def dump_state(self) -> Dict[str, object]:
        """Lossless state: the retained ring plus the lifetime total."""
        return {"emitted": self.emitted, "events": self.events()}

    def restore_state(self, state: Dict[str, object]) -> None:
        """Restore a :meth:`dump_state` dump in place (ring is replaced,
        the attached ``stream``, if any, is left untouched)."""
        self.emitted = int(state["emitted"])
        self._buffer.clear()
        self._buffer.extend(dict(e) for e in state["events"])

    def __len__(self) -> int:
        return len(self._buffer)
