"""Deterministic checkpoint/restore for the simulator (``repro.ckpt``).

Three layers:

* :mod:`repro.ckpt.contract` — per-class *state contracts*: every
  checkpointable class declares exactly which attributes are live state,
  which are derived wiring, and which are construction constants; the
  contract lint (``tests/test_ckpt_contract.py``) fails on any attribute
  assignment the contract does not account for, so state omissions are a
  test failure, not a silent divergence.
* :mod:`repro.ckpt.snapshot` — the versioned, integrity-hashed on-disk
  format (canonical JSON, gzipped, sha256 over the body, atomic
  write-then-rename).
* :mod:`repro.ckpt.state` — :func:`capture` / :func:`restore` /
  :func:`fork` over a live :class:`~repro.cpu.system.SimulatedSystem`,
  plus the manifest-keeping :class:`CheckpointWriter` used by
  ``simulate(checkpoint_every=..., checkpoint_dir=...)``.

The determinism guarantee: a run checkpointed at any segment boundary and
restored produces byte-identical stats exports, metrics snapshots, and
JSONL traces to the same run executed straight through.
"""

from repro.ckpt.contract import (
    REGISTRY,
    CodecError,
    ContractError,
    StateContract,
    assigned_attributes,
    capture_fields,
    checkpointable,
    checkpointable_dataclass,
    class_by_name,
    class_name,
    decode_value,
    effective_contract,
    encode_value,
    is_checkpointable,
    register_value_type,
    restore_fields,
    verify_contract,
)
from repro.ckpt.snapshot import (
    CKPT_FORMAT_VERSION,
    SNAPSHOT_FORMAT,
    SNAPSHOT_SUFFIX,
    Snapshot,
    SnapshotError,
    SnapshotIntegrityError,
    canonical_json,
    load_snapshot,
    save_snapshot,
    snapshot_digest,
)
# The state layer imports the whole simulator (repro.cpu.system), and the
# simulator's low-level modules import repro.ckpt.contract — which executes
# this package __init__. Loading the state layer lazily (PEP 562) breaks
# that cycle while keeping ``from repro.ckpt import capture`` working.
_STATE_EXPORTS = (
    "FORK_STREAM_PREFIXES",
    "CheckpointWriter",
    "capture",
    "fork",
    "load_latest",
    "restore",
)


def __getattr__(name):
    if name in _STATE_EXPORTS:
        from repro.ckpt import state

        return getattr(state, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "REGISTRY",
    "CodecError",
    "ContractError",
    "StateContract",
    "assigned_attributes",
    "capture_fields",
    "checkpointable",
    "checkpointable_dataclass",
    "class_by_name",
    "class_name",
    "decode_value",
    "effective_contract",
    "encode_value",
    "is_checkpointable",
    "register_value_type",
    "restore_fields",
    "verify_contract",
    "CKPT_FORMAT_VERSION",
    "SNAPSHOT_FORMAT",
    "SNAPSHOT_SUFFIX",
    "Snapshot",
    "SnapshotError",
    "SnapshotIntegrityError",
    "canonical_json",
    "load_snapshot",
    "save_snapshot",
    "snapshot_digest",
    "FORK_STREAM_PREFIXES",
    "CheckpointWriter",
    "capture",
    "fork",
    "load_latest",
    "restore",
]
