"""System-level capture and restore.

:func:`capture` walks a live :class:`~repro.cpu.system.SimulatedSystem`
through the per-class state contracts (:mod:`repro.ckpt.contract`) and
produces a :class:`~repro.ckpt.snapshot.Snapshot`; :func:`restore`
reconstructs the system from the snapshot's metadata (config, setup,
mapping, seed, traces) and overlays the captured live state *in place* —
RNG generators, metric objects, and stats records are mutated, never
replaced, so every pre-resolved reference inside the system observes the
restored values.

Event-heap entries serialise as ``(time, seq, owner, method, args)``
descriptors. Every schedule site uses bound methods or
``functools.partial`` over bound methods of exactly two owners — the
memory controller (``"mc"``) and the cores (``"core/<i>"``) — so a
callback round-trips without pickling code objects.
"""

from __future__ import annotations

import dataclasses
import os
from contextlib import contextmanager
from functools import partial
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from repro.ckpt.contract import (
    CodecError,
    capture_fields,
    decode_value,
    encode_value,
    restore_fields,
)
from repro.ckpt.snapshot import (
    CKPT_FORMAT_VERSION,
    SNAPSHOT_SUFFIX,
    Snapshot,
    SnapshotError,
    load_snapshot,
    save_snapshot,
)
from repro.cpu.system import SimulatedSystem
from repro.mc.request import Request
from repro.mc.setup import MitigationSetup
from repro.obs import Observability, ObsConfig
from repro.sim.config import DramTiming, SystemConfig
from repro.sim.rng import _child_seed
from repro.workloads.trace import Trace


# ----------------------------------------------------------------------
# Callback (heap entry) codec
# ----------------------------------------------------------------------

def _owners(system: SimulatedSystem) -> Dict[str, Any]:
    owners: Dict[str, Any] = {"mc": system.controller}
    for i, core in enumerate(system.cores):
        owners[f"core/{i}"] = core
    return owners


def _encode_callback(callback: Any, owner_ids: Dict[int, str]) -> Dict[str, Any]:
    if isinstance(callback, partial):
        if callback.keywords:
            raise CodecError(
                f"cannot serialise partial with keywords: {callback!r}"
            )
        func = callback.func
        args = callback.args
    else:
        func = callback
        args = ()
    owner = getattr(func, "__self__", None)
    key = owner_ids.get(id(owner)) if owner is not None else None
    if key is None:
        raise CodecError(
            f"event callback {callback!r} is not a bound method of the "
            f"controller or a core; checkpointing requires serialisable "
            f"schedule sites"
        )
    return {
        "o": key,
        "m": func.__name__,
        "a": [encode_value(a) for a in args],
    }


def _decode_callback(data: Dict[str, Any], owners: Dict[str, Any]) -> Any:
    owner = owners.get(data["o"])
    if owner is None:
        raise SnapshotError(f"snapshot references unknown owner {data['o']!r}")
    method = getattr(owner, data["m"], None)
    if method is None or not callable(method):
        raise SnapshotError(
            f"snapshot references unknown method "
            f"{data['o']}.{data['m']}"
        )
    args = [decode_value(a) for a in data["a"]]
    if not args:
        return method
    return partial(method, *args)


# ----------------------------------------------------------------------
# Request codec (queues, write buffers, pending completions)
# ----------------------------------------------------------------------

def _encode_request(request: Request, owner_ids: Dict[int, str]) -> Dict[str, Any]:
    on_complete = None
    if request.on_complete is not None:
        on_complete = _encode_callback(request.on_complete, owner_ids)
    return {
        "core": request.core_id,
        "addr": int(request.line_addr),
        "write": bool(request.is_write),
        "arrival": request.arrival,
        "alerts": request.alerts,
        "retry_at": request.retry_at,
        "order": request._order,
        "cb": on_complete,
    }


def _decode_request(
    data: Dict[str, Any], system: SimulatedSystem, owners: Dict[str, Any]
) -> Request:
    request = Request(
        core_id=data["core"],
        line_addr=data["addr"],
        is_write=data["write"],
        arrival=data["arrival"],
        alerts=data["alerts"],
        retry_at=data["retry_at"],
    )
    request._order = data["order"]
    # Location is pure function of address and mapping; recompute rather
    # than serialise.
    location = system.mapping.locate(request.line_addr)
    request.location = location
    request.flat_bank = location.flat_bank(system.config.banks_per_subchannel)
    if data["cb"] is not None:
        request.on_complete = _decode_callback(data["cb"], owners)
    return request


# ----------------------------------------------------------------------
# Capture
# ----------------------------------------------------------------------

@contextmanager
def _profiled(system: SimulatedSystem, phase: str):
    obs = system.obs
    if obs is None:
        yield
        return
    with obs.profiler.phase(phase):
        yield
    obs.profiler.count(phase, 1)


def _trace_to_dict(trace: Trace) -> Dict[str, Any]:
    return {
        "gaps": [int(g) for g in trace.gaps],
        "addrs": [int(a) for a in trace.addrs],
        "writes": [bool(w) for w in trace.writes],
        "tail_instructions": int(trace.tail_instructions),
        "name": trace.name,
    }


def capture(system: SimulatedSystem, boundary: Optional[int] = None) -> Snapshot:
    """Capture the full live state of ``system`` into a :class:`Snapshot`.

    ``boundary`` stamps the segment boundary this snapshot closes (used by
    segment-resumable sweeps); it defaults to the engine's current cycle.
    Capture cost is published to the run's wall-clock profiler as phase
    ``ckpt.capture`` — deliberately *not* into the deterministic metrics
    registry, which must stay bit-identical between straight and resumed
    runs.
    """
    with _profiled(system, "ckpt.capture"):
        engine = system.engine
        controller = system.controller
        # Deferred observability accumulations must land in the registry /
        # tracer before their state is serialised; an extra flush at an
        # arbitrary cycle never changes the final values.
        if system.obs is not None and system.obs.enabled:
            system.flush_obs()
        owner_ids = {id(obj): key for key, obj in _owners(system).items()}

        meta: Dict[str, Any] = {
            "cycle": engine.now,
            "boundary": engine.now if boundary is None else int(boundary),
            "seed": system.seed,
            "mapping": system.mapping_name,
            "setup": dataclasses.asdict(system.setup),
            "config": dataclasses.asdict(system.config),
            "obs": (
                dataclasses.asdict(system.obs.config)
                if system.obs is not None
                else None
            ),
            "command_log": system.command_log is not None,
            "traces": [_trace_to_dict(t) for t in system.traces],
        }

        payload: Dict[str, Any] = {
            "engine": capture_fields(
                engine,
                overrides={
                    "_heap": lambda e: [
                        [time, seq, _encode_callback(cb, owner_ids)]
                        for (time, seq, cb) in e._heap
                    ]
                },
            ),
            "rng": {
                "root": system.streams.getstate(),
                "mc": controller._streams.getstate(),
            },
            "stats": capture_fields(system.stats),
            "controller": capture_fields(
                controller,
                overrides={
                    "queues": lambda c: [
                        [_encode_request(r, owner_ids) for r in q]
                        for q in c.queues
                    ],
                    "_write_buffers": lambda c: [
                        [_encode_request(r, owner_ids) for r in b]
                        for b in c._write_buffers
                    ],
                },
            ),
            "cores": [capture_fields(core) for core in system.cores],
            "started": system._started,
        }
        if system.command_log is not None:
            payload["command_log"] = capture_fields(system.command_log)
        obs = system.obs
        if obs is not None and obs.enabled:
            payload["obs"] = {
                "metrics": (
                    obs.metrics.dump_state() if obs.metrics is not None else None
                ),
                "tracer": (
                    obs.tracer.dump_state() if obs.tracer is not None else None
                ),
            }
    return Snapshot(meta=meta, payload=payload, version=CKPT_FORMAT_VERSION)


# ----------------------------------------------------------------------
# Restore
# ----------------------------------------------------------------------

def _config_from_meta(data: Dict[str, Any]) -> SystemConfig:
    fields = dict(data)
    timing = DramTiming(**fields.pop("timing"))
    return SystemConfig(timing=timing, **fields)


def restore(
    snapshot: Snapshot,
    trace_stream=None,
) -> SimulatedSystem:
    """Rebuild a live :class:`SimulatedSystem` from ``snapshot``.

    The system is reconstructed from the snapshot's metadata exactly as
    :func:`repro.cpu.system.simulate` would build it (same constructor
    path, same derived wiring), then the captured live state is overlaid.
    The returned system is already started; call ``.run(...)`` to continue
    the simulation. Restore cost lands in the profiler as phase
    ``ckpt.restore``.

    ``trace_stream`` optionally re-attaches a streaming sink for the span
    tracer (streams are process-local and never serialised).
    """
    meta = snapshot.meta
    config = _config_from_meta(meta["config"])
    setup = MitigationSetup(**meta["setup"])
    traces = [Trace(**t) for t in meta["traces"]]
    obs = None
    if meta["obs"] is not None:
        obs = Observability(ObsConfig(**meta["obs"]), trace_stream=trace_stream)
    command_log = None
    if meta.get("command_log"):
        from repro.sim.cmdlog import CommandLog

        command_log = CommandLog()

    system = SimulatedSystem(
        traces,
        setup=setup,
        config=config,
        mapping=meta["mapping"],
        seed=meta["seed"],
        command_log=command_log,
        obs=obs,
    )
    with _profiled(system, "ckpt.restore"):
        _overlay(system, snapshot.payload)
    return system


def _overlay(system: SimulatedSystem, payload: Dict[str, Any]) -> None:
    owners = _owners(system)
    controller = system.controller

    # RNG streams first: nothing below draws randomness during restore,
    # but stream objects are shared references and must be mutated early
    # so any later consumer sees restored state.
    system.streams.setstate(payload["rng"]["root"])
    controller._streams.setstate(payload["rng"]["mc"])

    # The freshly constructed controller scheduled its refresh machinery
    # into the new engine; the serialised heap replaces all of it.
    restore_fields(
        system.engine,
        payload["engine"],
        overrides={
            "_heap": lambda engine, data: setattr(
                engine,
                "_heap",
                [
                    (time, seq, _decode_callback(cb, owners))
                    for time, seq, cb in data
                ],
            )
        },
    )

    restore_fields(system.stats, payload["stats"])
    restore_fields(
        controller,
        payload["controller"],
        overrides={
            "queues": lambda c, data: setattr(
                c,
                "queues",
                [
                    [_decode_request(r, system, owners) for r in q]
                    for q in data
                ],
            ),
            "_write_buffers": lambda c, data: setattr(
                c,
                "_write_buffers",
                [
                    [_decode_request(r, system, owners) for r in b]
                    for b in data
                ],
            ),
        },
    )
    for core, data in zip(system.cores, payload["cores"]):
        restore_fields(core, data)
    if system.command_log is not None and "command_log" in payload:
        restore_fields(system.command_log, payload["command_log"])
    obs = system.obs
    obs_payload = payload.get("obs")
    if obs is not None and obs_payload is not None:
        if obs.metrics is not None and obs_payload["metrics"] is not None:
            obs.metrics.restore_state(obs_payload["metrics"])
        if obs.tracer is not None and obs_payload["tracer"] is not None:
            obs.tracer.restore_state(obs_payload["tracer"])
    system._started = bool(payload.get("started", True))


# ----------------------------------------------------------------------
# Fork (multi-seed studies)
# ----------------------------------------------------------------------

#: Stream-name prefixes reseeded by :func:`fork` by default: every source
#: of mitigation randomness, leaving workload/trace streams untouched.
FORK_STREAM_PREFIXES = ("tracker", "fractal", "rowswap", "aqua")


def fork(
    snapshot: Snapshot,
    seed: int,
    streams: Tuple[str, ...] = FORK_STREAM_PREFIXES,
    trace_stream=None,
) -> SimulatedSystem:
    """Restore ``snapshot`` and reseed selected RNG streams for a fork.

    Multi-seed replication à la the MINT security methodology: warm up one
    simulation, snapshot it, then fan out many continuations that share
    the warmed-up architectural state but draw fresh mitigation
    randomness. Only streams whose name matches a prefix in ``streams``
    are reseeded (derived from ``seed`` and the stream name, so two forks
    with the same seed are identical and different seeds are independent);
    everything else — heap, queues, counters, stats — continues
    bit-identically from the snapshot.
    """
    system = restore(snapshot, trace_stream=trace_stream)
    registry = system.controller._streams
    for name in sorted(registry._streams):
        if any(
            name == prefix or name.startswith(prefix + "/")
            for prefix in streams
        ):
            fresh = np.random.default_rng(_child_seed(seed, f"fork/{name}"))
            registry._streams[name].bit_generator.state = (
                fresh.bit_generator.state
            )
    return system


# ----------------------------------------------------------------------
# Periodic checkpoint writer (manifest-keeping)
# ----------------------------------------------------------------------

class CheckpointWriter:
    """Writes snapshots into a directory and maintains its manifest.

    Each snapshot lands as ``ckpt-<boundary><suffix>`` via the atomic
    write-then-rename in :func:`repro.ckpt.snapshot.save_snapshot`; the
    manifest (see :mod:`repro.analysis.storage`) records file name, cycle,
    digest, and size, and is rewritten atomically after every snapshot so
    a crash can lose at most the newest entry, never corrupt older ones.
    """

    def __init__(self, directory: str):
        self.directory = directory
        os.makedirs(directory, exist_ok=True)
        from repro.analysis.storage import load_checkpoint_manifest

        try:
            manifest = load_checkpoint_manifest(directory)
            self.entries: List[Dict[str, Any]] = list(manifest["entries"])
        except (FileNotFoundError, ValueError):
            self.entries = []

    def write(self, snapshot: Snapshot) -> str:
        """Persist one snapshot and update the manifest; returns its path."""
        from repro.analysis.storage import save_checkpoint_manifest

        name = f"ckpt-{snapshot.boundary:015d}{SNAPSHOT_SUFFIX}"
        path = os.path.join(self.directory, name)
        digest = save_snapshot(snapshot, path)
        entry = {
            "file": name,
            "cycle": snapshot.cycle,
            "boundary": snapshot.boundary,
            "sha256": digest,
            "bytes": os.path.getsize(path),
        }
        self.entries = [e for e in self.entries if e.get("file") != name]
        self.entries.append(entry)
        self.entries.sort(key=lambda e: e["boundary"])
        save_checkpoint_manifest(
            self.directory,
            self.entries,
            meta={"seed": snapshot.meta.get("seed"),
                  "mapping": snapshot.meta.get("mapping")},
        )
        return path

    def latest(self) -> Optional[str]:
        """Path of the newest snapshot written (or already present)."""
        if not self.entries:
            return None
        return os.path.join(self.directory, self.entries[-1]["file"])


def load_latest(directory: str) -> Optional[Snapshot]:
    """Load the newest *valid* snapshot in a checkpoint directory.

    Walks the manifest newest-first, verifying integrity; corrupt or
    missing files are skipped (a crash mid-write leaves older snapshots
    usable). Returns ``None`` when nothing valid exists.
    """
    from repro.analysis.storage import load_checkpoint_manifest

    try:
        manifest = load_checkpoint_manifest(directory)
    except (FileNotFoundError, ValueError):
        return None
    for entry in sorted(
        manifest["entries"], key=lambda e: e["boundary"], reverse=True
    ):
        path = os.path.join(directory, entry["file"])
        try:
            return load_snapshot(path)
        except (FileNotFoundError, SnapshotError):
            continue
    return None
