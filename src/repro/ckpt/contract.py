"""Explicit per-class state contracts for checkpointing.

Every class whose live state goes into a snapshot declares, via the
:func:`checkpointable` decorator, exactly which attributes are *state*
(captured and restored), which are *derived* (rebuilt at construction:
caches, wiring, observability hooks), and which are *const* (fixed by the
configuration the snapshot's metadata reconstructs). There is no blind
``__dict__`` pickling: an attribute a class assigns but never classifies is
a lint error (see :func:`verify_contract` and
``tests/test_ckpt_contract.py``), so new simulator state cannot silently
escape the snapshot.

The AST walk behind :func:`assigned_attributes` is shared with the static
analysis suite: it lives in :mod:`repro.lint.astutil`, which is itself
stdlib-only, so this module still imports cleanly from any layer (sim,
dram, trackers, mc, cpu, obs) without cycles.
"""

from __future__ import annotations

import ast
import dataclasses
import inspect
import textwrap
from dataclasses import dataclass
from collections import OrderedDict, deque
from typing import Any, Callable, Dict, FrozenSet, Optional, Set, Tuple, Type

import numpy as np

from repro.lint.astutil import collect_self_assignment_targets


class ContractError(ValueError):
    """A state contract is malformed or missing."""


@dataclass(frozen=True)
class StateContract:
    """The three-way classification of one class's attributes."""

    state_fields: Tuple[str, ...]
    derived_fields: Tuple[str, ...] = ()
    const_fields: Tuple[str, ...] = ()

    def __post_init__(self):
        seen: Set[str] = set()
        for group in (self.state_fields, self.derived_fields, self.const_fields):
            for name in group:
                if name in seen:
                    raise ContractError(
                        f"attribute {name!r} classified more than once"
                    )
                seen.add(name)

    @property
    def all_fields(self) -> FrozenSet[str]:
        return frozenset(
            self.state_fields + self.derived_fields + self.const_fields
        )


#: Class -> its *directly declared* contract (not the MRO union).
REGISTRY: Dict[type, StateContract] = {}

#: Qualified class name -> class, for decoding nested object payloads.
_BY_NAME: Dict[str, type] = {}


def checkpointable(
    *,
    state: Tuple[str, ...] = (),
    derived: Tuple[str, ...] = (),
    const: Tuple[str, ...] = (),
) -> Callable[[type], type]:
    """Class decorator registering a :class:`StateContract`.

    A subclass only declares the attributes it introduces; the effective
    contract is the union over the MRO (see :func:`effective_contract`).
    """

    def register(cls: type) -> type:
        name = f"{cls.__module__}.{cls.__qualname__}"
        REGISTRY[cls] = StateContract(tuple(state), tuple(derived), tuple(const))
        _BY_NAME[name] = cls
        return cls

    return register


def register_class(cls, **kwargs) -> type:
    """Imperative form of :func:`checkpointable` for third-party classes."""
    return checkpointable(**kwargs)(cls)


def checkpointable_dataclass(
    cls: Optional[type] = None,
    *,
    derived: Tuple[str, ...] = (),
    const: Tuple[str, ...] = (),
) -> Any:
    """Register a dataclass: every field not listed as derived/const is state.

    Dataclass field declarations already *are* the explicit attribute list,
    so restating them in the decorator would only invite drift.
    """

    def register(klass: type) -> type:
        if not dataclasses.is_dataclass(klass):
            raise ContractError(
                f"{class_name(klass)} is not a dataclass"
            )
        skip = set(derived) | set(const)
        state = tuple(
            f.name for f in dataclasses.fields(klass) if f.name not in skip
        )
        return checkpointable(state=state, derived=derived, const=const)(klass)

    if cls is None:
        return register
    return register(cls)


def is_checkpointable(cls: type) -> bool:
    """True when ``cls`` itself declared a state contract."""
    return cls in REGISTRY


def class_name(cls: type) -> str:
    """Qualified name used to reference ``cls`` inside snapshots."""
    return f"{cls.__module__}.{cls.__qualname__}"


def class_by_name(name: str) -> type:
    """Inverse of :func:`class_name` over the registered classes."""
    try:
        return _BY_NAME[name]
    except KeyError:
        raise ContractError(f"unknown checkpointable class {name!r}") from None


def effective_contract(cls: type) -> StateContract:
    """Union of the contracts declared along ``cls``'s MRO.

    Field order: subclass declarations come after base-class ones, so a
    restore fills base state first (bases rarely depend on subclass state,
    the reverse is plausible).
    """
    state: list = []
    derived: list = []
    const: list = []
    found = False
    for klass in reversed(cls.__mro__):
        contract = REGISTRY.get(klass)
        if contract is None:
            continue
        found = True
        state.extend(f for f in contract.state_fields if f not in state)
        derived.extend(f for f in contract.derived_fields if f not in derived)
        const.extend(f for f in contract.const_fields if f not in const)
    if not found:
        raise ContractError(
            f"{class_name(cls)} is not registered as checkpointable"
        )
    return StateContract(tuple(state), tuple(derived), tuple(const))


# ----------------------------------------------------------------------
# Value codec
# ----------------------------------------------------------------------
#
# Snapshots are canonical JSON, so every captured value must encode to the
# JSON data model without losing its Python type. Containers are tagged:
# a raw JSON object in an encoded payload is ALWAYS a tag wrapper (plain
# dicts become {"__k__": "dict", "items": [[k, v], ...]}, which also
# preserves insertion order and non-string keys such as the (bank, row)
# tuples in BlockHammer's throttle table). Registered checkpointable
# instances nest as {"__obj__": name, "fields": {...}} and restore *in
# place* into the object the reconstructed system already holds. Small
# frozen value types (e.g. MitigationRequest) register an explicit
# encode/decode pair via :func:`register_value_type`.

_VALUE_CODECS: Dict[str, Tuple[type, Callable, Callable]] = {}
_VALUE_TAGS: Dict[type, str] = {}

_MISSING = object()


class CodecError(ValueError):
    """A value cannot be encoded or decoded."""


def register_value_type(
    tag: str, cls: type, encode: Callable[[Any], Any], decode: Callable[[Any], Any]
) -> None:
    """Register a frozen value type with an explicit encode/decode pair."""
    if tag in _VALUE_CODECS and _VALUE_CODECS[tag][0] is not cls:
        raise ContractError(f"value tag {tag!r} already registered")
    _VALUE_CODECS[tag] = (cls, encode, decode)
    _VALUE_TAGS[cls] = tag


def encode_value(value: Any) -> Any:
    """Encode one Python value into the tagged-JSON data model."""
    if value is None or type(value) in (bool, int, float, str):
        return value
    if isinstance(value, np.bool_):
        return bool(value)
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, np.floating):
        return float(value)
    cls = type(value)
    tag = _VALUE_TAGS.get(cls)
    if tag is not None:
        return {"__val__": tag, "data": _VALUE_CODECS[tag][1](value)}
    if cls in REGISTRY:
        return {"__obj__": class_name(cls), "fields": capture_fields(value)}
    if cls is tuple:
        return {"__k__": "tuple", "items": [encode_value(v) for v in value]}
    if cls is list:
        return [encode_value(v) for v in value]
    if cls is deque:
        return {
            "__k__": "deque",
            "maxlen": value.maxlen,
            "items": [encode_value(v) for v in value],
        }
    if cls is OrderedDict:
        return {
            "__k__": "odict",
            "items": [[encode_value(k), encode_value(v)] for k, v in value.items()],
        }
    if cls is dict:
        return {
            "__k__": "dict",
            "items": [[encode_value(k), encode_value(v)] for k, v in value.items()],
        }
    if isinstance(value, bool):  # IntEnum/bool subclasses
        return bool(value)
    if isinstance(value, int):
        return int(value)
    if isinstance(value, float):
        return float(value)
    if isinstance(value, str):
        return str(value)
    raise CodecError(f"cannot encode value of type {class_name(cls)}: {value!r}")


def decode_value(encoded: Any, existing: Any = _MISSING) -> Any:
    """Decode a tagged-JSON value, restoring nested objects in place.

    ``existing`` is the value the freshly reconstructed system currently
    holds for this slot; nested checkpointable objects are mutated in place
    (so aliases elsewhere in the system observe the restored state) and
    lists are decoded element-wise against their existing counterparts.
    """
    if encoded is None or isinstance(encoded, (bool, int, float, str)):
        return encoded
    if isinstance(encoded, list):
        if isinstance(existing, (list, tuple)) and len(existing) == len(encoded):
            return [decode_value(e, x) for e, x in zip(encoded, existing)]
        return [decode_value(e) for e in encoded]
    if isinstance(encoded, dict):
        if "__obj__" in encoded:
            cls = class_by_name(encoded["__obj__"])
            if existing is _MISSING or existing is None:
                raise CodecError(
                    f"no live object to restore {encoded['__obj__']} into"
                )
            if type(existing) is not cls:
                raise CodecError(
                    f"snapshot holds {encoded['__obj__']} but the live "
                    f"object is {class_name(type(existing))}"
                )
            restore_fields(existing, encoded["fields"])
            return existing
        if "__val__" in encoded:
            tag = encoded["__val__"]
            if tag not in _VALUE_CODECS:
                raise CodecError(f"unknown value tag {tag!r}")
            return _VALUE_CODECS[tag][2](encoded["data"])
        kind = encoded.get("__k__")
        if kind == "tuple":
            return tuple(decode_value(v) for v in encoded["items"])
        if kind == "deque":
            out = deque(maxlen=encoded["maxlen"])
            out.extend(decode_value(v) for v in encoded["items"])
            return out
        if kind == "odict":
            return OrderedDict(
                (decode_value(k), decode_value(v)) for k, v in encoded["items"]
            )
        if kind == "dict":
            return {
                decode_value(k): decode_value(v) for k, v in encoded["items"]
            }
        raise CodecError(f"unrecognised encoded mapping: {sorted(encoded)!r}")
    raise CodecError(f"cannot decode value {encoded!r}")


# ----------------------------------------------------------------------
# Generic field capture / restore
# ----------------------------------------------------------------------

Overrides = Optional[Dict[str, Callable]]


def capture_fields(obj: Any, overrides: Overrides = None) -> Dict[str, Any]:
    """Capture ``obj``'s contract state fields into a plain dict.

    ``overrides`` maps a field name to ``fn(obj) -> encoded`` for fields
    with bespoke encodings (e.g. the engine's event heap). Attributes that
    do not exist yet (created lazily, such as the controller's same-bank
    refresh cursor) are simply omitted and left untouched on restore.
    """
    contract = effective_contract(type(obj))
    out: Dict[str, Any] = {}
    for name in contract.state_fields:
        if overrides and name in overrides:
            out[name] = overrides[name](obj)
            continue
        value = getattr(obj, name, _MISSING)
        if value is _MISSING:
            continue
        out[name] = encode_value(value)
    return out


def restore_fields(obj: Any, data: Dict[str, Any], overrides: Overrides = None) -> None:
    """Restore a :func:`capture_fields` dict onto a live object."""
    contract = effective_contract(type(obj))
    for name in contract.state_fields:
        if name not in data:
            continue
        if overrides and name in overrides:
            overrides[name](obj, data[name])
            continue
        existing = getattr(obj, name, _MISSING)
        decoded = decode_value(data[name], existing)
        setattr(obj, name, decoded)


# ----------------------------------------------------------------------
# Contract linting
# ----------------------------------------------------------------------

def assigned_attributes(cls: type) -> Set[str]:
    """Every ``self.X`` a class (or its bases) binds, found by AST walk.

    All methods are inspected, not just ``__init__`` — some state is first
    assigned lazily (e.g. the controller's ``_ref_cursor`` appears in
    ``_schedule_refreshes``). Dataclass fields count as assigned too. The
    walk itself is :func:`repro.lint.astutil.collect_self_assignment_targets`,
    shared with the ``repro lint`` checkpoint-contract pass so the runtime
    and static checks cannot drift apart.
    """
    names: Set[str] = set()
    for klass in cls.__mro__:
        if klass in (object,) or klass.__module__ in ("abc", "builtins"):
            continue
        if dataclasses.is_dataclass(klass):
            names.update(f.name for f in dataclasses.fields(klass))
        try:
            source = textwrap.dedent(inspect.getsource(klass))
        except (OSError, TypeError):
            continue
        tree = ast.parse(source)
        names.update(collect_self_assignment_targets(tree))
    return names


def verify_contract(cls: type) -> FrozenSet[str]:
    """Return the attributes ``cls`` assigns but its contract omits.

    An empty result means the contract fully classifies the class. The
    lint test fails on any non-empty result, making un-checkpointed state
    an error rather than a silent divergence.
    """
    contract = effective_contract(cls)
    return frozenset(assigned_attributes(cls) - contract.all_fields)
