"""Versioned, integrity-hashed snapshot files.

A snapshot is canonical JSON (sorted keys, no whitespace) wrapped in a
gzip envelope that records the format name, format version, and a SHA-256
digest over the canonical body. Loading recomputes the digest and refuses
to return a corrupted snapshot — a truncated or bit-flipped file raises
:class:`SnapshotIntegrityError`, never restores garbage.

Files are written atomically (temp file in the target directory, then
``os.replace``) so a reader never observes a half-written snapshot and a
crash mid-write leaves any previous snapshot intact.
"""

from __future__ import annotations

import gzip
import hashlib
import json
import os
import tempfile
from dataclasses import dataclass
from typing import Any, Dict

#: Bump when the snapshot payload layout changes incompatibly.
CKPT_FORMAT_VERSION = 1

#: Format tag stored in every snapshot envelope.
SNAPSHOT_FORMAT = "repro-ckpt"

#: Conventional file suffix for snapshot files.
SNAPSHOT_SUFFIX = ".ckpt.gz"


class SnapshotError(ValueError):
    """A snapshot cannot be read (wrong format or version)."""


class SnapshotIntegrityError(SnapshotError):
    """A snapshot file is corrupt: bad envelope or digest mismatch."""


@dataclass
class Snapshot:
    """One captured system state.

    ``meta`` holds everything needed to *reconstruct* the system (config,
    setup, mapping, seed, traces, obs config); ``payload`` holds the live
    state overlaid onto the reconstruction (heap, RNG streams, counters).
    """

    meta: Dict[str, Any]
    payload: Dict[str, Any]
    version: int = CKPT_FORMAT_VERSION

    @property
    def cycle(self) -> int:
        """Engine cycle at capture time."""
        return int(self.meta.get("cycle", 0))

    @property
    def boundary(self) -> int:
        """Segment boundary this snapshot closes (>= :attr:`cycle`)."""
        return int(self.meta.get("boundary", self.cycle))


def canonical_json(obj: Any) -> str:
    """Canonical JSON: sorted keys, minimal separators, ASCII-safe."""
    return json.dumps(obj, sort_keys=True, separators=(",", ":"))


def snapshot_digest(snapshot: Snapshot) -> str:
    """SHA-256 over the canonical body; the snapshot's content address."""
    body = canonical_json(
        {
            "version": snapshot.version,
            "meta": snapshot.meta,
            "payload": snapshot.payload,
        }
    )
    return hashlib.sha256(body.encode("utf-8")).hexdigest()


def save_snapshot(snapshot: Snapshot, path: str) -> str:
    """Write ``snapshot`` to ``path`` atomically; return its digest.

    The gzip mtime is pinned to zero so identical snapshots produce
    byte-identical files regardless of wall-clock time.
    """
    digest = snapshot_digest(snapshot)
    envelope = {
        "format": SNAPSHOT_FORMAT,
        "version": snapshot.version,
        "sha256": digest,
        "meta": snapshot.meta,
        "payload": snapshot.payload,
    }
    raw = canonical_json(envelope).encode("utf-8")
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    fd, tmp_path = tempfile.mkstemp(
        prefix=".tmp-ckpt-", suffix=".gz", dir=directory
    )
    try:
        with os.fdopen(fd, "wb") as handle:
            with gzip.GzipFile(fileobj=handle, mode="wb", mtime=0) as zipped:
                zipped.write(raw)
        os.replace(tmp_path, path)
    except BaseException:
        try:
            os.unlink(tmp_path)
        except OSError:
            pass
        raise
    return digest


def load_snapshot(path: str) -> Snapshot:
    """Load and verify a snapshot file.

    Raises :class:`SnapshotIntegrityError` for any corruption (unreadable
    gzip, malformed JSON, missing envelope keys, digest mismatch) and
    :class:`SnapshotError` for a wrong format tag or an unsupported
    version. ``FileNotFoundError`` passes through untouched.
    """
    try:
        with gzip.open(path, "rb") as handle:
            raw = handle.read()
    except FileNotFoundError:
        raise
    except (OSError, EOFError, gzip.BadGzipFile) as exc:
        raise SnapshotIntegrityError(
            f"snapshot {path!r} is unreadable: {exc}"
        ) from exc
    try:
        envelope = json.loads(raw.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise SnapshotIntegrityError(
            f"snapshot {path!r} is not valid JSON: {exc}"
        ) from exc
    if not isinstance(envelope, dict) or not {
        "format",
        "version",
        "sha256",
        "meta",
        "payload",
    } <= set(envelope):
        raise SnapshotIntegrityError(
            f"snapshot {path!r} is missing envelope fields"
        )
    if envelope["format"] != SNAPSHOT_FORMAT:
        raise SnapshotError(
            f"{path!r} is not a {SNAPSHOT_FORMAT} snapshot "
            f"(format={envelope['format']!r})"
        )
    if envelope["version"] != CKPT_FORMAT_VERSION:
        raise SnapshotError(
            f"snapshot {path!r} has unsupported version "
            f"{envelope['version']!r} (supported: {CKPT_FORMAT_VERSION})"
        )
    snapshot = Snapshot(
        meta=envelope["meta"],
        payload=envelope["payload"],
        version=envelope["version"],
    )
    digest = snapshot_digest(snapshot)
    if digest != envelope["sha256"]:
        raise SnapshotIntegrityError(
            f"snapshot {path!r} failed its integrity check: stored "
            f"sha256 {envelope['sha256'][:12]}… but body hashes to "
            f"{digest[:12]}… (truncated or bit-flipped file)"
        )
    return snapshot
