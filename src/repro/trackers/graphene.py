"""Graphene tracker [35] (Section VII-D).

Graphene keeps a Misra-Gries table like Mithril but mitigates on a count
*threshold*: whenever a row's estimated count crosses ``mitigation_count``
it is nominated at the next opportunity and its counter resets. The table
clears every refresh window (tREFW), bounding the counts it must represent.

Graphene is deterministic and secure but needs counters sized for the
threshold; it is included as the strong-but-expensive end of the tracker
spectrum (the paper's low-cost trackers trade determinism for SRAM).
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.trackers.base import MitigationRequest, Tracker
from repro.ckpt.contract import checkpointable


@checkpointable(
    state=("_counts", "_decrements", "_due"),
    const=("entries", "mitigation_count"),
)
class GrapheneTracker(Tracker):
    """Misra-Gries table with threshold-triggered mitigation."""

    def __init__(
        self,
        entries: int,
        mitigation_count: int,
        rng: np.random.Generator,
    ):
        super().__init__(rng)
        if entries < 1:
            raise ValueError("entries must be at least 1")
        if mitigation_count < 1:
            raise ValueError("mitigation_count must be at least 1")
        self.entries = entries
        self.mitigation_count = mitigation_count
        self._counts: Dict[int, int] = {}
        self._decrements = 0
        self._due: Optional[int] = None

    def on_activation(self, row: int) -> None:
        counts = self._counts
        if row in counts:
            counts[row] += 1
        elif len(counts) < self.entries:
            counts[row] = self._decrements + 1
        else:
            self._decrements += 1
            dead = [r for r, c in counts.items() if c <= self._decrements]
            for r in dead:
                del counts[r]
            return
        if counts[row] - self._decrements >= self.mitigation_count:
            self._due = row

    def select_for_mitigation(self) -> Optional[MitigationRequest]:
        if self._due is None:
            return None
        row, self._due = self._due, None
        self._counts[row] = self._decrements  # count re-earned from zero
        return MitigationRequest(row, level=1)

    def on_refresh_window(self) -> None:
        """tREFW elapsed: every row refreshed, the table clears."""
        self._counts.clear()
        self._decrements = 0
        self._due = None

    def effective_count(self, row: int) -> int:
        """Misra-Gries estimate for ``row`` (0 when untracked)."""
        return max(0, self._counts.get(row, self._decrements) - self._decrements)

    @property
    def storage_bits(self) -> int:
        # Row address (~17 bits) + a counter wide enough for the threshold.
        counter_bits = max(1, self.mitigation_count.bit_length())
        return self.entries * (17 + counter_bits)
