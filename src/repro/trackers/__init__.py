"""Secure low-cost in-DRAM trackers (Section II-D, Appendix D).

All trackers implement :class:`Tracker`: they observe per-bank activations
and, when the bank's mitigation window completes, nominate one aggressor row.

* :class:`MintTracker` — the paper's representative tracker: one slot of the
  upcoming W-activation window is pre-selected uniformly at random.
* :class:`PrideTracker` — probabilistic sampling into a small FIFO.
* :class:`ParfmTracker` — PARA-style: buffer the window, pick uniformly.
* :class:`MithrilTracker` — deterministic Misra-Gries (counter) tracker.
"""

from repro.trackers.base import Tracker
from repro.trackers.graphene import GrapheneTracker
from repro.trackers.mint import MintTracker
from repro.trackers.mithril import MithrilTracker
from repro.trackers.para import ParaTracker
from repro.trackers.parfm import ParfmTracker
from repro.trackers.pride import PrideTracker
from repro.trackers.trr import TrrTracker

__all__ = [
    "Tracker",
    "GrapheneTracker",
    "MintTracker",
    "MithrilTracker",
    "ParaTracker",
    "ParfmTracker",
    "PrideTracker",
    "TrrTracker",
]
