"""PrIDE tracker [11] (Section II-D).

PrIDE samples each activation with probability ``p`` into a small FIFO; at
each mitigation opportunity the oldest sampled entry is mitigated. Its
tolerated threshold depends on the sampling probability, the FIFO's loss
probability (a sampled row is dropped when the FIFO is full), and tardiness
(activations between insertion and mitigation).
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Optional

import numpy as np

from repro.trackers.base import MitigationRequest, Tracker
from repro.ckpt.contract import checkpointable


@checkpointable(
    state=("_fifo", "samples_dropped"),
    const=("sample_probability", "fifo_entries"),
)
class PrideTracker(Tracker):
    """Probabilistic sampling into a bounded FIFO."""

    def __init__(
        self,
        sample_probability: float,
        rng: np.random.Generator,
        fifo_entries: int = 4,
    ):
        super().__init__(rng)
        if not 0.0 < sample_probability <= 1.0:
            raise ValueError("sample_probability must be in (0, 1]")
        if fifo_entries < 1:
            raise ValueError("fifo_entries must be at least 1")
        self.sample_probability = sample_probability
        self.fifo_entries = fifo_entries
        self._fifo: Deque[int] = deque()
        self.samples_dropped = 0

    def on_activation(self, row: int) -> None:
        if self.rng.random() < self.sample_probability:
            if len(self._fifo) >= self.fifo_entries:
                self.samples_dropped += 1
                return
            self._fifo.append(row)

    def select_for_mitigation(self) -> Optional[MitigationRequest]:
        if not self._fifo:
            return None
        return MitigationRequest(self._fifo.popleft(), level=1)

    @property
    def occupancy(self) -> int:
        return len(self._fifo)

    @property
    def storage_bits(self) -> int:
        # fifo_entries row addresses at ~17 bits plus valid bits.
        return self.fifo_entries * 18
