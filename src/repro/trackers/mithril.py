"""Mithril tracker [18] (Appendix D).

Mithril is a deterministic counter-based tracker built on the Misra-Gries
frequent-elements algorithm: it keeps ``entries`` (row, count) pairs; an
activation increments its row's counter (inserting when a free or zero-count
slot exists) or decrements every counter when the table is full. At each
mitigation opportunity the row with the highest count is mitigated and its
counter reset to the running minimum.

Misra-Gries guarantees that any row's true activation count since its last
mitigation is at most ``count + total_acts / entries``, which is what gives
Mithril a deterministic tolerated threshold (at the price of > 30 K entries
per bank, Fig. 18).
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.trackers.base import MitigationRequest, Tracker
from repro.ckpt.contract import checkpointable


@checkpointable(
    state=("_counts", "_decrements"),
    const=("entries",),
)
class MithrilTracker(Tracker):
    """Misra-Gries counter tracker with highest-count mitigation."""

    def __init__(self, entries: int, rng: np.random.Generator):
        super().__init__(rng)
        if entries < 1:
            raise ValueError("entries must be at least 1")
        self.entries = entries
        self._counts: Dict[int, int] = {}
        self._decrements = 0  # global decrement offset (lazy Misra-Gries)

    def on_activation(self, row: int) -> None:
        counts = self._counts
        if row in counts:
            counts[row] += 1
        elif len(counts) < self.entries:
            counts[row] = self._decrements + 1
        else:
            # Table full: the classic Misra-Gries decrement of every counter,
            # done lazily by raising the global offset and evicting rows whose
            # effective count reaches zero.
            self._decrements += 1
            dead = [r for r, c in counts.items() if c <= self._decrements]
            for r in dead:
                del counts[r]

    def select_for_mitigation(self) -> Optional[MitigationRequest]:
        if not self._counts:
            return None
        row = max(self._counts, key=self._counts.get)
        if self._counts[row] <= self._decrements:
            return None
        # Reset the mitigated row to the floor so it re-earns its count.
        self._counts[row] = self._decrements
        return MitigationRequest(row, level=1)

    def effective_count(self, row: int) -> int:
        """Current Misra-Gries estimate for ``row`` (0 when untracked)."""
        return max(0, self._counts.get(row, self._decrements) - self._decrements)

    @property
    def storage_bits(self) -> int:
        # Each entry: row address (~17 bits) + counter (~16 bits).
        return self.entries * 33
