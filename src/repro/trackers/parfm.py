"""PARFM tracker [18] (Section II-D).

PARFM buffers the row addresses activated since the last mitigation; on
mitigation, one buffered address is selected uniformly at random. The buffer
covers one mitigation window, so its size equals the window length.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.trackers.base import MitigationRequest, Tracker
from repro.ckpt.contract import checkpointable


@checkpointable(
    state=("_buffer",),
    const=("window", "strict"),
)
class ParfmTracker(Tracker):
    """Uniform selection over the activations of the current window."""

    def __init__(self, window: int, rng: np.random.Generator, strict: bool = True):
        super().__init__(rng)
        if window < 1:
            raise ValueError("window must be at least 1")
        self.window = window
        self.strict = strict
        self._buffer: List[int] = []

    def on_activation(self, row: int) -> None:
        if len(self._buffer) >= self.window:
            if self.strict:
                raise RuntimeError(
                    "window overran: select_for_mitigation was not called"
                )
            self._buffer.pop(0)  # deferred mitigation: slide the window
        self._buffer.append(row)

    def select_for_mitigation(self) -> Optional[MitigationRequest]:
        if not self._buffer:
            return None
        choice = int(self.rng.integers(0, len(self._buffer)))
        row = self._buffer[choice]
        self._buffer.clear()
        return MitigationRequest(row, level=1)

    @property
    def storage_bits(self) -> int:
        return self.window * 18
