"""MINT: Minimalist In-DRAM Tracker [37] (Section II-D, Fig. 4 and Fig. 6).

MINT operates over a window of W activations. At the start of each window it
pre-selects, uniformly at random, which of the upcoming slots will be
mitigated; the row occupying that slot is nominated at the end of the window.
MINT stores a single row address (plus the slot counter), making it the
cheapest secure tracker.

Two flavours:

* ``transitive_slot=False`` (used with Fractal Mitigation): select among the
  W demand slots.
* ``transitive_slot=True`` (MINT's native recursive-mitigation defence):
  select among W+1 slots, where the extra slot re-mitigates the previously
  mitigated row at an increased distance (level + 1).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.trackers.base import MitigationRequest, Tracker
from repro.ckpt.contract import checkpointable


@checkpointable(
    state=("_position", "_captured", "_last_mitigation", "_chosen_slot"),
    const=("window", "transitive_slot", "strict"),
)
class MintTracker(Tracker):
    """Single-entry probabilistic tracker with pre-decided slot selection."""

    def __init__(
        self,
        window: int,
        rng: np.random.Generator,
        transitive_slot: bool = False,
        strict: bool = True,
    ):
        """``strict=False`` lets the window wrap instead of raising.

        AutoRFM guarantees a mitigation every ``window`` activations, so its
        trackers run strict. Under blocking RFM the controller may defer a
        due RFM up to the RAAMMT hard cap, so more than ``window`` ACTs can
        land between mitigations; non-strict mode re-rolls the window when
        that happens (the selection probability per ACT is unchanged).
        """
        super().__init__(rng)
        if window < 1:
            raise ValueError("window must be at least 1")
        self.window = window
        self.transitive_slot = transitive_slot
        self.strict = strict
        self._position = 0
        self._captured: Optional[int] = None
        self._last_mitigation: Optional[MitigationRequest] = None
        self._chosen_slot = self._draw_slot()

    # ------------------------------------------------------------------
    def _draw_slot(self) -> int:
        """Slot index in [1, W] (or [1, W+1] with the transitive slot)."""
        slots = self.window + (1 if self.transitive_slot else 0)
        return int(self.rng.integers(1, slots + 1))

    @property
    def selection_probability(self) -> float:
        """Probability that a given demand activation is selected."""
        return 1.0 / (self.window + (1 if self.transitive_slot else 0))

    # ------------------------------------------------------------------
    def on_activation(self, row: int) -> None:
        if self._position >= self.window:
            if self.strict:
                raise RuntimeError(
                    "window overran: select_for_mitigation was not called"
                )
            self._position = 0
            self._chosen_slot = self._draw_slot()
        self._position += 1
        if self._position == self._chosen_slot:
            self._captured = row

    def window_complete(self) -> bool:
        """True when all W slots of the current window have been seen."""
        return self._position >= self.window

    def select_for_mitigation(self) -> Optional[MitigationRequest]:
        """Close the window, nominate its aggressor, and start a new window."""
        transitive = (
            self.transitive_slot and self._chosen_slot == self.window + 1
        )
        if transitive:
            previous = self._last_mitigation
            if previous is None:
                request = None
            else:
                request = MitigationRequest(previous.row, previous.level + 1)
        elif self._captured is not None:
            request = MitigationRequest(self._captured, level=1)
        else:
            request = None

        self._last_mitigation = request or self._last_mitigation
        self._position = 0
        self._captured = None
        self._chosen_slot = self._draw_slot()
        return request

    # ------------------------------------------------------------------
    @property
    def storage_bits(self) -> int:
        # One row address (17 bits for 128K rows), a slot counter, the chosen
        # slot, and the last-mitigation record: ~4 bytes (Section VI-C).
        return 32
