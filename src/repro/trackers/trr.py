"""A TRR-style vendor tracker — deliberately *insecure* (Section I / II-D).

In-DRAM Target Row Refresh implementations sample activations
deterministically into a tiny table and refresh the hottest entry during
REF. TRRespass [5] and Blacksmith [12] broke them with many-sided patterns:
enough decoy aggressors evict the real target from the table between
mitigations. This model reproduces that failure mode so the benchmark suite
can demonstrate *why* the paper restricts itself to secure trackers.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.trackers.base import MitigationRequest, Tracker
from repro.ckpt.contract import checkpointable


@checkpointable(
    state=("_table", "_acts"),
    const=("entries", "sample_period"),
)
class TrrTracker(Tracker):
    """Deterministic periodic sampler over a tiny recency table."""

    def __init__(
        self,
        rng: np.random.Generator,
        entries: int = 4,
        sample_period: int = 4,
    ):
        super().__init__(rng)
        if entries < 1:
            raise ValueError("entries must be at least 1")
        if sample_period < 1:
            raise ValueError("sample_period must be at least 1")
        self.entries = entries
        self.sample_period = sample_period
        self._table: Dict[int, int] = {}  # row -> sampled-hit count
        self._acts = 0

    def on_activation(self, row: int) -> None:
        self._acts += 1
        if self._acts % self.sample_period:
            return  # deterministic sampling: every Nth ACT only
        if row in self._table:
            self._table[row] += 1
            return
        if len(self._table) >= self.entries:
            # Evict the coldest entry — the lever many-sided attacks pull.
            coldest = min(self._table, key=self._table.get)
            del self._table[coldest]
        self._table[row] = 1

    def select_for_mitigation(self) -> Optional[MitigationRequest]:
        if not self._table:
            return None
        row = max(self._table, key=self._table.get)
        del self._table[row]
        return MitigationRequest(row, level=1)

    @property
    def storage_bits(self) -> int:
        return self.entries * (17 + 8)
