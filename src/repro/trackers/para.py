"""PARA-style sampling tracker (used by the SMD comparison, Section VII-B).

PARA samples each activation with probability ``p`` and mitigates the
sampled row at the next opportunity. Unlike MINT there is no window
structure: most mitigation opportunities find nothing pending, and a new
sample overwrites an unharvested one (the classic single-entry PARA).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.trackers.base import MitigationRequest, Tracker
from repro.ckpt.contract import checkpointable


@checkpointable(
    state=("_pending", "samples", "overwritten"),
    const=("probability",),
)
class ParaTracker(Tracker):
    """Sample-with-probability-p, mitigate-at-next-opportunity."""

    def __init__(self, probability: float, rng: np.random.Generator):
        super().__init__(rng)
        if not 0.0 < probability <= 1.0:
            raise ValueError("probability must be in (0, 1]")
        self.probability = probability
        self._pending: Optional[int] = None
        self.samples = 0
        self.overwritten = 0

    def on_activation(self, row: int) -> None:
        if self.rng.random() < self.probability:
            if self._pending is not None:
                self.overwritten += 1
            self._pending = row
            self.samples += 1

    def select_for_mitigation(self) -> Optional[MitigationRequest]:
        if self._pending is None:
            return None
        row, self._pending = self._pending, None
        return MitigationRequest(row, level=1)

    @property
    def storage_bits(self) -> int:
        return 18  # one pending row address + valid bit
