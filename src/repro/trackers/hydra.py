"""Hydra tracker [38] (Section VII-D).

Hydra keeps *per-row* activation counters in DRAM and filters accesses to
them with two SRAM structures: a Group Count Table (GCT) that counts
activations per group of rows, and a Row Count Cache (RCC) over the DRAM
counters. Per-row tracking engages only after a group's count crosses
``group_threshold`` — benign traffic almost never does — so the common case
touches SRAM only. The costs the paper alludes to ("can still cause
significant slowdowns") are the DRAM counter lookups on RCC misses, which
this model counts in :attr:`dram_lookups`.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Optional

import numpy as np

from repro.trackers.base import MitigationRequest, Tracker
from repro.ckpt.contract import checkpointable


@checkpointable(
    state=("_group_counts", "_row_counts", "_rcc", "_pending",
           "dram_lookups", "engaged_groups"),
    const=("group_size", "group_threshold", "row_threshold", "rcc_entries"),
)
class HydraTracker(Tracker):
    """GCT + RCC + DRAM-resident per-row counters."""

    def __init__(
        self,
        rng: np.random.Generator,
        group_size: int = 128,
        group_threshold: int = 200,
        row_threshold: int = 400,
        rcc_entries: int = 64,
    ):
        super().__init__(rng)
        if group_size < 1 or rcc_entries < 1:
            raise ValueError("group_size and rcc_entries must be positive")
        if group_threshold < 1 or row_threshold < 1:
            raise ValueError("thresholds must be positive")
        self.group_size = group_size
        self.group_threshold = group_threshold
        self.row_threshold = row_threshold
        self.rcc_entries = rcc_entries

        self._group_counts: Dict[int, int] = {}
        self._row_counts: Dict[int, int] = {}  # the DRAM-resident counters
        self._rcc: "OrderedDict[int, None]" = OrderedDict()  # LRU over rows
        self._pending: Optional[int] = None

        self.dram_lookups = 0  # RCC misses once per-row tracking engaged
        self.engaged_groups = 0

    # ------------------------------------------------------------------
    def on_activation(self, row: int) -> None:
        group = row // self.group_size
        count = self._group_counts.get(group, 0) + 1
        self._group_counts[group] = count
        if count < self.group_threshold:
            return  # common case: SRAM only
        if count == self.group_threshold:
            self.engaged_groups += 1

        self._rcc_access(row)
        row_count = self._row_counts.get(row, 0) + 1
        self._row_counts[row] = row_count
        if row_count >= self.row_threshold:
            self._pending = row

    def _rcc_access(self, row: int) -> None:
        if row in self._rcc:
            self._rcc.move_to_end(row)
            return
        self.dram_lookups += 1  # counter fetched (and written back) in DRAM
        if len(self._rcc) >= self.rcc_entries:
            self._rcc.popitem(last=False)
        self._rcc[row] = None

    def select_for_mitigation(self) -> Optional[MitigationRequest]:
        if self._pending is None:
            return None
        row, self._pending = self._pending, None
        self._row_counts[row] = 0
        return MitigationRequest(row, level=1)

    def on_refresh_window(self) -> None:
        """tREFW elapsed: all counters reset."""
        self._group_counts.clear()
        self._row_counts.clear()
        self._rcc.clear()
        self._pending = None

    # ------------------------------------------------------------------
    def row_count(self, row: int) -> int:
        """DRAM-resident counter value for ``row`` (0 before engagement)."""
        return self._row_counts.get(row, 0)

    def group_count(self, row: int) -> int:
        """GCT counter of the group holding ``row``."""
        return self._group_counts.get(row // self.group_size, 0)

    @property
    def storage_bits(self) -> int:
        """SRAM only: the GCT plus the RCC (DRAM counters are not SRAM).

        The GCT is sized for the groups of one bank (rows / group_size);
        each entry needs a counter wide enough for group_threshold, and
        each RCC entry a row id plus a row counter.
        """
        group_counter_bits = max(1, self.group_threshold.bit_length())
        row_counter_bits = max(1, self.row_threshold.bit_length())
        gct_entries = 128 * 1024 // self.group_size
        return (
            gct_entries * group_counter_bits
            + self.rcc_entries * (17 + row_counter_bits)
        )
