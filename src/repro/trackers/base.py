"""Tracker interface.

A tracker instance serves exactly one DRAM bank. The bank (or the AutoRFM
engine driving it) calls :meth:`on_activation` for every demand ACT and
:meth:`select_for_mitigation` once per mitigation window; the returned
:class:`MitigationRequest` names the aggressor row (or ``None`` when the
tracker has nothing to mitigate, e.g. an empty PrIDE FIFO).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Optional

import numpy as np
from repro.ckpt.contract import checkpointable, register_value_type


@dataclass(frozen=True)
class MitigationRequest:
    """One nominated aggressor.

    ``level`` is the recursive-mitigation level: level 1 is a direct
    aggressor; level L > 1 means the row was itself a victim of a level L-1
    mitigation and its victims must be refreshed at increased distance
    (Fig. 9b). Fractal Mitigation always issues level 1.
    """

    row: int
    level: int = 1


register_value_type(
    "MitigationRequest",
    MitigationRequest,
    lambda r: [r.row, r.level],
    lambda d: MitigationRequest(d[0], d[1]),
)


@checkpointable(derived=("rng",))
class Tracker(abc.ABC):
    """Per-bank aggressor-row tracker."""

    def __init__(self, rng: np.random.Generator):
        self.rng = rng

    @abc.abstractmethod
    def on_activation(self, row: int) -> None:
        """Observe one demand activation of ``row``."""

    @abc.abstractmethod
    def select_for_mitigation(self) -> Optional[MitigationRequest]:
        """Nominate the aggressor for this window (called at window end)."""

    def on_victim_refresh(self, row: int, level: int) -> None:
        """Observe a victim refresh (used by recursive-mitigation trackers)."""

    @property
    def metric_labels(self) -> dict:
        """Labels identifying this tracker in ``repro.obs`` metric series
        (e.g. ``tracker.selects{tracker=MintTracker}``); subclasses may
        extend with tracker-specific dimensions."""
        return {"tracker": type(self).__name__}

    @property
    @abc.abstractmethod
    def storage_bits(self) -> int:
        """SRAM the tracker needs per bank, in bits (Section VI-C)."""
