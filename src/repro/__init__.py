"""AutoRFM reproduction (HPCA 2025).

A memory-system simulator and analysis toolkit reproducing *AutoRFM: Scaling
Low-Cost In-DRAM Trackers to Ultra-Low Rowhammer Thresholds*.

Quickstart::

    from repro import (
        MitigationSetup, SystemConfig, WORKLOADS, make_rate_traces, simulate,
    )

    config = SystemConfig()
    traces = make_rate_traces(WORKLOADS["bwaves"], config, requests=5000)
    baseline = simulate(traces, MitigationSetup("none"), config, mapping="zen")
    autorfm = simulate(
        traces,
        MitigationSetup("autorfm", threshold=4, policy="fractal"),
        config,
        mapping="rubix",
    )
    print(f"slowdown: {autorfm.slowdown_vs(baseline):.1%}")
"""

from repro.cpu.system import SimulationResult, build_mapping, simulate
from repro.mc.setup import MitigationSetup
from repro.sim.config import DramTiming, SystemConfig
from repro.sim.rng import RngStreams
from repro.sim.stats import SimStats
from repro.workloads import WORKLOADS, Workload, Trace
from repro.workloads.rate import make_rate_traces

__version__ = "1.0.0"

__all__ = [
    "DramTiming",
    "MitigationSetup",
    "RngStreams",
    "SimStats",
    "SimulationResult",
    "SystemConfig",
    "Trace",
    "WORKLOADS",
    "Workload",
    "build_mapping",
    "make_rate_traces",
    "simulate",
    "__version__",
]
