"""Trace diagnostics: quantify the locality properties calibration relies on.

The synthetic generators are calibrated so that, through the Zen mapping,
they reproduce each workload's Table V behaviour. These metrics make that
calibration inspectable (and testable) instead of folklore:

* :func:`reuse_distance_histogram` — how soon the stream revisits the same
  bank row (the distribution that decides row hits vs SAUM conflicts);
* :func:`bank_spread` — how evenly requests cover the banks (bank-level
  parallelism);
* :func:`sequentiality` — fraction of +1-line transitions;
* :func:`trace_profile` — the bundle, as a dict for reports.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from typing import Dict, Iterable, List

from repro.mapping.base import MemoryMapping
from repro.workloads.trace import Trace

#: Reuse-distance bucket edges (in requests); the tRAS window at typical
#: arrival rates corresponds to the first bucket or two.
REUSE_BUCKETS = (4, 16, 64, 256, 1024)


def reuse_distance_histogram(
    trace: Trace, mapping: MemoryMapping
) -> Dict[str, float]:
    """Distribution of same-bank-row revisit distances, in requests.

    Returns bucket-label -> fraction of requests that revisit a row last
    touched within that many requests ("inf" = first touch or beyond the
    largest bucket). Short distances become row hits (or SAUM conflicts);
    long ones are fresh activations.
    """
    last_seen: Dict[tuple, int] = {}
    counts: Counter = Counter()
    total = 0
    for index, addr in enumerate(trace.addrs):
        loc = mapping.locate(addr)
        key = (loc.subchannel, loc.bank, loc.row)
        total += 1
        if key in last_seen:
            distance = index - last_seen[key]
            for edge in REUSE_BUCKETS:
                if distance <= edge:
                    counts[f"<={edge}"] += 1
                    break
            else:
                counts["inf"] += 1
        else:
            counts["inf"] += 1
        last_seen[key] = index
    if total == 0:
        return {}
    return {label: counts.get(label, 0) / total
            for label in [f"<={e}" for e in REUSE_BUCKETS] + ["inf"]}


def bank_spread(trace: Trace, mapping: MemoryMapping) -> float:
    """Normalized entropy of the per-bank request distribution (0..1).

    1.0 means perfectly uniform coverage of all banks (maximal bank-level
    parallelism); values near 0 mean the stream camps on few banks.
    """
    import math

    counts: Dict[int, int] = defaultdict(int)
    banks_total = (
        mapping.config.num_subchannels * mapping.config.banks_per_subchannel
    )
    for addr in trace.addrs:
        loc = mapping.locate(addr)
        counts[loc.flat_bank(mapping.config.banks_per_subchannel)] += 1
    total = sum(counts.values())
    if total == 0 or banks_total < 2:
        return 0.0
    entropy = -sum(
        (c / total) * math.log(c / total) for c in counts.values() if c
    )
    return entropy / math.log(banks_total)


def sequentiality(trace: Trace) -> float:
    """Fraction of consecutive-line (+1) transitions in the stream."""
    if len(trace) < 2:
        return 0.0
    hits = sum(1 for a, b in zip(trace.addrs, trace.addrs[1:]) if b == a + 1)
    return hits / (len(trace) - 1)


def trace_profile(trace: Trace, mapping: MemoryMapping) -> Dict[str, object]:
    """All diagnostics in one record (for reports and calibration tests)."""
    return {
        "name": trace.name,
        "requests": len(trace),
        "mpki": round(trace.mpki, 3),
        "write_fraction": (
            sum(trace.writes) / len(trace) if len(trace) else 0.0
        ),
        "sequentiality": round(sequentiality(trace), 4),
        "bank_spread": round(bank_spread(trace, mapping), 4),
        "reuse": {
            k: round(v, 4)
            for k, v in reuse_distance_histogram(trace, mapping).items()
        },
    }


def profile_table(
    traces: Iterable[Trace], mapping: MemoryMapping
) -> List[Dict[str, object]]:
    """Profiles for several traces (one record each)."""
    return [trace_profile(t, mapping) for t in traces]
