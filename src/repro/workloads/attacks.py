"""Rowhammer attack access patterns (logical, per-bank row sequences).

These generate the row-activation sequences the security analysis replays
against a tracker + mitigation pair: the (ABCD)^K round-robin pattern that is
optimal against MINT (Appendix A), classic single/double-sided hammers, and
the Half-Double transitive pattern [23].
"""

from __future__ import annotations

from typing import Iterator, List, Sequence


def round_robin_attack(rows: Sequence[int], total_acts: int) -> List[int]:
    """(ABCD...)^K — W unique rows activated continuously in a circle."""
    if not rows:
        raise ValueError("need at least one row")
    if total_acts < 0:
        raise ValueError("total_acts must be non-negative")
    n = len(rows)
    return [rows[i % n] for i in range(total_acts)]


def single_sided(row: int, total_acts: int) -> List[int]:
    """Hammer one aggressor row continuously."""
    return round_robin_attack([row], total_acts)


def double_sided(victim: int, total_acts: int) -> List[int]:
    """Alternate the two neighbours of ``victim`` (the strongest pattern)."""
    if victim < 1:
        raise ValueError("victim must have two neighbours")
    return round_robin_attack([victim - 1, victim + 1], total_acts)


def half_double(far_aggressor: int, total_acts: int, decoys: int = 8) -> List[int]:
    """Half-Double [23]: hammer A so its victim refreshes hammer A +- 2.

    The attacker hammers ``far_aggressor`` (and rotating decoy rows far away
    so blocking trackers can't trivially lock on); the mitigation's victim
    refreshes of A+-1 then act as activations next to the real target rows at
    distance two. The decoys sit 10 000 rows away, outside any blast radius.
    """
    if decoys < 0:
        raise ValueError("decoys must be non-negative")
    pattern = [far_aggressor]
    pattern.extend(far_aggressor + 10_000 + 2 * d for d in range(decoys))
    return round_robin_attack(pattern, total_acts)


def interleave(patterns: Sequence[Sequence[int]], total_acts: int) -> List[int]:
    """Round-robin interleaving of several attack sub-patterns."""
    if not patterns or any(len(p) == 0 for p in patterns):
        raise ValueError("patterns must be non-empty")
    iters: List[Iterator[int]] = [_cycle(p) for p in patterns]
    return [next(iters[i % len(iters)]) for i in range(total_acts)]


def _cycle(seq: Sequence[int]) -> Iterator[int]:
    while True:
        for item in seq:
            yield item
