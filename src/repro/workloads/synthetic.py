"""Synthetic post-LLC trace generation.

Each workload class reproduces the memory behaviour that drives the paper's
results: arrival rate (MPKI), spatial locality (sequential streams map
consecutive line pairs to the same bank row under Zen), and randomness
(graph/pointer-chasing workloads spread accesses uniformly).

Patterns:

* ``stream``  — N concurrent sequential streams (STREAM, bwaves, lbm, ...),
  with occasional random restarts so the footprint keeps moving;
* ``random``  — uniform accesses over the core's region (mcf, omnetpp);
* ``mixed``   — a sequential scan interleaved with uniform accesses, the
  GAP-style CSR-scan-plus-neighbour-lookup shape;
* ``strided`` — a single stream with a multi-line stride.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.workloads.trace import Trace

PATTERNS = ("stream", "random", "mixed", "strided")


def generate_trace(
    pattern: str,
    num_requests: int,
    mpki: float,
    region_start: int,
    region_lines: int,
    rng: np.random.Generator,
    streams: int = 4,
    sequential_fraction: float = 0.5,
    write_fraction: float = 0.3,
    stride: int = 4,
    run_length: int = 2048,
    chunk: int = 4,
    revisit_probability: float = 0.0,
    revisit_window: int = 48,
    name: str = "",
) -> Trace:
    """Generate a synthetic trace of ``num_requests`` memory requests."""
    if pattern not in PATTERNS:
        raise ValueError(f"unknown pattern {pattern!r}")
    if num_requests < 0:
        raise ValueError("num_requests must be non-negative")
    if mpki <= 0:
        raise ValueError("mpki must be positive")
    if region_lines < 1:
        raise ValueError("region_lines must be positive")

    mean_gap = max(0.0, 1000.0 / mpki - 1.0)
    if mean_gap > 0:
        p = 1.0 / (mean_gap + 1.0)
        gaps = (rng.geometric(p, size=num_requests) - 1).tolist()
    else:
        gaps = [0] * num_requests

    if pattern == "stream":
        addrs = _stream_addresses(
            num_requests, region_start, region_lines, rng, streams,
            run_length, 1, chunk,
        )
    elif pattern == "strided":
        addrs = _stream_addresses(
            num_requests, region_start, region_lines, rng, streams,
            run_length, stride, chunk,
        )
    elif pattern == "random":
        addrs = (
            region_start + rng.integers(0, region_lines, size=num_requests)
        ).tolist()
    else:  # mixed
        addrs = _mixed_addresses(
            num_requests,
            region_start,
            region_lines,
            rng,
            sequential_fraction,
            run_length,
        )

    if revisit_probability > 0.0:
        addrs = _with_revisits(addrs, rng, revisit_probability, revisit_window)
        # Wrap neighbourhood offsets back into the core's region.
        addrs = [
            region_start + ((a - region_start) % region_lines) for a in addrs
        ]

    writes = (rng.random(num_requests) < write_fraction).tolist()
    return Trace(gaps=gaps, addrs=addrs, writes=writes, name=name)


#: Line offsets of a "neighbourhood revisit" relative to a recent access:
#: the adjacent line of the pair (struct spanning two lines) and sibling
#: pages at ±8 KB / ±16 KB (array row strides). Under the Zen mapping all of
#: these land in the *same bank row* as the recent access; under Rubix they
#: scatter uniformly. Same-line reuse is excluded on purpose — a line touched
#: nanoseconds ago is still in the LLC and never reaches memory again.
_REVISIT_NEIGHBOURS = ("pair", +128, -128, +256, -256)


def _with_revisits(
    addrs: List[int],
    rng: np.random.Generator,
    probability: float,
    window: int,
) -> List[int]:
    """Replace some addresses with short-range neighbourhood revisits.

    Real access streams re-touch the neighbourhood of recently used lines
    after tens to hundreds of nanoseconds. Under the Zen mapping such a
    revisit re-activates the *same bank row* — the access shape that
    conflicts with a Subarray-Under-Mitigation (Section IV-E).
    """
    if not 0.0 <= probability <= 1.0:
        raise ValueError("revisit probability must be in [0, 1]")
    if window < 1:
        raise ValueError("revisit window must be positive")
    n = len(addrs)
    revisit_draws = (rng.random(n) < probability).tolist()
    offsets = rng.integers(1, window + 1, size=n).tolist()
    neighbour_draws = rng.integers(0, len(_REVISIT_NEIGHBOURS), size=n).tolist()
    out = list(addrs)
    for i in range(1, n):
        if not revisit_draws[i]:
            continue
        anchor = out[max(0, i - offsets[i])]
        neighbour = _REVISIT_NEIGHBOURS[neighbour_draws[i]]
        if neighbour == "pair":
            out[i] = anchor ^ 1
        else:
            out[i] = anchor + neighbour
    return out


def _stream_addresses(
    n: int,
    region_start: int,
    region_lines: int,
    rng: np.random.Generator,
    streams: int,
    run_length: int,
    stride: int,
    chunk: int,
) -> List[int]:
    """Interleave N streams, emitting ``chunk`` consecutive lines per turn.

    Chunked emission mirrors what an out-of-order core with spatial locality
    (and a line-fill prefetcher) sends to memory: short bursts of adjacent
    lines, which is what gives the Zen mapping its row-buffer hits — and its
    SAUM conflicts.
    """
    streams = max(1, streams)
    chunk = max(1, chunk)
    cursors = rng.integers(0, region_lines, size=streams).tolist()
    remaining = rng.integers(run_length // 2, run_length, size=streams).tolist()
    addrs: List[int] = []
    turn = 0
    while len(addrs) < n:
        s = turn % streams
        turn += 1
        for _ in range(min(chunk, n - len(addrs))):
            if remaining[s] <= 0:
                cursors[s] = int(rng.integers(0, region_lines))
                remaining[s] = int(rng.integers(run_length // 2, run_length))
            addrs.append(region_start + cursors[s])
            cursors[s] = (cursors[s] + stride) % region_lines
            remaining[s] -= 1
    return addrs


def _mixed_addresses(
    n: int,
    region_start: int,
    region_lines: int,
    rng: np.random.Generator,
    sequential_fraction: float,
    run_length: int,
) -> List[int]:
    if not 0.0 <= sequential_fraction <= 1.0:
        raise ValueError("sequential_fraction must be in [0, 1]")
    cursor = int(rng.integers(0, region_lines))
    remaining = run_length
    seq_draws = (rng.random(n) < sequential_fraction).tolist()
    random_pool = rng.integers(0, region_lines, size=n).tolist()
    addrs: List[int] = []
    for i in range(n):
        if seq_draws[i]:
            if remaining <= 0:
                cursor = random_pool[i]
                remaining = run_length
            addrs.append(region_start + cursor)
            cursor = (cursor + 1) % region_lines
            remaining -= 1
        else:
            addrs.append(region_start + random_pool[i])
    return addrs
