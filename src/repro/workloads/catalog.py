"""The 21-workload catalog of Table V.

Each entry records the paper's measured characteristics (ACT-PKI and
ACT-per-tREFI on the Zen-mapped baseline) and the generator recipe that
reproduces the workload's memory behaviour. The request rate (MPKI) is the
target ACT-PKI inflated by the expected row-hit coalescing of the pattern
under the Zen mapping: a sequential pair of lines shares a bank row and
usually collapses into one ACT, whereas random accesses almost never do.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from repro.sim.config import SystemConfig
from repro.workloads.synthetic import generate_trace
from repro.workloads.trace import Trace


@dataclass(frozen=True)
class Workload:
    """One benchmark: paper characteristics plus its generator recipe."""

    name: str
    suite: str  # "SPEC2K17" | "GAP" | "Stream"
    paper_act_pki: float
    paper_act_per_trefi: float
    pattern: str
    streams: int = 4
    sequential_fraction: float = 0.5
    write_fraction: float = 0.30
    chunk: int = 4
    revisit_probability: float = -1.0  # -1: pattern default

    def _revisit_probability(self) -> float:
        if self.revisit_probability >= 0.0:
            return self.revisit_probability
        return {"stream": 0.40, "mixed": 0.30, "random": 0.20}.get(
            self.pattern, 0.30
        )

    @property
    def mpki(self) -> float:
        """Request rate needed to land near the paper's ACT-PKI."""
        return self.paper_act_pki * self._hit_inflation()

    def _hit_inflation(self) -> float:
        if self.pattern == "stream":
            return 1.4  # line pairs mostly coalesce under Zen
        if self.pattern == "random":
            return 1.02
        if self.pattern == "mixed":
            return 1.0 + 0.4 * self.sequential_fraction
        return 1.3  # strided

    def trace(
        self,
        num_requests: int,
        config: SystemConfig,
        core_id: int,
        rng: np.random.Generator,
    ) -> Trace:
        """Generate this workload's trace for one core (rate mode)."""
        region_lines = config.total_lines // config.num_cores
        return generate_trace(
            pattern=self.pattern,
            num_requests=num_requests,
            mpki=self.mpki,
            region_start=core_id * region_lines,
            region_lines=region_lines,
            rng=rng,
            streams=self.streams,
            sequential_fraction=self.sequential_fraction,
            write_fraction=self.write_fraction,
            chunk=self.chunk,
            revisit_probability=self._revisit_probability(),
            name=self.name,
        )


WORKLOADS: Dict[str, Workload] = {
    w.name: w
    for w in [
        # --- SPEC-2017 (11 benchmarks with ACT-PKI >= 1, Table V) ---
        Workload("bwaves", "SPEC2K17", 35.7, 27.7, "stream", streams=8),
        Workload("fotonik3d", "SPEC2K17", 26.7, 33.0, "stream", streams=6),
        Workload("lbm", "SPEC2K17", 25.5, 34.4, "stream", streams=8,
                 write_fraction=0.45),
        Workload("parest", "SPEC2K17", 20.0, 28.4, "mixed",
                 sequential_fraction=0.6),
        Workload("mcf", "SPEC2K17", 22.0, 31.4, "mixed",
                 sequential_fraction=0.15, write_fraction=0.2),
        Workload("roms", "SPEC2K17", 13.4, 26.7, "stream", streams=4),
        Workload("omnetpp", "SPEC2K17", 9.5, 29.0, "random",
                 write_fraction=0.35),
        Workload("xz", "SPEC2K17", 5.9, 25.0, "mixed",
                 sequential_fraction=0.4),
        Workload("cam4", "SPEC2K17", 4.2, 18.2, "mixed",
                 sequential_fraction=0.5),
        Workload("blender", "SPEC2K17", 1.4, 9.7, "mixed",
                 sequential_fraction=0.5),
        Workload("wrf", "SPEC2K17", 1.0, 6.6, "stream", streams=4),
        # --- GAP graph analytics ---
        Workload("ConnComp", "GAP", 80.7, 35.0, "mixed",
                 sequential_fraction=0.35, write_fraction=0.2),
        Workload("PageRank", "GAP", 40.9, 31.5, "mixed",
                 sequential_fraction=0.40, write_fraction=0.2),
        Workload("TriCount", "GAP", 35.2, 26.1, "mixed",
                 sequential_fraction=0.45, write_fraction=0.1),
        Workload("BFS", "GAP", 31.1, 30.4, "mixed",
                 sequential_fraction=0.35, write_fraction=0.2),
        Workload("BC", "GAP", 16.0, 26.3, "mixed",
                 sequential_fraction=0.40, write_fraction=0.2),
        Workload("SSSPath", "GAP", 9.0, 23.9, "mixed",
                 sequential_fraction=0.35, write_fraction=0.2),
        # --- STREAM kernels ---
        Workload("add", "Stream", 12.1, 29.2, "stream", streams=3,
                 write_fraction=0.34),
        Workload("triad", "Stream", 10.3, 28.6, "stream", streams=3,
                 write_fraction=0.34),
        Workload("copy", "Stream", 9.3, 27.8, "stream", streams=2,
                 write_fraction=0.5),
        Workload("scale", "Stream", 7.6, 27.1, "stream", streams=2,
                 write_fraction=0.5),
    ]
}


def workload_names() -> List[str]:
    """Names of the 21 Table V workloads."""
    return list(WORKLOADS)


def workloads_by_suite(suite: str) -> List[Workload]:
    """Workloads of one suite (SPEC2K17, GAP, Stream)."""
    found = [w for w in WORKLOADS.values() if w.suite == suite]
    if not found:
        raise ValueError(f"unknown suite {suite!r}")
    return found
