"""Trace file I/O: bring-your-own-traces support.

The simulator consumes post-LLC request streams; users with real traces
(from Pin/DynamoRIO tools or another simulator) can load them through this
module instead of using the synthetic generators. The format is the
memsim-style text form, one request per line::

    # comment lines and blanks are ignored
    <gap> <line_address> <R|W>

``gap`` is the number of non-memory instructions since the previous
request. A trailing ``#tail <n>`` directive sets the instructions after
the last request. Files ending in ``.gz`` are compressed transparently.
"""

from __future__ import annotations

import gzip
from typing import List, TextIO, Union

from repro.workloads.trace import Trace


def save_trace(trace: Trace, path: str) -> None:
    """Write ``trace`` in the text format (gzip if path ends in .gz)."""
    with _open(path, "wt") as handle:
        handle.write(f"# trace {trace.name or 'unnamed'}\n")
        handle.write(f"# requests {len(trace)}\n")
        for gap, addr, is_write in zip(trace.gaps, trace.addrs, trace.writes):
            handle.write(f"{gap} {addr} {'W' if is_write else 'R'}\n")
        if trace.tail_instructions:
            handle.write(f"#tail {trace.tail_instructions}\n")


def load_trace(path: str, name: str = "") -> Trace:
    """Parse a trace file; raises ``ValueError`` with line numbers on
    malformed input."""
    gaps: List[int] = []
    addrs: List[int] = []
    writes: List[bool] = []
    tail = 0
    with _open(path, "rt") as handle:
        for lineno, raw in enumerate(handle, start=1):
            line = raw.strip()
            if not line:
                continue
            if line.startswith("#"):
                if line.startswith("#tail"):
                    tail = _parse_tail(line, lineno)
                continue
            gap, addr, is_write = _parse_request(line, lineno)
            gaps.append(gap)
            addrs.append(addr)
            writes.append(is_write)
    return Trace(
        gaps=gaps,
        addrs=addrs,
        writes=writes,
        tail_instructions=tail,
        name=name or _basename(path),
    )


def _parse_request(line: str, lineno: int):
    parts = line.split()
    if len(parts) != 3:
        raise ValueError(
            f"line {lineno}: expected '<gap> <line_address> <R|W>', "
            f"got {line!r}"
        )
    try:
        gap = int(parts[0])
        addr = int(parts[1], 0)  # accepts decimal and 0x-hex
    except ValueError as exc:
        raise ValueError(f"line {lineno}: bad integer in {line!r}") from exc
    if gap < 0 or addr < 0:
        raise ValueError(f"line {lineno}: negative gap or address")
    op = parts[2].upper()
    if op not in ("R", "W"):
        raise ValueError(f"line {lineno}: op must be R or W, got {parts[2]!r}")
    return gap, addr, op == "W"


def _parse_tail(line: str, lineno: int) -> int:
    parts = line.split()
    if len(parts) != 2:
        raise ValueError(f"line {lineno}: expected '#tail <n>'")
    try:
        tail = int(parts[1])
    except ValueError as exc:
        raise ValueError(f"line {lineno}: bad tail count") from exc
    if tail < 0:
        raise ValueError(f"line {lineno}: negative tail count")
    return tail


def _open(path: str, mode: str) -> Union[TextIO, "gzip.GzipFile"]:
    if path.endswith(".gz"):
        return gzip.open(path, mode)
    return open(path, mode)


def _basename(path: str) -> str:
    name = path.rsplit("/", 1)[-1]
    for suffix in (".gz", ".trace", ".txt"):
        if name.endswith(suffix):
            name = name[: -len(suffix)]
    return name
