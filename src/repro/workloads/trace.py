"""Post-LLC memory trace format."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List


@dataclass
class Trace:
    """A core's memory-request stream.

    ``gaps[i]`` is the number of non-memory instructions between request
    i-1 and request i; ``addrs[i]`` is the 64 B line address; ``writes[i]``
    marks stores. ``tail_instructions`` run after the final request.
    """

    gaps: List[int] = field(default_factory=list)
    addrs: List[int] = field(default_factory=list)
    writes: List[bool] = field(default_factory=list)
    tail_instructions: int = 0
    name: str = ""

    def __post_init__(self):
        if not (len(self.gaps) == len(self.addrs) == len(self.writes)):
            raise ValueError("gaps, addrs, and writes must align")

    def __len__(self) -> int:
        return len(self.addrs)

    @property
    def total_instructions(self) -> int:
        return sum(self.gaps) + len(self.gaps) + self.tail_instructions

    @property
    def mpki(self) -> float:
        """Memory requests per thousand instructions."""
        total = self.total_instructions
        if total == 0:
            return 0.0
        return 1000.0 * len(self) / total

    def sliced(self, num_requests: int) -> "Trace":
        """A prefix of the trace with at most ``num_requests`` requests."""
        n = min(num_requests, len(self))
        return Trace(
            gaps=self.gaps[:n],
            addrs=self.addrs[:n],
            writes=self.writes[:n],
            tail_instructions=self.tail_instructions,
            name=self.name,
        )
