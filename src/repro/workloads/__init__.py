"""Workloads: synthetic trace generators and Rowhammer attack patterns.

The paper evaluates 11 SPEC-2017, 6 GAP, and 4 STREAM workloads (Table V).
Real SPEC slices are not redistributable, so :mod:`repro.workloads.catalog`
defines 21 synthetic generators calibrated to each workload's memory
intensity (ACT-PKI) and locality class; see DESIGN.md for the substitution
rationale.
"""

from repro.workloads.catalog import (
    WORKLOADS,
    Workload,
    workload_names,
    workloads_by_suite,
)
from repro.workloads.synthetic import generate_trace
from repro.workloads.trace import Trace

__all__ = [
    "WORKLOADS",
    "Workload",
    "workload_names",
    "workloads_by_suite",
    "generate_trace",
    "Trace",
]
