"""Rate-mode trace construction (Section III).

The paper runs every workload in 8-core *rate mode*: eight copies of the
same benchmark, one per core, each on its own data. :func:`make_rate_traces`
generates one independently-seeded trace per core from a single workload
recipe, which is what :func:`repro.simulate` consumes.
"""

from __future__ import annotations

from typing import List

from repro.sim.config import SystemConfig
from repro.sim.rng import RngStreams
from repro.workloads.catalog import Workload
from repro.workloads.trace import Trace


def make_rate_traces(
    workload: Workload,
    config: SystemConfig,
    requests: int,
    seed: int = 0,
) -> List[Trace]:
    """One trace per core, independently seeded, disjoint address regions."""
    if requests < 0:
        raise ValueError("requests must be non-negative")
    streams = RngStreams(seed).spawn(f"workload/{workload.name}")
    return [
        workload.trace(
            num_requests=requests,
            config=config,
            core_id=core,
            rng=streams.get(f"core/{core}"),
        )
        for core in range(config.num_cores)
    ]


def make_mix_traces(
    workloads: List[Workload],
    config: SystemConfig,
    requests: int,
    seed: int = 0,
) -> List[Trace]:
    """Heterogeneous multi-programmed mix: one named workload per core.

    ``workloads`` must have exactly ``config.num_cores`` entries; each core
    gets its own region and an independent stream derived from the mix's
    composition (so two different mixes never share randomness).
    """
    if requests < 0:
        raise ValueError("requests must be non-negative")
    if len(workloads) != config.num_cores:
        raise ValueError(
            f"mix needs {config.num_cores} workloads, got {len(workloads)}"
        )
    mix_name = "+".join(w.name for w in workloads)
    streams = RngStreams(seed).spawn(f"mix/{mix_name}")
    return [
        workload.trace(
            num_requests=requests,
            config=config,
            core_id=core,
            rng=streams.get(f"core/{core}"),
        )
        for core, workload in enumerate(workloads)
    ]
