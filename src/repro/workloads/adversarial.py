"""Adversarial *timing-level* workloads: attack traces for the simulator.

The logical patterns in :mod:`repro.workloads.attacks` exercise trackers in
isolation; the generators here build full memory-request traces that land on
chosen DRAM rows *through a mapping* (using the mapping's inverse — the
threat model's strongest attacker, who knows the defense and the address
scrambling). They drive two timing studies:

* classic hammering through the full memory system (scheduler, tRC, REF,
  mitigation all in the loop);
* denial-of-service probing (Section IV's concern): an attacker pinning one
  subarray under constant mitigation while victims run alongside.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.mapping.base import LineLocation, MemoryMapping
from repro.sim.config import SystemConfig
from repro.workloads.trace import Trace


def lines_for_rows(
    mapping: MemoryMapping,
    subchannel: int,
    bank: int,
    rows: Sequence[int],
    column: int = 0,
) -> List[int]:
    """Line addresses that map onto ``rows`` of one bank."""
    return [
        mapping.line_for(
            LineLocation(subchannel=subchannel, bank=bank, row=row, column=column)
        )
        for row in rows
    ]


def hammer_program(num_rows: int) -> str:
    """The payload-DSL source of a round-robin hammer over ``num_rows`` rows.

    One unbounded loop cycling ``{r0}..{rN}``, each activation preceded by
    ``{gap}`` idle slots — :func:`hammer_trace` binds the placeholders and
    cuts the loop at the request budget, so the hammer generator *is* a
    corpus-style payload rather than a second pattern implementation.
    """
    if num_rows < 1:
        raise ValueError("need at least one target row")
    lines = ["# Round-robin maximal-rate hammer (generated).", "for *:"]
    for i in range(num_rows):
        lines.append("    nop {gap}")
        lines.append("    act {r%d}" % i)
        lines.append("    pre")
    return "\n".join(lines) + "\n"


def hammer_trace(
    mapping: MemoryMapping,
    rows: Sequence[int],
    num_requests: int,
    subchannel: int = 0,
    bank: int = 0,
    gap: int = 0,
) -> Trace:
    """Round-robin activation trace over ``rows`` of one bank.

    With two or more rows every request forces a fresh ACT (the previous
    row must be precharged first), which is the maximal-rate hammer the
    closed-page policy admits. ``gap`` inserts compute between requests to
    throttle the attacker below the memory system's saturation point.

    Implemented through the payload DSL (parse → resolve → unroll →
    compile of :func:`hammer_program`): the DSL pipeline is the single
    activation-sequence implementation, and this generator is pinned
    byte-identical to its historical output by ``tests/test_payload.py``.
    """
    from repro.payload import compile_payload, parse, resolve, unroll

    if not rows:
        raise ValueError("need at least one target row")
    if num_requests < 0:
        raise ValueError("num_requests must be non-negative")
    params = {"gap": gap}
    params.update({f"r{i}": int(row) for i, row in enumerate(rows)})
    program = resolve(parse(hammer_program(len(rows))), params)
    compiled = compile_payload(unroll(program, num_requests), name="hammer")
    return compiled.to_trace(mapping, subchannel=subchannel, bank=bank)


def subarray_dos_trace(
    mapping: MemoryMapping,
    config: SystemConfig,
    num_requests: int,
    subchannel: int = 0,
    bank: int = 0,
    subarray: int = 0,
    gap: int = 0,
) -> Trace:
    """Keep one subarray under perpetual mitigation pressure.

    The attacker cycles rows of a single subarray so that (a) every
    mitigation the tracker triggers lands on that subarray and (b) every
    demand ACT it issues can conflict with the ongoing mitigation — the
    worst case for AutoRFM's ALERT machinery. AutoRFM's deterministic t_M
    bounds the damage; recursive mitigation's chained rounds do not.
    """
    if not 0 <= subarray < config.subarrays_per_bank:
        raise ValueError(f"subarray {subarray} out of range")
    base = subarray * config.rows_per_subarray
    rows = [base + 2 * i for i in range(min(8, config.rows_per_subarray // 2))]
    return hammer_trace(
        mapping,
        rows,
        num_requests,
        subchannel=subchannel,
        bank=bank,
        gap=gap,
    )
