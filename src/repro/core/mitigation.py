"""Victim-refresh (mitigation) policies.

A mitigation refreshes rows around a nominated aggressor. All policies in
this module issue exactly four victim refreshes per mitigation, so the
subarray is busy for ``4 * tRC`` (about 200 ns) — the deterministic busy time
AutoRFM relies on.

* :class:`BlastRadiusMitigation` — the conventional policy: refresh the two
  rows on either side of the aggressor. Recursive-mitigation levels shift
  the refreshed band outward (level L refreshes distances 2L-1 and 2L,
  Fig. 9b), which is how MINT's transitive slot defends Half-Double.
* :class:`FractalMitigation` — the paper's proposal (Section V-C): always
  refresh the distance-1 neighbours and refresh one extra pair at distance
  d >= 2 chosen with probability 2^(1-d), implemented as 2 + the number of
  leading zeros of a 16-bit random number (Fig. 10b).
"""

from __future__ import annotations

import abc
from typing import List

import numpy as np

from repro.trackers.base import MitigationRequest
from repro.ckpt.contract import checkpointable

#: Victim refreshes issued per mitigation (two per side).
REFRESHES_PER_MITIGATION = 4


@checkpointable(const=("rows_per_bank",))
class MitigationPolicy(abc.ABC):
    """Chooses which rows to victim-refresh for a nominated aggressor."""

    #: True when the policy relies on the tracker's transitive slot
    #: (recursive mitigation); False for Fractal Mitigation.
    requires_recursive_tracking: bool = False

    def __init__(self, rows_per_bank: int):
        if rows_per_bank < 1:
            raise ValueError("rows_per_bank must be positive")
        self.rows_per_bank = rows_per_bank

    @abc.abstractmethod
    def victims(self, request: MitigationRequest) -> List[int]:
        """Rows to refresh for ``request`` (clamped to the bank)."""

    def busy_cycles(self, trc_cycles: int) -> int:
        """How long the subarray stays busy performing the refreshes."""
        return REFRESHES_PER_MITIGATION * trc_cycles

    def _clamp(self, rows: List[int]) -> List[int]:
        return [r for r in rows if 0 <= r < self.rows_per_bank]


@checkpointable()
class BlastRadiusMitigation(MitigationPolicy):
    """Refresh distances {2L-1, 2L} on both sides at recursion level L."""

    requires_recursive_tracking = True

    def victims(self, request: MitigationRequest) -> List[int]:
        if request.level < 1:
            raise ValueError("mitigation level must be >= 1")
        near = 2 * request.level - 1
        far = 2 * request.level
        row = request.row
        return self._clamp([row - far, row - near, row + near, row + far])


@checkpointable(derived=("rng",))
class FractalMitigation(MitigationPolicy):
    """d=1 always; one extra pair at d = 2 + leading-zeros(16-bit random)."""

    requires_recursive_tracking = False

    RAND_BITS = 16

    def __init__(self, rows_per_bank: int, rng: np.random.Generator):
        super().__init__(rows_per_bank)
        self.rng = rng

    def draw_distance(self) -> int:
        """Distance of the probabilistic refresh pair (2 + leading zeros)."""
        rand = int(self.rng.integers(0, 1 << self.RAND_BITS))
        return 2 + self._leading_zeros(rand)

    @classmethod
    def _leading_zeros(cls, rand: int) -> int:
        if rand == 0:
            return cls.RAND_BITS
        return cls.RAND_BITS - rand.bit_length()

    def victims(self, request: MitigationRequest) -> List[int]:
        # Fractal Mitigation never escalates levels: every mitigation is a
        # fresh level-1 action with a probabilistic long-range pair.
        row = request.row
        distance = self.draw_distance()
        return self._clamp([row - distance, row - 1, row + 1, row + distance])

    @classmethod
    def refresh_probability(cls, distance: int) -> float:
        """P(a neighbour at ``distance`` is refreshed in one mitigation)."""
        if distance < 1:
            raise ValueError("distance must be >= 1")
        if distance == 1:
            return 1.0
        if distance > cls.RAND_BITS + 2:
            return 0.0
        if distance == cls.RAND_BITS + 2:
            # rand == 0 (all 16 bits zero) absorbs the distribution's tail.
            return 2.0 ** -cls.RAND_BITS
        return 2.0 ** (1 - distance)
