"""Row-migration mitigation (RRS-style, Section VII-D).

Randomized Row-Swap [41] and its successors (AQUA, SRS, SHADOW) mitigate an
aggressor by *relocating* it — swapping the row with a random partner via an
indirection table — instead of refreshing its victims. The hammer pressure
an aggressor built against its neighbours is voided because its physical
neighbourhood changes.

Two pieces:

* :class:`RowSwapRemapper` — the per-bank logical-to-physical indirection
  (a permutation, maintained sparsely, with the swap operation);
* :class:`RowSwapMitigation` — the mitigation policy: no victim refreshes,
  but a long busy time (a swap streams two full rows through the row
  buffer, ~16x tRC here vs 4x tRC for victim refresh), which is the
  trade-off AutoRFM's transparent framework exposes.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from repro.core.mitigation import MitigationPolicy
from repro.trackers.base import MitigationRequest
from repro.ckpt.contract import checkpointable

#: Row cycles a swap keeps the subarray pair busy (read+write both rows).
SWAP_ROW_CYCLES = 16


@checkpointable(
    state=("_forward", "_reverse", "swaps"),
    const=("rows_per_bank",),
    derived=("rng",),
)
class RowSwapRemapper:
    """Sparse logical-to-physical row permutation with random swaps."""

    def __init__(self, rows_per_bank: int, rng: np.random.Generator):
        if rows_per_bank < 2:
            raise ValueError("need at least two rows to swap")
        self.rows_per_bank = rows_per_bank
        self.rng = rng
        self._forward: Dict[int, int] = {}
        self._reverse: Dict[int, int] = {}
        self.swaps = 0

    def physical_row(self, logical: int) -> int:
        """Current physical row holding logical row ``logical``."""
        self._check(logical)
        return self._forward.get(logical, logical)

    def logical_row(self, physical: int) -> int:
        """Logical row currently stored at physical row ``physical``."""
        self._check(physical)
        return self._reverse.get(physical, physical)

    def swap(self, logical: int) -> Tuple[int, int]:
        """Swap ``logical`` with a uniformly random partner row.

        Returns (old physical, new physical) for the swapped row.
        """
        self._check(logical)
        partner = int(self.rng.integers(0, self.rows_per_bank))
        if partner == logical:
            partner = (partner + 1) % self.rows_per_bank
        old_phys = self.physical_row(logical)
        partner_phys = self.physical_row(partner)

        self._set(logical, partner_phys)
        self._set(partner, old_phys)
        self.swaps += 1
        return old_phys, partner_phys

    def _set(self, logical: int, physical: int) -> None:
        if logical == physical:
            self._forward.pop(logical, None)
            self._reverse.pop(physical, None)
        else:
            self._forward[logical] = physical
            self._reverse[physical] = logical

    def _check(self, row: int) -> None:
        if not 0 <= row < self.rows_per_bank:
            raise ValueError(f"row {row} out of range")

    @property
    def storage_bits(self) -> int:
        """Indirection state: two row ids per displaced row."""
        bits_per_row = max(1, (self.rows_per_bank - 1).bit_length())
        return 2 * len(self._forward) * bits_per_row

    def displaced_rows(self) -> int:
        """Number of rows currently living away from home."""
        return len(self._forward)


@checkpointable()
class MigrationMitigation(MitigationPolicy):
    """Base for policies that relocate the aggressor instead of refreshing.

    :meth:`victims` returns no refresh targets; the AutoRFM engine calls
    :meth:`relocate` instead and locks the source subarray for
    :meth:`busy_cycles`.
    """

    requires_recursive_tracking = False

    def victims(self, request: MitigationRequest) -> List[int]:
        return []

    def relocate(self, request: MitigationRequest) -> Tuple[int, int]:
        """Move the aggressor; return (old physical, new physical)."""
        raise NotImplementedError

    def physical_row(self, logical: int) -> int:
        """Current physical location of a logical row (identity until moved)."""
        raise NotImplementedError


@checkpointable(state=("remapper",))
class RowSwapMitigation(MigrationMitigation):
    """Mitigate by swapping the aggressor with a random row (RRS).

    The busy time covers streaming both rows through the row buffer.
    """

    def __init__(self, rows_per_bank: int, rng: np.random.Generator):
        super().__init__(rows_per_bank)
        self.remapper = RowSwapRemapper(rows_per_bank, rng)

    def relocate(self, request: MitigationRequest) -> Tuple[int, int]:
        """Swap the aggressor with a random partner row."""
        return self.remapper.swap(request.row)

    # Backwards-compatible name used throughout the tests/examples.
    perform_swap = relocate

    def physical_row(self, logical: int) -> int:
        """Delegate to the swap remapper."""
        return self.remapper.physical_row(logical)

    def busy_cycles(self, trc_cycles: int) -> int:
        return SWAP_ROW_CYCLES * trc_cycles


#: Row cycles a one-way quarantine move keeps the subarray busy.
QUARANTINE_MOVE_ROW_CYCLES = 8


@checkpointable(
    state=("_cursor", "_forward", "_slot_owner", "moves", "evictions"),
    const=("quarantine_base", "slots"),
    derived=("rng",),
)
class QuarantineMitigation(MigrationMitigation):
    """AQUA-style quarantine [45]: move the aggressor into a reserved area.

    A fraction of the bank's rows is set aside as the quarantine; an
    aggressor moves to the next quarantine slot (FIFO — when the area wraps,
    the evicted row returns home). Victims never move, and a one-way copy
    is cheaper than a full swap (8 vs 16 row cycles).
    """

    def __init__(
        self,
        rows_per_bank: int,
        rng: np.random.Generator,
        quarantine_fraction: float = 1 / 64,
    ):
        super().__init__(rows_per_bank)
        slots = max(1, int(rows_per_bank * quarantine_fraction))
        if slots >= rows_per_bank:
            raise ValueError("quarantine cannot cover the whole bank")
        self.quarantine_base = rows_per_bank - slots
        self.slots = slots
        self.rng = rng
        self._cursor = 0
        # logical aggressor -> quarantine slot, and slot -> logical.
        self._forward: dict = {}
        self._slot_owner: dict = {}
        self.moves = 0
        self.evictions = 0

    def physical_row(self, logical: int) -> int:
        """Quarantine slot of ``logical`` if quarantined, else itself."""
        if logical in self._forward:
            return self.quarantine_base + self._forward[logical]
        return logical

    def relocate(self, request: MitigationRequest) -> Tuple[int, int]:
        logical = request.row
        if logical >= self.quarantine_base:
            # Already a quarantine-area physical row: nothing to move.
            return logical, logical
        old_physical = self.physical_row(logical)
        slot = self._cursor
        self._cursor = (self._cursor + 1) % self.slots
        evicted = self._slot_owner.pop(slot, None)
        if evicted is not None and evicted != logical:
            del self._forward[evicted]  # evicted row returns home
            self.evictions += 1
        old_slot = self._forward.get(logical)
        if old_slot is not None and old_slot != slot:
            self._slot_owner.pop(old_slot, None)  # vacate the previous slot
        self._forward[logical] = slot
        self._slot_owner[slot] = logical
        self.moves += 1
        return old_physical, self.quarantine_base + slot

    def busy_cycles(self, trc_cycles: int) -> int:
        return QUARANTINE_MOVE_ROW_CYCLES * trc_cycles

    def quarantined_rows(self) -> int:
        """Number of rows currently held in the quarantine area."""
        return len(self._forward)
