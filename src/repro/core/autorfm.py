"""AutoRFM engine: transparent, non-blocking RFM (Section IV).

One :class:`AutoRfmEngine` lives inside each DRAM bank. It counts demand
activations; every ``autorfm_th`` activations (the *AutoRFM Threshold*), the
bank's tracker nominates an aggressor and — at the precharge that closes the
window — the aggressor's subarray becomes the *Subarray Under Mitigation*
(SAUM) for ``4 * tRC`` while the victim refreshes are performed.

While a SAUM is busy, activations to *other* subarrays proceed normally. An
ACT that maps to the SAUM is declined: :meth:`conflicts` returns True, the
memory controller records an ALERT and retries after ``t_M`` (see
:class:`repro.mc.busy_table.BankBusyTable`).
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.core.mitigation import MitigationPolicy
from repro.core.rowswap import MigrationMitigation
from repro.sim.config import SystemConfig
from repro.sim.stats import BankStats
from repro.trackers.base import Tracker
from repro.ckpt.contract import checkpointable


class _EngineObsHooks:
    """Pre-resolved observability hooks for one AutoRFM engine.

    A single slotted bundle so the engine's instance dict grows by one key
    at most; metric fields stay None when the registry is disabled (e.g.
    trace-only observability).

    Attached through the memory controller's hook bundle, emission is
    deferred: counter increments accumulate in plain ints, trace records
    queue on the controller's shared in-order ``trace_pending`` list, and
    :meth:`flush` publishes both at the next drain boundary. Attached to
    a bare :class:`~repro.obs.Observability` (no flusher), emission stays
    eager.
    """

    __slots__ = ("tracer", "bank", "m_mitigations", "m_victims",
                 "m_selects", "m_empty_selects",
                 "n_mitigations", "n_victims", "n_selects",
                 "n_empty_selects", "pending", "deferred")

    def __init__(self, obs, bank: int, labels):
        self.tracer = obs.tracer
        self.bank = bank
        self.m_mitigations = None
        self.m_victims = None
        self.m_selects = None
        self.m_empty_selects = None
        metrics = obs.metrics
        if metrics is not None:
            self.m_mitigations = metrics.counter("core.mitigations",
                                                 bank=bank)
            self.m_victims = metrics.counter("core.victim_refreshes",
                                             bank=bank)
            self.m_selects = metrics.counter("tracker.selects", **labels)
            self.m_empty_selects = metrics.counter(
                "tracker.empty_selects", **labels
            )
        self.n_mitigations = 0
        self.n_victims = 0
        self.n_selects = 0
        self.n_empty_selects = 0
        self.pending = getattr(obs, "trace_pending", None)
        children = getattr(obs, "children", None)
        self.deferred = children is not None
        if children is not None:
            children.append(self)

    def flush(self) -> None:
        """Publish accumulated counters (drain boundary)."""
        if self.n_mitigations:
            self.m_mitigations.inc(self.n_mitigations)
            self.n_mitigations = 0
        if self.n_victims:
            self.m_victims.inc(self.n_victims)
            self.n_victims = 0
        if self.n_selects:
            self.m_selects.inc(self.n_selects)
            self.n_selects = 0
        if self.n_empty_selects:
            self.m_empty_selects.inc(self.n_empty_selects)
            self.n_empty_selects = 0


@checkpointable(
    state=("tracker", "policy", "_acts_in_window", "_mitigation_pending",
           "saum", "saum_busy_until", "_last_saum"),
    const=("config", "autorfm_th", "regions_per_bank", "_rows_per_region"),
    derived=("stats", "mitigation_listener", "victim_listener", "_obs"),
)
class AutoRfmEngine:
    """Per-bank transparent mitigation engine."""

    def __init__(
        self,
        config: SystemConfig,
        tracker: Tracker,
        policy: MitigationPolicy,
        autorfm_th: int,
        stats: Optional[BankStats] = None,
        regions_per_bank: Optional[int] = None,
    ):
        """``regions_per_bank`` sets the lock granularity.

        AutoRFM locks a single subarray (the default, ``None`` ->
        ``config.subarrays_per_bank`` regions); the SMD comparison of
        Section VII-B locks coarser maintenance regions (e.g. 8 per bank),
        which proportionally raises the conflict probability.
        """
        if autorfm_th < 1:
            raise ValueError("autorfm_th must be at least 1")
        regions = (
            config.subarrays_per_bank if regions_per_bank is None
            else regions_per_bank
        )
        if not 1 <= regions <= config.rows_per_bank:
            raise ValueError("regions_per_bank out of range")
        if config.rows_per_bank % regions:
            raise ValueError("regions must divide rows_per_bank evenly")
        self.config = config
        self.tracker = tracker
        self.policy = policy
        self.autorfm_th = autorfm_th
        self.regions_per_bank = regions
        self._rows_per_region = config.rows_per_bank // regions
        self.stats = stats if stats is not None else BankStats()

        self._acts_in_window = 0
        self._mitigation_pending = False
        self.saum: Optional[int] = None
        self.saum_busy_until = 0
        self._last_saum: Optional[int] = None
        #: Optional observer fired when a mitigation starts (command log).
        self.mitigation_listener: Optional[Callable[[int], None]] = None
        #: Optional observer fired per victim refresh: (now, victim_row).
        self.victim_listener: Optional[Callable[[int, int], None]] = None
        # Observability hooks (pre-resolved by attach_obs into one slotted
        # bundle); None — and therefore free — when observability is off.
        self._obs: Optional[_EngineObsHooks] = None

    def attach_obs(self, obs, bank: int) -> None:
        """Wire this engine into an :class:`repro.obs.Observability`.

        Called once at construction by the memory controller, which knows
        the flat bank index; metric objects are resolved here so the
        per-mitigation cost is a few attribute increments.
        """
        self._obs = _EngineObsHooks(obs, bank,
                                    dict(self.tracker.metric_labels))

    def _obs_on_mitigation(self, now: int, row: int, victims: int) -> None:
        """Publish one mitigation: SAUM busy span plus counters."""
        obs = self._obs
        if obs.m_mitigations is not None:
            if obs.deferred:
                obs.n_mitigations += 1
                obs.n_victims += victims
            else:
                obs.m_mitigations.inc()
                obs.m_victims.inc(victims)
        if obs.pending is not None:
            obs.pending.append({
                "t": now, "kind": "SAUM", "end": self.saum_busy_until,
                "bank": obs.bank,
                "region": self.saum if self.saum is not None else -1,
                "row": row, "victims": victims,
            })
        elif obs.tracer is not None:
            obs.tracer.span(
                now,
                self.saum_busy_until,
                "SAUM",
                bank=obs.bank,
                region=self.saum if self.saum is not None else -1,
                row=row,
                victims=victims,
            )

    # ------------------------------------------------------------------
    # Hooks called by the bank / memory controller
    # ------------------------------------------------------------------
    def on_activation(self, row: int, now: int) -> None:
        """Observe a successful demand ACT of ``row`` at cycle ``now``."""
        self.tracker.on_activation(row)
        self._acts_in_window += 1
        if self._acts_in_window >= self.autorfm_th:
            self._mitigation_pending = True

    def on_precharge(self, now: int) -> None:
        """Observe the precharge closing an ACT; may start a mitigation.

        Mitigation starts only on a precharge (Section IV-A): that is the
        moment the memory controller infers no row is open in the bank.
        """
        if not self._mitigation_pending:
            return
        self._mitigation_pending = False
        self._acts_in_window = 0
        self._start_mitigation(now)

    def region_of_row(self, row: int) -> int:
        """Lock-granularity region holding ``row`` (a subarray by default)."""
        if not 0 <= row < self.config.rows_per_bank:
            raise ValueError(f"row {row} out of range")
        return row // self._rows_per_region

    def conflicts(self, row: int, now: int) -> bool:
        """Would an ACT to ``row`` at ``now`` hit the busy SAUM?"""
        if self.saum is None or now >= self.saum_busy_until:
            return False
        return self.region_of_row(row) == self.saum

    # ------------------------------------------------------------------
    @property
    def mitigation_busy_cycles(self) -> int:
        """SAUM busy time per mitigation (t_M, about 200 ns)."""
        return self.policy.busy_cycles(self.config.timing.trc)

    def _start_mitigation(self, now: int) -> None:
        obs = self._obs
        request = self.tracker.select_for_mitigation()
        if request is None:
            if obs is not None and obs.m_empty_selects is not None:
                if obs.deferred:
                    obs.n_empty_selects += 1
                else:
                    obs.m_empty_selects.inc()
            return
        if obs is not None and obs.m_selects is not None:
            if obs.deferred:
                obs.n_selects += 1
            else:
                obs.m_selects.inc()

        if isinstance(self.policy, MigrationMitigation):
            # Row migration: relocate the aggressor instead of refreshing
            # its victims. The source subarray is locked for the (long)
            # move; the destination lock is folded into the same window.
            old_physical, _ = self.policy.relocate(request)
            self.saum = self.region_of_row(old_physical)
            self.saum_busy_until = now + self.mitigation_busy_cycles
            self.stats.mitigations += 1
            self.stats.row_swaps += 1
            self._last_saum = self.saum
            if self.mitigation_listener is not None:
                self.mitigation_listener(now)
            if obs is not None:
                self._obs_on_mitigation(now, request.row, victims=0)
            return

        victims = self.policy.victims(request)
        if not victims:
            return

        subarray = self.region_of_row(request.row)
        self.saum = subarray
        self.saum_busy_until = now + self.mitigation_busy_cycles

        self.stats.mitigations += 1
        self.stats.victim_refreshes += len(victims)
        if request.level > 1:
            self.stats.recursive_rounds += 1
        self._last_saum = subarray
        if self.mitigation_listener is not None:
            self.mitigation_listener(now)
        if obs is not None:
            self._obs_on_mitigation(now, request.row, victims=len(victims))

        for victim in victims:
            self.tracker.on_victim_refresh(victim, request.level)
            if self.victim_listener is not None:
                self.victim_listener(now, victim)
