"""AutoRFM: the paper's primary contribution.

* :mod:`repro.core.mitigation` — victim-refresh policies: blast-radius-2
  baseline, Recursive Mitigation levels, and Fractal Mitigation (Section V).
* :mod:`repro.core.autorfm` — the per-bank transparent-RFM engine: activation
  windows, Subarray-Under-Mitigation selection, ALERT conflicts (Section IV).
"""

from repro.core.autorfm import AutoRfmEngine
from repro.core.mitigation import (
    BlastRadiusMitigation,
    FractalMitigation,
    MitigationPolicy,
)

__all__ = [
    "AutoRfmEngine",
    "BlastRadiusMitigation",
    "FractalMitigation",
    "MitigationPolicy",
]
