"""Full-system simulation: cores + memory controller + DRAM.

:func:`simulate` is the main entry point of the library: it wires the cores
to the memory controller under a chosen mapping and mitigation setup, runs
the event loop to completion, and returns the collected statistics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.mapping import MemoryMapping, RubixMapping, ZenMapping
from repro.mc.controller import MemoryController
from repro.mc.setup import MitigationSetup
from repro.obs import Observability, ObsResult
from repro.sim.config import SystemConfig
from repro.sim.engine import Engine
from repro.sim.rng import RngStreams
from repro.sim.stats import SimStats
from repro.cpu.core import Core
from repro.workloads.trace import Trace

MAPPINGS = ("zen", "rubix")


def build_mapping(name: str, config: SystemConfig, seed: int = 0) -> MemoryMapping:
    """Construct a mapping by name ("zen" or "rubix")."""
    if name == "zen":
        return ZenMapping(config)
    if name == "rubix":
        return RubixMapping(config, key=RngStreams(seed).integer_seed("rubix-key"))
    raise ValueError(f"unknown mapping {name!r}; expected one of {MAPPINGS}")


@dataclass
class SimulationResult:
    """Statistics plus the knobs that produced them.

    ``obs`` carries the observability outputs (metrics snapshot, JSONL
    trace, wall-clock profile) when the run was observed; it is ``None``
    for plain runs and is excluded from stats-equality comparisons.
    """

    stats: SimStats
    setup: MitigationSetup
    mapping: str
    seed: int
    obs: Optional[ObsResult] = None

    def slowdown_vs(self, baseline: "SimulationResult") -> float:
        """Fractional slowdown vs. ``baseline`` (0.04 = 4 % slower)."""
        return self.stats.slowdown_vs(baseline.stats)


def simulate(
    traces: Sequence[Trace],
    setup: Optional[MitigationSetup] = None,
    config: Optional[SystemConfig] = None,
    mapping: str = "zen",
    seed: int = 0,
    max_events: Optional[int] = None,
    command_log=None,
    obs: Optional[Observability] = None,
) -> SimulationResult:
    """Run one full simulation and return its result.

    ``traces`` supplies one post-LLC trace per core (rate mode passes the
    same workload, independently generated, to every core). The simulation
    ends when every core has retired its full trace.

    ``obs`` attaches a :class:`repro.obs.Observability` for the run; the
    collected outputs land on ``result.obs``. ``None`` (the default) keeps
    every instrumentation point on its no-op path.
    """
    config = config or SystemConfig()
    setup = setup or MitigationSetup(mechanism="none")
    config.validate()
    if len(traces) != config.num_cores:
        raise ValueError(
            f"need {config.num_cores} traces (one per core), got {len(traces)}"
        )

    engine = Engine()
    if obs is not None and obs.enabled:
        engine.obs = obs
    streams = RngStreams(seed)
    stats = SimStats.with_shape(config.num_banks, config.num_cores)
    mapping_obj = build_mapping(mapping, config, seed)

    cores: List[Core] = []
    controller = MemoryController(
        config=config,
        mapping=mapping_obj,
        engine=engine,
        setup=setup,
        streams=streams.spawn("mc"),
        stats=stats,
        keep_running=lambda: any(not c.finished for c in cores),
        command_log=command_log,
        obs=obs,
    )
    for core_id, trace in enumerate(traces):
        core = Core(
            core_id=core_id,
            trace=trace,
            config=config,
            engine=engine,
            submit=controller.submit,
            stats=stats.cores[core_id],
        )
        cores.append(core)
    for core in cores:
        core.start()

    if max_events is None:
        engine.run_until_empty()
    else:
        engine.run(max_events=max_events)
    if controller.buffered_writes():
        # Write-drain mode: flush the stragglers and let them complete.
        controller.drain_writes()
        engine.run(max_events=max_events)

    unfinished = [c.core_id for c in cores if not c.finished]
    if unfinished:
        raise RuntimeError(f"cores {unfinished} never finished (deadlock?)")
    stats.cycles = max(c.stats.finish_cycle for c in cores)
    result = SimulationResult(
        stats=stats, setup=setup, mapping=mapping, seed=seed
    )
    if obs is not None and obs.enabled:
        result.obs = obs.result()
    return result
