"""Full-system simulation: cores + memory controller + DRAM.

:func:`simulate` is the main entry point of the library: it wires the cores
to the memory controller under a chosen mapping and mitigation setup, runs
the event loop to completion, and returns the collected statistics.

:class:`SimulatedSystem` is the underlying live object — construction wires
everything, :meth:`~SimulatedSystem.start` schedules the first events, and
:meth:`~SimulatedSystem.run` drains the event loop (optionally pausing at
fixed cycle boundaries for checkpoint capture). The checkpoint layer
(:mod:`repro.ckpt`) captures and restores these objects.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

from repro.ckpt.contract import checkpointable
from repro.mapping import MemoryMapping, RubixMapping, ZenMapping
from repro.mc.controller import MemoryController
from repro.mc.setup import MitigationSetup
from repro.obs import Observability, ObsResult
from repro.sim.config import SystemConfig
from repro.sim.engine import Engine
from repro.sim.rng import RngStreams
from repro.sim.stats import SimStats
from repro.cpu.core import Core
from repro.workloads.trace import Trace

MAPPINGS = ("zen", "rubix")


def build_mapping(name: str, config: SystemConfig, seed: int = 0) -> MemoryMapping:
    """Construct a mapping by name ("zen" or "rubix")."""
    if name == "zen":
        return ZenMapping(config)
    if name == "rubix":
        return RubixMapping(config, key=RngStreams(seed).integer_seed("rubix-key"))
    raise ValueError(f"unknown mapping {name!r}; expected one of {MAPPINGS}")


@dataclass
class SimulationResult:
    """Statistics plus the knobs that produced them.

    ``obs`` carries the observability outputs (metrics snapshot, JSONL
    trace, wall-clock profile) when the run was observed; it is ``None``
    for plain runs and is excluded from stats-equality comparisons.
    ``ckpt`` carries checkpoint bookkeeping (segments captured, resume
    point) for segmented runs; like the profile it is wall-clock-adjacent
    metadata and never enters cached result dicts.
    """

    stats: SimStats
    setup: MitigationSetup
    mapping: str
    seed: int
    obs: Optional[ObsResult] = None
    ckpt: Optional[dict] = None

    def slowdown_vs(self, baseline: "SimulationResult") -> float:
        """Fractional slowdown vs. ``baseline`` (0.04 = 4 % slower)."""
        return self.stats.slowdown_vs(baseline.stats)


@checkpointable(
    state=("engine", "streams", "stats", "controller", "cores", "_started"),
    const=("traces", "setup", "config", "mapping_name", "seed"),
    derived=("command_log", "obs", "mapping"),
)
class SimulatedSystem:
    """A fully wired simulation that has not necessarily run yet.

    The constructor performs exactly the wiring :func:`simulate` always
    did — engine, RNG registry, stats, mapping, controller (which schedules
    the refresh machinery), and cores — but does not schedule core events
    or drain the loop, so a freshly constructed system is also the blank
    canvas a checkpoint restore overlays its captured state onto.
    """

    def __init__(
        self,
        traces: Sequence[Trace],
        setup: Optional[MitigationSetup] = None,
        config: Optional[SystemConfig] = None,
        mapping: str = "zen",
        seed: int = 0,
        command_log=None,
        obs: Optional[Observability] = None,
    ):
        config = config or SystemConfig()
        setup = setup or MitigationSetup(mechanism="none")
        config.validate()
        if len(traces) != config.num_cores:
            raise ValueError(
                f"need {config.num_cores} traces (one per core), "
                f"got {len(traces)}"
            )
        self.traces: List[Trace] = list(traces)
        self.setup = setup
        self.config = config
        self.mapping_name = mapping
        self.seed = seed
        self.command_log = command_log
        self.obs = obs

        # Engine is resolved as a module global on purpose: the perf
        # benchmarks substitute an instrumented engine class.
        self.engine = Engine()
        if obs is not None and obs.enabled:
            self.engine.obs = obs
        self.streams = RngStreams(seed)
        self.stats = SimStats.with_shape(config.num_banks, config.num_cores)
        self.mapping = build_mapping(mapping, config, seed)

        self.cores: List[Core] = []
        self.controller = MemoryController(
            config=config,
            mapping=self.mapping,
            engine=self.engine,
            setup=setup,
            streams=self.streams.spawn("mc"),
            stats=self.stats,
            keep_running=lambda: any(not c.finished for c in self.cores),
            command_log=command_log,
            obs=obs,
        )
        for core_id, trace in enumerate(self.traces):
            self.cores.append(
                Core(
                    core_id=core_id,
                    trace=trace,
                    config=config,
                    engine=self.engine,
                    submit=self.controller.submit,
                    stats=self.stats.cores[core_id],
                )
            )
        self._started = False

    # ------------------------------------------------------------------
    def start(self) -> None:
        """Schedule every core's first dispatch (cycle 0); callable once."""
        if self._started:
            raise RuntimeError("system already started")
        self._started = True
        for core in self.cores:
            core.start()

    def run(
        self,
        max_events: Optional[int] = None,
        checkpoint_every: Optional[int] = None,
        on_checkpoint: Optional[Callable[["SimulatedSystem", int], None]] = None,
    ) -> SimulationResult:
        """Drain the event loop to completion and return the result.

        With ``checkpoint_every`` set, the drain pauses at every multiple
        of that many cycles (the next boundary is derived from the earliest
        pending event, so straight and resumed runs agree on boundaries)
        and invokes ``on_checkpoint(system, boundary)`` while more work is
        pending. Event order is identical with and without segmentation.
        """
        if not self._started:
            raise RuntimeError("call start() before run()")
        engine = self.engine
        controller = self.controller
        if checkpoint_every is not None:
            if checkpoint_every < 1:
                raise ValueError("checkpoint_every must be >= 1 cycle")
            if max_events is not None:
                raise ValueError(
                    "checkpoint_every and max_events are mutually exclusive"
                )
            while True:
                if not engine.pending:
                    if controller.buffered_writes():
                        # Write-drain mode: flush stragglers; they schedule
                        # new events, so keep segmenting.
                        controller.drain_writes()
                    if not engine.pending:
                        break
                front = engine._heap[0][0]
                boundary = max(
                    checkpoint_every,
                    -(-front // checkpoint_every) * checkpoint_every,
                )
                engine.run(until=boundary)
                if engine.pending and on_checkpoint is not None:
                    on_checkpoint(self, boundary)
        else:
            if max_events is None:
                engine.run_until_empty()
            else:
                engine.run(max_events=max_events)
            if controller.buffered_writes():
                # Write-drain mode: flush the stragglers and let them
                # complete.
                controller.drain_writes()
                engine.run(max_events=max_events)
        return self.finalize()

    def flush_obs(self) -> None:
        """Publish deferred observability accumulations (drain boundary).

        The controller aggregates metric increments and trace records
        between refresh boundaries; anything that snapshots or serialises
        observability state mid-run (finalize, checkpoint capture) must
        flush first so the registry and tracer are complete."""
        self.controller.flush_obs()

    def finalize(self) -> SimulationResult:
        """Check for deadlock, stamp final cycles, and package the result."""
        unfinished = [c.core_id for c in self.cores if not c.finished]
        if unfinished:
            raise RuntimeError(
                f"cores {unfinished} never finished (deadlock?)"
            )
        self.stats.cycles = max(c.stats.finish_cycle for c in self.cores)
        result = SimulationResult(
            stats=self.stats,
            setup=self.setup,
            mapping=self.mapping_name,
            seed=self.seed,
        )
        if self.obs is not None and self.obs.enabled:
            self.flush_obs()
            result.obs = self.obs.result()
        return result


def simulate(
    traces: Sequence[Trace],
    setup: Optional[MitigationSetup] = None,
    config: Optional[SystemConfig] = None,
    mapping: str = "zen",
    seed: int = 0,
    max_events: Optional[int] = None,
    command_log=None,
    obs: Optional[Observability] = None,
    checkpoint_every: Optional[int] = None,
    checkpoint_dir: Optional[str] = None,
    backend: str = "scalar",
) -> SimulationResult:
    """Run one full simulation and return its result.

    ``traces`` supplies one post-LLC trace per core (rate mode passes the
    same workload, independently generated, to every core). The simulation
    ends when every core has retired its full trace.

    ``obs`` attaches a :class:`repro.obs.Observability` for the run; the
    collected outputs land on ``result.obs``. ``None`` (the default) keeps
    every instrumentation point on its no-op path.

    ``checkpoint_every`` (cycles) with ``checkpoint_dir`` periodically
    captures an integrity-hashed snapshot into the directory (atomic
    write-then-rename plus a manifest); restore one with
    :func:`repro.ckpt.restore`. Disabled by default and entirely free when
    disabled.

    ``backend="batch"`` routes the run through the fused timing kernel
    (:mod:`repro.sim.batch`); runs carrying options the kernel does not
    model (observability, event budget, checkpointing, open-page,
    same-bank refresh, write drain, per-request retry) transparently fall
    back to this scalar path with bit-identical results.
    """
    if backend != "scalar":
        # Imported lazily: repro.sim.batch imports this module.
        from repro.sim.batch import BACKENDS, SimLane, simulate_batch

        if backend not in BACKENDS:
            raise ValueError(
                f"unknown backend {backend!r}; expected one of {BACKENDS}"
            )
        lane = SimLane(
            traces,
            setup=setup,
            config=config,
            mapping=mapping,
            seed=seed,
            max_events=max_events,
            command_log=command_log,
            obs=obs,
            checkpoint_every=checkpoint_every,
            checkpoint_dir=checkpoint_dir,
        )
        return simulate_batch([lane], backend=backend)[0]
    system = SimulatedSystem(
        traces,
        setup=setup,
        config=config,
        mapping=mapping,
        seed=seed,
        command_log=command_log,
        obs=obs,
    )
    system.start()
    on_checkpoint = None
    if checkpoint_every is not None:
        if checkpoint_dir is None:
            raise ValueError("checkpoint_every requires checkpoint_dir")
        # Imported lazily: repro.ckpt.state imports this module.
        from repro.ckpt import CheckpointWriter, capture

        writer = CheckpointWriter(checkpoint_dir)

        def on_checkpoint(sys_: SimulatedSystem, boundary: int) -> None:
            writer.write(capture(sys_, boundary=boundary))

    elif checkpoint_dir is not None:
        raise ValueError("checkpoint_dir requires checkpoint_every")
    return system.run(
        max_events=max_events,
        checkpoint_every=checkpoint_every,
        on_checkpoint=on_checkpoint,
    )
