"""Trace-driven out-of-order core model.

Each core replays a :class:`~repro.workloads.trace.Trace` of post-LLC memory
requests, separated by ``gap`` non-memory instructions. The model captures
the three effects that matter for memory-system studies:

* **frontend width** — instruction k dispatches no earlier than cycle
  k / width (4-wide at 4 GHz);
* **ROB run-ahead** — a request may issue only while the oldest incomplete
  read is within ``rob_size`` instructions (memory-level parallelism);
* **MSHR limit** — at most ``mshrs_per_core`` outstanding reads.

Reads block retirement until their data returns; writes are fire-and-forget
(write-buffer semantics). Retirement is in order: the core's finish time is
when its last instruction retires, and IPC = instructions / finish.
"""

from __future__ import annotations

from collections import deque
from functools import partial
from typing import Callable, Deque, List, Optional

from repro.ckpt.contract import checkpointable
from repro.mc.request import Request
from repro.sim.config import SystemConfig
from repro.sim.engine import Engine
from repro.sim.stats import CoreStats
from repro.workloads.trace import Trace


@checkpointable(
    state=(
        "_next",
        "_mshr_used",
        "_dispatch_time",
        "_outstanding",
        "_completion",
        "_retire_ptr",
        "_retire_time",
        "_issue_event_at",
        "finished",
    ),
    const=(
        "core_id",
        "trace",
        "config",
        "_n",
        "_seq",
        "_dispatch_bound",
        "_retire_cycles",
        "_tail_cycles",
        "total_instructions",
    ),
    derived=("engine", "submit", "stats", "on_finish"),
)
class Core:
    """One trace-driven core attached to the memory controller."""

    def __init__(
        self,
        core_id: int,
        trace: Trace,
        config: SystemConfig,
        engine: Engine,
        submit: Callable[[Request], None],
        stats: CoreStats,
        on_finish: Optional[Callable[[int], None]] = None,
    ):
        self.core_id = core_id
        self.trace = trace
        self.config = config
        self.engine = engine
        self.submit = submit
        self.stats = stats
        self.on_finish = on_finish

        width = config.core_width
        n = len(trace)
        self._n = n
        # seq[i]: instructions up to and including request i.
        seq: List[int] = [0] * n
        running = 0
        for i, gap in enumerate(trace.gaps):
            running += gap + 1  # the memory instruction itself counts
            seq[i] = running
        self._seq = seq
        self._dispatch_bound = [s // width for s in seq]
        self._retire_cycles = [
            -(-(gap + 1) // width) for gap in trace.gaps  # ceil division
        ]
        self._tail_cycles = -(-trace.tail_instructions // width)
        self.total_instructions = (running if n else 0) + trace.tail_instructions

        self._next = 0
        self._mshr_used = 0
        self._dispatch_time: List[int] = [0] * n
        # Outstanding *reads* in issue order: [seq, index, completed?].
        self._outstanding: Deque[List[int]] = deque()
        self._completion: List[Optional[int]] = [None] * n
        self._retire_ptr = 0
        self._retire_time = 0
        self._issue_event_at: Optional[int] = None
        self.finished = n == 0 and trace.tail_instructions == 0

    # ------------------------------------------------------------------
    def start(self) -> None:
        """Schedule the core's first dispatch at cycle 0."""
        if self._n == 0:
            self._finish(self._tail_cycles)
            return
        self.engine.schedule(0, self._try_issue)

    # ------------------------------------------------------------------
    def _try_issue(self, now: int) -> None:
        trace = self.trace
        while self._next < self._n:
            i = self._next
            bound = self._dispatch_bound[i]
            if bound > now:
                self._schedule_issue(bound)
                return
            if (
                self._outstanding
                and self._seq[i] - self._outstanding[0][0] >= self.config.rob_size
            ):
                return  # ROB full; resume when the oldest read completes
            is_write = trace.writes[i]
            if not is_write and self._mshr_used >= self.config.mshrs_per_core:
                return  # MSHRs full; resume on a completion
            self._dispatch(i, now, is_write)
        self._maybe_finish()

    def _dispatch(self, i: int, now: int, is_write: bool) -> None:
        self._next = i + 1
        self.stats.memory_requests += 1
        self._dispatch_time[i] = now
        callback = None
        if is_write:
            # Writes retire without waiting on memory.
            self._completion[i] = now
        else:
            self._mshr_used += 1
            self._outstanding.append([self._seq[i], i, 0])
            # A partial of a bound method (not a closure) so the pending
            # completion can be serialised by the checkpoint layer.
            callback = partial(self._on_read_complete, i)
        self.submit(
            Request(
                core_id=self.core_id,
                line_addr=self.trace.addrs[i],
                is_write=is_write,
                arrival=now,
                on_complete=callback,
            )
        )
        self._advance_retirement()

    def _on_read_complete(self, i: int, now: int) -> None:
        self._mshr_used -= 1
        self._completion[i] = now
        self.stats.reads_completed += 1
        self.stats.read_latency_sum += now - self._dispatch_time[i]
        for entry in self._outstanding:
            if entry[1] == i:
                entry[2] = 1
                break
        while self._outstanding and self._outstanding[0][2]:
            self._outstanding.popleft()
        self._advance_retirement()
        self._try_issue(now)

    def _advance_retirement(self) -> None:
        """Retire requests in program order as their completions land."""
        while self._retire_ptr < self._next:
            j = self._retire_ptr
            completion = self._completion[j]
            if completion is None:
                return
            self._retire_time = max(
                self._retire_time + self._retire_cycles[j], completion
            )
            self._retire_ptr += 1
        self._maybe_finish()

    def _maybe_finish(self) -> None:
        if self.finished:
            return
        if self._next == self._n and self._retire_ptr == self._n:
            self._finish(self._retire_time + self._tail_cycles)

    def _finish(self, finish_cycle: int) -> None:
        self.finished = True
        self.stats.instructions = self.total_instructions
        self.stats.finish_cycle = max(finish_cycle, 1)
        if self.on_finish is not None:
            self.on_finish(self.stats.finish_cycle)

    def _schedule_issue(self, time: int) -> None:
        if self._issue_event_at is not None and self._issue_event_at <= time:
            return
        self._issue_event_at = time
        self.engine.schedule(time, self._issue_fired)

    def _issue_fired(self, now: int) -> None:
        if self._issue_event_at is not None and self._issue_event_at <= now:
            self._issue_event_at = None
        self._try_issue(now)
