"""Set-associative last-level cache (Table IV: 8 MB, 16-way, 64 B lines).

The benchmark fast path feeds post-LLC traces straight to the memory
controller (see DESIGN.md), but the cache is a real, tested component: the
``llc_filter`` helper turns an LLC-level access stream into the post-LLC
miss-plus-writeback stream the controller consumes, and the examples use it.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.workloads.trace import Trace


@dataclass
class CacheStats:
    hits: int = 0
    misses: int = 0
    writebacks: int = 0

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def miss_rate(self) -> float:
        if self.accesses == 0:
            return 0.0
        return self.misses / self.accesses


class SetAssociativeCache:
    """LRU set-associative cache keyed by line address."""

    def __init__(self, size_bytes: int, ways: int, line_bytes: int = 64):
        if size_bytes <= 0 or ways <= 0 or line_bytes <= 0:
            raise ValueError("cache geometry must be positive")
        lines = size_bytes // line_bytes
        if lines % ways:
            raise ValueError("cache size must divide evenly into ways")
        self.num_sets = lines // ways
        if self.num_sets == 0:
            raise ValueError("cache too small for the given associativity")
        self.ways = ways
        self.line_bytes = line_bytes
        # One OrderedDict per set: line -> dirty flag, in LRU order.
        self._sets: List[OrderedDict] = [OrderedDict() for _ in range(self.num_sets)]
        self.stats = CacheStats()

    def _set_of(self, line_addr: int) -> OrderedDict:
        return self._sets[line_addr % self.num_sets]

    def access(self, line_addr: int, is_write: bool) -> Tuple[bool, Optional[int]]:
        """Access a line; return (hit, evicted-dirty-line-or-None)."""
        cache_set = self._set_of(line_addr)
        if line_addr in cache_set:
            cache_set.move_to_end(line_addr)
            if is_write:
                cache_set[line_addr] = True
            self.stats.hits += 1
            return True, None

        self.stats.misses += 1
        victim = None
        if len(cache_set) >= self.ways:
            evicted, dirty = cache_set.popitem(last=False)
            if dirty:
                victim = evicted
                self.stats.writebacks += 1
        cache_set[line_addr] = is_write
        return False, victim

    def contains(self, line_addr: int) -> bool:
        """True when the line is currently cached (no LRU update)."""
        return line_addr in self._set_of(line_addr)


def llc_filter(trace: Trace, cache: SetAssociativeCache) -> Trace:
    """Replay ``trace`` through ``cache`` and return the post-LLC stream.

    Misses become reads/writes to memory; dirty evictions become writes. The
    instruction gaps of hit runs accumulate onto the next miss.
    """
    gaps: List[int] = []
    addrs: List[int] = []
    writes: List[bool] = []
    carried = 0
    for gap, addr, is_write in zip(trace.gaps, trace.addrs, trace.writes):
        carried += gap
        hit, writeback = cache.access(addr, is_write)
        if hit:
            carried += 1  # the hit instruction itself
            continue
        gaps.append(carried)
        addrs.append(addr)
        writes.append(is_write)
        carried = 0
        if writeback is not None:
            gaps.append(0)
            addrs.append(writeback)
            writes.append(True)
    return Trace(
        gaps=gaps,
        addrs=addrs,
        writes=writes,
        tail_instructions=trace.tail_instructions + carried,
        name=trace.name,
    )
