"""CPU side: trace-driven out-of-order cores, shared LLC, system wrapper."""

from repro.cpu.cache import SetAssociativeCache
from repro.cpu.core import Core
from repro.cpu.system import SimulationResult, simulate

__all__ = ["Core", "SetAssociativeCache", "SimulationResult", "simulate"]
