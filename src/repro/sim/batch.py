"""Batched timing-simulation backend (ROADMAP item 3).

:func:`simulate_batch` advances many independent timing simulations
("lanes") in one process. The scalar engine behind
:func:`repro.cpu.system.simulate` spends most of its wall clock on Python
call machinery — ``Engine -> Core -> MemoryController -> Bank`` method
chains, one ``functools.partial`` and one ``Request`` object per event,
and a memoized ``mapping.locate`` per request. This module mirrors the
design of ``repro.security.kernels``: the regular no-LLC fast path
(post-LLC trace -> controller -> bank timings) is re-expressed as a fused
interpreter over plain int tuples and parallel arrays, with the address
decode for a lane's whole trace vectorized up front as numpy array
programs (``KCipher.encrypt_array`` plus a vectorized Zen bit
decomposition).

Bit-identity contract
---------------------

The scalar engine stays the oracle (``backend="scalar"``), and every
batched result is bit-identical to it: same :class:`SimStats`, same
command log, same event order. Two properties make that tractable:

* the discrete-event heap breaks ties by insertion sequence number, so
  replicating the exact *schedule-call order* of the scalar wiring
  replicates the event order exactly;
* all stochastic state (trackers, mitigation policies, the BlockHammer
  bloom filters, the AutoRFM engines) lives in the very same objects the
  scalar path uses, constructed from identically derived RNG streams, so
  every random draw happens at the same point in the same order.

Lanes that would leave the fast path — observability attached, write
drain, open-page policy, same-bank refresh, checkpoint boundaries, event
budgets, the per-request-retry ablation — are detected up front and run
on the scalar oracle. Lanes whose *run* hits an irregular event (a
blocking RFM command coming due, a PRAC/ABO recovery stall) raise
:class:`_Fallback` mid-kernel and are re-run from scratch on the scalar
path; because the kernel keeps its side effects private until success
(its own stats object, its own command-record list), the rerun is
trivially bit-identical.
"""

from __future__ import annotations

import dataclasses
import heapq
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.core.autorfm import AutoRfmEngine
from repro.mapping.rubix import RubixMapping
from repro.mc.blockhammer import BlockHammerLimiter
from repro.mc.setup import MitigationSetup, build_policy, build_tracker
from repro.rfm.prac import PracModel, abo_threshold_for, prac_timing
from repro.rfm.rfm import RfmController
from repro.sim.cmdlog import (
    ACT,
    ALERT,
    MITIGATION,
    REF,
    VICTIM_REFRESH,
    CommandLog,
    CommandRecord,
)
from repro.sim.config import SystemConfig
from repro.sim.rng import RngStreams
from repro.sim.stats import SimStats
from repro.workloads.trace import Trace

#: Valid values for the ``backend=`` knobs on :func:`simulate_batch`,
#: :func:`repro.cpu.system.simulate`, and :class:`repro.analysis.runner.Job`.
BACKENDS = ("scalar", "batch")

# Fused-interpreter opcodes. Heap entries are (time, seq, op, a, b) int
# tuples ordered by (time, seq) — exactly the scalar engine's tie-break,
# so the opcode fields are never compared.
_OP_WAKEUP = 0  # a = flat bank
_OP_AUTO_PRE = 1  # a = flat bank
_OP_READ_DONE = 2  # a = core, b = request index
_OP_ISSUE_FIRED = 3  # a = core
_OP_REF = 4  # a = subchannel
_OP_PRAC_WINDOW = 5


class _Fallback(Exception):
    """A lane left the fast path; rerun it on the scalar oracle."""

    def __init__(self, reason: str):
        super().__init__(reason)
        self.reason = reason


@dataclass
class SimLane:
    """One simulation's worth of :func:`repro.cpu.system.simulate` inputs.

    Fields mirror the scalar entry point one for one; a lane carrying
    options the fused kernel does not model (observability, event budget,
    checkpointing) is routed to the scalar oracle with identical results.
    """

    traces: Sequence[Trace]
    setup: Optional[MitigationSetup] = None
    config: Optional[SystemConfig] = None
    mapping: str = "zen"
    seed: int = 0
    max_events: Optional[int] = None
    command_log: Optional[CommandLog] = None
    obs: Optional[object] = None  # Optional[repro.obs.Observability]
    checkpoint_every: Optional[int] = None
    checkpoint_dir: Optional[str] = None


def _lane_block_reason(
    lane: SimLane, setup: MitigationSetup, config: SystemConfig
) -> Optional[str]:
    """Why ``lane`` must take the scalar path, or None if kernel-eligible."""
    if lane.obs is not None and getattr(lane.obs, "enabled", True):
        return "observability"
    if lane.max_events is not None:
        return "max-events"
    if lane.checkpoint_every is not None or lane.checkpoint_dir is not None:
        return "checkpoint"
    if config.page_policy != "closed":
        return "open-page"
    if config.refresh_mode != "all_bank":
        return "same-bank-refresh"
    if config.write_drain:
        return "write-drain"
    if setup.per_request_retry:
        return "per-request-retry"
    return None


def _decode_locations(config: SystemConfig, mapping, addrs: np.ndarray):
    """Vectorized ``mapping.locate`` for a whole trace: (rows, flat_banks).

    Mirrors :meth:`repro.mapping.base.MemoryMapping._decompose` on int64
    arrays; Rubix lanes run the address cipher through
    :meth:`KCipher.encrypt_array` (element-wise identical to the scalar
    cipher, cycle-walking included).
    """
    if addrs.size and (
        int(addrs.min()) < 0 or int(addrs.max()) >= config.total_lines
    ):
        # The scalar path raises from locate() mid-run; keep that exact
        # behavior by handing the lane to the oracle.
        raise _Fallback("address-range")
    if isinstance(mapping, RubixMapping):
        scrambled = mapping.cipher.encrypt_array(addrs)
    else:
        scrambled = addrs
    lines_per_row = config.lines_per_row
    banks = config.banks_per_subchannel
    nsc = config.num_subchannels
    offset = scrambled % lines_per_row
    page = scrambled // lines_per_row
    bank = (offset >> 1) % banks
    subchannel = page % nsc
    page = page // nsc
    row = page // banks
    flat = subchannel * banks + bank
    return row.tolist(), flat.tolist()


# Kernel state is transient by design: checkpoint-enabled lanes route to
# the scalar oracle (_lane_block_reason), so a kernel never needs to be
# captured mid-run.
class _LaneKernel:  # repro: lint-ignore[CKPT001]
    """Fused interpreter advancing one lane on the no-LLC fast path.

    Construction mirrors :class:`repro.cpu.system.SimulatedSystem` wiring
    exactly (same RNG stream derivations, same object construction order);
    :meth:`run` replays the engine/core/controller/bank event logic with
    local variables and parallel arrays instead of object graphs.
    """

    def __init__(
        self, lane: SimLane, setup: MitigationSetup, config: SystemConfig
    ):
        config.validate()
        if len(lane.traces) != config.num_cores:
            raise ValueError(
                f"need {config.num_cores} traces (one per core), "
                f"got {len(lane.traces)}"
            )
        self.lane = lane
        self.setup = setup
        self.config = config
        self.events = 0

        # Same mapping construction (and rubix key derivation) as
        # cpu.system.build_mapping; imported lazily to keep this module
        # importable before repro.cpu.
        from repro.cpu.system import build_mapping

        mapping = build_mapping(lane.mapping, config, lane.seed)
        self.extra_latency = mapping.extra_latency

        # PRAC inflates tRC inside the controller; cores keep the base
        # config (they only read width/ROB/MSHR limits from it).
        if setup.mechanism == "prac":
            mc_config = dataclasses.replace(
                config, timing=prac_timing(config.timing)
            )
        else:
            mc_config = config
        self.timing = mc_config.timing

        streams = RngStreams(lane.seed)
        mc_streams = streams.spawn("mc")
        n_banks = config.num_banks
        self.stats = SimStats.with_shape(n_banks, config.num_cores)

        self.rfm: Optional[RfmController] = None
        self.prac: Optional[PracModel] = None
        self.blockhammer: Optional[BlockHammerLimiter] = None
        if setup.mechanism == "rfm":
            self.rfm = RfmController(n_banks, setup.threshold)
        elif setup.mechanism == "prac":
            self.prac = PracModel(n_banks, abo_threshold_for(setup.prac_trh_d))
        elif setup.mechanism == "blockhammer":
            self.blockhammer = BlockHammerLimiter(
                mc_config, trh=setup.blockhammer_trh
            )

        # Per-bank mitigation machinery: the *real* objects, in the same
        # flat-bank construction order as MemoryController._build_bank, so
        # RNG stream names and draw order match the scalar path exactly.
        self.records: Optional[List[CommandRecord]] = (
            [] if lane.command_log is not None else None
        )
        records = self.records
        self.autorfm: List[Optional[AutoRfmEngine]] = [None] * n_banks
        self.rfm_trackers = [None] * n_banks
        self.rfm_policies = [None] * n_banks
        self.tm_alert = [0] * n_banks
        self.rows_per_region = 1
        for flat in range(n_banks):
            engine = None
            if setup.mechanism == "autorfm":
                engine = AutoRfmEngine(
                    config=mc_config,
                    tracker=build_tracker(setup, mc_streams, flat),
                    policy=build_policy(setup, mc_config, mc_streams, flat),
                    autorfm_th=setup.threshold,
                    stats=self.stats.banks[flat],
                )
            elif setup.mechanism == "smd":
                smd_setup = dataclasses.replace(
                    setup, tracker="para", policy="blast2"
                )
                engine = AutoRfmEngine(
                    config=mc_config,
                    tracker=build_tracker(smd_setup, mc_streams, flat),
                    policy=build_policy(smd_setup, mc_config, mc_streams, flat),
                    autorfm_th=1,
                    stats=self.stats.banks[flat],
                    regions_per_bank=setup.smd_regions_per_bank,
                )
            elif setup.mechanism == "rfm":
                self.rfm_trackers[flat] = build_tracker(
                    setup, mc_streams, flat
                )
                self.rfm_policies[flat] = build_policy(
                    setup, mc_config, mc_streams, flat
                )
            if engine is not None:
                self.autorfm[flat] = engine
                self.rows_per_region = engine._rows_per_region
                # t_M is a pure function of the policy class and tRC; the
                # scalar path recomputes it per ALERT, with the same value.
                self.tm_alert[flat] = (
                    setup.tm_retry_cycles or engine.mitigation_busy_cycles
                )
                if records is not None:
                    engine.mitigation_listener = (
                        lambda t, f=flat: records.append(
                            CommandRecord(t, MITIGATION, f)
                        )
                    )
                    engine.victim_listener = (
                        lambda t, victim, f=flat: records.append(
                            CommandRecord(t, VICTIM_REFRESH, f, victim)
                        )
                    )

        # Core constants, vectorized: instruction sequence numbers are a
        # cumsum, dispatch bounds and retirement budgets elementwise ops.
        width = config.core_width
        self.core_n: List[int] = []
        self.core_seq: List[List[int]] = []
        self.core_bound: List[List[int]] = []
        self.core_retire: List[List[int]] = []
        self.core_writes: List[List[bool]] = []
        self.tail_cycles: List[int] = []
        self.totals: List[int] = []
        addr_arrays = []
        for trace in lane.traces:
            gaps = np.asarray(trace.gaps, dtype=np.int64)
            n = len(trace)
            seq_arr = np.cumsum(gaps + 1)
            self.core_n.append(n)
            self.core_seq.append(seq_arr.tolist())
            self.core_bound.append((seq_arr // width).tolist())
            self.core_retire.append(((gaps + width) // width).tolist())
            self.core_writes.append(list(trace.writes))
            tail = -(-trace.tail_instructions // width)
            self.tail_cycles.append(tail)
            self.totals.append(
                (int(seq_arr[-1]) if n else 0) + trace.tail_instructions
            )
            addr_arrays.append(np.asarray(trace.addrs, dtype=np.int64))

        # One vectorized address decode for the lane's whole trace set.
        concat = (
            np.concatenate(addr_arrays)
            if addr_arrays
            else np.empty(0, dtype=np.int64)
        )
        rows_all, flats_all = _decode_locations(config, mapping, concat)
        self.core_rows: List[List[int]] = []
        self.core_flats: List[List[int]] = []
        pos = 0
        for n in self.core_n:
            self.core_rows.append(rows_all[pos:pos + n])
            self.core_flats.append(flats_all[pos:pos + n])
            pos += n

    # ------------------------------------------------------------------
    def run(self):
        """Drain the lane to completion; returns a SimulationResult.

        Raises :class:`_Fallback` when the lane hits an irregular event
        (blocking RFM due, ABO recovery); no externally visible state has
        been touched at that point.
        """
        from repro.cpu.system import SimulationResult

        setup = self.setup
        config = self.config
        timing = self.timing
        stats = self.stats
        bank_stats = stats.banks

        # --- constants -------------------------------------------------
        trefi = timing.trefi
        trfc = timing.trfc
        trp = timing.trp
        tras = timing.tras
        trcd = timing.trcd
        trc = timing.trc
        tfaw = timing.tfaw
        cas = timing.cas_latency
        burst = timing.burst
        completion_tail = (
            burst + config.static_mem_latency + self.extra_latency
        )
        banks_per_sc = config.banks_per_subchannel
        nsc = config.num_subchannels
        n_banks = config.num_banks
        num_cores = config.num_cores
        rob_size = config.rob_size
        mshrs = config.mshrs_per_core
        rpr = self.rows_per_region
        sc_of = [flat // banks_per_sc for flat in range(n_banks)]

        rfm = self.rfm
        prac = self.prac
        bh = self.blockhammer
        autorfm = self.autorfm
        rfm_trackers = self.rfm_trackers
        rfm_policies = self.rfm_policies
        tm_alert = self.tm_alert
        records = self.records
        # Pre-bound per-bank fast paths into the real mitigation objects:
        # the per-ACT AutoRfmEngine.on_activation body (tracker call plus
        # window counter) and the on_precharge pending check are inlined
        # at the call sites; only the rare _start_mitigation stays a call.
        eng_tracker_act = [
            engine.tracker.on_activation if engine is not None else None
            for engine in autorfm
        ]
        eng_start = [
            engine._start_mitigation if engine is not None else None
            for engine in autorfm
        ]
        eng_th = [
            engine.autorfm_th if engine is not None else 0
            for engine in autorfm
        ]
        bh_earliest = bh.earliest_act if bh is not None else None
        bh_observe = bh.observe if bh is not None else None
        prac_on_act = prac.on_activation if prac is not None else None
        # RfmController.on_activation/on_refresh reduce to RAA bumps when
        # no observability is attached (kernel lanes never attach any).
        raa = rfm.raa if rfm is not None else None
        raa_max = rfm.raa_max if rfm is not None else 0
        rfm_th_limit = rfm.rfm_th if rfm is not None else 0
        ref_decrement = rfm.ref_decrement if rfm is not None else 0

        core_n = self.core_n
        core_seq = self.core_seq
        core_bound = self.core_bound
        core_retire = self.core_retire
        core_writes = self.core_writes
        core_rows = self.core_rows
        core_flats = self.core_flats
        tail_cycles = self.tail_cycles

        # --- mutable state (parallel arrays, no object graphs) ---------
        heap: List[tuple] = []
        push = heapq.heappush
        pop = heapq.heappop
        seq = 0

        queues: List[List[list]] = [[] for _ in range(n_banks)]
        recent_acts: List[List[int]] = [[] for _ in range(nsc)]
        busy_until = [0] * n_banks
        bus_free = [0] * nsc
        wakeups: List[Optional[int]] = [None] * n_banks
        b_ready = [0] * n_banks
        b_open = [-1] * n_banks
        b_act = [-(10 ** 9)] * n_banks
        b_until = [-1] * n_banks
        # Kernel-owned stat accumulators (merged into BankStats/CoreStats
        # at the end; mitigation counters land directly in the shared
        # BankStats via the real AutoRFM/tracker objects).
        b_acts = [0] * n_banks
        b_hits = [0] * n_banks
        b_reads = [0] * n_banks
        b_writes = [0] * n_banks
        b_refs = [0] * n_banks
        b_alerts = [0] * n_banks
        max_alerts = 0

        next_i = [0] * num_cores
        mshr_used = [0] * num_cores
        dispatch_time = [([0] * n) for n in core_n]
        completion: List[List[Optional[int]]] = [
            ([None] * n) for n in core_n
        ]
        outstanding: List[List[list]] = [[] for _ in range(num_cores)]
        retire_ptr = [0] * num_cores
        retire_time = [0] * num_cores
        issue_at: List[Optional[int]] = [None] * num_cores
        finished = [False] * num_cores
        finish_cycle = [0] * num_cores
        c_memreq = [0] * num_cores
        c_reads = [0] * num_cores
        c_latsum = [0] * num_cores
        unfinished = 0

        # --- closures over the flattened state -------------------------
        # Hot containers ride in through default arguments (LOAD_FAST, not
        # cell lookups); only the rebound scalars (seq, max_alerts,
        # unfinished) stay nonlocal. The wakeup dedup is hand-inlined at
        # the per-request sites and kept as a helper for the rare ones
        # (ALERT, BlockHammer throttle, REF); both forms are the exact
        # MemoryController._wakeup logic.
        def wakeup(flat, time, now):
            nonlocal seq
            if time <= now:
                time = now + 1
            pending = wakeups[flat]
            if pending is not None and pending <= time:
                return
            wakeups[flat] = time
            push(heap, (time, seq, _OP_WAKEUP, flat, 0))
            seq += 1

        def try_service(
            flat,
            now,
            queues=queues,
            sc_of=sc_of,
            b_open=b_open,
            b_until=b_until,
            b_act=b_act,
            b_ready=b_ready,
            busy_until=busy_until,
            recent_acts=recent_acts,
            bus_free=bus_free,
            wakeups=wakeups,
            autorfm=autorfm,
            rfm_trackers=rfm_trackers,
            eng_tracker_act=eng_tracker_act,
            eng_th=eng_th,
            tm_alert=tm_alert,
            b_acts=b_acts,
            b_hits=b_hits,
            b_reads=b_reads,
            b_writes=b_writes,
            b_alerts=b_alerts,
            heap=heap,
            push=push,
            trcd=trcd,
            cas=cas,
            burst=burst,
            completion_tail=completion_tail,
            tras=tras,
            trc=trc,
            trp=trp,
            tfaw=tfaw,
            rpr=rpr,
            records=records,
            raa=raa,
            raa_max=raa_max,
            prac_on_act=prac_on_act,
            bh_earliest=bh_earliest,
            bh_observe=bh_observe,
            OP_WAKEUP=_OP_WAKEUP,
            OP_AUTO_PRE=_OP_AUTO_PRE,
            OP_READ_DONE=_OP_READ_DONE,
        ):
            # Inlined MemoryController._try_service for the fast path
            # (closed page, all-bank REF, no write drain, no retry
            # ablation); irregular events raise _Fallback instead.
            nonlocal seq, max_alerts
            queue = queues[flat]
            while queue:
                open_row = b_open[flat]
                if open_row != -1 and now <= b_until[flat]:
                    sc = sc_of[flat]
                    kept = []
                    act_time = b_act[flat]
                    for req in queue:
                        if req[0] == open_row:
                            b_hits[flat] += 1
                            data_ready = act_time + trcd
                            if now > data_ready:
                                data_ready = now
                            data_start = data_ready + cas
                            free = bus_free[sc]
                            if free > data_start:
                                data_start = free
                            bus_free[sc] = data_start + burst
                            if req[1]:
                                b_writes[flat] += 1
                            else:
                                b_reads[flat] += 1
                                push(heap, (
                                    data_start + completion_tail, seq,
                                    OP_READ_DONE, req[2], req[3],
                                ))
                                seq += 1
                        else:
                            kept.append(req)
                    if len(kept) != len(queue):
                        queue[:] = kept
                        continue

                busy = busy_until[flat]
                if now < busy:
                    # Inlined wakeup (busy > now, so no clamp needed).
                    pending = wakeups[flat]
                    if pending is None or pending > busy:
                        wakeups[flat] = busy
                        push(heap, (busy, seq, OP_WAKEUP, flat, 0))
                        seq += 1
                    return

                if raa is not None and raa[flat] >= raa_max:
                    raise _Fallback("rfm-command")

                ready = b_ready[flat]
                if b_open[flat] != -1 or now < ready:
                    # Inlined wakeup at the bank-not-ready site.
                    if ready <= now:
                        ready = now + 1
                    pending = wakeups[flat]
                    if pending is None or pending > ready:
                        wakeups[flat] = ready
                        push(heap, (ready, seq, OP_WAKEUP, flat, 0))
                        seq += 1
                    return

                sc = sc_of[flat]
                recent = recent_acts[sc]
                if len(recent) == 4:
                    window = recent[0] + tfaw
                    if now < window:
                        # Inlined wakeup (window > now).
                        pending = wakeups[flat]
                        if pending is None or pending > window:
                            wakeups[flat] = window
                            push(heap, (window, seq, OP_WAKEUP, flat, 0))
                            seq += 1
                        return

                req = queue[0]
                row = req[0]

                if bh_earliest is not None:
                    allowed = bh_earliest(flat, row, now)
                    if now < allowed:
                        wakeup(flat, allowed, now)
                        return

                engine = autorfm[flat]
                if engine is not None:
                    saum = engine.saum
                    if (
                        saum is not None
                        and now < engine.saum_busy_until
                        and row // rpr == saum
                    ):
                        # Inlined _handle_alert (Fig. 7 busy-table path).
                        b_alerts[flat] += 1
                        alerts = req[4] + 1
                        req[4] = alerts
                        if records is not None:
                            records.append(
                                CommandRecord(now, ALERT, flat, row)
                            )
                        if alerts > max_alerts:
                            max_alerts = alerts
                        retry_time = now + tm_alert[flat]
                        stall = now + trp
                        if stall > b_ready[flat]:
                            b_ready[flat] = stall
                        if retry_time > busy_until[flat]:
                            busy_until[flat] = retry_time
                        wakeup(flat, retry_time, now)
                        return

                # Issue the ACT (inlined Bank.activate, closed page).
                b_open[flat] = row
                b_act[flat] = now
                b_until[flat] = now + tras
                b_ready[flat] = now + trc
                b_acts[flat] += 1
                if engine is not None:
                    # Inlined AutoRfmEngine.on_activation: tracker sample
                    # plus the mitigation-window counter.
                    eng_tracker_act[flat](row)
                    acts = engine._acts_in_window + 1
                    engine._acts_in_window = acts
                    if acts >= eng_th[flat]:
                        engine._mitigation_pending = True
                else:
                    tracker = rfm_trackers[flat]
                    if tracker is not None:
                        tracker.on_activation(row)
                recent.append(now)
                if len(recent) > 4:
                    recent.pop(0)
                if records is not None:
                    records.append(CommandRecord(now, ACT, flat, row))
                push(heap, (now + tras, seq, OP_AUTO_PRE, flat, 0))
                seq += 1
                if raa is not None:
                    # Inlined RfmController.on_activation (no obs hooks
                    # are ever attached on the kernel path).
                    raa[flat] += 1
                if prac_on_act is not None and prac_on_act(flat, row):
                    raise _Fallback("abo-recovery")
                if bh_observe is not None:
                    bh_observe(flat, row, now)
                # Inlined _serve(hit=False).
                data_start = now + trcd + cas
                free = bus_free[sc]
                if free > data_start:
                    data_start = free
                bus_free[sc] = data_start + burst
                if req[1]:
                    b_writes[flat] += 1
                else:
                    b_reads[flat] += 1
                    push(heap, (
                        data_start + completion_tail, seq,
                        OP_READ_DONE, req[2], req[3],
                    ))
                    seq += 1
                del queue[0]
                # Loop: younger queued requests may now hit the open row.

        def try_issue(
            core,
            now,
            core_n=core_n,
            core_seq=core_seq,
            core_bound=core_bound,
            core_retire=core_retire,
            core_writes=core_writes,
            core_rows=core_rows,
            core_flats=core_flats,
            tail_cycles=tail_cycles,
            next_i=next_i,
            mshr_used=mshr_used,
            dispatch_time=dispatch_time,
            completion=completion,
            outstanding=outstanding,
            retire_ptr=retire_ptr,
            retire_time=retire_time,
            issue_at=issue_at,
            finished=finished,
            finish_cycle=finish_cycle,
            c_memreq=c_memreq,
            queues=queues,
            heap=heap,
            push=push,
            try_service=try_service,
            rob_size=rob_size,
            mshrs=mshrs,
            OP_ISSUE_FIRED=_OP_ISSUE_FIRED,
        ):
            # Inlined Core._try_issue + _dispatch + _advance_retirement +
            # _maybe_finish. The while/else mirrors the scalar control
            # flow: stall returns (break) skip the final _maybe_finish,
            # a natural exit (all instructions dispatched) runs it.
            nonlocal seq, unfinished
            n = core_n[core]
            ni = next_i[core]
            used = mshr_used[core]
            seqs = core_seq[core]
            bounds = core_bound[core]
            writes = core_writes[core]
            rows = core_rows[core]
            flats = core_flats[core]
            out = outstanding[core]
            comp = completion[core]
            dtime = dispatch_time[core]
            rcyc = core_retire[core]
            while ni < n:
                i = ni
                bound = bounds[i]
                if bound > now:
                    pending = issue_at[core]
                    if pending is None or pending > bound:
                        issue_at[core] = bound
                        push(heap, (bound, seq, OP_ISSUE_FIRED, core, 0))
                        seq += 1
                    break
                if out and seqs[i] - out[0][0] >= rob_size:
                    break
                is_write = writes[i]
                if not is_write and used >= mshrs:
                    break
                # Dispatch + submit (locate was precomputed up front).
                ni = i + 1
                c_memreq[core] += 1
                dtime[i] = now
                if is_write:
                    comp[i] = now
                else:
                    used += 1
                    out.append([seqs[i], i, 0])
                next_i[core] = ni
                flat = flats[i]
                queues[flat].append([rows[i], is_write, core, i, 0])
                try_service(flat, now)
                # Inlined _advance_retirement.
                ptr = retire_ptr[core]
                rtime = retire_time[core]
                stalled = False
                while ptr < ni:
                    done = comp[ptr]
                    if done is None:
                        stalled = True
                        break
                    budget = rtime + rcyc[ptr]
                    rtime = done if done > budget else budget
                    ptr += 1
                retire_ptr[core] = ptr
                retire_time[core] = rtime
                if not stalled and ni == n and not finished[core]:
                    # Inlined _maybe_finish (ptr == ni == n here).
                    finished[core] = True
                    cycle = rtime + tail_cycles[core]
                    finish_cycle[core] = cycle if cycle > 1 else 1
                    unfinished -= 1
            else:
                # Natural loop exit: scalar's trailing _maybe_finish().
                if not finished[core] and retire_ptr[core] == n:
                    finished[core] = True
                    cycle = retire_time[core] + tail_cycles[core]
                    finish_cycle[core] = cycle if cycle > 1 else 1
                    unfinished -= 1
            next_i[core] = ni
            mshr_used[core] = used

        # --- initial schedule (same seq order as SimulatedSystem) ------
        for sc in range(nsc):
            offset = (sc * trefi) // nsc
            first = offset if offset > 0 else trefi
            push(heap, (first, seq, _OP_REF, sc, 0))
            seq += 1
        if prac is not None:
            push(heap, (timing.trefw, seq, _OP_PRAC_WINDOW, 0, 0))
            seq += 1
        for core in range(num_cores):
            if core_n[core] == 0:
                finished[core] = True
                cycle = tail_cycles[core]
                finish_cycle[core] = cycle if cycle > 1 else 1
            else:
                push(heap, (0, seq, _OP_ISSUE_FIRED, core, 0))
                seq += 1
        unfinished = sum(1 for flag in finished if not flag)

        # --- the fused event loop --------------------------------------
        OP_WAKEUP = _OP_WAKEUP
        OP_AUTO_PRE = _OP_AUTO_PRE
        OP_READ_DONE = _OP_READ_DONE
        OP_ISSUE_FIRED = _OP_ISSUE_FIRED
        OP_REF = _OP_REF
        while heap:
            now, _, op, a, b = pop(heap)
            if op == OP_WAKEUP:
                pending = wakeups[a]
                if pending is not None and pending <= now:
                    wakeups[a] = None
                if queues[a]:
                    try_service(a, now)
            elif op == OP_AUTO_PRE:
                # Inlined _auto_precharge (closed-page tRAS expiry); the
                # engine hook is AutoRfmEngine.on_precharge, inlined down
                # to its pending-mitigation check.
                if b_open[a] != -1:
                    b_open[a] = -1
                    b_until[a] = -1
                    engine = autorfm[a]
                    if engine is not None and engine._mitigation_pending:
                        engine._mitigation_pending = False
                        engine._acts_in_window = 0
                        eng_start[a](now)
                if raa is not None and raa[a] >= rfm_th_limit:
                    if not queues[a] or raa[a] >= raa_max:
                        raise _Fallback("rfm-command")
                if queues[a]:
                    # Inlined wakeup at the post-precharge site.
                    ready = b_ready[a]
                    if ready <= now:
                        ready = now + 1
                    pending = wakeups[a]
                    if pending is None or pending > ready:
                        wakeups[a] = ready
                        push(heap, (ready, seq, OP_WAKEUP, a, 0))
                        seq += 1
            elif op == OP_READ_DONE:
                # Inlined Core._on_read_complete + _advance_retirement.
                mshr_used[a] -= 1
                comp = completion[a]
                comp[b] = now
                c_reads[a] += 1
                c_latsum[a] += now - dispatch_time[a][b]
                out = outstanding[a]
                for entry in out:
                    if entry[1] == b:
                        entry[2] = 1
                        break
                while out and out[0][2]:
                    del out[0]
                limit = next_i[a]
                ptr = retire_ptr[a]
                rtime = retire_time[a]
                rcyc = core_retire[a]
                stalled = False
                while ptr < limit:
                    done = comp[ptr]
                    if done is None:
                        stalled = True
                        break
                    budget = rtime + rcyc[ptr]
                    rtime = done if done > budget else budget
                    ptr += 1
                retire_ptr[a] = ptr
                retire_time[a] = rtime
                if not stalled and limit == core_n[a] and not finished[a]:
                    finished[a] = True
                    cycle = rtime + tail_cycles[a]
                    finish_cycle[a] = cycle if cycle > 1 else 1
                    unfinished -= 1
                try_issue(a, now)
            elif op == OP_ISSUE_FIRED:
                pending = issue_at[a]
                if pending is not None and pending <= now:
                    issue_at[a] = None
                try_issue(a, now)
            elif op == OP_REF:
                # Inlined _refresh (all-bank REF per subchannel).
                base = a * banks_per_sc
                for local in range(banks_per_sc):
                    flat = base + local
                    if b_open[flat] != -1:
                        b_open[flat] = -1
                        b_until[flat] = -1
                        engine = autorfm[flat]
                        if engine is not None and engine._mitigation_pending:
                            engine._mitigation_pending = False
                            engine._acts_in_window = 0
                            eng_start[flat](now)
                    blocked = now + trfc
                    if blocked > b_ready[flat]:
                        b_ready[flat] = blocked
                    b_refs[flat] += 1
                    tracker = rfm_trackers[flat]
                    if tracker is not None:
                        # Inlined Bank._perform_rfm_mitigation: REF
                        # harvests a pending tracker window for free.
                        request = tracker.select_for_mitigation()
                        if request is not None:
                            victims = rfm_policies[flat].victims(request)
                            if victims:
                                bstats = bank_stats[flat]
                                bstats.mitigations += 1
                                bstats.victim_refreshes += len(victims)
                                if request.level > 1:
                                    bstats.recursive_rounds += 1
                                for victim in victims:
                                    tracker.on_victim_refresh(
                                        victim, request.level
                                    )
                    if raa is not None:
                        # Inlined RfmController.on_refresh.
                        level = raa[flat] - ref_decrement
                        raa[flat] = level if level > 0 else 0
                    if records is not None:
                        records.append(CommandRecord(now, REF, flat))
                    if queues[flat]:
                        wakeup(flat, b_ready[flat], now)
                stats.refresh_windows += 1
                if unfinished:
                    push(heap, (now + trefi, seq, OP_REF, a, 0))
                    seq += 1
            else:  # _OP_PRAC_WINDOW
                prac.on_refresh_window()
                if unfinished:
                    push(heap, (
                        now + timing.trefw, seq, _OP_PRAC_WINDOW, 0, 0,
                    ))
                    seq += 1

        # --- finalize (mirrors SimulatedSystem.finalize) ---------------
        stalled_cores = [
            core for core in range(num_cores) if not finished[core]
        ]
        if stalled_cores:
            raise RuntimeError(
                f"cores {stalled_cores} never finished (deadlock?)"
            )
        for flat in range(n_banks):
            bstats = bank_stats[flat]
            bstats.activations += b_acts[flat]
            bstats.row_hits += b_hits[flat]
            bstats.reads += b_reads[flat]
            bstats.writes += b_writes[flat]
            bstats.refreshes += b_refs[flat]
            bstats.alerts += b_alerts[flat]
        for core in range(num_cores):
            cstats = stats.cores[core]
            cstats.memory_requests = c_memreq[core]
            cstats.reads_completed = c_reads[core]
            cstats.read_latency_sum = c_latsum[core]
            cstats.instructions = self.totals[core]
            cstats.finish_cycle = finish_cycle[core]
        stats.max_request_alerts = max_alerts
        stats.cycles = max(finish_cycle)
        self.events = seq
        return SimulationResult(
            stats=stats,
            setup=setup,
            mapping=self.lane.mapping,
            seed=self.lane.seed,
        )


def _run_scalar(lane: SimLane):
    """Run one lane on the scalar oracle with its full option surface."""
    from repro.cpu.system import simulate

    return simulate(
        lane.traces,
        setup=lane.setup,
        config=lane.config,
        mapping=lane.mapping,
        seed=lane.seed,
        max_events=lane.max_events,
        command_log=lane.command_log,
        obs=lane.obs,
        checkpoint_every=lane.checkpoint_every,
        checkpoint_dir=lane.checkpoint_dir,
    )


def simulate_batch(
    lanes: Sequence[SimLane],
    backend: str = "batch",
    report: Optional[Dict] = None,
) -> List:
    """Run every lane and return their results in order.

    ``backend="batch"`` advances kernel-eligible lanes on the fused
    interpreter and transparently reruns any lane that leaves the fast
    path on the scalar oracle; ``backend="scalar"`` forces the oracle for
    every lane. Results are bit-identical either way.

    ``report``, when given a dict, is filled with per-lane routing
    telemetry: ``report["lanes"][i]`` records the path taken ("kernel" or
    "scalar"), the fallback/ineligibility reason (None on the kernel
    path), and the kernel event count.
    """
    if backend not in BACKENDS:
        raise ValueError(
            f"unknown backend {backend!r}; expected one of {BACKENDS}"
        )
    results = []
    entries = []
    for lane in lanes:
        setup = lane.setup or MitigationSetup(mechanism="none")
        config = lane.config or SystemConfig()
        reason: Optional[str] = None
        if backend != "batch":
            reason = "scalar-backend"
        else:
            reason = _lane_block_reason(lane, setup, config)
        if reason is None:
            try:
                kernel = _LaneKernel(lane, setup, config)
                result = kernel.run()
            except _Fallback as fallback:
                reason = fallback.reason
            else:
                if lane.command_log is not None and kernel.records:
                    lane.command_log.records.extend(kernel.records)
                results.append(result)
                entries.append({
                    "path": "kernel",
                    "reason": None,
                    "events": kernel.events,
                })
                continue
        results.append(_run_scalar(lane))
        entries.append({"path": "scalar", "reason": reason, "events": None})
    if report is not None:
        report["backend"] = backend
        report["lanes"] = entries
    return results
