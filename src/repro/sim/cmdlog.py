"""DRAM command logging and post-hoc timing verification.

A :class:`CommandLog` records every command the simulated memory system
issues (ACT, PRE, REF, RFM, ALERT, mitigation start). The
:meth:`CommandLog.verify` pass then re-checks the JEDEC-style invariants
against the recorded stream — an independent audit of the scheduler:

* two ACTs to the same bank at least tRC apart;
* no ACT inside a bank's REF window (tRFC) or RFM window (tRFM);
* an ALERT only while the bank has a mitigation in flight;
* a bank marked busy after an ALERT receives no ACT for t_M.

Verification is O(n) over the log and used by the integration tests and by
``simulate(..., command_log=...)`` users debugging custom configurations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.sim.config import SystemConfig
from repro.ckpt.contract import checkpointable_dataclass, register_value_type

ACT = "ACT"
PRE = "PRE"
REF = "REF"
RFM = "RFM"
ALERT = "ALERT"
MITIGATION = "MITIG"
VICTIM_REFRESH = "VREF"

KINDS = (ACT, PRE, REF, RFM, ALERT, MITIGATION, VICTIM_REFRESH)


@dataclass(frozen=True)
class CommandRecord:
    """One logged command. ``row`` is -1 for bank-level commands."""

    time: int
    kind: str
    bank: int
    row: int = -1


register_value_type(
    "CommandRecord",
    CommandRecord,
    lambda r: [r.time, r.kind, r.bank, r.row],
    lambda d: CommandRecord(d[0], d[1], d[2], d[3]),
)


@dataclass
class TimingViolation:
    """One detected inconsistency in the command stream."""

    rule: str
    record: CommandRecord
    detail: str

    def __str__(self) -> str:
        return f"[{self.rule}] at t={self.record.time}: {self.detail}"


@checkpointable_dataclass
@dataclass
class CommandLog:
    """Append-only command trace with a post-hoc verifier."""

    records: List[CommandRecord] = field(default_factory=list)

    def record(self, time: int, kind: str, bank: int, row: int = -1) -> None:
        """Append one command to the trace."""
        if kind not in KINDS:
            raise ValueError(f"unknown command kind {kind!r}")
        self.records.append(CommandRecord(time, kind, bank, row))

    def __len__(self) -> int:
        return len(self.records)

    def of_kind(self, kind: str) -> List[CommandRecord]:
        """All records of one command kind, in log order."""
        return [r for r in self.records if r.kind == kind]

    def banks(self) -> List[int]:
        """Sorted set of banks that appear in the log."""
        return sorted({r.bank for r in self.records})

    # ------------------------------------------------------------------
    def verify(
        self,
        config: SystemConfig,
        tm_cycles: int = 0,
        per_request_retry: bool = False,
    ) -> List[TimingViolation]:
        """Check the recorded stream against the timing invariants.

        ``per_request_retry`` disables the ALERT-busy rule (the complex-MC
        ablation intentionally keeps serving a bank after an ALERT).
        """
        timing = config.timing
        tm = tm_cycles or 4 * timing.trc
        violations: List[TimingViolation] = []

        last_act: Dict[int, int] = {}
        ref_until: Dict[int, int] = {}
        rfm_until: Dict[int, int] = {}
        mitigation_until: Dict[int, int] = {}
        alert_block_until: Dict[int, int] = {}
        recent_sc_acts: Dict[int, List[int]] = {}

        # RFM starts may be logged ahead of time (the command is committed
        # at the precharge for a future start); order by timestamp.
        ordered = sorted(self.records, key=lambda r: r.time)
        for record in ordered:
            bank, t = record.bank, record.time
            if record.kind == ACT:
                if bank in last_act and t - last_act[bank] < timing.trc:
                    violations.append(
                        TimingViolation(
                            "tRC",
                            record,
                            f"bank {bank}: ACT {t - last_act[bank]} cycles "
                            f"after previous ACT (< tRC {timing.trc})",
                        )
                    )
                if ref_until.get(bank, 0) > t:
                    violations.append(
                        TimingViolation(
                            "REF-block",
                            record,
                            f"bank {bank}: ACT during REF "
                            f"(blocked until {ref_until[bank]})",
                        )
                    )
                if rfm_until.get(bank, 0) > t:
                    violations.append(
                        TimingViolation(
                            "RFM-block",
                            record,
                            f"bank {bank}: ACT during RFM "
                            f"(blocked until {rfm_until[bank]})",
                        )
                    )
                if not per_request_retry and alert_block_until.get(bank, 0) > t:
                    violations.append(
                        TimingViolation(
                            "ALERT-busy",
                            record,
                            f"bank {bank}: ACT while busy-table blocked "
                            f"(until {alert_block_until[bank]})",
                        )
                    )
                sc = bank // config.banks_per_subchannel
                window = recent_sc_acts.setdefault(sc, [])
                if len(window) == 4 and t - window[0] < timing.tfaw:
                    violations.append(
                        TimingViolation(
                            "tFAW",
                            record,
                            f"subchannel {sc}: fifth ACT within tFAW "
                            f"({t - window[0]} < {timing.tfaw} cycles)",
                        )
                    )
                window.append(t)
                if len(window) > 4:
                    window.pop(0)
                last_act[bank] = t
            elif record.kind == REF:
                blocked = (
                    timing.trfc
                    if config.refresh_mode == "all_bank"
                    else timing.trfc_sb
                )
                ref_until[bank] = t + blocked
            elif record.kind == RFM:
                rfm_until[bank] = t + timing.trfm
            elif record.kind == MITIGATION:
                mitigation_until[bank] = t + tm
            elif record.kind == ALERT:
                if mitigation_until.get(bank, 0) <= t:
                    violations.append(
                        TimingViolation(
                            "ALERT-without-mitigation",
                            record,
                            f"bank {bank}: ALERT with no mitigation in "
                            "flight",
                        )
                    )
                alert_block_until[bank] = t + tm
        return violations
