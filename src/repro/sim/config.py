"""System and DRAM configuration (Tables I and IV of the paper).

All simulator time is integer CPU cycles at ``CPU_FREQ_GHZ`` = 4 GHz, i.e.
0.25 ns per cycle. Every DDR5 timing in Table I is a whole number of cycles
at that granularity (tRC = 48 ns = 192 cycles, tRFM = 205 ns = 820 cycles).
"""

from __future__ import annotations

import dataclasses
import os
from dataclasses import dataclass, field
from functools import cached_property

CPU_FREQ_GHZ = 4
CYCLES_PER_NS = CPU_FREQ_GHZ  # 4 GHz -> 4 cycles per nanosecond

# ----------------------------------------------------------------------
# Environment knobs
# ----------------------------------------------------------------------
# This module is the designated home for os.environ reads that influence
# the simulator (the determinism lint's DET003 forbids them anywhere else
# in sim-critical code): an env var read in a hot path is an input the
# result-cache key and snapshot metadata never see. Orchestration-level
# knobs (REPRO_JOBS, REPRO_CACHE_*) live with the analysis runner, which
# is not sim-critical by construction.

#: Default bound of the per-channel ``locate`` memo (entries, i.e. distinct
#: hot line addresses; 64Ki entries ~ a few MB of dict overhead).
DEFAULT_LOCATE_CACHE = 1 << 16


def locate_cache_capacity() -> int:
    """``REPRO_LOCATE_CACHE`` env var (entries); 0 disables the memo.

    The memo only caches the pure line->location mapping, so the capacity
    can never change simulated behaviour — but the read still lives here,
    in the env home, where every configuration input is auditable.
    """
    raw = os.environ.get("REPRO_LOCATE_CACHE")
    if raw is None:
        return DEFAULT_LOCATE_CACHE
    try:
        cap = int(raw)
    except ValueError:
        raise ValueError(
            f"REPRO_LOCATE_CACHE must be an integer >= 0, got {raw!r}"
        ) from None
    if cap < 0:
        raise ValueError(f"REPRO_LOCATE_CACHE must be >= 0, got {cap}")
    return cap


def ns_to_cycles(ns: float) -> int:
    """Convert nanoseconds to CPU cycles, rounding to the nearest cycle.

    Every Table I timing is an exact integer at 4 GHz; rounding only matters
    for derived timings such as PRAC's scaled tRC (52.8 ns -> 211 cycles).
    """
    return int(round(ns * CYCLES_PER_NS))


def cycles_to_ns(cycles: int) -> float:
    """Convert CPU cycles back to nanoseconds."""
    return cycles / CYCLES_PER_NS


@dataclass(frozen=True)
class DramTiming:
    """DDR5 timing parameters (Table I), stored in nanoseconds.

    Use the ``*_cycles`` properties for simulator time. ``cas_latency_ns``
    and ``burst_ns`` are not in Table I; they model read latency and data-bus
    occupancy for a 64 B transfer on a DDR5 subchannel and only shift absolute
    latency, not the relative slowdowns the paper reports.
    """

    trcd_ns: float = 12.0  # time for performing ACT
    trp_ns: float = 12.0  # time to precharge an open row
    tras_ns: float = 36.0  # minimum time a row must be kept open
    trc_ns: float = 48.0  # time between successive ACTs to a bank
    trefw_ns: float = 32_000_000.0  # refresh period (32 ms)
    trefi_ns: float = 3900.0  # time between successive REF commands
    trfc_ns: float = 410.0  # duration of an all-bank REF command
    trfc_sb_ns: float = 130.0  # duration of a same-bank (REFsb) command
    trfm_ns: float = 205.0  # duration of an RFM command
    cas_latency_ns: float = 16.0  # column access latency
    burst_ns: float = 3.25  # 64 B burst on a 32-bit DDR5-4800 subchannel
    #: Four-activate window per subchannel. DDR5 parts span ~8-14 ns at
    #: this data rate; 10 ns models an x4/x16 mid-point.
    tfaw_ns: float = 10.0

    @cached_property
    def trcd(self) -> int:
        return ns_to_cycles(self.trcd_ns)

    @cached_property
    def trp(self) -> int:
        return ns_to_cycles(self.trp_ns)

    @cached_property
    def tras(self) -> int:
        return ns_to_cycles(self.tras_ns)

    @cached_property
    def trc(self) -> int:
        return ns_to_cycles(self.trc_ns)

    @cached_property
    def trefw(self) -> int:
        return ns_to_cycles(self.trefw_ns)

    @cached_property
    def trefi(self) -> int:
        return ns_to_cycles(self.trefi_ns)

    @cached_property
    def trfc(self) -> int:
        return ns_to_cycles(self.trfc_ns)

    @cached_property
    def trfc_sb(self) -> int:
        return ns_to_cycles(self.trfc_sb_ns)

    @cached_property
    def trfm(self) -> int:
        return ns_to_cycles(self.trfm_ns)

    @cached_property
    def cas_latency(self) -> int:
        return ns_to_cycles(self.cas_latency_ns)

    @cached_property
    def burst(self) -> int:
        return ns_to_cycles(self.burst_ns)

    @cached_property
    def tfaw(self) -> int:
        return ns_to_cycles(self.tfaw_ns)

    def scaled(self, trc_factor: float = 1.0, trp_factor: float = 1.0) -> "DramTiming":
        """Return a copy with scaled tRC/tRP (used by the PRAC model)."""
        return dataclasses.replace(
            self,
            trc_ns=self.trc_ns * trc_factor,
            trp_ns=self.trp_ns * trp_factor,
        )


@dataclass(frozen=True)
class SystemConfig:
    """Baseline system configuration (Table IV).

    The default geometry is 32 GB of DDR5 as 2 subchannels x 1 rank x
    32 banks = 64 banks, 128 K rows per bank, 4 KB rows, 256 subarrays per
    bank (512 rows each). A 64 B line and 4 KB page give 64 lines per page.
    """

    num_cores: int = 8
    core_width: int = 4  # instructions retired per CPU cycle
    rob_size: int = 256  # run-ahead window, in instructions
    mshrs_per_core: int = 8  # outstanding misses per core

    llc_size_bytes: int = 8 * 1024 * 1024
    llc_ways: int = 16
    line_bytes: int = 64

    num_subchannels: int = 2
    banks_per_subchannel: int = 32
    rows_per_bank: int = 128 * 1024
    row_bytes: int = 4096
    subarrays_per_bank: int = 256

    timing: DramTiming = field(default_factory=DramTiming)

    #: Row-buffer policy: "closed" (the paper's choice — auto-precharge at
    #: tRAS, hits permitted inside the window) or "open" (rows stay open
    #: until a conflicting access, REF, or RFM forces a precharge).
    page_policy: str = "closed"

    #: Refresh mode: "all_bank" (REFab every tREFI blocks the subchannel
    #: for tRFC — the paper's assumption) or "same_bank" (DDR5 REFsb: banks
    #: refresh round-robin, one per tREFI / banks slot, each blocked only
    #: tRFCsb; the rest keep serving).
    refresh_mode: str = "all_bank"

    #: Write handling: False (default) interleaves writes with reads in
    #: arrival order; True buffers writes per subchannel and drains them in
    #: bursts at a high watermark (read-priority, real-MC style).
    write_drain: bool = False
    write_buffer_size: int = 32

    # Fixed round-trip latency outside DRAM (interconnect + controller), in
    # CPU cycles.
    static_mem_latency: int = 60

    @property
    def num_banks(self) -> int:
        return self.num_subchannels * self.banks_per_subchannel

    @property
    def lines_per_row(self) -> int:
        return self.row_bytes // self.line_bytes

    @property
    def rows_per_subarray(self) -> int:
        return self.rows_per_bank // self.subarrays_per_bank

    @property
    def lines_per_bank(self) -> int:
        return self.rows_per_bank * self.lines_per_row

    @property
    def total_lines(self) -> int:
        return self.num_banks * self.lines_per_bank

    @property
    def capacity_bytes(self) -> int:
        return self.total_lines * self.line_bytes

    def validate(self) -> None:
        """Raise ``ValueError`` for an inconsistent geometry."""
        if self.rows_per_bank % self.subarrays_per_bank:
            raise ValueError("rows_per_bank must divide into subarrays")
        if self.row_bytes % self.line_bytes:
            raise ValueError("row_bytes must be a multiple of line_bytes")
        if (self.lines_per_row // 2) % self.banks_per_subchannel:
            raise ValueError(
                "line pairs per page must be a multiple of the banks per "
                "subchannel (the Zen striping needs it to stay bijective)"
            )
        for name in ("num_cores", "num_subchannels", "banks_per_subchannel"):
            if getattr(self, name) <= 0:
                raise ValueError(f"{name} must be positive")
        if self.page_policy not in ("closed", "open"):
            raise ValueError(f"unknown page_policy {self.page_policy!r}")
        if self.refresh_mode not in ("all_bank", "same_bank"):
            raise ValueError(f"unknown refresh_mode {self.refresh_mode!r}")
        if self.write_buffer_size < 1:
            raise ValueError("write_buffer_size must be positive")

    def subarray_of_row(self, row: int) -> int:
        """Map a row index within a bank to its subarray index."""
        if not 0 <= row < self.rows_per_bank:
            raise ValueError(f"row {row} out of range")
        return row // self.rows_per_subarray
