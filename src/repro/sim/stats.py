"""Simulation statistics.

``BankStats`` accumulates per-bank command counts; ``SimStats`` aggregates a
whole run (per-core progress, per-bank counters) and derives the metrics the
paper reports: ACT-PKI, ACT-per-tREFI, ALERT-per-ACT, weighted speedup.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional
from repro.ckpt.contract import checkpointable_dataclass


@checkpointable_dataclass
@dataclass
class BankStats:
    """Command counters for a single bank."""

    activations: int = 0
    row_hits: int = 0
    reads: int = 0
    writes: int = 0
    refreshes: int = 0
    rfm_commands: int = 0
    mitigations: int = 0
    victim_refreshes: int = 0
    row_swaps: int = 0  # row-migration mitigations (RRS policy)
    alerts: int = 0
    recursive_rounds: int = 0  # extra chained mitigation rounds (RM only)

    def merge(self, other: "BankStats") -> None:
        """Accumulate another bank's counters into this one."""
        for name in self.__dataclass_fields__:
            setattr(self, name, getattr(self, name) + getattr(other, name))


@checkpointable_dataclass
@dataclass
class CoreStats:
    """Per-core progress counters."""

    instructions: int = 0
    memory_requests: int = 0
    finish_cycle: int = 0
    read_latency_sum: int = 0
    reads_completed: int = 0

    @property
    def ipc(self) -> float:
        if self.finish_cycle == 0:
            return 0.0
        return self.instructions / self.finish_cycle

    @property
    def avg_read_latency(self) -> float:
        """Mean dispatch-to-data read latency, in CPU cycles."""
        if self.reads_completed == 0:
            return 0.0
        return self.read_latency_sum / self.reads_completed


@checkpointable_dataclass
@dataclass
class SimStats:
    """Aggregated statistics for one simulation run."""

    cycles: int = 0
    banks: List[BankStats] = field(default_factory=list)
    cores: List[CoreStats] = field(default_factory=list)
    refresh_windows: int = 0  # number of elapsed tREFI intervals
    #: Worst number of ALERTs any single request suffered. The paper's
    #: Fig.-7 design guarantees 1 (a failed ACT succeeds on its retry);
    #: values above 1 appear with the per-request-retry ablation or with
    #: recursive mitigation's chained rounds.
    max_request_alerts: int = 0

    # ------------------------------------------------------------------
    # Aggregates
    # ------------------------------------------------------------------
    @property
    def total_activations(self) -> int:
        return sum(b.activations for b in self.banks)

    @property
    def total_row_hits(self) -> int:
        return sum(b.row_hits for b in self.banks)

    @property
    def total_alerts(self) -> int:
        return sum(b.alerts for b in self.banks)

    @property
    def total_rfm_commands(self) -> int:
        return sum(b.rfm_commands for b in self.banks)

    @property
    def total_mitigations(self) -> int:
        return sum(b.mitigations for b in self.banks)

    @property
    def total_victim_refreshes(self) -> int:
        return sum(b.victim_refreshes for b in self.banks)

    @property
    def total_row_swaps(self) -> int:
        return sum(b.row_swaps for b in self.banks)

    @property
    def total_refreshes(self) -> int:
        return sum(b.refreshes for b in self.banks)

    @property
    def total_instructions(self) -> int:
        return sum(c.instructions for c in self.cores)

    @property
    def total_memory_requests(self) -> int:
        return sum(c.memory_requests for c in self.cores)

    # ------------------------------------------------------------------
    # Paper metrics
    # ------------------------------------------------------------------
    @property
    def act_pki(self) -> float:
        """Activations per thousand instructions (Table V)."""
        instrs = self.total_instructions
        if instrs == 0:
            return 0.0
        return 1000.0 * self.total_activations / instrs

    def act_per_trefi(self, trefi_cycles: int) -> float:
        """Average activations per tREFI per bank (Table V)."""
        if self.cycles == 0 or not self.banks:
            return 0.0
        windows = self.cycles / trefi_cycles
        return self.total_activations / windows / len(self.banks)

    @property
    def alerts_per_act(self) -> float:
        """Probability that an ACT is declined with an ALERT (Fig. 8b)."""
        acts = self.total_activations
        if acts == 0:
            return 0.0
        return self.total_alerts / acts

    @property
    def row_hit_rate(self) -> float:
        accesses = self.total_activations + self.total_row_hits
        if accesses == 0:
            return 0.0
        return self.total_row_hits / accesses

    def weighted_speedup(self, baseline: "SimStats") -> float:
        """Weighted speedup of this run relative to ``baseline``.

        Each core contributes IPC_this / IPC_baseline; the result is the
        mean over cores (so the no-change case is exactly 1.0).
        """
        if len(self.cores) != len(baseline.cores):
            raise ValueError("core counts differ")
        if not self.cores:
            return 1.0
        ratios = []
        for mine, base in zip(self.cores, baseline.cores):
            if base.ipc == 0:
                raise ValueError("baseline core has zero IPC")
            ratios.append(mine.ipc / base.ipc)
        return sum(ratios) / len(ratios)

    def slowdown_vs(self, baseline: "SimStats") -> float:
        """Fractional slowdown vs. ``baseline`` (0.04 means 4 % slower)."""
        return 1.0 - self.weighted_speedup(baseline)

    def bank(self, index: int) -> BankStats:
        """Counters of one bank by flat index."""
        return self.banks[index]

    @classmethod
    def with_shape(cls, num_banks: int, num_cores: int) -> "SimStats":
        return cls(
            banks=[BankStats() for _ in range(num_banks)],
            cores=[CoreStats() for _ in range(num_cores)],
        )

    def summary(self, trefi_cycles: Optional[int] = None) -> Dict[str, float]:
        """Return the headline metrics as a plain dict (for reports)."""
        out = {
            "cycles": float(self.cycles),
            "instructions": float(self.total_instructions),
            "activations": float(self.total_activations),
            "act_pki": self.act_pki,
            "alerts_per_act": self.alerts_per_act,
            "row_hit_rate": self.row_hit_rate,
            "mitigations": float(self.total_mitigations),
            "rfm_commands": float(self.total_rfm_commands),
        }
        if trefi_cycles:
            out["act_per_trefi"] = self.act_per_trefi(trefi_cycles)
        return out
