"""Simulation kernel: configuration, deterministic RNG streams, statistics.

The simulator is event-driven with integer time measured in CPU cycles at
4 GHz (0.25 ns per cycle), so every DDR5 timing from Table I of the paper is
an exact integer number of cycles.
"""

from repro.sim.config import (
    CYCLES_PER_NS,
    DramTiming,
    SystemConfig,
    ns_to_cycles,
    cycles_to_ns,
)
from repro.sim.rng import RngStreams
from repro.sim.stats import BankStats, SimStats

__all__ = [
    "CYCLES_PER_NS",
    "DramTiming",
    "SystemConfig",
    "ns_to_cycles",
    "cycles_to_ns",
    "RngStreams",
    "BankStats",
    "SimStats",
]
