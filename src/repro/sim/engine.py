"""Minimal event-driven simulation kernel.

Time is integer CPU cycles. Events are (time, sequence, callback) entries in
a binary heap; ties break by insertion order, so the simulation is fully
deterministic. Callbacks receive the current time.
"""

from __future__ import annotations

import heapq
from typing import Callable, List, Optional, Tuple

EventCallback = Callable[[int], None]


class Engine:
    """Deterministic discrete-event loop."""

    def __init__(self):
        self.now = 0
        self._seq = 0
        self._heap: List[Tuple[int, int, EventCallback]] = []

    def schedule(self, time: int, callback: EventCallback) -> None:
        """Schedule ``callback(time)`` at ``time`` (>= now)."""
        if time < self.now:
            raise ValueError(f"cannot schedule at {time}, now is {self.now}")
        heapq.heappush(self._heap, (time, self._seq, callback))
        self._seq += 1

    def schedule_in(self, delay: int, callback: EventCallback) -> None:
        """Schedule ``callback`` after ``delay`` cycles."""
        self.schedule(self.now + delay, callback)

    @property
    def pending(self) -> int:
        return len(self._heap)

    def run_until_empty(self) -> int:
        """Drain the heap with no bounds checking; return the final time.

        The common case (:func:`repro.cpu.system.simulate` with no event
        budget) spends its whole life in this loop, so it keeps only the
        work that must happen per event: pop, advance time, call back.
        """
        heap = self._heap
        pop = heapq.heappop
        while heap:
            time, _, callback = pop(heap)
            self.now = time
            callback(time)
        return self.now

    def run(
        self, until: Optional[int] = None, max_events: Optional[int] = None
    ) -> int:
        """Run until the heap drains (or a bound is hit); return final time.

        ``until`` stops the loop once the next event would be later than the
        bound; ``max_events`` guards against runaway simulations.
        """
        if until is None and max_events is None:
            return self.run_until_empty()
        processed = 0
        heap = self._heap
        pop = heapq.heappop
        while heap:
            time = heap[0][0]
            if until is not None and time > until:
                break
            time, _, callback = pop(heap)
            self.now = time
            callback(time)
            processed += 1
            if max_events is not None and processed >= max_events:
                raise RuntimeError(
                    f"exceeded {max_events} events; likely a livelock"
                )
        return self.now
