"""Minimal event-driven simulation kernel.

Time is integer CPU cycles. Events are (time, sequence, callback) entries in
a binary heap; ties break by insertion order, so the simulation is fully
deterministic. Callbacks receive the current time.

Observability: assigning an enabled :class:`~repro.obs.Observability` to
``engine.obs`` before running switches the drain loop to an instrumented
twin that publishes event counts, heap-depth samples, and the final cycle
into the metrics registry, plus wall-time into the profiler. With ``obs``
left at ``None`` (the default) the original tight loop runs untouched, so
the disabled path costs nothing per event.
"""

from __future__ import annotations

import heapq
from typing import Callable, List, Optional, Tuple

from repro.ckpt.contract import checkpointable

EventCallback = Callable[[int], None]

#: Heap depth is sampled every this many processed events in the observed
#: loop; a fixed stride keeps the samples deterministic.
HEAP_SAMPLE_STRIDE = 4096

#: Bucket edges for the heap-depth histogram.
HEAP_DEPTH_EDGES = (0, 16, 64, 256, 1024, 4096, 16384, 65536)

#: Sentinel bound for "drain everything": larger than any simulated cycle,
#: so the unbounded and ``until``-bounded drains share one loop body.
NO_BOUND = (1 << 63) - 1


@checkpointable(
    state=("now", "_seq", "_obs_processed", "_heap"),
    derived=("obs", "_obs_handles"),
)
class Engine:
    """Deterministic discrete-event loop."""

    def __init__(self):
        self.now = 0
        self._seq = 0
        self._heap: List[Tuple[int, int, EventCallback]] = []
        #: Optional :class:`repro.obs.Observability`; see module docstring.
        self.obs = None
        # Pre-resolved metric handles for the observed drains, keyed by the
        # obs object they were resolved against: (obs, events_counter,
        # depth_histogram, cycles_gauge). Label-keyed registry lookups are
        # dict probes with tuple building — cheap once, but the drains run
        # per checkpoint segment and per bounded step, so they are resolved
        # exactly once per attached obs instead.
        self._obs_handles = None
        # Lifetime count of events drained through the *observed* loops.
        # Heap-depth sampling strides over this counter (not a per-drain
        # one) so a run split across checkpoint segments samples at the
        # exact same event ordinals as one uninterrupted drain.
        self._obs_processed = 0

    def schedule(self, time: int, callback: EventCallback) -> None:
        """Schedule ``callback(time)`` at ``time`` (>= now)."""
        if time < self.now:
            raise ValueError(f"cannot schedule at {time}, now is {self.now}")
        heapq.heappush(self._heap, (time, self._seq, callback))
        self._seq += 1

    def schedule_in(self, delay: int, callback: EventCallback) -> None:
        """Schedule ``callback`` after ``delay`` cycles."""
        self.schedule(self.now + delay, callback)

    @property
    def pending(self) -> int:
        return len(self._heap)

    @property
    def events_processed(self) -> int:
        """Events popped so far (scheduled minus still pending)."""
        return self._seq - len(self._heap)

    def run_until_empty(self) -> int:
        """Drain the heap to empty; return the final time.

        The common case (:func:`repro.cpu.system.simulate` with no event
        budget) spends its whole life in :meth:`_drain_plain`'s loop.
        """
        if self.obs is not None and self.obs.enabled:
            return self._drain_observed(None)
        return self._drain_plain(NO_BOUND)

    def _drain_plain(self, bound: int) -> int:
        """The one uninstrumented drain loop: pop, advance time, call back.

        Shared by the unbounded drain (``bound=NO_BOUND``) and the
        ``until``-bounded drain — the sentinel keeps the loop body single
        and branch-predictable instead of hand-copying it per caller.
        """
        heap = self._heap
        pop = heapq.heappop
        while heap and heap[0][0] <= bound:
            time, _, callback = pop(heap)
            self.now = time
            callback(time)
        return self.now

    def _drain_observed(self, until: Optional[int]) -> int:
        """Instrumented twin of the unbounded / ``until``-bounded drains.

        Publishes per-drain event counts and deterministic heap-depth
        samples (every ``HEAP_SAMPLE_STRIDE`` events, stamped by lifetime
        event ordinal, never wall clock); the only clock reads are one pair
        around the whole drain, feeding the profiler's events/sec. Striding
        over the persistent ``_obs_processed`` counter keeps the sample
        sequence identical whether a run drains in one go or in many
        checkpoint segments.
        """
        obs = self.obs
        metrics = obs.metrics
        events_counter, depth_hist, cycles_gauge = self._resolve_obs_handles()
        heap = self._heap
        pop = heapq.heappop
        processed = 0
        ordinal = self._obs_processed
        bound = NO_BOUND if until is None else until
        with obs.profiler.phase("engine"):
            while heap and heap[0][0] <= bound:
                time, _, callback = pop(heap)
                self.now = time
                callback(time)
                processed += 1
                ordinal += 1
                if depth_hist is not None and ordinal % HEAP_SAMPLE_STRIDE == 0:
                    depth_hist.observe(len(heap))
        self._obs_processed = ordinal
        obs.profiler.count("events", processed)
        if metrics is not None:
            events_counter.inc(processed)
            cycles_gauge.set(self.now)
        return self.now

    def _resolve_obs_handles(self):
        """(events_counter, depth_histogram, cycles_gauge) for ``self.obs``,
        resolved through the registry once and reused while the same obs
        object stays attached."""
        obs = self.obs
        handles = self._obs_handles
        if handles is not None and handles[0] is obs:
            return handles[1], handles[2], handles[3]
        metrics = obs.metrics
        if metrics is not None:
            trio = (
                metrics.counter("engine.events"),
                metrics.histogram("engine.heap_depth", HEAP_DEPTH_EDGES),
                metrics.gauge("engine.cycles"),
            )
        else:
            trio = (None, None, None)
        self._obs_handles = (obs,) + trio
        return trio

    def run(
        self, until: Optional[int] = None, max_events: Optional[int] = None
    ) -> int:
        """Run until the heap drains (or a bound is hit); return final time.

        ``until`` stops the loop once the next event would be later than the
        bound; ``max_events`` guards against runaway simulations.
        """
        if until is None and max_events is None:
            return self.run_until_empty()
        if max_events is None:
            if self.obs is not None and self.obs.enabled:
                return self._drain_observed(until)
            return self._drain_plain(until)
        processed = 0
        heap = self._heap
        pop = heapq.heappop
        while heap:
            time = heap[0][0]
            if until is not None and time > until:
                break
            time, _, callback = pop(heap)
            self.now = time
            callback(time)
            processed += 1
            if max_events is not None and processed >= max_events:
                raise RuntimeError(
                    f"exceeded {max_events} events; likely a livelock"
                )
        if self.obs is not None and self.obs.enabled:
            self.obs.profiler.count("events", processed)
            if self.obs.metrics is not None:
                events_counter, _, cycles_gauge = self._resolve_obs_handles()
                events_counter.inc(processed)
                cycles_gauge.set(self.now)
        return self.now
