"""Deterministic, named random-number streams.

Every stochastic component of the simulator (MINT slot selection, Fractal
Mitigation distances, cipher keys, trace generation) draws from its own child
stream of a single root seed, so a simulation is exactly reproducible and
adding a new consumer never perturbs existing ones.
"""

from __future__ import annotations

import hashlib
from typing import Any, Dict

import numpy as np
from repro.ckpt.contract import checkpointable


def _child_seed(root_seed: int, name: str) -> int:
    """Derive a stable 64-bit child seed from a root seed and a name."""
    digest = hashlib.sha256(f"{root_seed}/{name}".encode()).digest()
    return int.from_bytes(digest[:8], "little")


@checkpointable(state=("seed", "_streams"))
class RngStreams:
    """A registry of named ``numpy.random.Generator`` streams.

    >>> streams = RngStreams(seed=7)
    >>> a = streams.get("mint/bank0")
    >>> b = streams.get("mint/bank0")
    >>> a is b
    True
    """

    def __init__(self, seed: int = 0):
        self.seed = int(seed)
        self._streams: Dict[str, np.random.Generator] = {}

    def get(self, name: str) -> np.random.Generator:
        """Return (creating on first use) the stream for ``name``."""
        stream = self._streams.get(name)
        if stream is None:
            stream = np.random.default_rng(_child_seed(self.seed, name))
            self._streams[name] = stream
        return stream

    def spawn(self, name: str) -> "RngStreams":
        """Return an independent registry rooted at a child of this seed."""
        return RngStreams(_child_seed(self.seed, name))

    def integer_seed(self, name: str) -> int:
        """Return a bare 64-bit seed for consumers that keep their own RNG."""
        return _child_seed(self.seed, name)

    # ------------------------------------------------------------------
    # State capture / restore (checkpointing)
    # ------------------------------------------------------------------
    def stream_state(self, name: str) -> Dict[str, Any]:
        """Return the bit-generator state of one named stream.

        The state is the plain-data dict numpy exposes (PCG64: ints and a
        string tag only), so it survives a JSON round trip unchanged.
        """
        return self.get(name).bit_generator.state

    def set_stream_state(self, name: str, state: Dict[str, Any]) -> None:
        """Restore one named stream's bit-generator state *in place*.

        The existing ``Generator`` object is mutated rather than replaced so
        components holding a reference to it (trackers, policies) observe
        the restored state.
        """
        self.get(name).bit_generator.state = state

    def getstate(self) -> Dict[str, Any]:
        """Snapshot the root seed and every materialised stream's state.

        Streams not yet created are omitted on purpose: they are derived
        deterministically from ``seed`` on first use, so a restored registry
        recreates them identically on demand.
        """
        return {
            "seed": self.seed,
            "streams": {
                name: self._streams[name].bit_generator.state
                for name in sorted(self._streams)
            },
        }

    def setstate(self, state: Dict[str, Any]) -> None:
        """Restore a :meth:`getstate` snapshot, mutating streams in place."""
        self.seed = int(state["seed"])
        for name, gen_state in state["streams"].items():
            self.set_stream_state(name, gen_state)
