"""Deterministic, named random-number streams.

Every stochastic component of the simulator (MINT slot selection, Fractal
Mitigation distances, cipher keys, trace generation) draws from its own child
stream of a single root seed, so a simulation is exactly reproducible and
adding a new consumer never perturbs existing ones.
"""

from __future__ import annotations

import hashlib
from typing import Dict

import numpy as np


def _child_seed(root_seed: int, name: str) -> int:
    """Derive a stable 64-bit child seed from a root seed and a name."""
    digest = hashlib.sha256(f"{root_seed}/{name}".encode()).digest()
    return int.from_bytes(digest[:8], "little")


class RngStreams:
    """A registry of named ``numpy.random.Generator`` streams.

    >>> streams = RngStreams(seed=7)
    >>> a = streams.get("mint/bank0")
    >>> b = streams.get("mint/bank0")
    >>> a is b
    True
    """

    def __init__(self, seed: int = 0):
        self.seed = int(seed)
        self._streams: Dict[str, np.random.Generator] = {}

    def get(self, name: str) -> np.random.Generator:
        """Return (creating on first use) the stream for ``name``."""
        stream = self._streams.get(name)
        if stream is None:
            stream = np.random.default_rng(_child_seed(self.seed, name))
            self._streams[name] = stream
        return stream

    def spawn(self, name: str) -> "RngStreams":
        """Return an independent registry rooted at a child of this seed."""
        return RngStreams(_child_seed(self.seed, name))

    def integer_seed(self, name: str) -> int:
        """Return a bare 64-bit seed for consumers that keep their own RNG."""
        return _child_seed(self.seed, name)
