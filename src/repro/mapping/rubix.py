"""Rubix randomized memory mapping [42].

Rubix encrypts the line address with a low-latency block cipher and uses the
encrypted address to access memory. Any spatial correlation in the program's
access stream is destroyed, so the probability that an access conflicts with
the Subarray-Under-Mitigation is ~1/subarrays regardless of the access
pattern. The price is lost row-buffer locality (~18 % more activations), paid
back in bank-level parallelism.
"""

from __future__ import annotations

from repro.mapping.base import LineLocation, MemoryMapping
from repro.mapping.kcipher import KCipher
from repro.sim.config import SystemConfig


class RubixMapping(MemoryMapping):
    """Encrypt the line address, then place it with the Zen decomposition.

    The post-cipher decomposition is irrelevant to randomness (the cipher
    output is already uniform); reusing the Zen bit slicing keeps the two
    mappings directly comparable.
    """

    extra_latency = KCipher.LATENCY_CYCLES

    def __init__(self, config: SystemConfig, key: int = 0x5EED):
        super().__init__(config)
        self.cipher = KCipher(domain=config.total_lines, key=key)

    def locate(self, line_addr: int) -> LineLocation:
        self._check_range(line_addr)
        return self._decompose(self.cipher.encrypt(line_addr))

    def line_for(self, location: LineLocation) -> int:
        """Inverse mapping — only computable with the cipher key.

        The simulator's attacker harness uses this to model the *strongest*
        adversary (one who knows the mapping, per the threat model); a real
        attacker without the key cannot aim at rows under Rubix.
        """
        return self.cipher.decrypt(self._compose(location))

    def inverse(self, location_line: int) -> int:
        """Recover the original line address of an encrypted line index."""
        return self.cipher.decrypt(location_line)
