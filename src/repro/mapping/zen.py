"""AMD-Zen-style baseline mapping (Table IV, "AMD Zen Mapping").

As the paper describes it: the mapping "exploits bank-level parallelism by
keeping two lines of a 4 KB page in the same bank and distributing the page
across 32 banks". Consecutive line pairs therefore land in the same bank row
(row-buffer hits), and a 4 KB page touches every bank of a subchannel once.
"""

from __future__ import annotations

from repro.mapping.base import LineLocation, MemoryMapping


class ZenMapping(MemoryMapping):
    """Direct bit-sliced mapping with Zen's page-striping property."""

    extra_latency = 0

    def locate(self, line_addr: int) -> LineLocation:
        self._check_range(line_addr)
        return self._decompose(line_addr)

    def line_for(self, location: LineLocation) -> int:
        return self._compose(location)
