"""A bit-length-parameterizable block cipher in the spirit of K-cipher [24].

Rubix only requires a keyed pseudo-random *permutation* of the line-address
space with good diffusion and low latency; the exact K-cipher construction is
proprietary-adjacent, so we substitute a 4-round balanced Feistel network with
a multiply-xor-shift round function. Domains that are not a power of four are
handled by cycle-walking, which preserves bijectivity on ``[0, domain)``.
"""

from __future__ import annotations

from typing import List

_MASK64 = (1 << 64) - 1
_GOLDEN = 0x9E3779B97F4A7C15


def _mix(value: int, key: int, mask: int) -> int:
    """One keyed mixing step: multiply-xor-shift, truncated to ``mask``."""
    x = (value * _GOLDEN + key) & _MASK64
    x ^= x >> 29
    x = (x * 0xBF58476D1CE4E5B9) & _MASK64
    x ^= x >> 32
    return x & mask


class KCipher:
    """Keyed permutation of ``[0, domain)``.

    >>> cipher = KCipher(domain=1 << 20, key=42)
    >>> sorted(cipher.encrypt(i) for i in range(100))[:3]  # doctest: +SKIP
    """

    #: Modeled encryption latency in CPU cycles (the paper's K-cipher takes
    #: 3 cycles).
    LATENCY_CYCLES = 3

    ROUNDS = 4

    def __init__(self, domain: int, key: int):
        if domain < 2:
            raise ValueError("domain must be at least 2")
        self.domain = domain
        # Feistel width: smallest even bit count covering the domain.
        bits = max(2, (domain - 1).bit_length())
        if bits % 2:
            bits += 1
        self._bits = bits
        self._half_bits = bits // 2
        self._half_mask = (1 << self._half_bits) - 1
        self._round_keys: List[int] = [
            _mix(key, round_index * 0x6C8E9CF570932BD5, _MASK64)
            for round_index in range(self.ROUNDS)
        ]

    # ------------------------------------------------------------------
    def _feistel(self, value: int, keys: List[int]) -> int:
        left = (value >> self._half_bits) & self._half_mask
        right = value & self._half_mask
        for key in keys:
            left, right = right, left ^ _mix(right, key, self._half_mask)
        return (left << self._half_bits) | right

    def _feistel_inverse(self, value: int, keys: List[int]) -> int:
        left = (value >> self._half_bits) & self._half_mask
        right = value & self._half_mask
        for key in reversed(keys):
            left, right = right ^ _mix(left, key, self._half_mask), left
        return (left << self._half_bits) | right

    # ------------------------------------------------------------------
    def encrypt(self, plaintext: int) -> int:
        """Encrypt ``plaintext``; the result is again in ``[0, domain)``."""
        if not 0 <= plaintext < self.domain:
            raise ValueError(f"plaintext {plaintext} outside [0, {self.domain})")
        value = self._feistel(plaintext, self._round_keys)
        while value >= self.domain:  # cycle-walk back into the domain
            value = self._feistel(value, self._round_keys)
        return value

    def decrypt(self, ciphertext: int) -> int:
        """Invert :meth:`encrypt`."""
        if not 0 <= ciphertext < self.domain:
            raise ValueError(f"ciphertext {ciphertext} outside [0, {self.domain})")
        value = self._feistel_inverse(ciphertext, self._round_keys)
        while value >= self.domain:
            value = self._feistel_inverse(value, self._round_keys)
        return value
