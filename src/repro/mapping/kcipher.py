"""A bit-length-parameterizable block cipher in the spirit of K-cipher [24].

Rubix only requires a keyed pseudo-random *permutation* of the line-address
space with good diffusion and low latency; the exact K-cipher construction is
proprietary-adjacent, so we substitute a 4-round balanced Feistel network with
a multiply-xor-shift round function. Domains that are not a power of four are
handled by cycle-walking, which preserves bijectivity on ``[0, domain)``.
"""

from __future__ import annotations

from typing import List

import numpy as np

_MASK64 = (1 << 64) - 1
_GOLDEN = 0x9E3779B97F4A7C15
_MIX2 = 0xBF58476D1CE4E5B9


def _mix(value: int, key: int, mask: int) -> int:
    """One keyed mixing step: multiply-xor-shift, truncated to ``mask``."""
    x = (value * _GOLDEN + key) & _MASK64
    x ^= x >> 29
    x = (x * _MIX2) & _MASK64
    x ^= x >> 32
    return x & mask


def _mix_array(values: np.ndarray, key: int, mask: int) -> np.ndarray:
    """Vector twin of :func:`_mix` on a uint64 array.

    uint64 multiplication and addition wrap modulo 2**64 in numpy, which
    is exactly the ``& _MASK64`` truncation of the scalar step, so the two
    paths agree bit for bit.
    """
    x = values * np.uint64(_GOLDEN) + np.uint64(key)
    x ^= x >> np.uint64(29)
    x *= np.uint64(_MIX2)
    x ^= x >> np.uint64(32)
    return x & np.uint64(mask)


class KCipher:
    """Keyed permutation of ``[0, domain)``.

    >>> cipher = KCipher(domain=1 << 20, key=42)
    >>> sorted(cipher.encrypt(i) for i in range(100))[:3]  # doctest: +SKIP
    """

    #: Modeled encryption latency in CPU cycles (the paper's K-cipher takes
    #: 3 cycles).
    LATENCY_CYCLES = 3

    ROUNDS = 4

    def __init__(self, domain: int, key: int):
        if domain < 2:
            raise ValueError("domain must be at least 2")
        self.domain = domain
        # Feistel width: smallest even bit count covering the domain.
        bits = max(2, (domain - 1).bit_length())
        if bits % 2:
            bits += 1
        self._bits = bits
        self._half_bits = bits // 2
        self._half_mask = (1 << self._half_bits) - 1
        self._round_keys: List[int] = [
            _mix(key, round_index * 0x6C8E9CF570932BD5, _MASK64)
            for round_index in range(self.ROUNDS)
        ]

    # ------------------------------------------------------------------
    def _feistel(self, value: int, keys: List[int]) -> int:
        left = (value >> self._half_bits) & self._half_mask
        right = value & self._half_mask
        for key in keys:
            left, right = right, left ^ _mix(right, key, self._half_mask)
        return (left << self._half_bits) | right

    def _feistel_inverse(self, value: int, keys: List[int]) -> int:
        left = (value >> self._half_bits) & self._half_mask
        right = value & self._half_mask
        for key in reversed(keys):
            left, right = right ^ _mix(left, key, self._half_mask), left
        return (left << self._half_bits) | right

    # ------------------------------------------------------------------
    def encrypt(self, plaintext: int) -> int:
        """Encrypt ``plaintext``; the result is again in ``[0, domain)``."""
        if not 0 <= plaintext < self.domain:
            raise ValueError(f"plaintext {plaintext} outside [0, {self.domain})")
        value = self._feistel(plaintext, self._round_keys)
        while value >= self.domain:  # cycle-walk back into the domain
            value = self._feistel(value, self._round_keys)
        return value

    def decrypt(self, ciphertext: int) -> int:
        """Invert :meth:`encrypt`."""
        if not 0 <= ciphertext < self.domain:
            raise ValueError(f"ciphertext {ciphertext} outside [0, {self.domain})")
        value = self._feistel_inverse(ciphertext, self._round_keys)
        while value >= self.domain:
            value = self._feistel_inverse(value, self._round_keys)
        return value

    # ------------------------------------------------------------------
    # Array forms: the same permutation over whole numpy vectors.
    # ------------------------------------------------------------------
    def _feistel_array(self, values: np.ndarray, keys: List[int]) -> np.ndarray:
        half_bits = np.uint64(self._half_bits)
        half_mask = np.uint64(self._half_mask)
        left = (values >> half_bits) & half_mask
        right = values & half_mask
        for key in keys:
            left, right = right, left ^ _mix_array(right, key, self._half_mask)
        return (left << half_bits) | right

    def _feistel_inverse_array(
        self, values: np.ndarray, keys: List[int]
    ) -> np.ndarray:
        half_bits = np.uint64(self._half_bits)
        half_mask = np.uint64(self._half_mask)
        left = (values >> half_bits) & half_mask
        right = values & half_mask
        for key in reversed(keys):
            left, right = right ^ _mix_array(left, key, self._half_mask), left
        return (left << half_bits) | right

    def _walk_array(self, values: np.ndarray, feistel) -> np.ndarray:
        """Apply ``feistel`` with per-element cycle-walking back into the
        domain (each element walks independently, exactly as the scalar
        ``while`` loop does)."""
        out = feistel(values, self._round_keys)
        pending = np.flatnonzero(out >= np.uint64(self.domain))
        while pending.size:
            walked = feistel(out[pending], self._round_keys)
            out[pending] = walked
            pending = pending[walked >= np.uint64(self.domain)]
        return out

    def _check_domain(self, arr: np.ndarray, label: str) -> np.ndarray:
        if arr.ndim != 1:
            raise ValueError(f"{label}s must be a 1-D array")
        if arr.size and (int(arr.min()) < 0 or int(arr.max()) >= self.domain):
            raise ValueError(f"{label}s outside [0, {self.domain})")
        return arr.astype(np.uint64)

    def encrypt_array(self, plaintexts) -> np.ndarray:
        """Vectorized :meth:`encrypt`: element-wise identical results.

        Accepts any 1-D integer array-like; returns ``int64`` (row indices
        are used for fancy indexing downstream). Bijective on
        ``[0, domain)`` for non-power-of-four domains too, thanks to the
        per-element cycle walk.
        """
        values = self._check_domain(np.asarray(plaintexts), "plaintext")
        return self._walk_array(values, self._feistel_array).astype(np.int64)

    def decrypt_array(self, ciphertexts) -> np.ndarray:
        """Vectorized :meth:`decrypt` (inverse of :meth:`encrypt_array`)."""
        values = self._check_domain(np.asarray(ciphertexts), "ciphertext")
        return self._walk_array(
            values, self._feistel_inverse_array
        ).astype(np.int64)
