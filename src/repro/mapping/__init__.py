"""Physical memory mappings: line address -> (subchannel, bank, row, column).

Two mappings from the paper:

* :class:`ZenMapping` — the AMD-Zen-style baseline that keeps two lines of a
  4 KB page in the same bank row and stripes the page across 32 banks.
* :class:`RubixMapping` — randomized mapping: the line address is first
  encrypted with a low-latency block cipher (:mod:`repro.mapping.kcipher`),
  breaking all spatial correlation between accesses and subarrays.
"""

from repro.mapping.base import LineLocation, MemoryMapping
from repro.mapping.kcipher import KCipher
from repro.mapping.rubix import RubixMapping
from repro.mapping.zen import ZenMapping

__all__ = [
    "LineLocation",
    "MemoryMapping",
    "KCipher",
    "RubixMapping",
    "ZenMapping",
]
