"""Mapping interface shared by all physical memory mappings."""

from __future__ import annotations

import abc
from dataclasses import dataclass

from repro.sim.config import SystemConfig


@dataclass(frozen=True)
class LineLocation:
    """Physical location of one 64 B line.

    ``bank`` is local to the subchannel; ``flat_bank`` is the global bank
    index used for statistics. ``column`` indexes lines within the row.
    """

    subchannel: int
    bank: int
    row: int
    column: int

    def flat_bank(self, banks_per_subchannel: int) -> int:
        """Global bank index across subchannels (for statistics)."""
        return self.subchannel * banks_per_subchannel + self.bank


class MemoryMapping(abc.ABC):
    """Maps a physical line address to its DRAM location.

    A mapping must be a bijection from ``[0, config.total_lines)`` onto the
    full set of (subchannel, bank, row, column) tuples: trackers and the
    Rowhammer attack analysis both depend on distinct lines never aliasing.
    """

    #: Extra request latency introduced by the mapping, in CPU cycles
    #: (e.g. the Rubix cipher's 3-cycle address encryption).
    extra_latency: int = 0

    def __init__(self, config: SystemConfig):
        config.validate()
        self.config = config
        # locate() runs once per memory request; resolve the geometry
        # constants out of the config's computed properties up front.
        self._total_lines = config.total_lines
        self._lines_per_row = config.lines_per_row
        self._banks_per_sc = config.banks_per_subchannel
        self._num_subchannels = config.num_subchannels

    @abc.abstractmethod
    def locate(self, line_addr: int) -> LineLocation:
        """Return the location of ``line_addr``."""

    @abc.abstractmethod
    def line_for(self, location: LineLocation) -> int:
        """Inverse of :meth:`locate`: the line address at ``location``.

        Adversarial analysis needs this: a Rowhammer attacker targets
        specific *rows*, so attack-trace generation must construct the line
        addresses that land there (trivial under Zen; requires the cipher
        key under Rubix, which is why randomization also raises the bar for
        attackers that cannot read the mapping).
        """

    def subarray_of(self, location: LineLocation) -> int:
        """Subarray index (within the bank) holding ``location``'s row."""
        return self.config.subarray_of_row(location.row)

    def _check_range(self, line_addr: int) -> None:
        if not 0 <= line_addr < self._total_lines:
            raise ValueError(
                f"line address {line_addr} outside "
                f"[0, {self._total_lines})"
            )

    def _decompose(self, scrambled: int) -> LineLocation:
        """Zen-style bit decomposition of a (possibly encrypted) line address.

        Layout of the 4 KB page (64 lines): two consecutive lines share a
        bank row, and the line-pairs stripe across the banks of a
        subchannel (with the Table IV geometry, 32 pairs over 32 banks, so
        each page leaves exactly two lines per bank). The page number
        selects the subchannel, the column group within the row, and the
        row. The mapping is a bijection for any geometry where the pair
        count per page is a multiple of the bank count (``validate``
        enforces this).
        """
        lines_per_row = self._lines_per_row
        offset = scrambled % lines_per_row
        page = scrambled // lines_per_row

        col_low = offset & 1
        pair = offset >> 1
        banks = self._banks_per_sc
        bank = pair % banks
        leftover = pair // banks  # extra pairs of this page in the same bank

        subchannel = page % self._num_subchannels
        page //= self._num_subchannels

        page_group = page % banks
        row = page // banks

        column = (leftover * banks + page_group) * 2 + col_low
        return LineLocation(subchannel=subchannel, bank=bank, row=row, column=column)

    def _compose(self, location: LineLocation) -> int:
        """Inverse of :meth:`_decompose` (returns the pre-cipher address)."""
        cfg = self.config
        banks = cfg.banks_per_subchannel
        if not 0 <= location.subchannel < cfg.num_subchannels:
            raise ValueError(f"subchannel {location.subchannel} out of range")
        if not 0 <= location.bank < banks:
            raise ValueError(f"bank {location.bank} out of range")
        if not 0 <= location.row < cfg.rows_per_bank:
            raise ValueError(f"row {location.row} out of range")
        if not 0 <= location.column < cfg.lines_per_row:
            raise ValueError(f"column {location.column} out of range")

        col_low = location.column & 1
        col_group = location.column >> 1
        leftover = col_group // banks
        page_group = col_group % banks
        offset = (leftover * banks + location.bank) * 2 + col_low
        page = (location.row * banks + page_group) * cfg.num_subchannels
        page += location.subchannel
        return page * cfg.lines_per_row + offset
