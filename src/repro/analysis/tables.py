"""Plain-text renderers for benchmark output (tables and series)."""

from __future__ import annotations

from typing import Iterable, List, Sequence, Tuple


def render_table(
    headers: Sequence[str], rows: Iterable[Sequence[object]], title: str = ""
) -> str:
    """Render an aligned ASCII table; floats get 4 significant digits."""
    formatted: List[List[str]] = [[_fmt(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in formatted:
        if len(row) != len(headers):
            raise ValueError("row width does not match headers")
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def line(cells: Sequence[str]) -> str:
        return "  ".join(cell.rjust(widths[i]) for i, cell in enumerate(cells))

    out = []
    if title:
        out.append(title)
    out.append(line(headers))
    out.append(line(["-" * w for w in widths]))
    out.extend(line(row) for row in formatted)
    return "\n".join(out)


def render_series(
    name: str, points: Iterable[Tuple[object, object]], unit: str = ""
) -> str:
    """Render an (x, y) series as one labelled line per point."""
    suffix = f" {unit}" if unit else ""
    lines = [f"{name}:"]
    lines.extend(f"  {_fmt(x)} -> {_fmt(y)}{suffix}" for x, y in points)
    return "\n".join(lines)


def _fmt(value: object) -> str:
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, float):
        if value != 0 and abs(value) < 0.01:
            return f"{value:.2e}"
        return f"{value:.4g}"
    return str(value)
