"""Multi-seed statistics: confidence intervals for simulation metrics.

Simulation results are stochastic (trace generation, MINT slot choices,
cipher keys all derive from the seed). For publication-grade numbers a
metric should be reported as mean +- a confidence half-width over seeds;
:func:`seed_study` runs the replicas and :func:`summarize` does the math
(Student-t, no scipy dependency — the t-quantiles for small n are
tabulated).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, List, Sequence

#: Two-sided 95 % Student-t quantiles by degrees of freedom (1..30).
_T_95 = {
    1: 12.706, 2: 4.303, 3: 3.182, 4: 2.776, 5: 2.571, 6: 2.447,
    7: 2.365, 8: 2.306, 9: 2.262, 10: 2.228, 11: 2.201, 12: 2.179,
    13: 2.160, 14: 2.145, 15: 2.131, 16: 2.120, 17: 2.110, 18: 2.101,
    19: 2.093, 20: 2.086, 25: 2.060, 30: 2.042,
}


def t_quantile_95(dof: int) -> float:
    """Two-sided 95 % t quantile (1.96 asymptotically)."""
    if dof < 1:
        raise ValueError("degrees of freedom must be >= 1")
    if dof in _T_95:
        return _T_95[dof]
    keys = sorted(_T_95)
    for key in keys:
        if dof < key:
            return _T_95[key]
    return 1.96


@dataclass(frozen=True)
class MetricSummary:
    """Mean, spread, and a 95 % confidence half-width over replicas."""

    mean: float
    stdev: float
    ci95: float
    n: int
    values: tuple

    @property
    def low(self) -> float:
        return self.mean - self.ci95

    @property
    def high(self) -> float:
        return self.mean + self.ci95

    def overlaps(self, other: "MetricSummary") -> bool:
        """True when the two 95 % intervals overlap (difference not
        resolvable at this replication level)."""
        return self.low <= other.high and other.low <= self.high

    def __str__(self) -> str:
        return f"{self.mean:.4f} +- {self.ci95:.4f} (n={self.n})"


def summarize(values: Sequence[float]) -> MetricSummary:
    """Summarize replica measurements (n >= 2 for a finite interval)."""
    if not values:
        raise ValueError("no values to summarize")
    n = len(values)
    mean = sum(values) / n
    if n == 1:
        return MetricSummary(mean, 0.0, float("inf"), 1, tuple(values))
    variance = sum((v - mean) ** 2 for v in values) / (n - 1)
    stdev = math.sqrt(variance)
    ci95 = t_quantile_95(n - 1) * stdev / math.sqrt(n)
    return MetricSummary(mean, stdev, ci95, n, tuple(values))


def seed_study(
    metric: Callable[[int], float], seeds: Sequence[int]
) -> MetricSummary:
    """Evaluate ``metric(seed)`` over ``seeds`` and summarize."""
    if not seeds:
        raise ValueError("need at least one seed")
    values: List[float] = [metric(seed) for seed in seeds]
    return summarize(values)
