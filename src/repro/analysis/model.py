"""First-order analytical models of the mechanisms' costs.

These closed-form estimates exist to sanity-check the simulator (the
``bench_model_validation`` bench asserts sim and model agree to first
order) and to let users reason about operating points without running
simulations:

* :func:`rfm_bank_overhead` — fraction of bank time consumed by blocking
  RFM at a given activation rate;
* :func:`autorfm_saum_duty` — fraction of time a bank has a subarray under
  mitigation;
* :func:`autorfm_alert_rate` — expected ALERTs per ACT under a randomized
  mapping (the SAUM duty diluted over the subarrays);
* :func:`autorfm_expected_delay` — mean extra cycles per ACT from ALERT
  retries.
"""

from __future__ import annotations

from repro.sim.config import DramTiming, SystemConfig


def rfm_bank_overhead(
    acts_per_trefi: float, rfm_th: int, timing: DramTiming = DramTiming()
) -> float:
    """Fraction of bank time spent blocked by RFM commands.

    REF absorbs one RFMTH's worth of RAA per tREFI (Section II-E), so only
    the excess activations generate RFMs.
    """
    if rfm_th < 1:
        raise ValueError("rfm_th must be at least 1")
    if acts_per_trefi < 0:
        raise ValueError("acts_per_trefi must be non-negative")
    excess = max(0.0, acts_per_trefi - rfm_th)
    rfms_per_trefi = excess / rfm_th
    return rfms_per_trefi * timing.trfm_ns / timing.trefi_ns


def autorfm_saum_duty(
    acts_per_trefi: float,
    autorfm_th: int,
    timing: DramTiming = DramTiming(),
    tm_ns: float = 0.0,
) -> float:
    """Fraction of time a bank has its SAUM busy (capped at 1)."""
    if autorfm_th < 1:
        raise ValueError("autorfm_th must be at least 1")
    tm = tm_ns or 4 * timing.trc_ns
    mitigations_per_trefi = acts_per_trefi / autorfm_th
    return min(1.0, mitigations_per_trefi * tm / timing.trefi_ns)


def autorfm_alert_rate(
    acts_per_trefi: float,
    autorfm_th: int,
    subarrays: int,
    timing: DramTiming = DramTiming(),
) -> float:
    """Expected ALERTs per ACT under a randomized mapping: the probability
    that an ACT lands in the (1/subarrays) subarray that is busy."""
    if subarrays < 1:
        raise ValueError("subarrays must be at least 1")
    duty = autorfm_saum_duty(acts_per_trefi, autorfm_th, timing)
    return duty / subarrays


def autorfm_expected_delay(
    acts_per_trefi: float,
    autorfm_th: int,
    config: SystemConfig,
) -> float:
    """Mean extra CPU cycles per ACT from ALERT retries (first order).

    A conflicted ACT waits t_M before retrying; on average it arrives
    halfway through the mitigation, but the busy table holds it the full
    t_M, so the expected penalty per ACT is rate * t_M.
    """
    rate = autorfm_alert_rate(
        acts_per_trefi, autorfm_th, config.subarrays_per_bank, config.timing
    )
    return rate * 4 * config.timing.trc
