"""Tracker design space: storage vs tolerated threshold (Appendix D).

Summarizes the tracker zoo on the two axes a DRAM vendor cares about: SRAM
per bank and the TRH-D the tracker tolerates when AutoRFM provides a
mitigation every ``window`` activations. Probabilistic thresholds come from
the Appendix-A model; deterministic trackers bottom out at Fractal
Mitigation's transitive-safety bound (Appendix B).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro.security.fractal_model import fm_safe_trhd
from repro.security.mint_model import mint_tolerated_trhd
from repro.trackers import (
    GrapheneTracker,
    MintTracker,
    MithrilTracker,
    ParfmTracker,
    PrideTracker,
)
from repro.trackers.hydra import HydraTracker

#: PrIDE tolerates ~25 % higher thresholds than MINT (Section II-D).
PRIDE_PREMIUM = 1.25
#: PARFM's window buffer behaves like MINT with slightly worse tardiness.
PARFM_PREMIUM = 1.10


@dataclass(frozen=True)
class TrackerPoint:
    """One tracker's position in the design space."""

    name: str
    storage_bits_per_bank: int
    tolerated_trhd: int
    deterministic: bool

    @property
    def storage_bytes_per_bank(self) -> float:
        return self.storage_bits_per_bank / 8.0


def tracker_tradeoffs(window: int = 4) -> List[TrackerPoint]:
    """The design-space points for a mitigation window of ``window``."""
    rng = np.random.default_rng(0)
    mint_trhd = mint_tolerated_trhd(window, recursive=False)
    floor = fm_safe_trhd()

    mithril = MithrilTracker(entries=32 * 1024, rng=rng)
    graphene = GrapheneTracker(entries=2048, mitigation_count=floor, rng=rng)
    hydra = HydraTracker(rng=rng)

    return [
        TrackerPoint(
            "MINT",
            MintTracker(window=window, rng=rng).storage_bits,
            mint_trhd,
            deterministic=False,
        ),
        TrackerPoint(
            "PrIDE",
            PrideTracker(1.0 / window, rng).storage_bits,
            int(mint_trhd * PRIDE_PREMIUM),
            deterministic=False,
        ),
        TrackerPoint(
            "PARFM",
            ParfmTracker(window=window, rng=rng).storage_bits,
            int(mint_trhd * PARFM_PREMIUM),
            deterministic=False,
        ),
        TrackerPoint(
            "Mithril-32K",
            mithril.storage_bits,
            floor,
            deterministic=True,
        ),
        TrackerPoint(
            "Graphene-2K",
            graphene.storage_bits,
            floor,
            deterministic=True,
        ),
        TrackerPoint(
            "Hydra",
            hydra.storage_bits,
            floor,
            deterministic=True,
        ),
    ]


def cheapest_tracker_for(trhd_target: int, window: int = 4) -> TrackerPoint:
    """The lowest-storage tracker tolerating ``trhd_target`` or below."""
    viable = [
        p for p in tracker_tradeoffs(window) if p.tolerated_trhd <= trhd_target
    ]
    if not viable:
        raise ValueError(
            f"no tracker tolerates TRH-D {trhd_target} at window {window}"
        )
    return min(viable, key=lambda p: p.storage_bits_per_bank)
