"""Shared experiment harness for the benchmark suite.

Runs are memoized per process on (workload, setup, mapping, requests, seed)
and, underneath that, in the persistent on-disk cache of
:mod:`repro.analysis.runner` — so benchmark files that share baselines
(every slowdown needs the Zen baseline of its workload) do not recompute
them, and a re-run of the whole suite answers straight from disk.

The slice length defaults to ``REPRO_REQUESTS`` requests per core (env var,
default 2500). Slowdowns are stationary, so short slices reproduce the
paper's relative numbers; raise the env var for tighter estimates. Set
``REPRO_JOBS`` to fan batch submissions (:func:`run_many`,
:func:`slowdown_matrix`) out across worker processes.
"""

from __future__ import annotations

import os
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.analysis.runner import ExperimentRunner, Job, SetupSpec
from repro.cpu.system import SimulationResult
from repro.mc.setup import MitigationSetup
from repro.sim.config import SystemConfig
from repro.workloads.catalog import WORKLOADS

DEFAULT_REQUESTS = int(os.environ.get("REPRO_REQUESTS", "2500"))
DEFAULT_SEED = 1

_CONFIG = SystemConfig()
_run_cache: Dict[Tuple, SimulationResult] = {}
_runner: Optional[ExperimentRunner] = None


def system_config() -> SystemConfig:
    """The Table IV configuration shared by all experiments."""
    return _CONFIG


def runner() -> ExperimentRunner:
    """The shared :class:`ExperimentRunner` behind this module's helpers."""
    global _runner
    if _runner is None:
        _runner = ExperimentRunner(config=_CONFIG)
    return _runner


def run_workload(
    workload: str,
    setup: MitigationSetup,
    mapping: str = "zen",
    requests: int = None,
    seed: int = DEFAULT_SEED,
) -> SimulationResult:
    """Simulate (memoized) one workload under one configuration."""
    requests = DEFAULT_REQUESTS if requests is None else requests
    key = (workload, setup, mapping, requests, seed)
    if key not in _run_cache:
        _run_cache[key] = runner().run(
            Job(workload, setup, mapping, requests, seed)
        )
    return _run_cache[key]


def run_many(jobs: Sequence[Job]) -> List[SimulationResult]:
    """Run a batch of jobs (parallel across ``REPRO_JOBS`` workers).

    Results come back in job order and land in the same memoization the
    scalar helpers use, so a bench can batch its sweep up front and keep
    calling :func:`slowdown` for the bookkeeping afterwards for free.
    """
    results = runner().run_many(jobs)
    for job, result in zip(jobs, results):
        requests = DEFAULT_REQUESTS if job.requests is None else job.requests
        key = (job.workload, job.setup, job.mapping, requests, job.seed)
        _run_cache[key] = result
    return results


def slowdown_matrix(
    workloads: Iterable[str],
    setups: Iterable[SetupSpec],
    requests: int = None,
    seed: int = DEFAULT_SEED,
) -> Dict[str, Dict[str, float]]:
    """Batched :func:`slowdown` over workloads x setups; see the runner.

    ``setups`` rows are ``(label, setup, mapping[, baseline_mapping])``;
    returns ``{label: {workload: slowdown}}``.
    """
    return runner().slowdown_matrix(
        workloads, setups, requests=requests, seed=seed
    )


def slowdown(
    workload: str,
    setup: MitigationSetup,
    mapping: str = "zen",
    baseline_mapping: str = "zen",
    requests: int = None,
    seed: int = DEFAULT_SEED,
) -> float:
    """Fractional slowdown vs. the unmitigated baseline.

    The baseline runs the same traces with no mitigation under
    ``baseline_mapping`` (Zen, matching the paper's normalization; Fig. 17
    passes "rubix" to normalize against the Rubix baseline instead).
    """
    base = run_workload(
        workload, MitigationSetup("none"), baseline_mapping, requests, seed
    )
    run = run_workload(workload, setup, mapping, requests, seed)
    return run.slowdown_vs(base)


def workload_rows(
    metric: Callable[[str], float], workloads: Iterable[str] = None
) -> List[Tuple[str, float]]:
    """Evaluate ``metric`` per workload, returning (name, value) rows."""
    names = list(workloads) if workloads is not None else list(WORKLOADS)
    return [(name, metric(name)) for name in names]


def average(rows: Iterable[Tuple[str, float]]) -> float:
    """Unweighted mean of (name, value) rows."""
    values = [value for _, value in rows]
    if not values:
        raise ValueError("no rows to average")
    return sum(values) / len(values)


def clear_caches(disk: bool = False) -> None:
    """Drop memoized runs (tests use this to control memory).

    The persistent disk cache survives by default; pass ``disk=True`` to
    wipe it too (forcing every subsequent run to re-simulate).
    """
    _run_cache.clear()
    if disk and _runner is not None and _runner.cache is not None:
        _runner.cache.clear()
