"""Shared experiment harness for the benchmark suite.

Runs are memoized per process on (workload, setup, mapping, requests, seed),
so benchmark files that share baselines (every slowdown needs the Zen
baseline of its workload) do not recompute them.

The slice length defaults to ``REPRO_REQUESTS`` requests per core (env var,
default 2500). Slowdowns are stationary, so short slices reproduce the
paper's relative numbers; raise the env var for tighter estimates.
"""

from __future__ import annotations

import os
from typing import Callable, Dict, Iterable, List, Tuple

from repro.cpu.system import SimulationResult, simulate
from repro.mc.setup import MitigationSetup
from repro.sim.config import SystemConfig
from repro.workloads.catalog import WORKLOADS
from repro.workloads.rate import make_rate_traces

DEFAULT_REQUESTS = int(os.environ.get("REPRO_REQUESTS", "2500"))
DEFAULT_SEED = 1

_CONFIG = SystemConfig()
_run_cache: Dict[Tuple, SimulationResult] = {}
_trace_cache: Dict[Tuple, list] = {}


def system_config() -> SystemConfig:
    """The Table IV configuration shared by all experiments."""
    return _CONFIG


def _traces(workload: str, requests: int, seed: int):
    key = (workload, requests, seed)
    if key not in _trace_cache:
        _trace_cache[key] = make_rate_traces(
            WORKLOADS[workload], _CONFIG, requests=requests, seed=seed
        )
    return _trace_cache[key]


def run_workload(
    workload: str,
    setup: MitigationSetup,
    mapping: str = "zen",
    requests: int = None,
    seed: int = DEFAULT_SEED,
) -> SimulationResult:
    """Simulate (memoized) one workload under one configuration."""
    requests = DEFAULT_REQUESTS if requests is None else requests
    key = (workload, setup, mapping, requests, seed)
    if key not in _run_cache:
        _run_cache[key] = simulate(
            _traces(workload, requests, seed),
            setup,
            _CONFIG,
            mapping=mapping,
            seed=seed,
        )
    return _run_cache[key]


def slowdown(
    workload: str,
    setup: MitigationSetup,
    mapping: str = "zen",
    baseline_mapping: str = "zen",
    requests: int = None,
    seed: int = DEFAULT_SEED,
) -> float:
    """Fractional slowdown vs. the unmitigated baseline.

    The baseline runs the same traces with no mitigation under
    ``baseline_mapping`` (Zen, matching the paper's normalization; Fig. 17
    passes "rubix" to normalize against the Rubix baseline instead).
    """
    base = run_workload(
        workload, MitigationSetup("none"), baseline_mapping, requests, seed
    )
    run = run_workload(workload, setup, mapping, requests, seed)
    return run.slowdown_vs(base)


def workload_rows(
    metric: Callable[[str], float], workloads: Iterable[str] = None
) -> List[Tuple[str, float]]:
    """Evaluate ``metric`` per workload, returning (name, value) rows."""
    names = list(workloads) if workloads is not None else list(WORKLOADS)
    return [(name, metric(name)) for name in names]


def average(rows: Iterable[Tuple[str, float]]) -> float:
    """Unweighted mean of (name, value) rows."""
    values = [value for _, value in rows]
    if not values:
        raise ValueError("no rows to average")
    return sum(values) / len(values)


def clear_caches() -> None:
    """Drop memoized runs/traces (tests use this to control memory)."""
    _run_cache.clear()
    _trace_cache.clear()
