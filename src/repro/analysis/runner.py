"""Parallel experiment runner with a persistent on-disk result cache.

Every paper figure is an average over many independent ``(workload, setup,
mapping, seed)`` simulations. This module gives the benchmark suite, the
examples, and the CLI one shared way to run those sweeps:

* **Parallel fan-out** — :meth:`ExperimentRunner.run_many` distributes
  independent simulations across a :class:`~concurrent.futures.\
ProcessPoolExecutor`. The worker count comes from ``REPRO_JOBS`` (default
  ``os.cpu_count()``); ``REPRO_JOBS=1`` keeps everything in-process, which
  is the right mode for debugging and for pdb/profiling sessions.
* **Persistent caching** — results are stored as JSON under
  ``benchmarks/results/.cache/`` (override with ``REPRO_CACHE_DIR``,
  disable with ``REPRO_CACHE=0``), keyed by a stable SHA-256 hash of the
  workload, :class:`~repro.mc.setup.MitigationSetup`,
  :class:`~repro.sim.config.SystemConfig`, mapping, request count, seed,
  and a schema version. Bumping :data:`CACHE_SCHEMA_VERSION` invalidates
  every stale entry at once.

Determinism: a simulation is a pure function of its job description — each
worker builds its own :class:`~repro.sim.engine.Engine` and
:class:`~repro.sim.rng.RngStreams` from the job seed — so parallel results
are bit-identical to serial results, and ``run_many`` preserves job order.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import tempfile
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro.cpu.system import MAPPINGS, SimulationResult, simulate
from repro.mc.setup import MitigationSetup
from repro.obs import ObsConfig, ObsResult, Observability, PhaseProfiler
from repro.security.campaign import CampaignJob, run_campaign_cell
from repro.sim.config import SystemConfig
from repro.sim.stats import BankStats, CoreStats, SimStats
from repro.workloads.catalog import WORKLOADS
from repro.workloads.rate import make_rate_traces

#: Bump when the simulator's observable behaviour changes (new stats
#: fields, timing fixes, ...): every existing cache entry self-invalidates
#: because the version participates in the cache key.
#:
#: v2: the observed engine drain samples heap depth on a persistent
#: lifetime event ordinal (so checkpoint-segmented drains sample exactly
#: like straight ones), which moved the sampling points of observed runs.
CACHE_SCHEMA_VERSION = 2

#: Schema version of the *job wire format* — the plain-JSON form a
#: :class:`Job` / :class:`SecurityJob` takes when it travels out of
#: process (to the ``repro.svc`` sweep daemon, or any other scheduler).
#: Distinct from :data:`CACHE_SCHEMA_VERSION` on purpose: the cache
#: schema names result *artifacts*, the wire schema names job
#: *descriptions*. Bump whenever a field changes meaning in a way an old
#: daemon would silently misread.
JOB_WIRE_SCHEMA_VERSION = 1

DEFAULT_SEED = 1


def default_jobs() -> int:
    """Worker count: ``REPRO_JOBS`` env var, default ``os.cpu_count()``."""
    raw = os.environ.get("REPRO_JOBS")
    if raw is None:
        return os.cpu_count() or 1
    try:
        jobs = int(raw)
    except ValueError:
        raise ValueError(
            f"REPRO_JOBS must be an integer >= 1, got {raw!r}"
        ) from None
    if jobs < 1:
        raise ValueError(f"REPRO_JOBS must be >= 1, got {jobs}")
    return jobs


def default_requests() -> int:
    """Per-core request-slice length: ``REPRO_REQUESTS``, default 2500."""
    return int(os.environ.get("REPRO_REQUESTS", "2500"))


def default_cache_dir() -> str:
    """Resolve the cache directory.

    ``REPRO_CACHE_DIR`` wins; otherwise ``benchmarks/results/.cache``
    relative to the source checkout (the layout this repo ships), falling
    back to ``~/.cache/repro-autorfm`` for installed-package use.
    """
    override = os.environ.get("REPRO_CACHE_DIR")
    if override:
        return override
    here = os.path.dirname(os.path.abspath(__file__))
    repo_root = os.path.dirname(os.path.dirname(os.path.dirname(here)))
    bench_dir = os.path.join(repo_root, "benchmarks")
    if os.path.isdir(bench_dir):
        return os.path.join(bench_dir, "results", ".cache")
    return os.path.join(os.path.expanduser("~"), ".cache", "repro-autorfm")


def cache_enabled() -> bool:
    """False when ``REPRO_CACHE`` is 0/false/off."""
    return os.environ.get("REPRO_CACHE", "1").lower() not in ("0", "false", "off")


@dataclass(frozen=True)
class Job:
    """One independent simulation: what to run, not how to run it.

    ``obs`` opts the run into observability (metrics and/or tracing); the
    collected outputs come back on ``result.obs`` even when the simulation
    executed in a worker process, and participate in the cache key (an
    observed result is a different artifact than a bare one).
    """

    workload: str
    setup: MitigationSetup = MitigationSetup("none")
    mapping: str = "zen"
    requests: Optional[int] = None  # None -> the runner's default slice
    seed: int = DEFAULT_SEED
    obs: Optional[ObsConfig] = None
    #: Segment length in cycles for resumable execution: the simulation
    #: pauses at every multiple and snapshots into the result cache, so a
    #: killed sweep restarts from the last boundary instead of cycle 0.
    #: Excluded from the cache key on purpose — segmentation is an
    #: execution strategy, not part of the simulation's identity, and the
    #: results are bit-identical either way.
    segment_cycles: Optional[int] = None  # repro: key-blind[segment_cycles]
    #: Timing backend: "scalar" (the event-loop oracle) or "batch" (the
    #: fused kernel in :mod:`repro.sim.batch`, which transparently falls
    #: back to scalar for runs it does not model). Like ``segment_cycles``
    #: — and like :attr:`SecurityJob.backend` — this is an execution
    #: strategy, not part of the simulation's identity, so it is excluded
    #: from the cache key: both backends produce bit-identical results
    #: (proven by the differential suite), and a result computed by either
    #: answers for both. Segmented jobs always run scalar (the kernel does
    #: not checkpoint).
    backend: str = "scalar"  # repro: key-blind[backend]

    def __post_init__(self):
        if self.workload not in WORKLOADS:
            raise ValueError(f"unknown workload {self.workload!r}")
        if self.mapping not in MAPPINGS:
            raise ValueError(
                f"unknown mapping {self.mapping!r}; expected one of {MAPPINGS}"
            )
        if self.segment_cycles is not None and self.segment_cycles < 1:
            raise ValueError(
                f"segment_cycles must be >= 1, got {self.segment_cycles}"
            )
        if self.backend not in ("scalar", "batch"):
            raise ValueError(
                f"unknown backend {self.backend!r}; "
                f"expected one of ('scalar', 'batch')"
            )


# ----------------------------------------------------------------------
# Result (de)serialization — all stats fields are integers, so a JSON
# round-trip reproduces the result bit-for-bit.
# ----------------------------------------------------------------------
def result_to_dict(result: SimulationResult) -> dict:
    """Plain-JSON form of a :class:`SimulationResult`."""
    stats = result.stats
    out = {
        "setup": dataclasses.asdict(result.setup),
        "mapping": result.mapping,
        "seed": result.seed,
        "stats": {
            "cycles": stats.cycles,
            "refresh_windows": stats.refresh_windows,
            "max_request_alerts": stats.max_request_alerts,
            "banks": [dataclasses.asdict(b) for b in stats.banks],
            "cores": [dataclasses.asdict(c) for c in stats.cores],
        },
    }
    if result.obs is not None:
        obs = dataclasses.asdict(result.obs)
        # The wall-clock profile is quarantined out of the cache entry: it
        # differs between hosts and runs (and would report the *original*
        # run's timing on a cache hit), while cache files must be
        # byte-identical for identical simulations.
        obs["profile"] = {}
        out["obs"] = obs
    return out


def result_from_dict(data: dict) -> SimulationResult:
    """Inverse of :func:`result_to_dict`."""
    raw = data["stats"]
    stats = SimStats(
        cycles=raw["cycles"],
        refresh_windows=raw["refresh_windows"],
        max_request_alerts=raw["max_request_alerts"],
        banks=[BankStats(**b) for b in raw["banks"]],
        cores=[CoreStats(**c) for c in raw["cores"]],
    )
    obs = data.get("obs")
    return SimulationResult(
        stats=stats,
        setup=MitigationSetup(**data["setup"]),
        mapping=data["mapping"],
        seed=data["seed"],
        obs=ObsResult(**obs) if obs is not None else None,
    )


# ----------------------------------------------------------------------
# Job wire format — jobs as explicit, versioned JSON payloads.
#
# The sweep-service daemon (``repro.svc``) receives job descriptions from
# arbitrary clients over a socket; those payloads must be self-describing
# (``kind`` + ``schema``) and must round-trip through JSON losslessly, so
# a daemon-executed job computes the *same cache key* as an in-process
# one. The differential suite in tests/test_svc_service.py rests on that.
# ----------------------------------------------------------------------
def _check_wire(data: dict, kind: str) -> None:
    if not isinstance(data, dict):
        raise ValueError(f"job wire payload must be an object, got {type(data).__name__}")
    if data.get("kind") != kind:
        raise ValueError(f"expected a {kind!r} job payload, got kind={data.get('kind')!r}")
    schema = data.get("schema")
    if schema != JOB_WIRE_SCHEMA_VERSION:
        raise ValueError(
            f"unsupported job wire schema {schema!r} "
            f"(this build speaks {JOB_WIRE_SCHEMA_VERSION})"
        )


def job_to_wire(job: Job) -> dict:
    """Versioned plain-JSON form of a simulation :class:`Job`."""
    return {
        "kind": "sim",
        "schema": JOB_WIRE_SCHEMA_VERSION,
        "workload": job.workload,
        "setup": dataclasses.asdict(job.setup),
        "mapping": job.mapping,
        "requests": job.requests,
        "seed": job.seed,
        "obs": dataclasses.asdict(job.obs) if job.obs is not None else None,
        "segment_cycles": job.segment_cycles,
        "backend": job.backend,
    }


def job_from_wire(data: dict) -> Job:
    """Inverse of :func:`job_to_wire`; validates kind and schema version."""
    _check_wire(data, "sim")
    obs = data.get("obs")
    return Job(
        workload=data["workload"],
        setup=MitigationSetup(**data["setup"]),
        mapping=data["mapping"],
        requests=data.get("requests"),
        seed=data.get("seed", DEFAULT_SEED),
        obs=ObsConfig(**obs) if obs is not None else None,
        segment_cycles=data.get("segment_cycles"),
        backend=data.get("backend", "scalar"),
    )


def security_job_to_wire(job: "SecurityJob") -> dict:
    """Versioned plain-JSON form of a :class:`SecurityJob`."""
    fields = dataclasses.asdict(job)
    fields["rows"] = list(job.rows)
    fields["scenario_params"] = [list(p) for p in job.scenario_params]
    fields.update(kind="security", schema=JOB_WIRE_SCHEMA_VERSION)
    return fields


def security_job_from_wire(data: dict) -> "SecurityJob":
    """Inverse of :func:`security_job_to_wire`."""
    _check_wire(data, "security")
    fields = {
        k: v for k, v in data.items() if k not in ("kind", "schema")
    }
    unknown = set(fields) - {f.name for f in dataclasses.fields(SecurityJob)}
    if unknown:
        raise ValueError(f"unknown SecurityJob wire fields: {sorted(unknown)}")
    fields["rows"] = tuple(fields.get("rows", ()))
    fields["scenario_params"] = tuple(
        (str(name), int(value))
        for name, value in fields.get("scenario_params", ())
    )
    return SecurityJob(**fields)


def campaign_job_to_wire(job: "CampaignJob") -> dict:
    """Versioned plain-JSON form of a threshold-campaign cell job."""
    fields = dataclasses.asdict(job)
    fields["rows"] = list(job.rows)
    fields["scenario_params"] = [list(p) for p in job.scenario_params]
    fields.update(kind="campaign", schema=JOB_WIRE_SCHEMA_VERSION)
    return fields


def campaign_job_from_wire(data: dict) -> "CampaignJob":
    """Inverse of :func:`campaign_job_to_wire`."""
    _check_wire(data, "campaign")
    fields = {
        k: v for k, v in data.items() if k not in ("kind", "schema")
    }
    unknown = set(fields) - {f.name for f in dataclasses.fields(CampaignJob)}
    if unknown:
        raise ValueError(f"unknown CampaignJob wire fields: {sorted(unknown)}")
    fields["rows"] = tuple(fields.get("rows", ()))
    fields["scenario_params"] = tuple(
        (str(name), int(value))
        for name, value in fields.get("scenario_params", ())
    )
    return CampaignJob(**fields)


def any_job_to_wire(job: Union[Job, "SecurityJob", "CampaignJob"]) -> dict:
    """Wire form of any job flavour (dispatch on the dataclass)."""
    if isinstance(job, Job):
        return job_to_wire(job)
    if isinstance(job, SecurityJob):
        return security_job_to_wire(job)
    if isinstance(job, CampaignJob):
        return campaign_job_to_wire(job)
    raise TypeError(f"not a runner job: {type(job).__name__}")


def any_job_from_wire(data: dict) -> Union[Job, "SecurityJob", "CampaignJob"]:
    """Decode any job flavour (dispatch on the ``kind`` field)."""
    kind = data.get("kind") if isinstance(data, dict) else None
    if kind == "sim":
        return job_from_wire(data)
    if kind == "security":
        return security_job_from_wire(data)
    if kind == "campaign":
        return campaign_job_from_wire(data)
    raise ValueError(f"unknown job wire kind {kind!r}")


def job_key(
    job: Job,
    config: SystemConfig,
    requests: int,
    schema_version: int = CACHE_SCHEMA_VERSION,
) -> str:
    """Stable content hash identifying one simulation's full input."""
    payload = {
        "schema": schema_version,
        "workload": job.workload,
        "setup": dataclasses.asdict(job.setup),
        "config": dataclasses.asdict(config),
        "mapping": job.mapping,
        "requests": requests,
        "seed": job.seed,
    }
    if job.obs is not None:
        # Only observed jobs carry the extra key, so every pre-observability
        # cache entry stays addressable under its original hash.
        payload["obs"] = dataclasses.asdict(job.obs)
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


#: Suffix of segment snapshots stored alongside cached results (matches
#: ``repro.ckpt.snapshot.SNAPSHOT_SUFFIX``; duplicated here so the cache
#: never needs to import the checkpoint layer just to enumerate files).
_SNAPSHOT_SUFFIX = ".ckpt.gz"

#: Lockfile serializing concurrent :meth:`ResultCache.prune` calls on one
#: shared cache directory (see :class:`repro.analysis.storage.DirectoryLock`).
PRUNE_LOCK_NAME = ".prune.lock"


def cache_size_limit_bytes() -> Optional[int]:
    """Cache size bound from ``REPRO_CACHE_MAX_MB`` (None = unbounded)."""
    raw = os.environ.get("REPRO_CACHE_MAX_MB")
    if raw is None or raw == "":
        return None
    try:
        max_mb = float(raw)
    except ValueError:
        raise ValueError(
            f"REPRO_CACHE_MAX_MB must be a number, got {raw!r}"
        ) from None
    if max_mb < 0:
        raise ValueError(f"REPRO_CACHE_MAX_MB must be >= 0, got {max_mb}")
    return int(max_mb * 1024 * 1024)


class ResultCache:
    """Directory of ``<key>.json`` files, one per completed simulation,
    plus ``<key>.seg-<boundary>.ckpt.gz`` segment snapshots for resumable
    jobs.

    Writes are atomic (tempfile + rename), so concurrent benchmark
    processes sharing one cache directory can never observe a torn entry;
    a corrupt or schema-mismatched file is treated as a miss.

    The cache grows without bound by default; set ``REPRO_CACHE_MAX_MB``
    (or call :meth:`prune`) to evict least-recently-used entries — results
    and snapshots alike — until the directory fits the budget.
    """

    def __init__(self, directory: str, schema_version: int = CACHE_SCHEMA_VERSION):
        self.directory = directory
        self.schema_version = schema_version
        self.hits = 0
        self.misses = 0

    def _path(self, key: str) -> str:
        return os.path.join(self.directory, f"{key}.json")

    # ------------------------------------------------------------------
    # Segment snapshots (resumable jobs)
    # ------------------------------------------------------------------
    def snapshot_path(self, key: str, boundary: int) -> str:
        """Where the segment snapshot closing ``boundary`` lives."""
        return os.path.join(
            self.directory, f"{key}.seg-{boundary:015d}{_SNAPSHOT_SUFFIX}"
        )

    def snapshot_boundaries(self, key: str) -> List[int]:
        """Boundaries with an on-disk snapshot for ``key``, ascending."""
        prefix = f"{key}.seg-"
        boundaries = []
        try:
            names = os.listdir(self.directory)
        except OSError:
            return []
        for name in names:
            if name.startswith(prefix) and name.endswith(_SNAPSHOT_SUFFIX):
                raw = name[len(prefix):-len(_SNAPSHOT_SUFFIX)]
                try:
                    boundaries.append(int(raw))
                except ValueError:
                    continue
        return sorted(boundaries)

    def drop_snapshots(self, key: str) -> int:
        """Delete every segment snapshot for ``key``; returns the count."""
        removed = 0
        for boundary in self.snapshot_boundaries(key):
            try:
                os.unlink(self.snapshot_path(key, boundary))
                removed += 1
            except OSError:
                pass
        return removed

    # ------------------------------------------------------------------
    # Size accounting and pruning
    # ------------------------------------------------------------------
    def _entries(self) -> List[Tuple[str, int, float]]:
        """Every cache file as ``(name, bytes, mtime)``."""
        entries = []
        try:
            names = os.listdir(self.directory)
        except OSError:
            return []
        for name in names:
            if not (name.endswith(".json") or name.endswith(_SNAPSHOT_SUFFIX)):
                continue
            path = os.path.join(self.directory, name)
            try:
                stat = os.stat(path)
            except OSError:
                continue
            entries.append((name, stat.st_size, stat.st_mtime))
        return entries

    def stats(self) -> dict:
        """Occupancy summary: entry counts and bytes by kind."""
        results = snapshots = result_bytes = snapshot_bytes = 0
        for name, size, _ in self._entries():
            if name.endswith(".json"):
                results += 1
                result_bytes += size
            else:
                snapshots += 1
                snapshot_bytes += size
        return {
            "directory": self.directory,
            "results": results,
            "snapshots": snapshots,
            "result_bytes": result_bytes,
            "snapshot_bytes": snapshot_bytes,
            "total_bytes": result_bytes + snapshot_bytes,
        }

    def prune(self, max_bytes: int) -> dict:
        """Evict least-recently-used files until the cache fits
        ``max_bytes``; returns ``{"removed": n, "freed_bytes": b,
        "skipped": bool}``.

        Eviction order is file mtime (oldest first) across results and
        segment snapshots alike — a result that keeps hitting keeps its
        mtime fresh via :meth:`get`'s touch, so hot entries survive.

        Multi-client safety: concurrent pruners are serialized by an
        ``O_EXCL`` lockfile (a busy lock means another process is already
        pruning, so this call returns ``skipped=True`` and removes
        nothing), and every victim is re-``stat``-ed immediately before
        its unlink — an entry whose mtime advanced since the scan was
        hit-touched by a concurrent :meth:`get` and is spared. Together
        with :meth:`get`'s touch-*before*-read ordering this closes the
        race where a pruner deletes the entry another worker just hit.
        """
        if max_bytes < 0:
            raise ValueError(f"max_bytes must be >= 0, got {max_bytes}")
        from repro.analysis.storage import DirectoryLock

        lock = DirectoryLock(os.path.join(self.directory, PRUNE_LOCK_NAME))
        if not lock.acquire():
            return {"removed": 0, "freed_bytes": 0, "skipped": True}
        try:
            return self._prune_locked(self._entries(), max_bytes)
        finally:
            lock.release()

    def _prune_locked(
        self, entries: List[Tuple[str, int, float]], max_bytes: int
    ) -> dict:
        """The eviction walk proper, already holding the prune lock.

        Split out so the regression tests can interleave a hit between
        the scan (``entries``) and the deletions deterministically.
        """
        total = sum(size for _, size, _ in entries)
        removed = 0
        freed = 0
        for name, size, scanned_mtime in sorted(entries, key=lambda e: e[2]):
            if total - freed <= max_bytes:
                break
            path = os.path.join(self.directory, name)
            try:
                if os.stat(path).st_mtime > scanned_mtime:
                    # Hit-touched since the scan: the entry is hot again
                    # and another worker may be mid-read; spare it.
                    continue
                os.unlink(path)
            except OSError:
                continue
            removed += 1
            freed += size
        return {"removed": removed, "freed_bytes": freed, "skipped": False}

    def prune_to_limit(self) -> Optional[dict]:
        """Apply the ``REPRO_CACHE_MAX_MB`` budget (None = no limit set)."""
        limit = cache_size_limit_bytes()
        if limit is None:
            return None
        return self.prune(limit)

    def _touch(self, key: str) -> None:
        """Refresh ``key``'s mtime *before* reading it (atomic hit-touch).

        The touch-then-read ordering is what makes prune-vs-get safe for
        concurrent workers: a pruner re-stats each victim before its
        unlink, so an entry touched here is spared even if the pruner's
        scan predates the hit. (Touching a file that is about to miss —
        corrupt, stale schema — is harmless: it just survives one more
        eviction round.)
        """
        try:
            os.utime(self._path(key))
        except OSError:
            pass

    def get(self, key: str) -> Optional[SimulationResult]:
        """Look up one result; None (a miss) if absent, corrupt, or stale.

        A hit refreshes the file's mtime, which is what :meth:`prune`
        orders eviction by — entries that keep answering stay resident.
        """
        self._touch(key)
        try:
            with open(self._path(key)) as f:
                data = json.load(f)
            if data.get("schema") != self.schema_version:
                raise ValueError("schema mismatch")
            result = result_from_dict(data["result"])
        except (OSError, ValueError, KeyError, TypeError):
            self.misses += 1
            return None
        self.hits += 1
        return result

    def put(self, key: str, result: SimulationResult) -> None:
        """Store one result under ``key`` (atomic rename, crash-safe)."""
        os.makedirs(self.directory, exist_ok=True)
        payload = {"schema": self.schema_version, "result": result_to_dict(result)}
        fd, tmp = tempfile.mkstemp(dir=self.directory, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as f:
                json.dump(payload, f, separators=(",", ":"))
            os.replace(tmp, self._path(key))
        except BaseException:
            if os.path.exists(tmp):
                os.unlink(tmp)
            raise

    def get_campaign(self, key: str) -> Optional[dict]:
        """Look up one campaign cell record (the bisection's full result)."""
        self._touch(key)
        try:
            with open(self._path(key)) as f:
                data = json.load(f)
            if data.get("schema") != self.schema_version:
                raise ValueError("schema mismatch")
            raw = data["campaign"]
            if not isinstance(raw, dict):
                raise ValueError("malformed campaign entry")
        except (OSError, ValueError, KeyError, TypeError):
            self.misses += 1
            return None
        self.hits += 1
        return raw

    def put_campaign(self, key: str, result: dict) -> None:
        """Store one campaign cell record under ``key`` (atomic)."""
        os.makedirs(self.directory, exist_ok=True)
        payload = {"schema": self.schema_version, "campaign": result}
        fd, tmp = tempfile.mkstemp(dir=self.directory, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as f:
                json.dump(payload, f, separators=(",", ":"))
            os.replace(tmp, self._path(key))
        except BaseException:
            if os.path.exists(tmp):
                os.unlink(tmp)
            raise

    def get_security(self, key: str) -> Optional[List[dict]]:
        """Look up one security batch (list of per-seed stat dicts)."""
        self._touch(key)
        try:
            with open(self._path(key)) as f:
                data = json.load(f)
            if data.get("schema") != self.schema_version:
                raise ValueError("schema mismatch")
            raw = data["security"]
            if not isinstance(raw, list):
                raise ValueError("malformed security entry")
        except (OSError, ValueError, KeyError, TypeError):
            self.misses += 1
            return None
        self.hits += 1
        return raw

    def put_security(self, key: str, results: List[dict]) -> None:
        """Store one security batch under ``key`` (atomic, crash-safe)."""
        os.makedirs(self.directory, exist_ok=True)
        payload = {"schema": self.schema_version, "security": results}
        fd, tmp = tempfile.mkstemp(dir=self.directory, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as f:
                json.dump(payload, f, separators=(",", ":"))
            os.replace(tmp, self._path(key))
        except BaseException:
            if os.path.exists(tmp):
                os.unlink(tmp)
            raise

    def __len__(self) -> int:
        try:
            return sum(
                1 for n in os.listdir(self.directory) if n.endswith(".json")
            )
        except OSError:
            return 0

    def clear(self) -> int:
        """Delete every entry (results and segment snapshots); returns how
        many files were removed."""
        removed = 0
        try:
            names = os.listdir(self.directory)
        except OSError:
            return 0
        for name in names:
            if name.endswith(".json") or name.endswith(_SNAPSHOT_SUFFIX):
                try:
                    os.unlink(os.path.join(self.directory, name))
                    removed += 1
                except OSError:
                    pass
        return removed


# Worker entry point: must be a module-level function so the process pool
# can pickle it. The payload carries everything a simulation needs; traces
# are regenerated inside the worker from the seed (cheaper than pickling
# them, and identical by construction). Observability travels as the
# (picklable) ObsConfig; the live Observability object is built in the
# worker and its deterministic outputs return on ``result.obs``. The
# ``ckpt`` element is a segmentation spec (or None for a straight run);
# ``backend`` picks the timing backend for straight runs (segmented runs
# are always scalar — the fused kernel does not checkpoint).
def _execute(
    payload: Tuple[
        str, MitigationSetup, str, int, int, SystemConfig, Optional[ObsConfig],
        Optional[dict], str,
    ]
):
    (workload, setup, mapping, requests, seed, config, obs_config, ckpt,
     backend) = payload
    if ckpt is not None:
        return _execute_segmented(payload)
    traces = make_rate_traces(
        WORKLOADS[workload], config, requests=requests, seed=seed
    )
    obs = Observability(obs_config) if obs_config is not None else None
    return simulate(
        traces, setup, config, mapping=mapping, seed=seed, obs=obs,
        backend=backend,
    )


def latest_segment_snapshot(cache: ResultCache, key: str):
    """Newest loadable segment snapshot for ``key`` (corrupt ones skipped).

    This is the resume-from-segment API: segmented workers call it on
    startup to skip completed work, and the sweep-service daemon calls it
    after a worker dies to report (and resume from) the newest valid
    restore point rather than re-running the shard from cycle 0.
    """
    from repro.ckpt import SnapshotError, load_snapshot

    for boundary in reversed(cache.snapshot_boundaries(key)):
        try:
            return load_snapshot(cache.snapshot_path(key, boundary))
        except (FileNotFoundError, SnapshotError):
            continue
    return None


#: Backwards-compatible private alias (pre-service name).
_latest_segment_snapshot = latest_segment_snapshot


def build_sim_payload(
    job: Job,
    config: SystemConfig,
    requests: int,
    key: str,
    cache_dir: Optional[str] = None,
    schema_version: int = CACHE_SCHEMA_VERSION,
    resume: bool = False,
) -> tuple:
    """The picklable worker payload for one simulation job.

    Shared by :meth:`ExperimentRunner._payload` and the sweep-service
    worker spawner, so a daemon-executed job is fed to :func:`_execute`
    exactly as an in-process one would be. ``cache_dir=None`` disables
    segment snapshots (the job degrades to a straight run).
    """
    resolved = job.requests if job.requests is not None else requests
    ckpt = None
    if job.segment_cycles is not None and cache_dir is not None:
        ckpt = {
            "segment_cycles": job.segment_cycles,
            "resume": resume,
            "cache_dir": cache_dir,
            "key": key,
            "schema": schema_version,
        }
    return (
        job.workload,
        job.setup,
        job.mapping,
        resolved,
        job.seed,
        config,
        job.obs,
        ckpt,
        job.backend,
    )


def _execute_segmented(payload: tuple) -> SimulationResult:
    """Run one job in checkpointed segments, resuming if a snapshot exists.

    Each boundary snapshot lands in the result cache next to the job's
    result entry (content-addressed by the job key), so a killed sweep
    re-invoked with ``resume=True`` restarts from the last completed
    boundary. Results are bit-identical to a straight run — segmentation
    changes when the simulation pauses, never what it computes.
    """
    (workload, setup, mapping, requests, seed, config, obs_config, ckpt,
     _backend) = payload
    # Imported lazily: the checkpoint layer loads the whole simulator and
    # straight (non-segmented) runs must not pay for it.
    from repro.ckpt import capture, restore, save_snapshot
    from repro.cpu.system import SimulatedSystem

    cache = ResultCache(ckpt["cache_dir"], ckpt["schema"])
    key = ckpt["key"]

    system = None
    resumed_from = None
    if ckpt["resume"]:
        snapshot = _latest_segment_snapshot(cache, key)
        if snapshot is not None:
            system = restore(snapshot)
            resumed_from = snapshot.boundary
    if system is None:
        traces = make_rate_traces(
            WORKLOADS[workload], config, requests=requests, seed=seed
        )
        obs = Observability(obs_config) if obs_config is not None else None
        system = SimulatedSystem(
            traces, setup, config, mapping=mapping, seed=seed, obs=obs
        )
        system.start()

    captured = 0

    def on_checkpoint(sys_, boundary: int) -> None:
        nonlocal captured
        os.makedirs(cache.directory, exist_ok=True)
        save_snapshot(
            capture(sys_, boundary=boundary),
            cache.snapshot_path(key, boundary),
        )
        captured += 1

    result = system.run(
        checkpoint_every=ckpt["segment_cycles"], on_checkpoint=on_checkpoint
    )
    result.ckpt = {"captured": captured, "resumed_from": resumed_from}
    return result


# ----------------------------------------------------------------------
# Security batch jobs (vectorized Monte-Carlo attack replays)
# ----------------------------------------------------------------------
_SECURITY_ATTACKS = ("round_robin", "single_sided", "double_sided", "half_double")
_SECURITY_TRACKERS = ("mint", "mint-transitive", "graphene", "para")
_SECURITY_POLICIES = ("fractal", "blast")


@dataclass(frozen=True)
class SecurityJob:
    """One batched Monte-Carlo attack replay: S seeds x one pattern.

    Mirrors :class:`Job` for the security kernels
    (:func:`repro.security.kernels.run_attack_batch`): describes *what* to
    replay, while the runner decides parallelism and caching.  ``backend``
    is deliberately **excluded** from the cache key — the scalar and numpy
    engines produce exactly equal results (proven by the differential
    suite), so a batch computed by either backend answers for both.

    Cached entries keep the per-seed summary statistics but drop the
    per-row pressure maps (large, and derivable by re-running); results
    returned through the runner therefore always have ``pressure == {}``.
    """

    attack: str = "double_sided"
    rows: Tuple[int, ...] = (70_000,)
    acts: int = 64_000
    window: int = 4
    tracker: str = "mint"
    policy: str = "fractal"
    seeds: int = 50
    rows_per_bank: int = 128 * 1024
    blast_radius: int = 2
    refresh_interval_acts: Optional[int] = None
    #: Key for a Rubix-style static row permutation in attack space
    #: (None = identity mapping).
    rubix_key: Optional[int] = None
    #: Corpus scenario replacing the ``attack``/``rows`` generator: the
    #: pattern is compiled from the named payload
    #: (:func:`repro.payload.compile_scenario` under the ``acts`` budget),
    #: and the scenario's name, manifest version, and parameters all enter
    #: the cache key — a corpus version bump re-executes instead of
    #: answering from entries computed against the old payload.
    scenario: Optional[str] = None
    #: Manifest version of ``scenario``; auto-filled at construction. Pass
    #: it explicitly only to assert an expected corpus version.
    scenario_version: Optional[str] = None
    #: Placeholder overrides, normalized to sorted ``(name, value)`` pairs
    #: (hashable and deterministic key material). A plain dict is accepted
    #: and normalized.
    scenario_params: Tuple[Tuple[str, int], ...] = ()
    backend: str = "numpy"  # repro: key-blind[backend]

    def __post_init__(self):
        if self.scenario is not None:
            from repro.payload import load_scenario

            meta = load_scenario(self.scenario)
            if self.scenario_version is None:
                object.__setattr__(self, "scenario_version", meta.version)
            elif self.scenario_version != meta.version:
                raise ValueError(
                    f"scenario {self.scenario!r} is version {meta.version} "
                    f"in the corpus, not {self.scenario_version!r}"
                )
            declared = dict(meta.params)
            raw = (
                self.scenario_params.items()
                if isinstance(self.scenario_params, dict)
                else self.scenario_params
            )
            normalized = tuple(sorted((str(k), int(v)) for k, v in raw))
            for name, _ in normalized:
                if name not in declared:
                    raise ValueError(
                        f"scenario {self.scenario!r} declares no parameter "
                        f"{name!r} (has {sorted(declared)})"
                    )
            object.__setattr__(self, "scenario_params", normalized)
        elif self.scenario_version is not None or self.scenario_params:
            raise ValueError(
                "scenario_version/scenario_params require a scenario"
            )
        if self.attack not in _SECURITY_ATTACKS:
            raise ValueError(
                f"unknown attack {self.attack!r}; expected one of "
                f"{_SECURITY_ATTACKS}"
            )
        if self.tracker not in _SECURITY_TRACKERS:
            raise ValueError(
                f"unknown tracker {self.tracker!r}; expected one of "
                f"{_SECURITY_TRACKERS}"
            )
        if self.policy not in _SECURITY_POLICIES:
            raise ValueError(
                f"unknown policy {self.policy!r}; expected one of "
                f"{_SECURITY_POLICIES}"
            )
        if self.backend not in ("numpy", "scalar"):
            raise ValueError(f"unknown backend {self.backend!r}")
        if not self.rows:
            raise ValueError("rows must name at least one row")
        if self.seeds < 1:
            raise ValueError("seeds must be >= 1")


def security_job_key(
    job: SecurityJob, schema_version: int = CACHE_SCHEMA_VERSION
) -> str:
    """Stable content hash of a security job (``backend`` excluded: both
    backends produce the identical artifact)."""
    fields = dataclasses.asdict(job)
    fields.pop("backend")
    if fields.get("scenario") is None:
        # Only scenario jobs carry the corpus keys, so every pre-corpus
        # cache entry stays addressable under its original hash.
        fields.pop("scenario", None)
        fields.pop("scenario_version", None)
        fields.pop("scenario_params", None)
    payload = {"schema": schema_version, "kind": "security", "job": fields}
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def _security_results_to_dicts(results) -> List[dict]:
    return [
        {
            "max_pressure": r.max_pressure,
            "max_pressure_row": r.max_pressure_row,
            "activations": r.activations,
            "mitigations": r.mitigations,
            "victim_refreshes": r.victim_refreshes,
        }
        for r in results
    ]


def _security_results_from_dicts(raw: List[dict]):
    from repro.security.montecarlo import AttackResult

    return [AttackResult(**entry) for entry in raw]


def _execute_security(job: SecurityJob) -> List[dict]:
    """Worker entry point for one security batch (picklable, module-level).

    The pattern is regenerated inside the worker from the job fields (same
    convention as simulation traces: cheaper than pickling, identical by
    construction).
    """
    from repro.mapping.kcipher import KCipher
    from repro.security.kernels import (
        build_pattern,
        policy_spec_from_string,
        run_attack_batch,
        tracker_spec_from_strings,
    )

    if job.scenario is not None:
        from repro.payload import compile_scenario

        pattern = list(
            compile_scenario(
                job.scenario, params=dict(job.scenario_params), acts=job.acts
            ).rows
        )
    else:
        pattern = build_pattern(job.attack, list(job.rows), job.acts)
    cipher = (
        KCipher(job.rows_per_bank, job.rubix_key)
        if job.rubix_key is not None
        else None
    )
    results = run_attack_batch(
        [pattern],
        tracker_spec_from_strings(job.tracker, job.window),
        policy_spec_from_string(job.policy),
        window=job.window,
        seeds=job.seeds,
        rows_per_bank=job.rows_per_bank,
        blast_radius=job.blast_radius,
        refresh_interval_acts=job.refresh_interval_acts,
        row_cipher=cipher,
        backend=job.backend,
        collect_pressure=False,
    )[0]
    return _security_results_to_dicts(results)


# ----------------------------------------------------------------------
# Threshold-campaign cells (SPRT bisection; see repro.security.campaign)
# ----------------------------------------------------------------------
def campaign_job_key(
    job: CampaignJob, schema_version: int = CACHE_SCHEMA_VERSION
) -> str:
    """Stable content hash of a campaign cell.

    ``backend`` is excluded (both kernel backends produce the identical
    pool, hence the identical search). Everything else — including the
    SPRT error bounds and the chunk schedule — is key material: a cell
    probed under looser bounds is a different statistical artifact, and
    the chunk bounds govern which pool prefix each probe could have seen.
    The scenario digest pins the compiled corpus payload, so a corpus
    edit re-executes instead of answering from stale entries.
    """
    fields = dataclasses.asdict(job)
    fields.pop("backend")
    if fields.get("scenario") is None:
        fields.pop("scenario", None)
        fields.pop("scenario_version", None)
        fields.pop("scenario_digest", None)
        fields.pop("scenario_params", None)
    payload = {"schema": schema_version, "kind": "campaign", "job": fields}
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def _execute_campaign(
    payload: Tuple[CampaignJob, Optional[str], Optional[str]]
) -> dict:
    """Worker entry point for one campaign cell (picklable, module-level).

    The payload carries ``(job, cache_dir, key)``: with a cache directory
    the cell persists its seed-pool frontier there after every extension
    and resumes from a surviving frontier, so a killed campaign re-invoked
    with the same jobs picks up mid-bisection instead of from seed 0.
    """
    job, cache_dir, key = payload
    return run_campaign_cell(job, cache_dir=cache_dir, key=key)


#: A setup row for :meth:`ExperimentRunner.slowdown_matrix`:
#: ``(label, setup, mapping)`` or ``(label, setup, mapping, baseline_mapping)``.
SetupSpec = Union[
    Tuple[str, MitigationSetup, str],
    Tuple[str, MitigationSetup, str, str],
]


class ExperimentRunner:
    """Batch-run simulations with caching and optional parallelism.

    ``jobs=None`` re-reads ``REPRO_JOBS`` on every batch, so tests and
    benchmark drivers can flip the env var without rebuilding the runner.
    """

    def __init__(
        self,
        config: Optional[SystemConfig] = None,
        jobs: Optional[int] = None,
        cache_dir: Optional[str] = None,
        use_cache: Optional[bool] = None,
        schema_version: int = CACHE_SCHEMA_VERSION,
        requests: Optional[int] = None,
    ):
        self.config = config if config is not None else SystemConfig()
        if jobs is not None and jobs < 1:
            raise ValueError(f"jobs must be >= 1 (1 = serial), got {jobs}")
        self._jobs = jobs
        self._requests = requests
        self.schema_version = schema_version
        if use_cache is None:
            use_cache = cache_enabled()
        self.cache: Optional[ResultCache] = (
            ResultCache(cache_dir or default_cache_dir(), schema_version)
            if use_cache
            else None
        )
        #: Simulations actually executed (not answered from cache).
        self.simulations_run = 0
        #: Wall-clock profile of every batch this runner served: phase
        #: timings ("plan" = dedup + cache lookup, "execute" = simulation
        #: fan-out) plus cumulative job/cache counts. Informational only —
        #: see :meth:`profile_snapshot` for the exported form.
        self.profile = PhaseProfiler()

    # ------------------------------------------------------------------
    @property
    def jobs(self) -> int:
        return self._jobs if self._jobs is not None else default_jobs()

    @property
    def requests(self) -> int:
        return (
            self._requests if self._requests is not None else default_requests()
        )

    @property
    def cache_hits(self) -> int:
        return self.cache.hits if self.cache is not None else 0

    @property
    def cache_misses(self) -> int:
        return self.cache.misses if self.cache is not None else 0

    def key_for(self, job: Job) -> str:
        """This runner's cache key for ``job`` (resolving default requests)."""
        return job_key(
            job,
            self.config,
            job.requests if job.requests is not None else self.requests,
            self.schema_version,
        )

    def profile_snapshot(self) -> dict:
        """Wall-clock profile of this runner's batches, with provenance
        (schema version, worker count, config hash) so exported numbers
        can always be traced back to what produced them."""
        config_json = json.dumps(
            dataclasses.asdict(self.config), sort_keys=True,
            separators=(",", ":"),
        )
        return self.profile.snapshot(provenance={
            "cache_schema_version": self.schema_version,
            "jobs": self.jobs,
            "requests": self.requests,
            "config_sha256": hashlib.sha256(
                config_json.encode("utf-8")
            ).hexdigest(),
            "cache_enabled": self.cache is not None,
        })

    # ------------------------------------------------------------------
    def run(self, job: Job, resume: bool = False) -> SimulationResult:
        """Run (or fetch) a single job."""
        return self.run_many([job], resume=resume)[0]

    def run_many(
        self, jobs: Sequence[Job], resume: bool = False
    ) -> List[SimulationResult]:
        """Run a batch of jobs; returns results in job order.

        Duplicate jobs (every slowdown shares its workload's baseline) are
        simulated once; cache hits never reach the pool. Misses fan out
        across ``self.jobs`` worker processes.

        ``resume=True`` lets jobs with ``segment_cycles`` restart from
        their newest on-disk segment snapshot instead of cycle 0 — the
        recovery path after a killed sweep. Jobs whose *result* is already
        cached are unaffected (the cache answers first).
        """
        jobs = list(jobs)
        results: List[Optional[SimulationResult]] = [None] * len(jobs)

        with self.profile.phase("plan"):
            # Deduplicate by cache key, then answer what the cache can.
            order: List[str] = []  # unique keys, first-seen order
            indices: Dict[str, List[int]] = {}
            payloads: Dict[str, tuple] = {}
            for i, job in enumerate(jobs):
                key = self.key_for(job)
                if key not in indices:
                    order.append(key)
                    indices[key] = []
                    payloads[key] = self._payload(job, key, resume)
                indices[key].append(i)

            pending: List[str] = []
            for key in order:
                cached = self.cache.get(key) if self.cache is not None else None
                if cached is not None:
                    for i in indices[key]:
                        results[i] = cached
                else:
                    pending.append(key)

        with self.profile.phase("execute"):
            executed = self._execute_batch(
                [payloads[key] for key in pending]
            )
        for key, result in zip(pending, executed):
            if self.cache is not None:
                self.cache.put(key, result)
            for i in indices[key]:
                results[i] = result

        self.profile.count("jobs", len(jobs))
        self.profile.count("unique_jobs", len(order))
        self.profile.count("executed", len(pending))
        self.profile.set_count("cache_hits", self.cache_hits)
        self.profile.set_count("cache_misses", self.cache_misses)
        captures = sum(
            r.ckpt["captured"] for r in executed if r.ckpt is not None
        )
        resumes = sum(
            1 for r in executed
            if r.ckpt is not None and r.ckpt["resumed_from"] is not None
        )
        if captures:
            self.profile.count("ckpt_captures", captures)
        if resumes:
            self.profile.count("ckpt_resumes", resumes)
        if self.cache is not None:
            self.cache.prune_to_limit()

        return results  # type: ignore[return-value]

    def _payload(self, job: Job, key: str, resume: bool = False) -> tuple:
        # Segment snapshots are content-addressed into the result cache;
        # without a cache there is nowhere to persist them, so the job
        # degrades to a straight run (results are identical).
        return build_sim_payload(
            job,
            self.config,
            self.requests,
            key,
            cache_dir=self.cache.directory if self.cache is not None else None,
            schema_version=self.schema_version,
            resume=resume,
        )

    def _execute_batch(self, payloads: List[tuple]) -> List[SimulationResult]:
        if not payloads:
            return []
        self.simulations_run += len(payloads)
        workers = min(self.jobs, len(payloads))
        if workers <= 1:
            return [_execute(p) for p in payloads]
        with ProcessPoolExecutor(max_workers=workers) as pool:
            return list(pool.map(_execute, payloads))

    # ------------------------------------------------------------------
    # Security batches (vectorized Monte-Carlo attack replays)
    # ------------------------------------------------------------------
    def security_key_for(self, job: SecurityJob) -> str:
        """This runner's cache key for a security batch (backend-blind)."""
        return security_job_key(job, self.schema_version)

    def run_security(self, job: SecurityJob) -> List["AttackResult"]:
        """Run (or fetch) one security batch: per-seed attack results."""
        return self.run_security_many([job])[0]

    def run_security_many(
        self, jobs: Sequence[SecurityJob]
    ) -> List[List["AttackResult"]]:
        """Run security batches; returns per-job lists of per-seed results.

        Same shape as :meth:`run_many`: duplicates (and scalar/numpy twins
        of the same job — the backend is not part of the key) collapse to
        one execution, cache hits never reach the pool, and misses fan out
        across ``REPRO_JOBS`` workers one *batch* per worker (each batch is
        already vectorized over its seeds, so the job is the right
        parallel grain). Results carry ``pressure == {}``; use
        :func:`repro.security.kernels.run_attack_batch` directly when the
        per-row pressure map matters.
        """
        jobs = list(jobs)
        results: List[Optional[List[dict]]] = [None] * len(jobs)

        with self.profile.phase("plan"):
            order: List[str] = []
            indices: Dict[str, List[int]] = {}
            by_key: Dict[str, SecurityJob] = {}
            for i, job in enumerate(jobs):
                key = self.security_key_for(job)
                if key not in indices:
                    order.append(key)
                    indices[key] = []
                    by_key[key] = job
                indices[key].append(i)

            pending: List[str] = []
            for key in order:
                cached = (
                    self.cache.get_security(key)
                    if self.cache is not None else None
                )
                if cached is not None:
                    for i in indices[key]:
                        results[i] = cached
                else:
                    pending.append(key)

        with self.profile.phase("execute"):
            todo = [by_key[key] for key in pending]
            if not todo:
                executed: List[List[dict]] = []
            else:
                workers = min(self.jobs, len(todo))
                if workers <= 1:
                    executed = [_execute_security(j) for j in todo]
                else:
                    with ProcessPoolExecutor(max_workers=workers) as pool:
                        executed = list(pool.map(_execute_security, todo))
        for key, raw in zip(pending, executed):
            if self.cache is not None:
                self.cache.put_security(key, raw)
            for i in indices[key]:
                results[i] = raw

        self.profile.count("security_jobs", len(jobs))
        self.profile.count("security_executed", len(pending))
        self.profile.set_count("cache_hits", self.cache_hits)
        self.profile.set_count("cache_misses", self.cache_misses)
        if self.cache is not None:
            self.cache.prune_to_limit()

        return [
            _security_results_from_dicts(raw)  # type: ignore[arg-type]
            for raw in results
        ]

    # ------------------------------------------------------------------
    # Threshold-campaign cells (SPRT bisection over the batched kernels)
    # ------------------------------------------------------------------
    def campaign_key_for(self, job: CampaignJob) -> str:
        """This runner's cache key for a campaign cell (backend-blind)."""
        return campaign_job_key(job, self.schema_version)

    def run_campaign(self, job: CampaignJob) -> dict:
        """Run (or fetch) one campaign cell's threshold search."""
        return self.run_campaign_many([job])[0]

    def run_campaign_many(self, jobs: Sequence[CampaignJob]) -> List[dict]:
        """Run campaign cells; returns per-cell result records in order.

        Same shape as :meth:`run_security_many`: duplicates collapse to
        one search, cached cells never reach the pool, and misses fan out
        one *cell* per worker (each cell's probes are sequential by
        construction — later probes reuse the pool earlier probes grew —
        so the cell is the parallel grain). Cells given a cache also
        persist their seed-pool frontier there mid-search, making a
        killed campaign resumable from the last pool extension.
        """
        jobs = list(jobs)
        results: List[Optional[dict]] = [None] * len(jobs)

        with self.profile.phase("plan"):
            order: List[str] = []
            indices: Dict[str, List[int]] = {}
            by_key: Dict[str, CampaignJob] = {}
            for i, job in enumerate(jobs):
                key = self.campaign_key_for(job)
                if key not in indices:
                    order.append(key)
                    indices[key] = []
                    by_key[key] = job
                indices[key].append(i)

            pending: List[str] = []
            for key in order:
                cached = (
                    self.cache.get_campaign(key)
                    if self.cache is not None else None
                )
                if cached is not None:
                    for i in indices[key]:
                        results[i] = cached
                else:
                    pending.append(key)

        with self.profile.phase("execute"):
            cache_dir = (
                self.cache.directory if self.cache is not None else None
            )
            payloads = [
                (by_key[key], cache_dir,
                 key if cache_dir is not None else None)
                for key in pending
            ]
            if not payloads:
                executed: List[dict] = []
            else:
                workers = min(self.jobs, len(payloads))
                if workers <= 1:
                    executed = [_execute_campaign(p) for p in payloads]
                else:
                    with ProcessPoolExecutor(max_workers=workers) as pool:
                        executed = list(pool.map(_execute_campaign, payloads))
        for key, record in zip(pending, executed):
            if self.cache is not None:
                self.cache.put_campaign(key, record)
            for i in indices[key]:
                results[i] = record

        self.profile.count("campaign_cells", len(jobs))
        self.profile.count("campaign_executed", len(pending))
        self.profile.set_count("cache_hits", self.cache_hits)
        self.profile.set_count("cache_misses", self.cache_misses)
        if self.cache is not None:
            self.cache.prune_to_limit()

        return results  # type: ignore[return-value]

    # ------------------------------------------------------------------
    def slowdown_matrix(
        self,
        workloads: Iterable[str],
        setups: Iterable[SetupSpec],
        requests: Optional[int] = None,
        seed: int = DEFAULT_SEED,
        backend: str = "scalar",
    ) -> Dict[str, Dict[str, float]]:
        """Slowdown of every (setup, workload) pair vs its baseline.

        Each spec is ``(label, setup, mapping[, baseline_mapping])``; the
        baseline is an unmitigated run of the same traces under
        ``baseline_mapping`` (default "zen", the paper's normalization).
        Returns ``{label: {workload: slowdown}}``. All runs and baselines
        are submitted as one batch, so they share the pool and the cache;
        ``backend="batch"`` runs kernel-eligible cells on the fused timing
        kernel (results are bit-identical either way).
        """
        names = list(workloads)
        specs = []
        for spec in setups:
            if len(spec) == 3:
                label, setup, mapping = spec  # type: ignore[misc]
                baseline_mapping = "zen"
            else:
                label, setup, mapping, baseline_mapping = spec  # type: ignore[misc]
            specs.append((label, setup, mapping, baseline_mapping))

        batch: List[Job] = []
        for name in names:
            for _, setup, mapping, baseline_mapping in specs:
                batch.append(
                    Job(name, setup, mapping, requests, seed, backend=backend)
                )
                batch.append(
                    Job(name, MitigationSetup("none"), baseline_mapping,
                        requests, seed, backend=backend)
                )
        flat = self.run_many(batch)

        table: Dict[str, Dict[str, float]] = {
            label: {} for label, _, _, _ in specs
        }
        cursor = 0
        for name in names:
            for label, _, _, _ in specs:
                run, base = flat[cursor], flat[cursor + 1]
                cursor += 2
                table[label][name] = run.slowdown_vs(base)
        return table
