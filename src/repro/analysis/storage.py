"""Storage overhead accounting (Section VI-C) and checkpoint manifests.

AutoRFM's state: at the memory controller, a busy bit plus a 15-bit
timestamp per bank (2 bytes x 64 banks = 128 bytes of SRAM); inside each
DRAM bank, the SAUM register (valid bit + subarray id) plus the tracker
(4 bytes for MINT), about 5 bytes per bank, plus a PRNG.

This module also owns the on-disk *checkpoint manifest* — the small JSON
index a checkpoint directory keeps alongside its snapshots (file names,
cycles, digests, sizes). The manifest format is independent of the
snapshot payload format, so it deliberately lives here with the other
storage/persistence helpers rather than inside :mod:`repro.ckpt`.
"""

from __future__ import annotations

import json
import math
import os
import tempfile
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence

from repro.mc.busy_table import BankBusyTable
from repro.sim.config import SystemConfig

MANIFEST_NAME = "MANIFEST.json"
MANIFEST_FORMAT = "repro-ckpt-manifest"
MANIFEST_VERSION = 1


@dataclass(frozen=True)
class StorageOverheads:
    """Bits/bytes of state AutoRFM adds."""

    mc_bytes_total: int
    dram_saum_bits_per_bank: int
    dram_tracker_bits_per_bank: int

    @property
    def dram_bytes_per_bank(self) -> float:
        bits = self.dram_saum_bits_per_bank + self.dram_tracker_bits_per_bank
        return bits / 8.0


def storage_overheads(
    config: SystemConfig, tracker_bits: int = 32
) -> StorageOverheads:
    """Compute Section VI-C's numbers for an arbitrary configuration."""
    config.validate()
    mc_bytes = BankBusyTable(config.num_banks).storage_bytes
    saum_bits = 1 + math.ceil(math.log2(config.subarrays_per_bank))
    return StorageOverheads(
        mc_bytes_total=mc_bytes,
        dram_saum_bits_per_bank=saum_bits,
        dram_tracker_bits_per_bank=tracker_bits,
    )


# ----------------------------------------------------------------------
# Checkpoint manifests
# ----------------------------------------------------------------------

def save_checkpoint_manifest(
    directory: str,
    entries: Sequence[Dict[str, Any]],
    meta: Optional[Dict[str, Any]] = None,
) -> str:
    """Atomically (re)write a checkpoint directory's manifest.

    ``entries`` is the full entry list (one dict per snapshot file with at
    least ``file``, ``cycle``, ``boundary``, ``sha256``, ``bytes``); the
    manifest is always rewritten whole, via write-then-rename, so readers
    never observe a torn index. Returns the manifest path.
    """
    payload = {
        "format": MANIFEST_FORMAT,
        "version": MANIFEST_VERSION,
        "meta": dict(meta or {}),
        "entries": [dict(e) for e in entries],
    }
    path = os.path.join(directory, MANIFEST_NAME)
    fd, tmp = tempfile.mkstemp(
        dir=directory, prefix=MANIFEST_NAME + ".", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "w") as handle:
            json.dump(payload, handle, sort_keys=True, indent=2)
            handle.write("\n")
        os.replace(tmp, path)
    except BaseException:
        if os.path.exists(tmp):
            os.unlink(tmp)
        raise
    return path


def load_checkpoint_manifest(directory: str) -> Dict[str, Any]:
    """Read and validate a checkpoint directory's manifest.

    Raises ``FileNotFoundError`` when the directory has no manifest and
    ``ValueError`` when the file exists but is not a well-formed manifest
    of a supported version.
    """
    path = os.path.join(directory, MANIFEST_NAME)
    with open(path) as handle:
        try:
            payload = json.load(handle)
        except json.JSONDecodeError as exc:
            raise ValueError(f"corrupt checkpoint manifest {path}: {exc}")
    if not isinstance(payload, dict):
        raise ValueError(f"corrupt checkpoint manifest {path}: not an object")
    if payload.get("format") != MANIFEST_FORMAT:
        raise ValueError(
            f"{path} is not a checkpoint manifest "
            f"(format={payload.get('format')!r})"
        )
    if payload.get("version") != MANIFEST_VERSION:
        raise ValueError(
            f"unsupported manifest version {payload.get('version')!r} "
            f"in {path} (supported: {MANIFEST_VERSION})"
        )
    entries = payload.get("entries")
    if not isinstance(entries, list):
        raise ValueError(f"corrupt checkpoint manifest {path}: bad entries")
    return payload


# ----------------------------------------------------------------------
# Inter-process directory locks
# ----------------------------------------------------------------------

class DirectoryLock:
    """A best-effort inter-process mutex built on ``O_CREAT | O_EXCL``.

    The lock is a small file holding the owner's pid. ``acquire`` is
    non-blocking: it either creates the file atomically (lock taken),
    steals a *stale* lock (the recorded pid no longer exists, i.e. the
    owner died without releasing), or reports the lock as busy. This is
    exactly the coordination the shared result cache needs: concurrent
    pruners must not interleave their scan/delete cycles, but a pruner
    finding the lock busy can simply skip its turn — pruning is periodic
    maintenance, not a correctness-critical step.

    Used by :meth:`repro.analysis.runner.ResultCache.prune` and by the
    sweep-service daemon (which owns pruning for all its clients).
    """

    def __init__(self, path: str):
        self.path = path
        self._held = False

    def acquire(self) -> bool:
        """Try to take the lock; True on success (never blocks)."""
        for _ in range(2):  # second pass: retry after stealing a stale lock
            try:
                fd = os.open(self.path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
            except FileExistsError:
                if not self._owner_is_dead():
                    return False
                try:  # steal: the recorded owner is gone
                    os.unlink(self.path)
                except OSError:
                    return False
                continue
            except OSError:
                return False
            with os.fdopen(fd, "w") as handle:
                handle.write(str(os.getpid()))
            self._held = True
            return True
        return False

    def _owner_is_dead(self) -> bool:
        """True when the lockfile's recorded pid no longer exists."""
        try:
            with open(self.path) as handle:
                pid = int(handle.read().strip())
        except (OSError, ValueError):
            # Unreadable/corrupt lockfile: treat as stale.
            return True
        try:
            os.kill(pid, 0)
        except ProcessLookupError:
            return True
        except PermissionError:
            return False
        return False

    def release(self) -> None:
        """Drop the lock if held (idempotent)."""
        if not self._held:
            return
        self._held = False
        try:
            os.unlink(self.path)
        except OSError:
            pass

    def __enter__(self) -> "DirectoryLock":
        if not self.acquire():
            raise LockBusyError(f"lock busy: {self.path}")
        return self

    def __exit__(self, *exc_info) -> None:
        self.release()


class LockBusyError(RuntimeError):
    """Raised by ``DirectoryLock.__enter__`` when the lock is taken."""


def checkpoint_inventory(directory: str) -> List[Dict[str, Any]]:
    """Audit a checkpoint directory against its manifest.

    Returns one record per manifest entry with a ``status`` of ``"ok"``,
    ``"missing"`` (file gone), or ``"corrupt"`` (fails the snapshot
    integrity check), so callers can see exactly which restore points
    survive a crash or a bit flip.
    """
    # Imported lazily: repro.ckpt.state (loaded by the repro.ckpt package
    # attribute hooks) imports this module's manifest helpers.
    from repro.ckpt.snapshot import SnapshotError, load_snapshot

    manifest = load_checkpoint_manifest(directory)
    records: List[Dict[str, Any]] = []
    for entry in manifest["entries"]:
        record = dict(entry)
        path = os.path.join(directory, entry["file"])
        try:
            load_snapshot(path)
        except FileNotFoundError:
            record["status"] = "missing"
        except SnapshotError as exc:
            record["status"] = "corrupt"
            record["error"] = str(exc)
        else:
            record["status"] = "ok"
        records.append(record)
    return records
