"""Storage overhead accounting (Section VI-C).

AutoRFM's state: at the memory controller, a busy bit plus a 15-bit
timestamp per bank (2 bytes x 64 banks = 128 bytes of SRAM); inside each
DRAM bank, the SAUM register (valid bit + subarray id) plus the tracker
(4 bytes for MINT), about 5 bytes per bank, plus a PRNG.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.mc.busy_table import BankBusyTable
from repro.sim.config import SystemConfig


@dataclass(frozen=True)
class StorageOverheads:
    """Bits/bytes of state AutoRFM adds."""

    mc_bytes_total: int
    dram_saum_bits_per_bank: int
    dram_tracker_bits_per_bank: int

    @property
    def dram_bytes_per_bank(self) -> float:
        bits = self.dram_saum_bits_per_bank + self.dram_tracker_bits_per_bank
        return bits / 8.0


def storage_overheads(
    config: SystemConfig, tracker_bits: int = 32
) -> StorageOverheads:
    """Compute Section VI-C's numbers for an arbitrary configuration."""
    config.validate()
    mc_bytes = BankBusyTable(config.num_banks).storage_bytes
    saum_bits = 1 + math.ceil(math.log2(config.subarrays_per_bank))
    return StorageOverheads(
        mc_bytes_total=mc_bytes,
        dram_saum_bits_per_bank=saum_bits,
        dram_tracker_bits_per_bank=tracker_bits,
    )
