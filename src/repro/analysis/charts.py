"""Terminal charts: dependency-free bar and line renderers.

The benchmark reports are plain text; these helpers make distributions and
sweeps legible without matplotlib. Bars scale to a fixed width; line charts
render an x-sorted series on a character grid.
"""

from __future__ import annotations

from typing import Iterable, List, Tuple


def render_barchart(
    rows: Iterable[Tuple[str, float]],
    width: int = 40,
    unit: str = "",
    title: str = "",
) -> str:
    """Horizontal bar chart; bars scale to the max value."""
    materialized: List[Tuple[str, float]] = [(str(k), float(v)) for k, v in rows]
    if not materialized:
        raise ValueError("no rows to chart")
    if width < 1:
        raise ValueError("width must be positive")
    peak = max(abs(v) for _, v in materialized)
    label_width = max(len(k) for k, _ in materialized)
    lines = [title] if title else []
    for key, value in materialized:
        filled = 0 if peak == 0 else round(abs(value) / peak * width)
        bar = "#" * filled
        suffix = f" {value:.4g}{unit}"
        lines.append(f"{key.rjust(label_width)} |{bar}{suffix}")
    return "\n".join(lines)


def render_linechart(
    points: Iterable[Tuple[float, float]],
    width: int = 60,
    height: int = 12,
    title: str = "",
) -> str:
    """Scatter/line chart of (x, y) points on a character grid."""
    pts = sorted((float(x), float(y)) for x, y in points)
    if len(pts) < 2:
        raise ValueError("need at least two points")
    if width < 2 or height < 2:
        raise ValueError("grid too small")
    xs = [x for x, _ in pts]
    ys = [y for _, y in pts]
    x_low, x_high = min(xs), max(xs)
    y_low, y_high = min(ys), max(ys)
    x_span = x_high - x_low or 1.0
    y_span = y_high - y_low or 1.0

    grid = [[" "] * width for _ in range(height)]
    for x, y in pts:
        col = round((x - x_low) / x_span * (width - 1))
        row = round((y - y_low) / y_span * (height - 1))
        grid[height - 1 - row][col] = "*"

    lines = [title] if title else []
    lines.append(f"y: {y_low:.4g} .. {y_high:.4g}")
    lines.extend("|" + "".join(row) for row in grid)
    lines.append("+" + "-" * width)
    lines.append(f"x: {x_low:.4g} .. {x_high:.4g}")
    return "\n".join(lines)
