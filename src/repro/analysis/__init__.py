"""Experiment harness: one function per paper table/figure, plus renderers,
exporters, analytical models, design-space analysis, and statistics."""

from repro.analysis.charts import render_barchart, render_linechart
from repro.analysis.experiments import (
    DEFAULT_REQUESTS,
    average,
    run_many,
    run_workload,
    slowdown,
    slowdown_matrix,
    workload_rows,
)
from repro.analysis.runner import (
    CACHE_SCHEMA_VERSION,
    ExperimentRunner,
    Job,
    ResultCache,
    SecurityJob,
    security_job_key,
)
from repro.analysis.export import result_record, to_csv, to_json, write_records
from repro.analysis.model import (
    autorfm_alert_rate,
    autorfm_expected_delay,
    autorfm_saum_duty,
    rfm_bank_overhead,
)
from repro.analysis.statistics import MetricSummary, seed_study, summarize
from repro.analysis.storage import storage_overheads
from repro.analysis.tables import render_series, render_table
from repro.analysis.tradeoffs import cheapest_tracker_for, tracker_tradeoffs

__all__ = [
    "CACHE_SCHEMA_VERSION",
    "DEFAULT_REQUESTS",
    "ExperimentRunner",
    "Job",
    "ResultCache",
    "SecurityJob",
    "security_job_key",
    "average",
    "run_many",
    "run_workload",
    "slowdown",
    "slowdown_matrix",
    "workload_rows",
    "storage_overheads",
    "render_series",
    "render_table",
    "render_barchart",
    "render_linechart",
    "result_record",
    "to_csv",
    "to_json",
    "write_records",
    "autorfm_alert_rate",
    "autorfm_expected_delay",
    "autorfm_saum_duty",
    "rfm_bank_overhead",
    "MetricSummary",
    "seed_study",
    "summarize",
    "cheapest_tracker_for",
    "tracker_tradeoffs",
]
