"""Result exporters: JSON and CSV serialization of simulation results.

Downstream users typically want machine-readable experiment output next to
the human-readable tables; these helpers flatten a
:class:`~repro.cpu.system.SimulationResult` (or several) into stable,
documented records.
"""

from __future__ import annotations

import csv
import dataclasses
import io
import json
from typing import Dict, Iterable, List, Optional

from repro.cpu.system import SimulationResult
from repro.sim.config import SystemConfig


def flatten_metrics(
    snapshot: Dict[str, Dict[str, object]], prefix: str = "obs."
) -> Dict[str, object]:
    """Flatten a :meth:`~repro.obs.MetricsRegistry.snapshot` into scalar
    CSV-friendly columns.

    Counters and gauges map straight through (``obs.mc.act{bank=0}``);
    histograms contribute their ``count``/``mean``/``max`` so distribution
    shape survives flattening without exploding the column set.
    """
    flat: Dict[str, object] = {}
    for series, value in snapshot.get("counters", {}).items():
        flat[f"{prefix}{series}"] = value
    for series, value in snapshot.get("gauges", {}).items():
        flat[f"{prefix}{series}"] = value
    for series, hist in snapshot.get("histograms", {}).items():
        count = hist["count"]
        flat[f"{prefix}{series}.count"] = count
        flat[f"{prefix}{series}.mean"] = (
            round(hist["sum"] / count, 4) if count else 0.0
        )
        flat[f"{prefix}{series}.max"] = hist["max"]
    return flat


def result_record(
    result: SimulationResult,
    workload: str = "",
    config: Optional[SystemConfig] = None,
    baseline: Optional[SimulationResult] = None,
    include_metrics: bool = True,
) -> Dict[str, object]:
    """Flatten one simulation result into a JSON/CSV-friendly dict.

    When the result carries observability metrics (``result.obs``), they
    land in the same record as ``obs.``-prefixed columns — one accounting
    path for tables and machine-readable exports alike. Set
    ``include_metrics=False`` to keep the classic column set.
    """
    stats = result.stats
    record: Dict[str, object] = {
        "workload": workload,
        "mechanism": result.setup.mechanism,
        "threshold": result.setup.threshold,
        "tracker": result.setup.tracker,
        "policy": result.setup.policy,
        "mapping": result.mapping,
        "seed": result.seed,
        "cycles": stats.cycles,
        "instructions": stats.total_instructions,
        "activations": stats.total_activations,
        "row_hits": stats.total_row_hits,
        "act_pki": round(stats.act_pki, 4),
        "row_hit_rate": round(stats.row_hit_rate, 4),
        "alerts": stats.total_alerts,
        "alerts_per_act": round(stats.alerts_per_act, 6),
        "max_request_alerts": stats.max_request_alerts,
        "mitigations": stats.total_mitigations,
        "victim_refreshes": stats.total_victim_refreshes,
        "row_swaps": stats.total_row_swaps,
        "rfm_commands": stats.total_rfm_commands,
        "refreshes": stats.total_refreshes,
    }
    if config is not None:
        record["act_per_trefi"] = round(
            stats.act_per_trefi(config.timing.trefi), 4
        )
    if baseline is not None:
        record["slowdown"] = round(result.slowdown_vs(baseline), 6)
    obs = getattr(result, "obs", None)
    if include_metrics and obs is not None and obs.metrics is not None:
        record.update(flatten_metrics(obs.metrics))
    return record


def to_json(records: Iterable[Dict[str, object]], indent: int = 2) -> str:
    """Serialize records to a JSON array."""
    return json.dumps(list(records), indent=indent, sort_keys=True)


def to_csv(records: Iterable[Dict[str, object]]) -> str:
    """Serialize records to CSV (union of keys, stable column order)."""
    materialized: List[Dict[str, object]] = list(records)
    if not materialized:
        return ""
    columns: List[str] = []
    for record in materialized:
        for key in record:
            if key not in columns:
                columns.append(key)
    buffer = io.StringIO()
    writer = csv.DictWriter(buffer, fieldnames=columns, restval="")
    writer.writeheader()
    writer.writerows(materialized)
    return buffer.getvalue()


def write_records(
    records: Iterable[Dict[str, object]], path: str
) -> None:
    """Write records to ``path``; the extension picks the format."""
    materialized = list(records)
    if path.endswith(".json"):
        payload = to_json(materialized)
    elif path.endswith(".csv"):
        payload = to_csv(materialized)
    else:
        raise ValueError(f"unsupported export extension: {path!r}")
    with open(path, "w") as handle:
        handle.write(payload)


def config_record(config: SystemConfig) -> Dict[str, object]:
    """Flatten a system configuration (for experiment provenance)."""
    record = dataclasses.asdict(config)
    record["timing"] = dataclasses.asdict(config.timing)
    return record
