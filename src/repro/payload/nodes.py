"""Payload-DSL syntax tree: expressions, instructions, loops, programs.

A payload program is a small PyRAM-style description of a DRAM command
stream (see :mod:`repro.payload.parser` for the concrete grammar).  The
nodes here are plain immutable data; every node remembers the 1-based
source line it came from so the whole pipeline — parse, resolve, unroll,
compile — can point errors at the offending payload line rather than at a
Python stack frame.

The node vocabulary is deliberately tiny:

* :class:`Instr` — one primitive (``act``/``pre``/``ref``/``rfm``/``nop``/
  ``sync_ref``), optionally carrying an argument expression (the row for
  ``act``, the idle count for ``nop``);
* :class:`Loop` — ``for``-style repetition: a fixed trip count, a counted
  loop binding an index variable, or the unbounded ``for *:`` whose
  expansion is cut by the unroll stage's activation budget;
* expressions — integer arithmetic over literals, ``{param}``
  placeholders, and loop variables.

:func:`format_program` renders any program back to canonical text; the
round-trip ``format(parse(text)) == normalize(text)`` is pinned by the
property suite.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Mapping, Optional, Tuple, Union

__all__ = [
    "PayloadError",
    "Expr",
    "Num",
    "Param",
    "Var",
    "Neg",
    "BinOp",
    "Stmt",
    "Instr",
    "Loop",
    "Program",
    "INSTRUCTION_OPS",
    "ARG_REQUIRED_OPS",
    "ARG_FORBIDDEN_OPS",
    "format_program",
]


class PayloadError(Exception):
    """Any failure in the payload pipeline, anchored to a source line.

    This is the *only* exception the DSL is allowed to raise for malformed
    input, unknown parameters, budget violations, or out-of-range rows —
    the fuzz suite feeds the parser random token soup and asserts nothing
    else ever escapes.
    """

    def __init__(self, message: str, line: Optional[int] = None):
        self.line = line
        if line is not None:
            message = f"line {line}: {message}"
        super().__init__(message)


# ----------------------------------------------------------------------
# Expressions
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Num:
    """An integer literal."""

    value: int

    def format(self) -> str:
        """Render as payload-DSL source text."""
        return str(self.value)


@dataclass(frozen=True)
class Param:
    """A ``{name}`` placeholder bound by the resolve stage."""

    name: str

    def format(self) -> str:
        """Render as payload-DSL source text."""
        return "{" + self.name + "}"


@dataclass(frozen=True)
class Var:
    """A loop-index variable (bound by an enclosing ``for x in n:``)."""

    name: str

    def format(self) -> str:
        """Render as payload-DSL source text."""
        return self.name


@dataclass(frozen=True)
class Neg:
    """Unary minus."""

    operand: "Expr"

    def format(self) -> str:
        """Render as payload-DSL source text."""
        return f"-{_format_factor(self.operand)}"


@dataclass(frozen=True)
class BinOp:
    """Binary arithmetic: ``+``, ``-``, or ``*``."""

    op: str
    left: "Expr"
    right: "Expr"

    def format(self) -> str:
        """Render as payload-DSL source text, minimally parenthesized."""
        if self.op == "*":
            return (
                f"{_format_factor(self.left)}*{_format_factor(self.right)}"
            )
        right = self.right
        right_text = (
            f"({right.format()})"
            if isinstance(right, BinOp) and right.op in "+-"
            else right.format()
        )
        return f"{self.left.format()}{self.op}{right_text}"


Expr = Union[Num, Param, Var, Neg, BinOp]


def _format_factor(expr: Expr) -> str:
    """Render ``expr`` parenthesized when it binds looser than ``*``."""
    if isinstance(expr, BinOp) and expr.op in "+-":
        return f"({expr.format()})"
    if isinstance(expr, Neg):
        return f"({expr.format()})"
    return expr.format()


def eval_expr(
    expr: Expr,
    params: Mapping[str, int],
    variables: Mapping[str, int],
    line: Optional[int] = None,
) -> int:
    """Evaluate ``expr`` to an integer under the given bindings."""
    if isinstance(expr, Num):
        return expr.value
    if isinstance(expr, Param):
        if expr.name not in params:
            raise PayloadError(
                f"unbound parameter {{{expr.name}}}", line
            )
        return params[expr.name]
    if isinstance(expr, Var):
        if expr.name not in variables:
            raise PayloadError(f"unbound loop variable {expr.name!r}", line)
        return variables[expr.name]
    if isinstance(expr, Neg):
        return -eval_expr(expr.operand, params, variables, line)
    if isinstance(expr, BinOp):
        left = eval_expr(expr.left, params, variables, line)
        right = eval_expr(expr.right, params, variables, line)
        if expr.op == "+":
            return left + right
        if expr.op == "-":
            return left - right
        return left * right
    raise PayloadError(f"unknown expression node {expr!r}", line)


def expr_params(expr: Expr) -> Tuple[str, ...]:
    """Sorted parameter names referenced anywhere in ``expr``."""
    names: set = set()
    _collect_params(expr, names)
    return tuple(sorted(names))


def _collect_params(expr: Expr, out: set) -> None:
    if isinstance(expr, Param):
        out.add(expr.name)
    elif isinstance(expr, Neg):
        _collect_params(expr.operand, out)
    elif isinstance(expr, BinOp):
        _collect_params(expr.left, out)
        _collect_params(expr.right, out)


def substitute(expr: Expr, params: Mapping[str, int]) -> Expr:
    """Replace every bound ``{param}`` in ``expr`` with its literal value."""
    if isinstance(expr, Param):
        if expr.name in params:
            return Num(int(params[expr.name]))
        return expr
    if isinstance(expr, Neg):
        return Neg(substitute(expr.operand, params))
    if isinstance(expr, BinOp):
        return BinOp(
            expr.op,
            substitute(expr.left, params),
            substitute(expr.right, params),
        )
    return expr


# ----------------------------------------------------------------------
# Statements
# ----------------------------------------------------------------------
#: The primitive vocabulary.
INSTRUCTION_OPS: Tuple[str, ...] = (
    "act", "pre", "ref", "rfm", "nop", "sync_ref",
)
#: Ops that must carry an argument expression.
ARG_REQUIRED_OPS: Tuple[str, ...] = ("act",)
#: Ops that must not carry one (``nop`` may carry an optional count).
ARG_FORBIDDEN_OPS: Tuple[str, ...] = ("pre", "ref", "rfm", "sync_ref")


@dataclass(frozen=True)
class Instr:
    """One primitive command.

    ``arg`` is the row expression for ``act`` and the optional idle count
    for ``nop`` (default 1); the other ops carry no argument.
    """

    op: str
    arg: Optional[Expr] = None
    line: int = 0

    def format(self) -> str:
        """Render as a single payload-DSL source line (no indentation)."""
        if self.arg is None:
            return self.op
        return f"{self.op} {self.arg.format()}"


@dataclass(frozen=True)
class Loop:
    """``for``-repetition.

    ``count is None`` means the unbounded ``for *:`` form — expansion is
    bounded only by the unroll stage's activation budget.  ``var`` names
    the loop-index variable of the ``for x in n:`` form (bound to
    ``0..n-1`` in the body); plain ``for n:`` repeats without binding.
    """

    count: Optional[Expr]
    body: Tuple["Stmt", ...]
    var: Optional[str] = None
    line: int = 0

    def header(self) -> str:
        """Render the ``for ...:`` header line (no indentation)."""
        if self.count is None:
            return "for *:"
        if self.var is not None:
            return f"for {self.var} in {self.count.format()}:"
        return f"for {self.count.format()}:"


Stmt = Union[Instr, Loop]


@dataclass(frozen=True)
class Program:
    """A parsed payload: a statement list plus leading doc comments."""

    body: Tuple[Stmt, ...]
    comments: Tuple[str, ...] = field(default_factory=tuple)

    def params(self) -> Tuple[str, ...]:
        """Sorted placeholder names the program references."""
        names: set = set()
        _collect_stmt_params(self.body, names)
        return tuple(sorted(names))


def _collect_stmt_params(body: Tuple[Stmt, ...], out: set) -> None:
    for stmt in body:
        if isinstance(stmt, Instr):
            if stmt.arg is not None:
                _collect_params(stmt.arg, out)
        else:
            if stmt.count is not None:
                _collect_params(stmt.count, out)
            _collect_stmt_params(stmt.body, out)


# ----------------------------------------------------------------------
# Canonical rendering
# ----------------------------------------------------------------------
_INDENT = "    "


def format_program(program: Program) -> str:
    """Canonical text of ``program``: 4-space indent, one trailing newline.

    Leading comment lines are preserved verbatim (they are the scenario's
    in-file documentation); comments elsewhere are dropped by the parser.
    """
    lines: List[str] = [f"# {c}" if c else "#" for c in program.comments]
    _format_body(program.body, 0, lines)
    return "\n".join(lines) + "\n" if lines else ""


def _format_body(body: Tuple[Stmt, ...], depth: int, out: List[str]) -> None:
    pad = _INDENT * depth
    for stmt in body:
        if isinstance(stmt, Instr):
            out.append(pad + stmt.format())
        else:
            out.append(pad + stmt.header())
            _format_body(stmt.body, depth + 1, out)
