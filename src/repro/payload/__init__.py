"""Attack-payload DSL: scenarios as data, not Python.

A payload is a tiny PyRAM-style program over six primitives — ``act``,
``pre``, ``ref``, ``rfm``, ``nop``, ``sync_ref`` — with ``for``-style
repetition and ``{param}`` placeholders.  Four pure stages take it from
text to both replay forms:

1. :func:`parse` — text → AST, with line-accurate
   :class:`PayloadError`\\ s;
2. :func:`resolve` — bind placeholders (strict: missing *and* unused
   parameters are errors);
3. :func:`unroll` — flatten loops under an explicit activation budget
   (the knob that bounds even ``for *:`` hammers);
4. :func:`compile_payload` — emit a :class:`CompiledPayload`: the logical
   row sequence for the Monte-Carlo engines
   (:func:`repro.security.montecarlo.run_attack`,
   :func:`repro.security.kernels.run_attack_batch`) and, via
   :meth:`CompiledPayload.to_trace`, a timed trace for
   :func:`repro.cpu.system.simulate` on either timing backend.

The versioned scenario corpus lives in :mod:`repro.payload.corpus`; the
differential battery in ``tests/test_payload*.py`` certifies that every
corpus scenario replays identically through the scalar oracle and the
numpy kernels, and bit-identically through both timing backends.  See
``docs/payload_dsl.md``.
"""

from repro.payload.corpus import (
    Scenario,
    compile_scenario,
    load_scenario,
    scenario_names,
    scenario_source,
    verify_corpus,
)
from repro.payload.nodes import PayloadError, Program, format_program
from repro.payload.parser import normalize, parse, parse_params
from repro.payload.pipeline import (
    CompiledPayload,
    compile_payload,
    count_activations,
    resolve,
    unroll,
)

__all__ = [
    "PayloadError",
    "Program",
    "CompiledPayload",
    "Scenario",
    "parse",
    "normalize",
    "parse_params",
    "format_program",
    "resolve",
    "unroll",
    "compile_payload",
    "count_activations",
    "compile_scenario",
    "load_scenario",
    "scenario_names",
    "scenario_source",
    "verify_corpus",
]
