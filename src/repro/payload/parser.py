"""Payload-DSL parser: text → :class:`~repro.payload.nodes.Program`.

The concrete grammar (line-oriented, indentation-scoped, Python-flavored
like PyRAM payloads):

.. code-block:: text

    program   := {comment | blank} {statement}
    statement := instr NEWLINE
               | "for" "*" ":" NEWLINE block
               | "for" expr ":" NEWLINE block
               | "for" IDENT "in" expr ":" NEWLINE block
    block     := INDENT {statement} DEDENT          (4-space indents)
    instr     := "act" expr | "nop" [expr]
               | "pre" | "ref" | "rfm" | "sync_ref"
    expr      := term {("+" | "-") term}
    term      := factor {"*" factor}
    factor    := INT | "{" IDENT "}" | IDENT | "(" expr ")" | "-" factor

``{name}`` placeholders are free parameters bound by the resolve stage; a
bare identifier is a loop-index variable and must be bound by an enclosing
``for x in n:`` (checked here, so the error lands on the payload line that
uses it).  Comments run ``#`` to end of line; the comment block *before*
the first statement is kept on the program as its documentation and
survives :func:`~repro.payload.nodes.format_program` round-trips.

Every malformed input raises :class:`~repro.payload.nodes.PayloadError`
with the 1-based source line — never a raw traceback; the fuzz suite
enforces this with random token soup.
"""

from __future__ import annotations

import re
from typing import List, Optional, Sequence, Set, Tuple

from repro.payload.nodes import (
    ARG_FORBIDDEN_OPS,
    ARG_REQUIRED_OPS,
    BinOp,
    Expr,
    INSTRUCTION_OPS,
    Instr,
    Loop,
    Neg,
    Num,
    Param,
    PayloadError,
    Program,
    Stmt,
    Var,
    format_program,
)

__all__ = ["parse", "normalize", "parse_params"]

_INDENT_WIDTH = 4

_TOKEN_RE = re.compile(
    r"\s*(?:"
    r"(?P<int>\d+)"
    r"|(?P<param>\{[A-Za-z_][A-Za-z0-9_]*\})"
    r"|(?P<ident>[A-Za-z_][A-Za-z0-9_]*)"
    r"|(?P<punct>[+\-*():])"
    r")"
)

_KEYWORDS = frozenset({"for", "in"}) | frozenset(INSTRUCTION_OPS)


def _tokenize(text: str, line: int) -> List[Tuple[str, str]]:
    """``(kind, text)`` tokens of one logical line (comments stripped)."""
    tokens: List[Tuple[str, str]] = []
    pos = 0
    while pos < len(text):
        rest = text[pos:]
        if rest.lstrip() == "" or rest.lstrip().startswith("#"):
            break
        match = _TOKEN_RE.match(text, pos)
        if match is None or match.end() == pos:
            bad = text[pos:].strip().split()[0]
            raise PayloadError(f"unexpected character(s) {bad!r}", line)
        pos = match.end()
        for kind in ("int", "param", "ident", "punct"):
            value = match.group(kind)
            if value is not None:
                tokens.append((kind, value))
                break
    return tokens


class _ExprParser:
    """Recursive-descent expression parser over one token list."""

    def __init__(self, tokens: Sequence[Tuple[str, str]], line: int,
                 variables: Set[str]):
        self.tokens = list(tokens)
        self.pos = 0
        self.line = line
        self.variables = variables

    def peek(self) -> Optional[Tuple[str, str]]:
        if self.pos < len(self.tokens):
            return self.tokens[self.pos]
        return None

    def next(self) -> Tuple[str, str]:
        token = self.peek()
        if token is None:
            raise PayloadError("unexpected end of expression", self.line)
        self.pos += 1
        return token

    def expr(self) -> Expr:
        node = self.term()
        while True:
            token = self.peek()
            if token is None or token[1] not in ("+", "-"):
                return node
            self.next()
            node = BinOp(token[1], node, self.term())

    def term(self) -> Expr:
        node = self.factor()
        while True:
            token = self.peek()
            if token is None or token[1] != "*":
                return node
            self.next()
            node = BinOp("*", node, self.factor())

    def factor(self) -> Expr:
        kind, text = self.next()
        if kind == "int":
            return Num(int(text))
        if kind == "param":
            return Param(text[1:-1])
        if kind == "ident":
            if text in _KEYWORDS:
                raise PayloadError(
                    f"keyword {text!r} cannot appear in an expression",
                    self.line,
                )
            if text not in self.variables:
                raise PayloadError(
                    f"unbound loop variable {text!r} (did you mean "
                    f"{{{text}}}?)",
                    self.line,
                )
            return Var(text)
        if text == "(":
            node = self.expr()
            closing = self.next()
            if closing[1] != ")":
                raise PayloadError("expected ')'", self.line)
            return node
        if text == "-":
            return Neg(self.factor())
        raise PayloadError(f"unexpected token {text!r} in expression",
                           self.line)


def _parse_expr(tokens: Sequence[Tuple[str, str]], line: int,
                variables: Set[str]) -> Expr:
    parser = _ExprParser(tokens, line, variables)
    node = parser.expr()
    extra = parser.peek()
    if extra is not None:
        raise PayloadError(
            f"unexpected token {extra[1]!r} after expression", line
        )
    return node


def _indent_of(raw: str, line: int) -> int:
    """Indentation depth of ``raw`` in 4-space units."""
    if raw.startswith("\t") or raw.lstrip(" ").startswith("\t"):
        raise PayloadError("indent with spaces, not tabs", line)
    spaces = len(raw) - len(raw.lstrip(" "))
    if spaces % _INDENT_WIDTH:
        raise PayloadError(
            f"indentation must be a multiple of {_INDENT_WIDTH} spaces",
            line,
        )
    return spaces // _INDENT_WIDTH


def parse(text: str) -> Program:
    """Parse payload ``text`` into a :class:`Program`.

    Raises :class:`PayloadError` (with the offending 1-based line) for any
    syntactic problem: bad tokens, bad indentation, empty loop bodies,
    missing/extra instruction arguments, or unbound loop variables.
    """
    if not isinstance(text, str):
        raise PayloadError(
            f"payload must be text, got {type(text).__name__}"
        )
    comments: List[str] = []
    seen_statement = False
    # Parse into a virtual root loop body via an indent stack.  Each stack
    # entry is (depth, body, bound_vars); a "for" pushes one level.
    root: List[Stmt] = []
    stack: List[Tuple[int, List[Stmt], Set[str]]] = [(0, root, set())]
    expect_block_line: Optional[int] = None

    for lineno, raw in enumerate(text.splitlines(), start=1):
        stripped = raw.strip()
        if not stripped:
            continue
        if stripped.startswith("#"):
            if not seen_statement:
                comments.append(stripped[1:].strip())
            continue
        depth = _indent_of(raw, lineno)
        if expect_block_line is not None:
            if depth != stack[-1][0]:
                raise PayloadError(
                    f"expected an indented block under the 'for' on line "
                    f"{expect_block_line}",
                    lineno,
                )
            expect_block_line = None
        else:
            while stack and depth < stack[-1][0]:
                stack.pop()
            if not stack or depth != stack[-1][0]:
                raise PayloadError("unexpected indent", lineno)
        seen_statement = True
        body, variables = stack[-1][1], stack[-1][2]
        tokens = _tokenize(stripped, lineno)
        if not tokens:
            continue
        stmt, block_vars = _parse_statement(tokens, lineno, variables)
        body.append(stmt)
        if isinstance(stmt, Loop):
            # Loop bodies are filled in place: push the (still-empty)
            # mutable body list; it is frozen on finalize below.
            stack.append((depth + 1, stmt.body, block_vars))  # type: ignore[arg-type]
            expect_block_line = lineno

    if expect_block_line is not None:
        raise PayloadError(
            "'for' has an empty body", expect_block_line
        )
    if not seen_statement:
        raise PayloadError("payload has no statements", 1)
    return Program(body=_freeze(root), comments=tuple(comments))


def _parse_statement(
    tokens: List[Tuple[str, str]], line: int, variables: Set[str]
) -> Tuple[Stmt, Set[str]]:
    kind, head = tokens[0]
    if kind == "ident" and head == "for":
        return _parse_for(tokens, line, variables)
    if kind != "ident" or head not in INSTRUCTION_OPS:
        raise PayloadError(
            f"unknown instruction {head!r} (expected one of "
            f"{', '.join(INSTRUCTION_OPS)} or 'for')",
            line,
        )
    rest = tokens[1:]
    if head in ARG_FORBIDDEN_OPS:
        if rest:
            raise PayloadError(f"{head!r} takes no argument", line)
        return Instr(head, None, line), variables
    if not rest:
        if head in ARG_REQUIRED_OPS:
            raise PayloadError(f"{head!r} needs a row expression", line)
        return Instr(head, None, line), variables  # bare "nop" == nop 1
    return Instr(head, _parse_expr(rest, line, variables), line), variables


def _parse_for(
    tokens: List[Tuple[str, str]], line: int, variables: Set[str]
) -> Tuple[Loop, Set[str]]:
    if tokens[-1][1] != ":":
        raise PayloadError("'for' header must end with ':'", line)
    inner = tokens[1:-1]
    if not inner:
        raise PayloadError("'for' needs a count, 'x in n', or '*'", line)
    # The mutable-body trick: Loop is frozen, so the body tuple is built
    # as a list here and converted by _freeze once parsing completes.
    if len(inner) == 1 and inner[0][1] == "*":
        loop = Loop(count=None, body=[], line=line)  # type: ignore[arg-type]
        return loop, set(variables)
    if len(inner) >= 2 and inner[0][0] == "ident" and inner[1] == ("ident", "in"):
        var = inner[0][1]
        if var in _KEYWORDS:
            raise PayloadError(
                f"{var!r} is a keyword and cannot name a loop variable",
                line,
            )
        if var in variables:
            raise PayloadError(
                f"loop variable {var!r} is already bound", line
            )
        count = _parse_expr(inner[2:], line, variables)
        loop = Loop(count=count, body=[], var=var, line=line)  # type: ignore[arg-type]
        return loop, variables | {var}
    count = _parse_expr(inner, line, variables)
    loop = Loop(count=count, body=[], line=line)  # type: ignore[arg-type]
    return loop, set(variables)


def _freeze(body: List[Stmt]) -> Tuple[Stmt, ...]:
    """Deep-convert the parser's mutable body lists into tuples."""
    frozen: List[Stmt] = []
    for stmt in body:
        if isinstance(stmt, Loop):
            frozen.append(
                Loop(
                    count=stmt.count,
                    body=_freeze(list(stmt.body)),
                    var=stmt.var,
                    line=stmt.line,
                )
            )
        else:
            frozen.append(stmt)
    return tuple(frozen)


def normalize(text: str) -> str:
    """Canonical form of payload ``text``: ``format_program(parse(text))``.

    Idempotent by construction (pinned by the property suite):
    ``normalize(normalize(t)) == normalize(t)``.
    """
    return format_program(parse(text))


def parse_params(pairs: Sequence[str]) -> dict:
    """CLI helper: ``["victim=7000", "burst=32"]`` → ``{"victim": 7000, ...}``.

    Raises :class:`PayloadError` on anything that is not ``name=integer``.
    """
    params = {}
    for pair in pairs:
        name, sep, value = pair.partition("=")
        name = name.strip()
        if not sep or not name:
            raise PayloadError(f"expected name=value, got {pair!r}")
        try:
            params[name] = int(value.strip())
        except ValueError:
            raise PayloadError(
                f"parameter {name!r} needs an integer value, got "
                f"{value.strip()!r}"
            ) from None
    return params
