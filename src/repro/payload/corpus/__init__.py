"""The versioned attack-scenario corpus: named payloads + manifest.

Scenarios live as ``*.payload`` DSL files next to ``corpus.json``, the
manifest that makes them *versioned artifacts*: each entry pins a name, a
semantic version, the default parameters, provenance, and two
expected-shape digests —

* ``source_sha256`` over the payload file bytes (the program itself), and
* ``rows_sha256`` over the logical row sequence compiled under the
  default parameters and activation budget (the program's *behaviour*).

:func:`verify_corpus` recomputes both for every entry; any drift —
editing a payload without bumping its version and digests, a manifest
entry whose file is gone, a payload file the manifest does not know — is
reported and fails CI (``repro payload verify`` / ``make payload-verify``).

Scenario identity for caching is ``(name, version, params)``; see
:class:`repro.analysis.runner.SecurityJob`.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Tuple

from repro.payload.nodes import PayloadError, Program
from repro.payload.parser import parse
from repro.payload.pipeline import CompiledPayload, compile_payload, resolve, unroll

__all__ = [
    "CORPUS_DIR",
    "Scenario",
    "scenario_names",
    "load_scenario",
    "scenario_source",
    "compile_scenario",
    "verify_corpus",
    "load_manifest",
]

#: The corpus ships inside the package: payloads are data, not code.
CORPUS_DIR = os.path.dirname(os.path.abspath(__file__))
_MANIFEST = os.path.join(CORPUS_DIR, "corpus.json")


@dataclass(frozen=True)
class Scenario:
    """One manifest entry: a named, versioned, parameterized payload."""

    name: str
    version: str
    file: str
    description: str
    provenance: str
    params: Tuple[Tuple[str, int], ...] = field(default_factory=tuple)
    default_acts: int = 4000
    source_sha256: str = ""
    rows_sha256: str = ""

    def default_params(self) -> Dict[str, int]:
        """The manifest's declared parameters as a fresh mutable dict."""
        return dict(self.params)

    def path(self) -> str:
        """Absolute path of the scenario's ``.payload`` file."""
        return os.path.join(CORPUS_DIR, self.file)


def load_manifest() -> dict:
    """The raw ``corpus.json`` document."""
    try:
        with open(_MANIFEST, "r", encoding="utf-8") as handle:
            return json.load(handle)
    except FileNotFoundError:
        raise PayloadError(f"corpus manifest missing: {_MANIFEST}") from None
    except json.JSONDecodeError as exc:
        raise PayloadError(f"corpus manifest unreadable: {exc}") from None


def scenario_names() -> List[str]:
    """Every scenario name, sorted."""
    return sorted(load_manifest().get("scenarios", {}))


def load_scenario(name: str) -> Scenario:
    """The manifest entry for ``name`` (:class:`PayloadError` if unknown)."""
    scenarios = load_manifest().get("scenarios", {})
    if name not in scenarios:
        known = ", ".join(sorted(scenarios)) or "none"
        raise PayloadError(
            f"unknown scenario {name!r} (corpus has: {known})"
        )
    raw = scenarios[name]
    return Scenario(
        name=name,
        version=raw["version"],
        file=raw["file"],
        description=raw.get("description", ""),
        provenance=raw.get("provenance", ""),
        params=tuple(sorted(raw.get("params", {}).items())),
        default_acts=int(raw.get("default_acts", 4000)),
        source_sha256=raw.get("source_sha256", ""),
        rows_sha256=raw.get("rows_sha256", ""),
    )


def scenario_source(name: str) -> str:
    """The payload DSL text of scenario ``name``."""
    scenario = load_scenario(name)
    try:
        with open(scenario.path(), "r", encoding="utf-8") as handle:
            return handle.read()
    except FileNotFoundError:
        raise PayloadError(
            f"scenario {name!r} names a missing file {scenario.file!r}"
        ) from None


def scenario_program(name: str) -> Program:
    """The parsed (unresolved) program of scenario ``name``."""
    return parse(scenario_source(name))


def compile_scenario(
    name: str,
    params: Optional[Mapping[str, int]] = None,
    acts: Optional[int] = None,
) -> CompiledPayload:
    """Full pipeline for a corpus scenario: parse → resolve → unroll → compile.

    ``params`` overrides a subset of the manifest defaults (an override
    the scenario does not declare is an error — the manifest is the
    parameter schema).  ``acts`` is the unroll activation budget (default:
    the manifest's ``default_acts``).
    """
    scenario = load_scenario(name)
    defaults = scenario.default_params()
    overrides = dict(params or {})
    unknown = sorted(set(overrides) - set(defaults))
    if unknown:
        raise PayloadError(
            f"scenario {name!r} does not take parameter(s) "
            + ", ".join(unknown)
            + (f" (declared: {', '.join(sorted(defaults))})" if defaults
               else " (it takes none)")
        )
    defaults.update(overrides)
    budget = scenario.default_acts if acts is None else acts
    program = resolve(parse(scenario_source(name)), defaults)
    return compile_payload(unroll(program, budget), name=name)


# ----------------------------------------------------------------------
# Integrity verification
# ----------------------------------------------------------------------
def _source_digest(text: str) -> str:
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def verify_corpus() -> List[str]:
    """Recompute every manifest digest; return the list of problems.

    An empty list means the corpus is intact: every scenario file parses,
    matches its pinned source digest, and compiles (under its default
    parameters and budget) to exactly the pinned row sequence.  Also
    flags orphan ``*.payload`` files the manifest does not version.
    """
    problems: List[str] = []
    manifest = load_manifest()
    scenarios = manifest.get("scenarios", {})
    if not scenarios:
        problems.append("manifest lists no scenarios")
    for name in sorted(scenarios):
        try:
            scenario = load_scenario(name)
            source = scenario_source(name)
        except PayloadError as exc:
            problems.append(f"{name}: {exc}")
            continue
        got_source = _source_digest(source)
        if got_source != scenario.source_sha256:
            problems.append(
                f"{name}: source drift — {scenario.file} hashes to "
                f"{got_source[:12]}…, manifest pins "
                f"{scenario.source_sha256[:12]}… (bump the version and "
                f"re-pin with 'repro payload verify --update')"
            )
        try:
            compiled = compile_scenario(name)
        except PayloadError as exc:
            problems.append(f"{name}: does not compile — {exc}")
            continue
        if compiled.rows_digest() != scenario.rows_sha256:
            problems.append(
                f"{name}: shape drift — compiled rows hash to "
                f"{compiled.rows_digest()[:12]}…, manifest pins "
                f"{scenario.rows_sha256[:12]}…"
            )
        if compiled.acts == 0:
            problems.append(f"{name}: compiles to zero activations")
    manifest_files = {scenarios[n]["file"] for n in scenarios}
    for entry in sorted(os.listdir(CORPUS_DIR)):
        if entry.endswith(".payload") and entry not in manifest_files:
            problems.append(
                f"orphan payload file {entry!r}: not versioned in the "
                "manifest"
            )
    return problems


def pin_manifest() -> dict:
    """Recompute and rewrite every digest in ``corpus.json`` (maintainer
    helper behind ``repro payload verify --update``); returns the updated
    document."""
    manifest = load_manifest()
    for name in sorted(manifest.get("scenarios", {})):
        entry = manifest["scenarios"][name]
        source = scenario_source(name)
        entry["source_sha256"] = _source_digest(source)
        entry["rows_sha256"] = compile_scenario(name).rows_digest()
    with open(_MANIFEST, "w", encoding="utf-8") as handle:
        json.dump(manifest, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return manifest
