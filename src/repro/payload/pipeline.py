"""Payload pipeline stages: resolve → unroll → compile.

:func:`resolve` binds ``{param}`` placeholders to integers (strict: a
missing or an unknown parameter is an error naming the offender and, for
missing ones, the payload line that needs it).  :func:`unroll` expands the
loop structure into a flat instruction list under an explicit activation
budget — the single knob that makes every payload, including the unbounded
``for *:`` hammers, a bounded artifact.  :func:`compile_payload` turns the
flat list into a :class:`CompiledPayload`: the logical per-bank row
sequence the security engines replay
(:func:`repro.security.montecarlo.run_attack`,
:func:`repro.security.kernels.run_attack_batch`) and, via
:meth:`CompiledPayload.to_trace`, the timed memory-request
:class:`~repro.workloads.trace.Trace` the full simulator consumes on both
timing backends.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.payload.nodes import (
    Expr,
    Instr,
    Loop,
    Num,
    Param,
    PayloadError,
    Program,
    Stmt,
    eval_expr,
    expr_params,
    substitute,
)

__all__ = [
    "resolve",
    "unroll",
    "compile_payload",
    "CompiledPayload",
    "DEFAULT_REF_GAP",
    "count_activations",
]

#: Instruction-expansion guard: unroll may emit at most
#: ``budget * _INSTRS_PER_ACT_CAP + _INSTR_FLOOR`` instructions, so a
#: degenerate payload (a million ``pre``/``nop`` lines per activation)
#: fails loudly instead of exhausting memory while chasing its budget.
_INSTRS_PER_ACT_CAP = 64
_INSTR_FLOOR = 4096

#: Idle instructions a ``ref``/``rfm``/``sync_ref`` contributes to the
#: timed trace: an IPC≈1 stand-in for tRFC/tRFM-scale stalls (the demand
#: stream cannot issue REF/RFM itself — the controller owns the refresh
#: machinery — so timing payloads express refresh alignment as computed
#: quiet time).  Override per-compile with ``to_trace(ref_gap=...)``.
DEFAULT_REF_GAP = 700


# ----------------------------------------------------------------------
# resolve
# ----------------------------------------------------------------------
def resolve(program: Program, params: Optional[Mapping[str, int]] = None) -> Program:
    """Bind every ``{param}`` placeholder in ``program`` to its value.

    Strict on both sides: a placeholder with no binding raises (naming the
    parameter and the first line that needs it), and a binding no
    placeholder consumes raises (catching misspelled parameter names
    before they silently produce the default pattern).
    """
    params = dict(params or {})
    for name, value in params.items():
        if not isinstance(value, int) or isinstance(value, bool):
            raise PayloadError(
                f"parameter {name!r} must be an integer, got {value!r}"
            )
    needed = program.params()
    missing = [n for n in needed if n not in params]
    if missing:
        line = _first_param_line(program.body, set(missing))
        raise PayloadError(
            "missing parameter(s): " + ", ".join(missing), line
        )
    extra = sorted(set(params) - set(needed))
    if extra:
        raise PayloadError(
            "unused parameter(s): " + ", ".join(extra)
            + (f" (payload takes {', '.join(needed)})" if needed
               else " (payload takes none)")
        )
    return Program(
        body=_resolve_body(program.body, params),
        comments=program.comments,
    )


def _resolve_body(
    body: Tuple[Stmt, ...], params: Mapping[str, int]
) -> Tuple[Stmt, ...]:
    out: List[Stmt] = []
    for stmt in body:
        if isinstance(stmt, Instr):
            arg = substitute(stmt.arg, params) if stmt.arg is not None else None
            out.append(Instr(stmt.op, arg, stmt.line))
        else:
            count = (
                substitute(stmt.count, params)
                if stmt.count is not None else None
            )
            out.append(
                Loop(
                    count=count,
                    body=_resolve_body(stmt.body, params),
                    var=stmt.var,
                    line=stmt.line,
                )
            )
    return tuple(out)


def _first_param_line(body: Tuple[Stmt, ...], names: set) -> Optional[int]:
    for stmt in body:
        if isinstance(stmt, Instr):
            if stmt.arg is not None and set(expr_params(stmt.arg)) & names:
                return stmt.line
        else:
            if stmt.count is not None and set(expr_params(stmt.count)) & names:
                return stmt.line
            line = _first_param_line(stmt.body, names)
            if line is not None:
                return line
    return None


# ----------------------------------------------------------------------
# unroll
# ----------------------------------------------------------------------
def count_activations(program: Program, budget: Optional[int] = None) -> int:
    """Analytic activation count of a fully-resolved ``program``.

    For finite programs this is the closed-form loop product-sum; an
    unbounded ``for *:`` contributes whatever remains of ``budget``.  The
    property suite pins ``len(unroll(p, b).rows) ==
    min(count_activations(p), b)`` for finite programs.
    """
    total = _count_body(program.body, {})
    if total is None:
        if budget is None:
            raise PayloadError(
                "program is unbounded (for *); supply a budget"
            )
        return budget
    return total if budget is None else min(total, budget)


def _count_body(
    body: Tuple[Stmt, ...], variables: Dict[str, int]
) -> Optional[int]:
    """Activations of one body; None when it contains ``for *:``."""
    total = 0
    for stmt in body:
        if isinstance(stmt, Instr):
            total += 1 if stmt.op == "act" else 0
            continue
        if stmt.count is None:
            return None
        count = eval_expr(stmt.count, {}, variables, stmt.line)
        if count < 0:
            raise PayloadError(
                f"loop count evaluates to {count} (must be >= 0)",
                stmt.line,
            )
        if stmt.var is None:
            inner = _count_body(stmt.body, variables)
            if inner is None:
                return None
            total += count * inner
        else:
            for i in range(count):
                variables[stmt.var] = i
                inner = _count_body(stmt.body, variables)
                del variables[stmt.var]
                if inner is None:
                    return None
                total += inner
    return total


class _BudgetDone(Exception):
    """Internal flow control: the activation budget is exhausted."""


class _Unroller:
    def __init__(self, budget: int, max_instructions: int):
        self.budget = budget
        self.max_instructions = max_instructions
        self.instrs: List[Instr] = []
        self.acts = 0

    def emit(self, instr: Instr, variables: Dict[str, int]) -> None:
        if instr.op == "act":
            if self.acts >= self.budget:
                raise _BudgetDone
            row = eval_expr(instr.arg, {}, variables, instr.line)
            if row < 0:
                raise PayloadError(
                    f"act row evaluates to {row} (rows are non-negative)",
                    instr.line,
                )
            self.acts += 1
            self.instrs.append(Instr("act", Num(row), instr.line))
        elif instr.op == "nop":
            count = (
                eval_expr(instr.arg, {}, variables, instr.line)
                if instr.arg is not None else 1
            )
            if count < 0:
                raise PayloadError(
                    f"nop count evaluates to {count} (must be >= 0)",
                    instr.line,
                )
            self.instrs.append(Instr("nop", Num(count), instr.line))
        else:
            self.instrs.append(Instr(instr.op, None, instr.line))
        if len(self.instrs) > self.max_instructions:
            raise PayloadError(
                f"unroll exceeded the instruction cap "
                f"({self.max_instructions}) before reaching its "
                f"activation budget ({self.budget}); the payload emits "
                f"too few activations per instruction",
                instr.line,
            )

    def run_body(
        self, body: Tuple[Stmt, ...], variables: Dict[str, int]
    ) -> None:
        for stmt in body:
            if isinstance(stmt, Instr):
                self.emit(stmt, variables)
                continue
            if stmt.count is None:
                while True:
                    acts_before = self.acts
                    self.run_body(stmt.body, variables)
                    if self.acts == acts_before:
                        raise PayloadError(
                            "'for *' body performs no activations: the "
                            "loop can never reach its budget",
                            stmt.line,
                        )
                continue
            count = eval_expr(stmt.count, {}, variables, stmt.line)
            if count < 0:
                raise PayloadError(
                    f"loop count evaluates to {count} (must be >= 0)",
                    stmt.line,
                )
            if stmt.var is None:
                for _ in range(count):
                    self.run_body(stmt.body, variables)
            else:
                for i in range(count):
                    variables[stmt.var] = i
                    self.run_body(stmt.body, variables)
                variables.pop(stmt.var, None)  # zero-trip loops never bind


def unroll(
    program: Program,
    budget: int,
    max_instructions: Optional[int] = None,
) -> List[Instr]:
    """Expand ``program`` into a flat instruction list.

    ``budget`` is the activation budget — the hard cap on emitted ``act``
    instructions.  Expansion stops exactly when the budget is reached
    (mid-loop-body if need be), which is also what terminates the
    unbounded ``for *:`` form; finite programs that run out of statements
    first simply emit fewer activations.  The program must be fully
    resolved (no ``{param}`` placeholders) and every evaluated row and
    count must be in range; violations raise :class:`PayloadError` with
    the payload line.

    ``max_instructions`` guards against payloads that emit unboundedly
    many non-``act`` instructions while chasing their budget (default:
    ``budget * 64 + 4096``).
    """
    if budget < 0:
        raise PayloadError(f"activation budget must be >= 0, got {budget}")
    leftover = program.params()
    if leftover:
        raise PayloadError(
            "cannot unroll an unresolved program; still missing: "
            + ", ".join(leftover),
            _first_param_line(program.body, set(leftover)),
        )
    if max_instructions is None:
        max_instructions = budget * _INSTRS_PER_ACT_CAP + _INSTR_FLOOR
    unroller = _Unroller(budget, max_instructions)
    try:
        unroller.run_body(program.body, {})
    except _BudgetDone:
        # The budget cut the program mid-stream: anything emitted after
        # the final activation belongs to the iteration the cut interrupted,
        # so expansion ends *exactly* at act #budget (this is what keeps
        # DSL hammers byte-identical to their generator twins).
        while unroller.instrs and unroller.instrs[-1].op != "act":
            unroller.instrs.pop()
    return unroller.instrs


# ----------------------------------------------------------------------
# compile
# ----------------------------------------------------------------------
@dataclass
class CompiledPayload:
    """One compiled payload: flat instructions plus both replay forms.

    ``rows`` is the logical per-bank activation sequence (the ``act``
    stream) consumed directly by the Monte-Carlo engines;
    :meth:`to_trace` lays the same instruction stream out as a timed
    memory-request trace for :func:`repro.cpu.system.simulate` on either
    timing backend.
    """

    name: str
    instrs: Tuple[Instr, ...]
    rows: List[int]

    @property
    def acts(self) -> int:
        return len(self.rows)

    def op_counts(self) -> Dict[str, int]:
        """Instruction-mix histogram (op → occurrences)."""
        counts: Dict[str, int] = {}
        for instr in self.instrs:
            counts[instr.op] = counts.get(instr.op, 0) + 1
        return counts

    def rows_digest(self) -> str:
        """sha256 over the logical row sequence (the manifest shape pin)."""
        payload = ",".join(str(r) for r in self.rows)
        return hashlib.sha256(payload.encode("ascii")).hexdigest()

    def to_trace(
        self,
        mapping,
        *,
        subchannel: int = 0,
        bank: int = 0,
        column: int = 0,
        ref_gap: int = DEFAULT_REF_GAP,
    ):
        """The timed :class:`~repro.workloads.trace.Trace` of this payload.

        Every ``act`` becomes one read request on the line that ``mapping``
        assigns to ``(subchannel, bank, row, column)``; ``nop k``
        contributes ``k`` idle (non-memory) instructions of gap before the
        next request; ``pre`` is free (the closed-page policy precharges
        implicitly); ``ref``/``rfm``/``sync_ref`` contribute ``ref_gap``
        idle instructions each (see :data:`DEFAULT_REF_GAP`).  Idle time
        after the final request lands in ``tail_instructions``.
        """
        from repro.mapping.base import LineLocation
        from repro.workloads.trace import Trace

        gaps: List[int] = []
        addrs: List[int] = []
        pending = 0
        for instr in self.instrs:
            if instr.op == "act":
                addrs.append(
                    mapping.line_for(
                        LineLocation(
                            subchannel=subchannel,
                            bank=bank,
                            row=instr.arg.value,  # type: ignore[union-attr]
                            column=column,
                        )
                    )
                )
                gaps.append(pending)
                pending = 0
            elif instr.op == "nop":
                pending += instr.arg.value  # type: ignore[union-attr]
            elif instr.op in ("ref", "rfm", "sync_ref"):
                pending += ref_gap
            # "pre" adds nothing: closed-page precharge is implicit.
        return Trace(
            gaps=gaps,
            addrs=addrs,
            writes=[False] * len(addrs),
            tail_instructions=pending,
            name=self.name or "payload",
        )


def compile_payload(
    instrs: Sequence[Instr], name: str = ""
) -> CompiledPayload:
    """Compile a flat (unrolled) instruction list into both replay forms."""
    rows: List[int] = []
    for instr in instrs:
        if isinstance(instr, Loop):
            raise PayloadError(
                "compile takes the *unrolled* instruction stream; call "
                "unroll() first",
                instr.line,
            )
        if instr.op == "act":
            if not isinstance(instr.arg, Num):
                raise PayloadError(
                    "act row is not a literal; resolve() and unroll() "
                    "must run before compile",
                    instr.line,
                )
            rows.append(instr.arg.value)
    return CompiledPayload(name=name, instrs=tuple(instrs), rows=rows)
