"""Per-bank DRAM state machine.

The paper's system uses a closed-page policy that still permits row-buffer
hits: after an ACT the row stays open for tRAS, then auto-precharges. A
request to the open row within that window is a row hit. The bank can accept
the next ACT tRC after the previous one (tRC = tRAS + tRP exactly).

A bank optionally hosts:

* an :class:`~repro.core.autorfm.AutoRfmEngine` (AutoRFM mode) — transparent
  subarray mitigation, or
* a tracker + mitigation policy pair (RFM mode) — mitigation is performed
  during explicit RFM commands and during REF.
"""

from __future__ import annotations

from typing import Optional

from repro.core.autorfm import AutoRfmEngine
from repro.core.mitigation import MitigationPolicy
from repro.sim.config import SystemConfig
from repro.sim.stats import BankStats
from repro.trackers.base import Tracker
from repro.ckpt.contract import checkpointable

NO_ROW = -1


class _BankObsHooks:
    """Pre-resolved metric objects for the RFM-mode mitigation path.

    One slotted bundle keeps the bank's instance dict at its original
    size when observability is off; see :class:`repro.obs.Observability`.

    Attached through the memory controller's hook bundle, increments
    accumulate in plain ints and :meth:`flush` publishes them at the next
    drain boundary; attached to a bare Observability, emission is eager.
    """

    __slots__ = ("m_mitigations", "m_victims", "m_selects",
                 "m_empty_selects", "n_mitigations", "n_victims",
                 "n_selects", "n_empty_selects", "deferred")

    def __init__(self, obs, flat: int, labels):
        metrics = obs.metrics
        self.m_mitigations = metrics.counter("core.mitigations", bank=flat)
        self.m_victims = metrics.counter("core.victim_refreshes", bank=flat)
        self.m_selects = metrics.counter("tracker.selects", **labels)
        self.m_empty_selects = metrics.counter(
            "tracker.empty_selects", **labels
        )
        self.n_mitigations = 0
        self.n_victims = 0
        self.n_selects = 0
        self.n_empty_selects = 0
        children = getattr(obs, "children", None)
        self.deferred = children is not None
        if children is not None:
            children.append(self)

    def flush(self) -> None:
        """Publish accumulated counters (drain boundary)."""
        if self.n_mitigations:
            self.m_mitigations.inc(self.n_mitigations)
            self.n_mitigations = 0
        if self.n_victims:
            self.m_victims.inc(self.n_victims)
            self.n_victims = 0
        if self.n_selects:
            self.m_selects.inc(self.n_selects)
            self.n_selects = 0
        if self.n_empty_selects:
            self.m_empty_selects.inc(self.n_empty_selects)
            self.n_empty_selects = 0


@checkpointable(
    state=("ready_at", "open_row", "act_time", "open_until",
           "autorfm", "rfm_tracker", "rfm_policy"),
    const=("config", "timing"),
    derived=("stats", "_obs"),
)
class Bank:
    """Timing and mitigation state of one DRAM bank."""

    def __init__(
        self,
        config: SystemConfig,
        stats: BankStats,
        autorfm: Optional[AutoRfmEngine] = None,
        rfm_tracker: Optional[Tracker] = None,
        rfm_policy: Optional[MitigationPolicy] = None,
    ):
        if (rfm_tracker is None) != (rfm_policy is None):
            raise ValueError("rfm_tracker and rfm_policy come as a pair")
        self.config = config
        self.timing = config.timing
        self.stats = stats
        self.autorfm = autorfm
        self.rfm_tracker = rfm_tracker
        self.rfm_policy = rfm_policy

        self.ready_at = 0  # earliest cycle the next ACT may issue
        self.open_row = NO_ROW
        self.act_time = -(10**9)  # when the open row was activated
        self.open_until = -1  # end of the row-hit window (act + tRAS)

        # Observability hooks for the RFM-mode mitigation path (AutoRFM
        # mode publishes through its engine instead); one slot, None — and
        # therefore free — until attach_obs is called.
        self._obs: Optional[_BankObsHooks] = None

    def attach_obs(self, obs, flat: int) -> None:
        """Publish RFM-mode mitigations into ``repro.obs`` metric series
        (no-op for banks without a tracker, or when metrics are off)."""
        if obs.metrics is None or self.rfm_tracker is None:
            return
        self._obs = _BankObsHooks(
            obs, flat, dict(self.rfm_tracker.metric_labels)
        )

    # ------------------------------------------------------------------
    # Demand path
    # ------------------------------------------------------------------
    def is_open(self, now: int) -> bool:
        """True while a row is open and inside its hit window."""
        return self.open_row != NO_ROW and now <= self.open_until

    def row_hits(self, row: int, now: int) -> bool:
        """True when an access to ``row`` at ``now`` is a row-buffer hit."""
        return self.is_open(now) and row == self.open_row

    def can_activate(self, now: int) -> bool:
        """True when an ACT may legally issue at ``now``."""
        return now >= self.ready_at and self.open_row == NO_ROW

    def activate(self, row: int, now: int) -> None:
        """Issue an ACT.

        Under the closed-page policy the caller must schedule
        :meth:`auto_precharge` at now + tRAS; under open-page the row stays
        open until :meth:`precharge_for_conflict`, REF, or RFM closes it.
        """
        if not self.can_activate(now):
            raise RuntimeError(f"ACT at {now} violates bank timing")
        self.open_row = row
        self.act_time = now
        if self.config.page_policy == "open":
            self.open_until = 1 << 62  # open until explicitly precharged
        else:
            self.open_until = now + self.timing.tras
        self.ready_at = now + self.timing.trc
        self.stats.activations += 1
        if self.autorfm is not None:
            self.autorfm.on_activation(row, now)
        if self.rfm_tracker is not None:
            self.rfm_tracker.on_activation(row)

    def record_hit(self) -> None:
        """Count one row-buffer hit."""
        self.stats.row_hits += 1

    def auto_precharge(self, now: int) -> None:
        """Close the open row (scheduled at act_time + tRAS, or at REF)."""
        if self.open_row == NO_ROW:
            return
        self.open_row = NO_ROW
        self.open_until = -1
        if self.autorfm is not None:
            self.autorfm.on_precharge(now)

    def precharge_for_conflict(self, now: int) -> None:
        """Open-page: close the row so a conflicting ACT can issue.

        The precharge starts once tRAS is satisfied and takes tRP; the next
        ACT also respects tRC from the previous one.
        """
        if self.open_row == NO_ROW:
            return
        pre_start = max(now, self.act_time + self.timing.tras)
        self.ready_at = max(self.ready_at, pre_start + self.timing.trp)
        self.open_row = NO_ROW
        self.open_until = -1
        if self.autorfm is not None:
            self.autorfm.on_precharge(pre_start)

    # ------------------------------------------------------------------
    # Maintenance path
    # ------------------------------------------------------------------
    def start_refresh(self, now: int, duration: int = 0) -> None:
        """REF: close the row, block the bank for ``duration``.

        ``duration`` defaults to tRFC (all-bank REF); the same-bank refresh
        mode passes the shorter tRFCsb.
        """
        self.auto_precharge(now)
        blocked = duration or self.timing.trfc
        self.ready_at = max(self.ready_at, now + blocked)
        self.stats.refreshes += 1
        # REF provides mitigation time for free: a pending tracker window is
        # harvested during the refresh (Section II-E).
        if self.rfm_tracker is not None:
            self._perform_rfm_mitigation()

    def issue_rfm(self, now: int) -> int:
        """Blocking RFM command; returns the cycle the bank frees up."""
        if self.open_row != NO_ROW:
            raise RuntimeError("RFM requires the bank to be precharged")
        start = max(now, self.ready_at)
        self.ready_at = start + self.timing.trfm
        self.stats.rfm_commands += 1
        if self.rfm_tracker is not None:
            self._perform_rfm_mitigation()
        return self.ready_at

    def stall_until(self, time: int) -> None:
        """External stall (REF on sibling logic, ABO back-off, ALERT busy)."""
        self.ready_at = max(self.ready_at, time)

    def _perform_rfm_mitigation(self) -> None:
        obs = self._obs
        request = self.rfm_tracker.select_for_mitigation()
        if request is None:
            if obs is not None:
                if obs.deferred:
                    obs.n_empty_selects += 1
                else:
                    obs.m_empty_selects.inc()
            return
        if obs is not None:
            if obs.deferred:
                obs.n_selects += 1
            else:
                obs.m_selects.inc()
        victims = self.rfm_policy.victims(request)
        if not victims:
            return
        self.stats.mitigations += 1
        self.stats.victim_refreshes += len(victims)
        if obs is not None:
            if obs.deferred:
                obs.n_mitigations += 1
                obs.n_victims += len(victims)
            else:
                obs.m_mitigations.inc()
                obs.m_victims.inc(len(victims))
        if request.level > 1:
            self.stats.recursive_rounds += 1
        for victim in victims:
            self.rfm_tracker.on_victim_refresh(victim, request.level)
