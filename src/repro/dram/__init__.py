"""DRAM device model: banks with subarrays, closed-page timing, refresh."""

from repro.dram.bank import Bank

__all__ = ["Bank"]
