"""Synchronous client for the sweep-service daemon.

:class:`SweepClient` speaks the ndjson protocol over a Unix socket and
exposes one method per op. It is deliberately thin: encoding lives in
:mod:`repro.svc.protocol`, job payload encoding in the runner's wire
codec (:func:`repro.analysis.runner.any_job_to_wire`), and every decision
— scheduling, dedup, caching — stays on the daemon side. The CLI's thin
``repro submit|status|result|cancel`` subcommands are built on this class
and fall back to in-process execution when :func:`daemon_available` says
no daemon is listening.
"""

from __future__ import annotations

import os
import socket
from typing import IO, Dict, List, Optional, Union

from repro.analysis.runner import (
    CampaignJob,
    Job,
    SecurityJob,
    any_job_to_wire,
)
from repro.svc import protocol
from repro.svc.scheduler import default_socket_path


class ServiceError(RuntimeError):
    """The daemon answered with an error response."""


def daemon_available(socket_path: Optional[str] = None) -> bool:
    """True when a live daemon answers a ``ping`` on ``socket_path``."""
    path = socket_path or default_socket_path()
    if not os.path.exists(path):
        return False
    try:
        with SweepClient(path) as client:
            client.ping()
        return True
    except (OSError, ServiceError, protocol.ProtocolError):
        return False


class SweepClient:
    """One connection to a sweep-service daemon."""

    def __init__(
        self,
        socket_path: Optional[str] = None,
        connect_timeout: float = 5.0,
    ) -> None:
        self.socket_path = socket_path or default_socket_path()
        self._sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        self._sock.settimeout(connect_timeout)
        try:
            self._sock.connect(self.socket_path)
        except OSError:
            self._sock.close()
            raise
        # Blocking from here on: `result --wait` legitimately sits until
        # the job finishes.
        self._sock.settimeout(None)
        self._reader: IO[bytes] = self._sock.makefile("rb")

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Close the socket; the daemon keeps running."""
        try:
            self._reader.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "SweepClient":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    # ------------------------------------------------------------------
    def _call(self, op: str, **fields: object) -> dict:
        """One request/response round trip; raises on error responses."""
        request: Dict[str, object] = {"op": op}
        request.update(fields)
        self._sock.sendall(protocol.encode(request))
        line = self._reader.readline()
        if not line:
            raise ServiceError(f"daemon closed the connection during {op!r}")
        response = protocol.decode(line)
        failure = protocol.response_error(response)
        if failure is not None:
            raise ServiceError(failure)
        return response

    # ------------------------------------------------------------------
    def ping(self) -> dict:
        """Liveness + protocol version check."""
        return self._call("ping")

    def submit(
        self,
        jobs: List[Union[Job, SecurityJob, CampaignJob]],
        priority: int = 0,
    ) -> List[str]:
        """Enqueue jobs; returns their daemon-assigned ids, in order."""
        response = self._call(
            "submit",
            jobs=[any_job_to_wire(job) for job in jobs],
            priority=priority,
        )
        return list(response["job_ids"])

    def status(self, job_id: Optional[str] = None) -> List[dict]:
        """Status records for one job (or every known job, seq order)."""
        fields = {"id": job_id} if job_id is not None else {}
        return list(self._call("status", **fields)["jobs"])

    def result(
        self,
        job_id: str,
        wait: bool = True,
        timeout: Optional[float] = None,
    ) -> dict:
        """The job's result payload (blocks until done when ``wait``).

        Returns the full response: ``result`` holds the result dict (sim)
        or per-seed list (security); ``from_cache`` says whether the
        daemon answered without executing.
        """
        fields: dict = {"id": job_id, "wait": wait}
        if timeout is not None:
            fields["timeout"] = timeout
        return self._call("result", **fields)

    def cancel(self, job_id: str) -> str:
        """Cancel a queued or running job; returns its new state."""
        return self._call("cancel", id=job_id)["state"]

    def cache_stats(self) -> dict:
        """Daemon-side cache occupancy, metrics snapshot, queue/workers."""
        return self._call("cache")

    def shutdown(self) -> None:
        """Ask the daemon to stop."""
        self._call("shutdown")
