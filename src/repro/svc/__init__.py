"""repro.svc — the async sweep-job service.

A long-running daemon (:class:`SweepService`) that turns the one-shot
experiment runner into a multi-client job farm over a local Unix socket:
deterministic ``(priority, submit sequence)`` scheduling, per-job worker
processes with heartbeat crash detection, resume-from-segment-snapshot
retries, and a shared dedup'd :class:`~repro.analysis.runner.ResultCache`
whose pruning the daemon alone owns. :class:`SweepClient` is the matching
synchronous client; ``repro serve`` / ``repro submit`` wrap both on the
command line. See ``docs/sweep_service.md`` for the protocol and the
crash-recovery guarantees.
"""

from repro.svc.client import (
    ServiceError,
    SweepClient,
    daemon_available,
)
from repro.svc.clock import CLOCK, Clock
from repro.svc.protocol import MAX_LINE_BYTES, OPS, PROTOCOL_VERSION
from repro.svc.queue import (
    ACTIVE_STATES,
    CANCELLED,
    DONE,
    FAILED,
    QUEUED,
    RUNNING,
    TERMINAL_STATES,
    JobRecord,
    SweepQueue,
)
from repro.svc.scheduler import SweepService, default_socket_path
from repro.svc.workers import WorkerHandle, worker_main

__all__ = [
    "ACTIVE_STATES",
    "CANCELLED",
    "CLOCK",
    "Clock",
    "DONE",
    "FAILED",
    "JobRecord",
    "MAX_LINE_BYTES",
    "OPS",
    "PROTOCOL_VERSION",
    "QUEUED",
    "RUNNING",
    "ServiceError",
    "SweepClient",
    "SweepQueue",
    "SweepService",
    "TERMINAL_STATES",
    "WorkerHandle",
    "daemon_available",
    "default_socket_path",
    "worker_main",
]
