"""The sweep-service daemon: an asyncio job farm over a Unix socket.

:class:`SweepService` turns the one-shot experiment runner into a
long-running, multi-client service:

* **Submit/status/result/cancel API** — newline-delimited JSON over a
  local Unix socket (:mod:`repro.svc.protocol`); any number of clients
  share one daemon.
* **Deterministic scheduling** — jobs dispatch in ``(priority, submit
  sequence)`` order from :class:`~repro.svc.queue.SweepQueue`; no
  wall-clock value ever participates in an ordering decision (the
  ``SVC001`` lint pass holds the package to that).
* **Shared, dedup'd artifact store** — the content-addressed
  :class:`~repro.analysis.runner.ResultCache` is the only result channel:
  cache hits answer without executing, a job whose key is already in
  flight completes together with its twin instead of re-running, and the
  daemon (alone) owns pruning.
* **Crash recovery** — each job runs in its own worker process with a
  heartbeat file; a dead or silent worker is detected, and its job is
  re-queued at the head of its priority class with ``resume=True`` so a
  segmented sweep restarts from the newest valid segment snapshot in the
  cache (via :func:`repro.analysis.runner.latest_segment_snapshot`
  machinery inside the worker) rather than from cycle 0.
* **Observability** — queue depth, worker states, cache hit/miss/eviction
  and job lifecycle counts are published through a
  :class:`~repro.obs.MetricsRegistry` and served over the ``cache`` op.

The daemon is single-event-loop: every op handler and every scheduling
step runs on one asyncio loop, so record state needs no locking.
"""

from __future__ import annotations

import asyncio
import os
import threading
from typing import Dict, Optional, Union

from repro.analysis.runner import (
    CACHE_SCHEMA_VERSION,
    CampaignJob,
    Job,
    ResultCache,
    SecurityJob,
    any_job_from_wire,
    build_sim_payload,
    campaign_job_key,
    default_cache_dir,
    default_requests,
    job_key,
    result_to_dict,
    security_job_key,
)
from repro.obs import MetricsRegistry
from repro.sim.config import SystemConfig
from repro.svc import protocol
from repro.svc.clock import CLOCK, Clock
from repro.svc.queue import (
    CANCELLED,
    DONE,
    FAILED,
    QUEUED,
    RUNNING,
    JobRecord,
    SweepQueue,
)
from repro.svc.workers import HEARTBEAT_INTERVAL, WorkerHandle

#: Default worker crash retries per job before it is marked failed.
DEFAULT_MAX_RETRIES = 2

#: Default seconds of heartbeat silence before a live worker is presumed
#: hung and recycled.
DEFAULT_HEARTBEAT_TIMEOUT = 30.0


def default_socket_path() -> str:
    """``REPRO_SVC_SOCKET`` or a per-user path under ``/tmp``.

    Unix socket paths are length-limited (~107 bytes), so the default
    deliberately avoids deep directories.
    """
    override = os.environ.get("REPRO_SVC_SOCKET")
    if override:
        return override
    import tempfile

    return os.path.join(
        tempfile.gettempdir(), f"repro-svc-{os.getuid()}.sock"
    )


class SweepService:
    """A long-running sweep-job daemon (one instance per socket path)."""

    def __init__(
        self,
        socket_path: Optional[str] = None,
        *,
        config: Optional[SystemConfig] = None,
        workers: int = 2,
        requests: Optional[int] = None,
        cache_dir: Optional[str] = None,
        schema_version: int = CACHE_SCHEMA_VERSION,
        max_retries: int = DEFAULT_MAX_RETRIES,
        heartbeat_interval: float = HEARTBEAT_INTERVAL,
        heartbeat_timeout: float = DEFAULT_HEARTBEAT_TIMEOUT,
        poll_interval: float = 0.05,
        cache_max_mb: Optional[float] = None,
        clock: Clock = CLOCK,
    ) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.socket_path = socket_path or default_socket_path()
        self.config = config if config is not None else SystemConfig()
        self.workers = workers
        self._requests = requests
        self.schema_version = schema_version
        self.cache = ResultCache(
            cache_dir or default_cache_dir(), schema_version
        )
        self.max_retries = max_retries
        self.heartbeat_interval = heartbeat_interval
        self.heartbeat_timeout = heartbeat_timeout
        self.poll_interval = poll_interval
        self.cache_max_mb = cache_max_mb
        self.clock = clock

        self.queue = SweepQueue()
        #: cache key -> job_id of the record currently executing that key.
        self._inflight: Dict[str, str] = {}
        self._slots: Dict[int, WorkerHandle] = {}
        self._next_slot = 0
        #: Heartbeat files live next to the socket.
        self.run_dir = self.socket_path + ".d"

        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._server: Optional[asyncio.AbstractServer] = None
        self._wake: Optional[asyncio.Event] = None
        self._stopping = False
        self._ready = threading.Event()

        # Pre-resolved metric handles (repro.obs convention: resolve once,
        # increment on the hot path).
        self.metrics = MetricsRegistry()
        m = self.metrics
        self._m_submitted = m.counter("svc.jobs_submitted")
        self._m_completed = m.counter("svc.jobs_completed")
        self._m_failed = m.counter("svc.jobs_failed")
        self._m_cancelled = m.counter("svc.jobs_cancelled")
        self._m_deduped = m.counter("svc.jobs_deduped")
        self._m_retried = m.counter("svc.jobs_retried")
        self._m_cache_hits = m.counter("svc.cache_hits")
        self._m_cache_misses = m.counter("svc.cache_misses")
        self._m_evictions = m.counter("svc.cache_evictions")
        self._m_restarts = m.counter("svc.worker_restarts")
        self._g_depth = m.gauge("svc.queue_depth")
        self._g_busy = m.gauge("svc.workers_busy")
        self._g_total = m.gauge("svc.workers_total")
        self._g_total.set(workers)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @property
    def requests(self) -> int:
        return (
            self._requests if self._requests is not None
            else default_requests()
        )

    def run(self) -> None:
        """Run the daemon until a ``shutdown`` op or :meth:`stop` call.

        Blocking; usable as a thread target (the test harness) or as the
        ``repro serve`` foreground process.
        """
        asyncio.run(self._main())

    def stop(self) -> None:
        """Request shutdown from any thread."""
        loop = self._loop
        if loop is not None and loop.is_running():
            loop.call_soon_threadsafe(self._begin_shutdown)

    def wait_ready(self, timeout: float = 10.0) -> bool:
        """Block until the daemon is accepting connections."""
        return self._ready.wait(timeout)

    async def _main(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._wake = asyncio.Event()
        os.makedirs(self.run_dir, exist_ok=True)
        os.makedirs(self.cache.directory, exist_ok=True)
        if os.path.exists(self.socket_path):
            os.unlink(self.socket_path)  # stale socket from a dead daemon
        self._server = await asyncio.start_unix_server(
            self._handle_client,
            path=self.socket_path,
            limit=protocol.MAX_LINE_BYTES,
        )
        self._ready.set()
        try:
            await self._scheduler_loop()
        finally:
            self._server.close()
            await self._server.wait_closed()
            for handle in list(self._slots.values()):
                handle.kill()
            self._slots.clear()
            try:
                os.unlink(self.socket_path)
            except OSError:
                pass
            self._ready.clear()

    def _begin_shutdown(self) -> None:
        if self._stopping:
            return
        self._stopping = True
        # Unblock every waiting `result` call; their records keep their
        # current state so clients can see what was left unfinished.
        for record in self.queue.records.values():
            if record.event is not None:
                record.event.set()
        if self._wake is not None:
            self._wake.set()

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    async def _scheduler_loop(self) -> None:
        assert self._wake is not None
        while not self._stopping:
            self._reap_workers()
            self._dispatch()
            self._update_gauges()
            self._wake.clear()
            try:
                await asyncio.wait_for(
                    self._wake.wait(), timeout=self.poll_interval
                )
            except asyncio.TimeoutError:
                pass

    def _dispatch(self) -> None:
        """Fill free worker slots in deterministic queue order."""
        while len(self._slots) < self.workers:
            record = self.queue.pop()
            if record is None:
                return
            # Dedup against an in-flight twin: same key, one execution.
            primary_id = self._inflight.get(record.key)
            if primary_id is not None:
                primary = self.queue.get(primary_id)
                if primary is not None and primary.state == RUNNING:
                    record.merged_into = primary_id
                    record.transition(RUNNING)
                    primary.followers.append(record)
                    self._m_deduped.inc()
                    continue
            # The shared store answers before any execution.
            if self._cached_payload(record) is not None:
                record.from_cache = True
                self._m_cache_hits.inc()
                self._finish(record, DONE)
                continue
            self._m_cache_misses.inc()
            self._spawn(record)

    def _spawn(self, record: JobRecord) -> None:
        slot = self._next_slot
        self._next_slot += 1
        resume = record.attempts > 0
        if resume:
            boundaries = self.cache.snapshot_boundaries(record.key)
            record.resumed_from = boundaries[-1] if boundaries else None
        if record.kind == "sim":
            payload: object = build_sim_payload(
                record.job,  # type: ignore[arg-type]
                self.config,
                self.requests,
                record.key,
                cache_dir=self.cache.directory,
                schema_version=self.schema_version,
                resume=resume,
            )
        else:
            # SecurityJob / CampaignJob: picklable as-is; the worker builds
            # its own execution context (and, for campaigns, resumes from
            # any frontier file a killed attempt left in the cache dir).
            payload = record.job
        spec = {
            "kind": record.kind,
            "payload": payload,
            "cache_dir": self.cache.directory,
            "schema": self.schema_version,
            "key": record.key,
            "interval": self.heartbeat_interval,
        }
        handle = WorkerHandle.spawn(
            slot,
            record.job_id,
            spec,
            os.path.join(self.run_dir, f"heartbeat-{slot}"),
            clock=self.clock,
        )
        self._slots[slot] = handle
        record.attempts += 1
        record.worker_slot = slot
        record.worker_pid = handle.pid
        record.transition(RUNNING)
        self._inflight[record.key] = record.job_id

    def _reap_workers(self) -> None:
        """Harvest finished workers; recycle dead or silent ones."""
        for slot, handle in list(self._slots.items()):
            record = self.queue.get(handle.job_id)
            assert record is not None
            if handle.alive():
                if handle.heartbeat_age() > self.heartbeat_timeout:
                    handle.kill()
                    del self._slots[slot]
                    self._crashed(record, "heartbeat timeout")
                continue
            handle.reap()
            del self._slots[slot]
            if record.state == CANCELLED:
                continue  # cancel() already killed and accounted for it
            if handle.exitcode == 0:
                if self._cached_payload(record) is not None:
                    self._finish(record, DONE)
                else:
                    record.error = "worker exited without publishing a result"
                    self._finish(record, FAILED)
            else:
                self._crashed(record, f"worker exit code {handle.exitcode}")

    def _crashed(self, record: JobRecord, reason: str) -> None:
        self._m_restarts.inc()
        self._inflight.pop(record.key, None)
        if record.attempts > self.max_retries:
            record.error = f"{reason} (after {record.attempts} attempts)"
            self._finish(record, FAILED)
            return
        self._m_retried.inc()
        record.error = reason
        self.queue.requeue(record)
        if self._wake is not None:
            self._wake.set()

    def _finish(self, record: JobRecord, state: str) -> None:
        """Terminal transition, follower resolution, cache upkeep."""
        record.transition(state)
        if state == DONE:
            self._m_completed.inc()
        elif state == FAILED:
            self._m_failed.inc()
        if record.event is not None:
            record.event.set()
        self._inflight.pop(record.key, None)
        for follower in record.followers:
            follower.from_cache = True
            follower.error = record.error
            self._finish(follower, state)
        record.followers = []
        self._prune_cache()

    def _prune_cache(self) -> None:
        """The daemon owns eviction for every client sharing this cache."""
        if self.cache_max_mb is not None:
            outcome: Optional[dict] = self.cache.prune(
                int(self.cache_max_mb * 1024 * 1024)
            )
        else:
            outcome = self.cache.prune_to_limit()
        if outcome and outcome.get("removed"):
            self._m_evictions.inc(outcome["removed"])

    def _update_gauges(self) -> None:
        self._g_depth.set(self.queue.depth())
        self._g_busy.set(len(self._slots))

    # ------------------------------------------------------------------
    # Job identity and result access
    # ------------------------------------------------------------------
    def key_for(self, job: Union[Job, SecurityJob, CampaignJob]) -> str:
        """The daemon's cache key for ``job`` (same as an in-process run)."""
        if isinstance(job, Job):
            requests = (
                job.requests if job.requests is not None else self.requests
            )
            return job_key(job, self.config, requests, self.schema_version)
        if isinstance(job, CampaignJob):
            return campaign_job_key(job, self.schema_version)
        return security_job_key(job, self.schema_version)

    def _cached_payload(self, record: JobRecord) -> Optional[object]:
        """The servable result payload for ``record`` (None on a miss)."""
        if record.kind == "sim":
            result = self.cache.get(record.key)
            return result_to_dict(result) if result is not None else None
        if record.kind == "campaign":
            return self.cache.get_campaign(record.key)
        return self.cache.get_security(record.key)

    # ------------------------------------------------------------------
    # Client protocol
    # ------------------------------------------------------------------
    async def _handle_client(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        try:
            while not self._stopping:
                try:
                    line = await reader.readline()
                except (ValueError, ConnectionError):
                    break  # over-long line or torn connection
                if not line:
                    break
                response = await self._serve_one(line)
                writer.write(protocol.encode(response))
                try:
                    await writer.drain()
                except ConnectionError:
                    break
        finally:
            writer.close()

    async def _serve_one(self, line: bytes) -> dict:
        try:
            op, message = protocol.parse_request(protocol.decode(line))
        except protocol.ProtocolError as exc:
            return protocol.error(str(exc))
        try:
            if op == "ping":
                return protocol.ok(
                    protocol=protocol.PROTOCOL_VERSION,
                    server="repro.svc",
                    workers=self.workers,
                )
            if op == "submit":
                return self._op_submit(message)
            if op == "status":
                return self._op_status(message)
            if op == "result":
                return await self._op_result(message)
            if op == "cancel":
                return self._op_cancel(message)
            if op == "cache":
                return self._op_cache()
            if op == "shutdown":
                self._begin_shutdown()
                return protocol.ok(stopping=True)
            # parse_request validated op against OPS, so this is only
            # reachable when an op is added there without a branch here —
            # exactly the drift WIRE002 flags at lint time.
            return protocol.error(f"unhandled op {op!r}")
        except (ValueError, TypeError, KeyError) as exc:
            return protocol.error(str(exc))

    def _op_submit(self, message: dict) -> dict:
        jobs = message.get("jobs")
        if not isinstance(jobs, list) or not jobs:
            return protocol.error("submit needs a non-empty 'jobs' list")
        priority = int(message.get("priority", 0))
        decoded = []
        for wire in jobs:
            job = any_job_from_wire(wire)  # raises ValueError on bad wire
            if isinstance(job, Job):
                kind = "sim"
            elif isinstance(job, CampaignJob):
                kind = "campaign"
            else:
                kind = "security"
            decoded.append((kind, job, self.key_for(job)))
        job_ids = []
        keys = []
        for kind, job, key in decoded:
            record = self.queue.submit(kind, job, key, priority)
            record.event = asyncio.Event()
            job_ids.append(record.job_id)
            keys.append(key)
            self._m_submitted.inc()
        self._update_gauges()
        if self._wake is not None:
            self._wake.set()
        return protocol.ok(job_ids=job_ids, keys=keys)

    def _record_for(self, message: dict) -> JobRecord:
        job_id = message.get("id")
        record = self.queue.get(job_id) if isinstance(job_id, str) else None
        if record is None:
            raise ValueError(f"unknown job id {job_id!r}")
        return record

    def _op_status(self, message: dict) -> dict:
        if message.get("id") is not None:
            records = [self._record_for(message)]
        else:
            records = sorted(
                self.queue.records.values(), key=lambda r: r.seq
            )
        return protocol.ok(jobs=[
            r.status_record(
                snapshots=len(self.cache.snapshot_boundaries(r.key))
            )
            for r in records
        ])

    async def _op_result(self, message: dict) -> dict:
        record = self._record_for(message)
        if message.get("wait") and record.state in (QUEUED, RUNNING):
            timeout = message.get("timeout")
            assert record.event is not None
            try:
                await asyncio.wait_for(
                    record.event.wait(),
                    timeout=float(timeout) if timeout is not None else None,
                )
            except asyncio.TimeoutError:
                return protocol.error(
                    f"timed out waiting for {record.job_id}",
                    state=record.state,
                )
        if record.state != DONE:
            return protocol.error(
                f"job {record.job_id} is {record.state}, not done",
                state=record.state,
                job_error=record.error,
            )
        payload = self._cached_payload(record)
        if payload is None:
            return protocol.error(
                f"result for {record.job_id} was evicted from the cache",
                state=record.state,
            )
        return protocol.ok(
            state=record.state,
            kind=record.kind,
            from_cache=record.from_cache,
            result=payload,
        )

    def _op_cancel(self, message: dict) -> dict:
        record = self._record_for(message)
        if record.state == QUEUED:
            record.transition(CANCELLED)
            self._m_cancelled.inc()
            if record.event is not None:
                record.event.set()
        elif record.state == RUNNING:
            if record.worker_slot is not None:
                handle = self._slots.pop(record.worker_slot, None)
                if handle is not None:
                    handle.kill()
            self._inflight.pop(record.key, None)
            record.transition(CANCELLED)
            self._m_cancelled.inc()
            if record.event is not None:
                record.event.set()
            # Followers of a cancelled primary go back to the queue: the
            # twin's cancellation says nothing about *their* desired state.
            for follower in record.followers:
                self.queue.requeue(follower)
            record.followers = []
        self._update_gauges()
        return protocol.ok(state=record.state)

    def _op_cache(self) -> dict:
        return protocol.ok(
            cache=self.cache.stats(),
            metrics=self.metrics.snapshot(),
            queue_depth=self.queue.depth(),
            workers={
                "total": self.workers,
                "busy": len(self._slots),
            },
        )
