"""Sweep-service workers: one OS process per running job, heartbeats, and
the crash-visible completion contract.

A worker is a real ``multiprocessing.Process`` (not a pool member) so the
daemon can observe its death directly: a SIGKILL'd worker has a negative
``exitcode`` instead of wedging a shared pool. The completion contract is
filesystem-based and idempotent — the worker executes its job through the
existing runner entry points (:func:`repro.analysis.runner._execute` /
``_execute_security``) and **publishes the result into the shared
ResultCache**, then exits 0. The daemon never parses worker stdout; it
reads the cache. A worker that dies mid-job leaves, at worst, the segment
snapshots it already wrote — which is exactly what the retry path resumes
from.

Heartbeats: a daemon thread inside the worker touches a per-slot
heartbeat file every ``interval`` seconds through the quarantined
:class:`~repro.svc.clock.Clock`. The scheduler treats a silent-but-alive
worker (hung, not dead) the same as a crashed one once the heartbeat goes
stale.
"""

from __future__ import annotations

import multiprocessing
import threading
from dataclasses import dataclass
from typing import Optional

from repro.svc.clock import CLOCK, Clock

#: Default seconds between heartbeat touches.
HEARTBEAT_INTERVAL = 0.5


def _heartbeat_loop(path: str, interval: float,
                    stop: threading.Event) -> None:
    """Touch ``path`` every ``interval`` seconds until ``stop`` is set."""
    while True:
        try:
            CLOCK.touch(path)
        except OSError:
            pass
        if stop.wait(interval):
            return


def worker_main(spec: dict) -> None:
    """Worker process entry point (module-level: picklable under spawn).

    ``spec`` fields:

    * ``kind`` — ``"sim"``, ``"security"``, or ``"campaign"``
    * ``payload`` — the :func:`repro.analysis.runner._execute` tuple
      (sim) or the job dataclass itself (security / campaign)
    * ``cache_dir`` / ``schema`` / ``key`` — where to publish the result
    * ``heartbeat`` — heartbeat file path (optional)
    * ``interval`` — seconds between heartbeat touches

    Campaign workers additionally persist their seed-pool frontier into
    the cache directory mid-search (``<key>.part.json``), so a killed
    worker's retry resumes the bisection from the last pool extension —
    the campaign twin of resuming a sim from its segment snapshots.
    """
    from repro.analysis.runner import (
        ResultCache,
        _execute,
        _execute_campaign,
        _execute_security,
    )

    stop = threading.Event()
    beat: Optional[threading.Thread] = None
    if spec.get("heartbeat"):
        beat = threading.Thread(
            target=_heartbeat_loop,
            args=(spec["heartbeat"],
                  spec.get("interval", HEARTBEAT_INTERVAL), stop),
            daemon=True,
        )
        beat.start()
    try:
        cache = ResultCache(spec["cache_dir"], spec["schema"])
        if spec["kind"] == "sim":
            result = _execute(spec["payload"])
            cache.put(spec["key"], result)
        elif spec["kind"] == "security":
            raw = _execute_security(spec["payload"])
            cache.put_security(spec["key"], raw)
        elif spec["kind"] == "campaign":
            record = _execute_campaign(
                (spec["payload"], spec["cache_dir"], spec["key"])
            )
            cache.put_campaign(spec["key"], record)
        else:
            raise ValueError(f"unknown worker kind {spec['kind']!r}")
    finally:
        stop.set()
        if beat is not None:
            beat.join(timeout=2.0)


@dataclass
class WorkerHandle:
    """The daemon's view of one live worker process."""

    slot: int
    job_id: str
    process: multiprocessing.Process
    heartbeat_path: str
    clock: Clock

    @classmethod
    def spawn(cls, slot: int, job_id: str, spec: dict,
              heartbeat_path: str, clock: Clock = CLOCK) -> "WorkerHandle":
        """Start one worker process for ``spec`` (see :func:`worker_main`)."""
        spec = dict(spec, heartbeat=heartbeat_path)
        clock.touch(heartbeat_path)  # a fresh worker starts un-stale
        process = multiprocessing.Process(
            target=worker_main, args=(spec,), daemon=True
        )
        process.start()
        return cls(
            slot=slot,
            job_id=job_id,
            process=process,
            heartbeat_path=heartbeat_path,
            clock=clock,
        )

    @property
    def pid(self) -> Optional[int]:
        return self.process.pid

    def alive(self) -> bool:
        """Whether the worker process is still running."""
        return self.process.is_alive()

    @property
    def exitcode(self) -> Optional[int]:
        return self.process.exitcode

    def heartbeat_age(self) -> float:
        """Seconds since the worker last touched its heartbeat file."""
        return self.clock.age_of(self.heartbeat_path)

    def kill(self) -> None:
        """Forcibly stop the worker (terminate, then kill) and reap it."""
        if self.process.is_alive():
            self.process.terminate()
            self.process.join(timeout=1.0)
        if self.process.is_alive():
            self.process.kill()
            self.process.join(timeout=5.0)

    def reap(self) -> None:
        """Join a finished process so it never lingers as a zombie."""
        self.process.join(timeout=5.0)
