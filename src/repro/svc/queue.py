"""Deterministic priority queue and job records for the sweep service.

Ordering is a pure function of ``(-priority, submit sequence)``: higher
priority first, FIFO within a priority class. Nothing here reads a clock
— the submit sequence is assigned by arrival at the daemon's (single
threaded) event loop, so two daemons replaying the same submit stream
dispatch in the same order. A retried job keeps its original sequence
number, which puts a crashed shard back at the *head* of its priority
class: resuming half-done work beats starting fresh work.

States and transitions::

    queued ──→ running ──→ done
      │           │   └──→ failed      (worker crashed > max_retries)
      │           └──────→ queued      (worker crashed, retry)
      └──→ cancelled ←────┘            (cancel op)

Every transition is appended to the record's ``history``, so clients can
assert the exact lifecycle a job went through.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Dict, List, Optional

QUEUED = "queued"
RUNNING = "running"
DONE = "done"
FAILED = "failed"
CANCELLED = "cancelled"

#: States a job can still leave.
ACTIVE_STATES = (QUEUED, RUNNING)
#: States a job never leaves.
TERMINAL_STATES = (DONE, FAILED, CANCELLED)


@dataclass
class JobRecord:
    """One submitted job's full service-side lifecycle."""

    job_id: str
    kind: str                 # "sim" | "security" | "campaign"
    job: object               # runner Job / SecurityJob / CampaignJob
    key: str                  # content-addressed cache key
    priority: int
    seq: int
    state: str = QUEUED
    attempts: int = 0         # worker launches so far
    worker_slot: Optional[int] = None
    worker_pid: Optional[int] = None
    error: Optional[str] = None
    from_cache: bool = False  # answered without executing
    resumed_from: Optional[int] = None  # segment boundary of last resume
    merged_into: Optional[str] = None   # job_id of the in-flight twin
    history: List[str] = field(default_factory=lambda: [QUEUED])
    #: Records with the same cache key that arrived while this one was
    #: in flight; completed together with it (the dedup'd-store path).
    followers: List["JobRecord"] = field(default_factory=list)
    #: Completion signal (set by the scheduler's event loop). Typed as
    #: object so this module stays importable without asyncio running.
    event: Optional[object] = None

    def transition(self, state: str) -> None:
        """Move to ``state``, recording it in the history."""
        self.state = state
        self.history.append(state)

    def status_record(self, snapshots: int = 0) -> dict:
        """The plain-JSON status view served to clients."""
        return {
            "id": self.job_id,
            "kind": self.kind,
            "state": self.state,
            "priority": self.priority,
            "seq": self.seq,
            "attempts": self.attempts,
            "worker_slot": self.worker_slot,
            "worker_pid": self.worker_pid,
            "key": self.key,
            "error": self.error,
            "from_cache": self.from_cache,
            "resumed_from": self.resumed_from,
            "merged_into": self.merged_into,
            "history": list(self.history),
            "snapshots": snapshots,
        }


class SweepQueue:
    """The deterministic ready queue: ``(-priority, seq)`` heap order.

    ``pop`` skips records that left the queued state while heaped
    (cancellation is lazy: the heap entry stays, the record's state is
    the truth). ``requeue`` re-heaps a record under its *original*
    sequence number.
    """

    def __init__(self) -> None:
        self._heap: List[tuple] = []
        self._next_seq = 0
        self.records: Dict[str, JobRecord] = {}

    # ------------------------------------------------------------------
    def submit(self, kind: str, job: object, key: str,
               priority: int = 0) -> JobRecord:
        """Enqueue one job; assigns the next submit sequence number."""
        seq = self._next_seq
        self._next_seq += 1
        record = JobRecord(
            job_id=f"J{seq:06d}",
            kind=kind,
            job=job,
            key=key,
            priority=priority,
            seq=seq,
        )
        self.records[record.job_id] = record
        heapq.heappush(self._heap, (-priority, seq, record.job_id))
        return record

    def requeue(self, record: JobRecord) -> None:
        """Put a (crashed) record back, keeping its original seq."""
        record.transition(QUEUED)
        record.worker_slot = None
        record.worker_pid = None
        heapq.heappush(
            self._heap, (-record.priority, record.seq, record.job_id)
        )

    def pop(self) -> Optional[JobRecord]:
        """The next queued record in deterministic order (None if idle)."""
        while self._heap:
            _, _, job_id = heapq.heappop(self._heap)
            record = self.records[job_id]
            if record.state == QUEUED:
                return record
        return None

    def depth(self) -> int:
        """How many records are currently in the queued state."""
        return sum(1 for r in self.records.values() if r.state == QUEUED)

    def get(self, job_id: str) -> Optional[JobRecord]:
        """Record lookup by id."""
        return self.records.get(job_id)

    def __len__(self) -> int:
        return len(self.records)
