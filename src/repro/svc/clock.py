"""The sweep service's quarantined wall clock.

Everything in :mod:`repro.svc` that must know about real time — worker
heartbeat ages, heartbeat touch intervals, client wait timeouts — goes
through the :class:`Clock` object defined here, and nothing else in the
package may read the host clock at all (the ``SVC001`` lint pass enforces
it). Two properties follow by construction:

* **Queue ordering stays deterministic.** Dispatch order is a pure
  function of ``(priority, submit sequence)``; no scheduling decision can
  accidentally grow a wall-clock dependence, because the only clock in
  scope lives behind an object the ordering code never receives.
* **Tests can substitute time.** A fake ``Clock`` makes heartbeat-timeout
  paths testable without real sleeps.

This mirrors the simulator's own quarantine: deterministic metrics live
in :mod:`repro.obs.metrics`, wall-clock profiling in the separately
quarantined :mod:`repro.obs.profile`.
"""

from __future__ import annotations

import os
import time


class Clock:
    """Monotonic-ish wall-clock access for heartbeats and timeouts only.

    Values returned by :meth:`now` are *seconds on the host clock* and
    must never flow into queue ordering, cache keys, or any deterministic
    artifact — they exist to answer "has this worker gone quiet?" and
    "has this wait expired?".
    """

    def now(self) -> float:
        """Seconds on a monotonic clock (never goes backwards)."""
        return time.monotonic()

    def sleep(self, seconds: float) -> None:
        """Block the calling thread for ``seconds``."""
        time.sleep(seconds)

    def touch(self, path: str) -> None:
        """Stamp ``path``'s mtime with the current wall time (heartbeat)."""
        with open(path, "a"):
            pass
        os.utime(path)

    def age_of(self, path: str) -> float:
        """Seconds since ``path`` was last touched (inf if unreadable).

        Heartbeat files are stamped with wall time (``os.utime``), so the
        age is computed against ``time.time`` rather than the monotonic
        clock.
        """
        try:
            mtime = os.stat(path).st_mtime
        except OSError:
            return float("inf")
        return max(0.0, time.time() - mtime)


#: The package-wide clock instance. Import *this object*; constructing
#: private clocks scatters the quarantine.
CLOCK = Clock()
