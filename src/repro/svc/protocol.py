"""The sweep-service wire protocol: newline-delimited JSON over a socket.

One request per line, one response per line, in order. Every message is a
single JSON object; requests carry an ``op`` plus op-specific fields,
responses carry ``ok`` (bool) plus either the op's payload or an
``error`` string. The protocol is versioned (:data:`PROTOCOL_VERSION`,
echoed by ``ping``) independently of the job wire schema
(:data:`repro.analysis.runner.JOB_WIRE_SCHEMA_VERSION`, which versions the
job payloads riding inside ``submit``).

Ops
---

========  ============================================================
op        request fields → response payload
========  ============================================================
ping      → ``protocol``, ``server``, ``workers``
submit    ``jobs`` (list of job wire dicts), ``priority`` (int, default
          0) → ``job_ids``, ``keys``
status    ``id`` (optional) → ``jobs`` (list of status records)
result    ``id``, ``wait`` (bool), ``timeout`` (seconds) → ``state``,
          ``kind``, ``result`` (result dict / security list)
cancel    ``id`` → ``state``
cache     → ``cache`` (occupancy), ``metrics`` (obs snapshot),
          ``queue_depth``, ``workers``
shutdown  → ``stopping``
========  ============================================================

Framing is plain ``\\n``-terminated UTF-8; a request over
:data:`MAX_LINE_BYTES` is refused (protects the daemon from a runaway
client). All encoding is canonical (sorted keys) so identical payloads
are byte-identical on the wire.
"""

from __future__ import annotations

import json
from typing import Dict, Optional, Tuple

#: Bump on any incompatible change to the request/response envelope.
PROTOCOL_VERSION = 1

#: Hard per-line bound, requests and responses alike.
MAX_LINE_BYTES = 8 * 1024 * 1024

#: The closed set of request operations.
OPS = ("ping", "submit", "status", "result", "cancel", "cache", "shutdown")


class ProtocolError(ValueError):
    """A malformed or oversized wire message."""


def encode(message: dict) -> bytes:
    """One canonical ndjson line (sorted keys, compact separators)."""
    line = json.dumps(message, sort_keys=True, separators=(",", ":"))
    data = line.encode("utf-8") + b"\n"
    if len(data) > MAX_LINE_BYTES:
        raise ProtocolError(
            f"message of {len(data)} bytes exceeds the "
            f"{MAX_LINE_BYTES}-byte line bound"
        )
    return data


def decode(line: bytes) -> dict:
    """Parse one wire line into a message object."""
    if len(line) > MAX_LINE_BYTES:
        raise ProtocolError(
            f"line of {len(line)} bytes exceeds the "
            f"{MAX_LINE_BYTES}-byte line bound"
        )
    try:
        message = json.loads(line.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"undecodable wire line: {exc}") from None
    if not isinstance(message, dict):
        raise ProtocolError(
            f"wire message must be an object, got {type(message).__name__}"
        )
    return message


def parse_request(message: dict) -> Tuple[str, dict]:
    """Validate a request envelope; returns ``(op, message)``."""
    op = message.get("op")
    if op not in OPS:
        raise ProtocolError(f"unknown op {op!r} (expected one of {OPS})")
    return op, message


def ok(**payload: object) -> dict:
    """A success response envelope."""
    out: Dict[str, object] = {"ok": True}
    out.update(payload)
    return out


def error(message: str, **payload: object) -> dict:
    """An error response envelope."""
    out: Dict[str, object] = {"ok": False, "error": message}
    out.update(payload)
    return out


def response_error(response: dict) -> Optional[str]:
    """The error string of a failed response, None for a success."""
    if not isinstance(response, dict) or response.get("ok") is not True:
        if isinstance(response, dict):
            return str(response.get("error", "malformed response"))
        return "malformed response"
    return None
