"""Security analysis: analytical threshold models and attack simulation.

* :mod:`repro.security.mint_model` — Appendix A: tolerated Rowhammer
  threshold of MINT-style trackers as a function of window size.
* :mod:`repro.security.fractal_model` — Appendix B: damage/escape model of
  Fractal Mitigation and the TRH-D >= 53 safety bound.
* :mod:`repro.security.thresholds` — the measured TRH history (Table II,
  Fig. 1a).
* :mod:`repro.security.montecarlo` — logical-time attack simulation against
  tracker + mitigation pairs (transitive/Half-Double patterns included).
* :mod:`repro.security.kernels` — the vectorized batch engine: S seeds x P
  patterns per call, exactly equal to the scalar reference.
* :mod:`repro.security.campaign` — adaptive empirical threshold search:
  integer bisection over candidate thresholds with SPRT early-stopping
  per probe, sharing one seed-pressure pool per cell.
* :mod:`repro.security.blast` — disturbance-vs-distance model (Blaster).
* :mod:`repro.security.ecc` — SECDED tolerance model (Section VII-E).
"""

from repro.security.fractal_model import (
    FM_SAFE_TRHD,
    fm_damage,
    fm_escape_probability,
    fm_max_damage,
    mint_escape_probability,
)
from repro.security.mint_model import (
    MTTF_TARGET_YEARS,
    mint_tolerated_trhd,
    mint_tolerated_trhs,
)
from repro.security.kernels import (
    BlastPolicySpec,
    CipherRowRemapper,
    FractalPolicySpec,
    GrapheneSpec,
    MintSpec,
    ParaSpec,
    build_pattern,
    run_attack_batch,
)
from repro.security.campaign import (
    CampaignJob,
    ChunkSchedule,
    SprtConfig,
    oracle_campaign_cell,
    run_campaign_cell,
    search_smallest_safe,
    sprt_probe,
    summarize_campaign,
)
from repro.security.montecarlo import AttackResult, run_attack
from repro.security.thresholds import (
    TRH_HISTORY,
    SweepPoint,
    montecarlo_tolerated_threshold,
    threshold_sweep,
)

__all__ = [
    "BlastPolicySpec",
    "CampaignJob",
    "ChunkSchedule",
    "CipherRowRemapper",
    "FractalPolicySpec",
    "GrapheneSpec",
    "MintSpec",
    "ParaSpec",
    "SprtConfig",
    "SweepPoint",
    "build_pattern",
    "montecarlo_tolerated_threshold",
    "oracle_campaign_cell",
    "run_attack_batch",
    "run_campaign_cell",
    "search_smallest_safe",
    "sprt_probe",
    "summarize_campaign",
    "threshold_sweep",
    "FM_SAFE_TRHD",
    "fm_damage",
    "fm_escape_probability",
    "fm_max_damage",
    "mint_escape_probability",
    "MTTF_TARGET_YEARS",
    "mint_tolerated_trhd",
    "mint_tolerated_trhs",
    "AttackResult",
    "run_attack",
    "TRH_HISTORY",
]
