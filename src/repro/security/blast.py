"""Blast-radius characterization model (Blaster [26], Section V footnote 3).

Rowhammer disturbance decays steeply with distance from the aggressor: the
Blaster characterization the paper cites finds the d = 2 neighbour suffers
less than 10 % of the d = 1 charge loss. Fractal Mitigation's refresh
budget allocation (always d = 1, probability 2^(1-d) beyond) is justified
exactly by matching refresh probability to disturbance:

* :func:`relative_damage` — per-activation charge loss at distance d,
  relative to d = 1 (exponential decay fitted to the <10 %-at-d=2 point);
* :func:`effective_pressure` — activations weighted by relative damage;
* :func:`fm_budget_ratio` — FM refresh probability over relative damage: a
  flat (distance-independent) protection margin is the design's soundness
  argument, quantified.
"""

from __future__ import annotations

from typing import Tuple

from repro.core.mitigation import FractalMitigation

#: Fraction of d=1 damage observed at d=2 (Blaster: "less than 10 %").
DISTANCE_2_FRACTION = 0.10

#: Per-activation damage a victim at distance >= 2 takes in the discrete
#: pressure accounting (the Monte-Carlo harness and the timing audit both
#: round the Blaster "< 10 % at d = 2" point to a flat 0.1).
FAR_DAMAGE = 0.1


def hammer_profile(blast_radius: int) -> Tuple[Tuple[int, float], ...]:
    """The shared blast-profile table: ``((offset, damage), ...)``.

    One activation of row r bumps ``pressure[r + offset] += damage`` for
    every entry, in table order (distance 1 before distance 2, minus side
    before plus side — the order every pressure-accounting engine in
    :mod:`repro.security` must apply so scalar and vectorized replays stay
    bit-identical, ties in max-pressure rows included). ``blast_radius=1``
    yields only the d = 1 pair, with no distance-2 ``FAR_DAMAGE``
    bookkeeping at all.
    """
    if blast_radius < 1:
        raise ValueError("blast_radius must be at least 1")
    profile = []
    for dist in range(1, blast_radius + 1):
        damage = 1.0 if dist == 1 else FAR_DAMAGE
        profile.append((-dist, damage))
        profile.append((dist, damage))
    return tuple(profile)


def relative_damage(distance: int, d2_fraction: float = DISTANCE_2_FRACTION) -> float:
    """Charge loss per activation at ``distance``, relative to d = 1.

    Modeled as exponential decay through (1, 1.0) and (2, d2_fraction),
    the standard fit to disturbance-vs-distance characterizations.
    """
    if distance < 1:
        raise ValueError("distance must be >= 1")
    if not 0.0 < d2_fraction < 1.0:
        raise ValueError("d2_fraction must be in (0, 1)")
    return d2_fraction ** (distance - 1)


def effective_pressure(activations: float, distance: int) -> float:
    """Damage-equivalent d = 1 activations for ``activations`` at a
    distance (how the Monte-Carlo harness weights far neighbours)."""
    if activations < 0:
        raise ValueError("activations must be non-negative")
    return activations * relative_damage(distance)


def fm_budget_ratio(distance: int) -> float:
    """FM refresh probability divided by relative damage at ``distance``.

    A ratio >= 1 means FM refreshes the distance at least as often as its
    damage share requires; growing ratios at larger distances mean the
    2^(1-d) schedule is *conservative* relative to the 10x-per-hop damage
    decay — the headroom behind footnote 3's "wasteful" observation about
    always refreshing d = 2.
    """
    refresh = FractalMitigation.refresh_probability(distance)
    damage = relative_damage(distance)
    if damage == 0.0:
        raise ValueError("damage underflow at this distance")
    return refresh / damage


def max_protected_distance() -> int:
    """Largest distance FM's 16-bit random number can ever refresh."""
    return FractalMitigation.RAND_BITS + 2
