"""REGA model [30] (Section VII-D).

REGA redesigns the DRAM mat so every demand activation *also* drives
refresh-generating activations to other rows of the subarray via spare
row-buffer circuitry. With k refreshes per ACT, a subarray's rows are all
replenished every rows/k activations — a deterministic guarantee with no
tracker at all. The catch is circuit time: each extra refresh lengthens the
row cycle, and the paper dismisses REGA for the sub-100 regime because the
required k is unaffordable. This model quantifies that argument.
"""

from __future__ import annotations

import math

#: Fractional tRC increase per refresh-generating activation beyond the
#: first (fit to REGA's published V1/V2 operating points: ~45 -> 60 ns).
TRC_PENALTY_PER_REFRESH = 0.33


def rega_tolerated_trhd(
    refreshes_per_act: int, rows_per_subarray: int = 512
) -> int:
    """TRH-D guaranteed by REGA-V<k>.

    Round-robin refresh means any victim row waits at most
    rows/k activations between replenishments; with double-sided damage
    the tolerated TRH-D is half the single-sided bound.
    """
    if refreshes_per_act < 1:
        raise ValueError("refreshes_per_act must be >= 1")
    if rows_per_subarray < 2:
        raise ValueError("rows_per_subarray must be >= 2")
    worst_wait = rows_per_subarray / refreshes_per_act
    return math.ceil(worst_wait / 2.0) * 2  # even, conservative


def rega_trc_factor(refreshes_per_act: int) -> float:
    """tRC inflation for REGA-V<k> relative to an unmodified device."""
    if refreshes_per_act < 1:
        raise ValueError("refreshes_per_act must be >= 1")
    return 1.0 + TRC_PENALTY_PER_REFRESH * (refreshes_per_act - 1)


def rega_k_for_trhd(trhd: int, rows_per_subarray: int = 512) -> int:
    """Smallest refreshes-per-ACT achieving a TRH-D target."""
    if trhd < 1:
        raise ValueError("trhd must be positive")
    k = 1
    while rega_tolerated_trhd(k, rows_per_subarray) > trhd:
        k += 1
        if k > rows_per_subarray:
            raise ValueError("target unreachable")
    return k
