"""ECC-based Rowhammer tolerance model (Section VII-E).

SafeGuard, CSI-RH, PT-Guard, and Cube repurpose ECC to *correct* Rowhammer
bit flips instead of preventing them. The paper's criticism: "uncorrectable
failures can still occur, leading to data loss". This module quantifies
that with the standard SECDED math: per-word flip counts are binomial in
the raw bit-flip probability, SECDED(72,64) corrects exactly one flip per
word, and multi-flip words are uncorrectable (or worse, miscorrected).

The model shows the cliff: ECC looks great while flips are rare, but the
uncorrectable rate grows ~quadratically with hammer pressure — and a
targeted attacker concentrates pressure, which is why the paper prevents
activations rather than patching their effects.
"""

from __future__ import annotations

import math
from dataclasses import dataclass


@dataclass(frozen=True)
class SecdedCode:
    """A SECDED code correcting 1 and detecting 2 flips per word."""

    data_bits: int = 64
    check_bits: int = 8

    @property
    def word_bits(self) -> int:
        return self.data_bits + self.check_bits

    def _binomial(self, k: int, p: float) -> float:
        n = self.word_bits
        return math.comb(n, k) * p**k * (1 - p) ** (n - k)

    def p_correctable(self, bit_flip_probability: float) -> float:
        """P(word has exactly one flip) — silently repaired."""
        _check_probability(bit_flip_probability)
        return self._binomial(1, bit_flip_probability)

    def p_uncorrectable(self, bit_flip_probability: float) -> float:
        """P(word has two or more flips) — detected-or-worse data loss."""
        _check_probability(bit_flip_probability)
        p = bit_flip_probability
        return 1.0 - self._binomial(0, p) - self._binomial(1, p)


def _check_probability(p: float) -> None:
    if not 0.0 <= p <= 1.0:
        raise ValueError("probability must be in [0, 1]")


def flip_probability(pressure: float, trh: float, spread: float = 0.15) -> float:
    """Per-bit flip probability as hammer pressure approaches the threshold.

    Bit thresholds in a row are distributed around the nominal TRH; the
    weakest bits flip first. Modeled as a logistic in log-pressure with
    ``spread`` controlling the threshold variance across bits: at
    pressure = TRH, half the marginal bits of the victim row have flipped.
    The absolute scale (fraction of bits that are Rowhammer-weak at all,
    ~1e-5 per characterization studies) multiplies the logistic.
    """
    if pressure < 0 or trh <= 0:
        raise ValueError("pressure must be >= 0 and trh > 0")
    if spread <= 0:
        raise ValueError("spread must be positive")
    weak_fraction = 1e-5
    if pressure == 0:
        return 0.0
    x = (math.log(pressure) - math.log(trh)) / spread
    logistic = 1.0 / (1.0 + math.exp(-x))
    return weak_fraction * logistic


def uncorrectable_rate_per_gb(
    pressure: float, trh: float, code: SecdedCode = SecdedCode()
) -> float:
    """Expected uncorrectable words per GB of hammered victim data."""
    p_bit = flip_probability(pressure, trh)
    words_per_gb = (1 << 30) * 8 // code.data_bits
    return words_per_gb * code.p_uncorrectable(p_bit)
