"""Logical-time attack simulation against tracker + mitigation pairs.

The harness replays a per-bank row-activation sequence (see
:mod:`repro.workloads.attacks`) through a tracker and mitigation policy at
activation granularity — no DRAM timing, just the security bookkeeping:

* every activation of row r hammers its neighbours: ``pressure[v]`` grows
  for v at distances within ``blast_radius`` (nearer neighbours take full
  damage, distance-2 takes ``FAR_DAMAGE`` per the Blaster characterization
  the paper cites: < 10 % charge loss at d = 2);
* every ``window`` activations the tracker nominates an aggressor and the
  policy's victim refreshes reset those rows' pressure — but each refresh is
  itself an activation that hammers *its* neighbours (transitive attacks);
* the run records the maximum pressure any row ever reaches: the minimum
  Rowhammer threshold this defense held in this run.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence

from repro.core.mitigation import MitigationPolicy
from repro.security.blast import FAR_DAMAGE, hammer_profile
from repro.trackers.base import Tracker

__all__ = ["FAR_DAMAGE", "AttackResult", "run_attack"]


@dataclass
class AttackResult:
    """Outcome of one attack replay."""

    max_pressure: float = 0.0
    max_pressure_row: int = -1
    activations: int = 0
    mitigations: int = 0
    victim_refreshes: int = 0
    pressure: Dict[int, float] = field(default_factory=dict)

    def tolerated_threshold(self) -> float:
        """A defense is safe in this run for TRH above the max pressure."""
        return self.max_pressure


def run_attack(
    pattern: Sequence[int],
    tracker: Tracker,
    policy: MitigationPolicy,
    window: int,
    blast_radius: int = 2,
    refresh_interval_acts: Optional[int] = None,
    remapper=None,
) -> AttackResult:
    """Replay ``pattern`` and return the worst per-row hammer pressure.

    ``window`` is the mitigation cadence (AutoRFMTH). If
    ``refresh_interval_acts`` is given, all pressure resets that often
    (modeling the tREFW periodic refresh). ``remapper`` (a
    :class:`~repro.core.rowswap.RowSwapRemapper`) makes the accounting
    remap-aware: the pattern names *logical* rows, pressure accrues on
    *physical* neighbours, and row-swap mitigations relocate aggressors.
    """
    if window < 1:
        raise ValueError("window must be at least 1")
    if blast_radius < 1:
        raise ValueError("blast_radius must be at least 1")

    from repro.core.rowswap import MigrationMitigation

    swap_policy = isinstance(policy, MigrationMitigation)
    if swap_policy and remapper is None:
        remapper = policy  # MigrationMitigation exposes physical_row

    pressure: Dict[int, float] = defaultdict(float)
    result = AttackResult()
    position = 0
    profile = hammer_profile(blast_radius)

    def hammer(row: int) -> None:
        for offset, damage in profile:
            victim = row + offset
            if victim < 0:
                continue
            pressure[victim] += damage
            if pressure[victim] > result.max_pressure:
                result.max_pressure = pressure[victim]
                result.max_pressure_row = victim

    def physical(row: int) -> int:
        return remapper.physical_row(row) if remapper is not None else row

    for row in pattern:
        if row < 0:
            raise ValueError("row indices must be non-negative")
        tracker.on_activation(row)
        phys = physical(row)
        hammer(phys)
        # Activating a row restores its own charge: a row cannot be its own
        # Rowhammer victim.
        pressure[phys] = 0.0
        result.activations += 1
        position += 1

        if position >= window:
            position = 0
            request = tracker.select_for_mitigation()
            if request is not None:
                if swap_policy:
                    # Row migration: the aggressor moves; its accumulated
                    # pressure against the old neighbourhood is orphaned
                    # (the attacker must re-discover adjacency).
                    policy.relocate(request)
                    result.mitigations += 1
                else:
                    victims = policy.victims(request)
                    result.mitigations += 1
                    result.victim_refreshes += len(victims)
                    for victim in victims:
                        # The refresh replenishes the victim but hammers
                        # *its* neighbours (the transitive-attack vector).
                        phys_victim = physical(victim)
                        hammer(phys_victim)
                        pressure[phys_victim] = 0.0
                        tracker.on_victim_refresh(victim, request.level)

        if (
            refresh_interval_acts is not None
            and result.activations % refresh_interval_acts == 0
        ):
            pressure.clear()

    result.pressure = dict(pressure)
    return result
