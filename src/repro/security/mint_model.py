"""Analytical model for MINT + (Auto)RFM (Appendix A).

MINT selects each activation of a W-activation window with probability p
(p = 1/W with Fractal Mitigation; p = 1/(W+1) with recursive mitigation's
reserved transitive slot). For the strongest attack — W unique rows activated
round-robin, (ABCD)^K — the model gives:

* escape probability of one row over T activations: ``P_T = (1 - p)^T``
  (Eq. 1);
* epoch time between mitigations of a given row:
  ``t_E = (1/p) * W * tRC + t_M`` (Eq. 2 with general p);
* failure rate over all W attacked rows: ``W * P_T / t_E`` (Eq. 4);
* solving ``MTTF = 1 / rate`` for T gives the tolerated single-sided
  threshold (Eq. 6), and TRH-D = T / 2 (Eq. 7).

With W = 4, tRC = 48 ns, t_M = 205 ns and a 10 000-year MTTF target the
model yields TRH-D 73 (FM) and 94 (RM); the paper reports 74 and 96 (it
rounds its operating points up conservatively — see EXPERIMENTS.md).
"""

from __future__ import annotations

import math

#: The paper's reliability target.
MTTF_TARGET_YEARS = 10_000.0

SECONDS_PER_YEAR = 365.25 * 24 * 3600.0


def mint_tolerated_trhs(
    window: int,
    recursive: bool = False,
    trc_ns: float = 48.0,
    tm_ns: float = 205.0,
    mttf_years: float = MTTF_TARGET_YEARS,
) -> float:
    """Tolerated single-sided threshold (T of Eq. 6) for MINT.

    ``recursive`` selects the W+1-slot variant (recursive mitigation);
    otherwise the W-slot variant used with Fractal Mitigation.
    """
    if window < 2:
        raise ValueError("window must be at least 2")
    if mttf_years <= 0:
        raise ValueError("mttf_years must be positive")
    slots = window + 1 if recursive else window
    p = 1.0 / slots
    epoch_ns = slots * window * trc_ns + tm_ns
    mttf_ns = mttf_years * SECONDS_PER_YEAR * 1e9
    # MTTF = t_E / (W * (1-p)^T)  =>  (1-p)^T = t_E / (W * MTTF)
    ratio = epoch_ns / (window * mttf_ns)
    return math.log(ratio) / math.log(1.0 - p)


def mint_tolerated_trhd(
    window: int,
    recursive: bool = False,
    trc_ns: float = 48.0,
    tm_ns: float = 205.0,
    mttf_years: float = MTTF_TARGET_YEARS,
) -> int:
    """Tolerated double-sided threshold, TRH-D = ceil(T / 2) (Eq. 7)."""
    t = mint_tolerated_trhs(window, recursive, trc_ns, tm_ns, mttf_years)
    return math.ceil(t / 2.0)


def mttf_years_for_threshold(
    trh_d: int,
    window: int,
    recursive: bool = False,
    trc_ns: float = 48.0,
    tm_ns: float = 205.0,
) -> float:
    """Inverse model: MTTF (Eq. 5) achieved at a given TRH-D."""
    if trh_d < 1:
        raise ValueError("trh_d must be positive")
    slots = window + 1 if recursive else window
    p = 1.0 / slots
    epoch_ns = slots * window * trc_ns + tm_ns
    t = 2.0 * trh_d
    mttf_ns = epoch_ns / (window * (1.0 - p) ** t)
    return mttf_ns / 1e9 / SECONDS_PER_YEAR
