"""Timing-level Rowhammer security audit.

The Monte-Carlo harness checks trackers at logical activation granularity;
this module audits an *actual timing simulation*: it replays the recorded
command log (ACTs, victim refreshes, REFs) through the same
pressure-accounting rules and reports the worst unmitigated hammer pressure
any row experienced. The threat-model success condition — "any row receives
more than the threshold number of activations without any intervening
mitigation" (Section II-A) — becomes directly checkable against the full
system: scheduler, queues, retries, ALERT machinery and all.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, Tuple

from repro.sim.cmdlog import ACT, REF, VICTIM_REFRESH, CommandLog
from repro.sim.config import SystemConfig

#: Relative damage a victim at distance 2 takes (Blaster, Section V fn. 3).
FAR_DAMAGE = 0.1


@dataclass
class HammerAudit:
    """Worst-case hammer pressure observed in a simulation."""

    max_pressure: float = 0.0
    max_pressure_bank: int = -1
    max_pressure_row: int = -1
    activations: int = 0
    victim_refreshes: int = 0
    pressure: Dict[Tuple[int, int], float] = field(default_factory=dict)

    def is_safe_for(self, trh: float) -> bool:
        """True when no row's pressure reached the given threshold."""
        return self.max_pressure < trh


def audit_hammer_pressure(
    log: CommandLog,
    config: SystemConfig,
    blast_radius: int = 2,
) -> HammerAudit:
    """Compute per-row hammer pressure from a recorded command stream.

    Rules mirror :mod:`repro.security.montecarlo`: an ACT of row r adds
    full damage to r +- 1 and ``FAR_DAMAGE`` to r +- 2; activating or
    victim-refreshing a row restores it; a REF models the per-tREFI
    refresh of 1/8192 of the rows — over a full tREFW every row resets,
    which short simulations never reach, so REF is conservatively ignored
    here (pressure only ever over-estimates).
    """
    config.validate()
    pressure: Dict[Tuple[int, int], float] = defaultdict(float)
    audit = HammerAudit()

    def bump(bank: int, row: int, amount: float) -> None:
        if not 0 <= row < config.rows_per_bank:
            return
        key = (bank, row)
        pressure[key] += amount
        if pressure[key] > audit.max_pressure:
            audit.max_pressure = pressure[key]
            audit.max_pressure_bank, audit.max_pressure_row = key

    for record in sorted(log.records, key=lambda r: r.time):
        if record.kind == ACT:
            audit.activations += 1
            for dist in range(1, blast_radius + 1):
                damage = 1.0 if dist == 1 else FAR_DAMAGE
                bump(record.bank, record.row - dist, damage)
                bump(record.bank, record.row + dist, damage)
            pressure[(record.bank, record.row)] = 0.0
        elif record.kind == VICTIM_REFRESH:
            audit.victim_refreshes += 1
            # The refresh restores the victim but hammers its neighbours
            # (the transitive vector), same as a row cycle.
            for dist in range(1, blast_radius + 1):
                damage = 1.0 if dist == 1 else FAR_DAMAGE
                bump(record.bank, record.row - dist, damage)
                bump(record.bank, record.row + dist, damage)
            pressure[(record.bank, record.row)] = 0.0
        elif record.kind == REF:
            continue  # conservative: see docstring

    audit.pressure = dict(pressure)
    return audit
