"""Timing-level Rowhammer security audit.

The Monte-Carlo harness checks trackers at logical activation granularity;
this module audits an *actual timing simulation*: it replays the recorded
command log (ACTs, victim refreshes, REFs) through the same
pressure-accounting rules and reports the worst unmitigated hammer pressure
any row experienced. The threat-model success condition — "any row receives
more than the threshold number of activations without any intervening
mitigation" (Section II-A) — becomes directly checkable against the full
system: scheduler, queues, retries, ALERT machinery and all.

Two backends compute the identical audit:

* ``backend="scalar"`` — the original record-at-a-time reference loop;
* ``backend="numpy"`` — a vectorized replay (default) that turns the log
  into per-cell event streams and computes every between-resets interval
  sum with one cumulative-sum pass per damage event.  Results are exactly
  equal, max-pressure tie-breaking included (see
  ``tests/test_security_kernels.py``).
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, Tuple

from repro.security.blast import FAR_DAMAGE, hammer_profile
from repro.sim.cmdlog import ACT, REF, VICTIM_REFRESH, CommandLog
from repro.sim.config import SystemConfig

__all__ = ["FAR_DAMAGE", "HammerAudit", "audit_hammer_pressure"]


@dataclass
class HammerAudit:
    """Worst-case hammer pressure observed in a simulation."""

    max_pressure: float = 0.0
    max_pressure_bank: int = -1
    max_pressure_row: int = -1
    activations: int = 0
    victim_refreshes: int = 0
    pressure: Dict[Tuple[int, int], float] = field(default_factory=dict)

    def is_safe_for(self, trh: float) -> bool:
        """True when no row's pressure reached the given threshold."""
        return self.max_pressure < trh


def audit_hammer_pressure(
    log: CommandLog,
    config: SystemConfig,
    blast_radius: int = 2,
    backend: str = "numpy",
) -> HammerAudit:
    """Compute per-row hammer pressure from a recorded command stream.

    Rules mirror :mod:`repro.security.montecarlo`: an ACT of row r adds
    full damage to r +- 1 and ``FAR_DAMAGE`` to r +- 2; activating or
    victim-refreshing a row restores it; a REF models the per-tREFI
    refresh of 1/8192 of the rows — over a full tREFW every row resets,
    which short simulations never reach, so REF is conservatively ignored
    here (pressure only ever over-estimates).
    """
    if backend == "numpy":
        return _audit_numpy(log, config, blast_radius)
    if backend != "scalar":
        raise ValueError(f"unknown backend {backend!r}")
    return _audit_scalar(log, config, blast_radius)


def _audit_scalar(
    log: CommandLog, config: SystemConfig, blast_radius: int
) -> HammerAudit:
    """Reference implementation: one record at a time."""
    config.validate()
    pressure: Dict[Tuple[int, int], float] = defaultdict(float)
    audit = HammerAudit()
    profile = hammer_profile(blast_radius)

    def bump(bank: int, row: int, amount: float) -> None:
        if not 0 <= row < config.rows_per_bank:
            return
        key = (bank, row)
        pressure[key] += amount
        if pressure[key] > audit.max_pressure:
            audit.max_pressure = pressure[key]
            audit.max_pressure_bank, audit.max_pressure_row = key

    for record in sorted(log.records, key=lambda r: r.time):
        if record.kind == ACT:
            audit.activations += 1
        elif record.kind == VICTIM_REFRESH:
            # The refresh restores the victim but hammers its neighbours
            # (the transitive vector), same as a row cycle.
            audit.victim_refreshes += 1
        else:
            continue  # REF is conservative: see docstring
        for offset, damage in profile:
            bump(record.bank, record.row + offset, damage)
        pressure[(record.bank, record.row)] = 0.0

    audit.pressure = dict(pressure)
    return audit


def _audit_numpy(
    log: CommandLog, config: SystemConfig, blast_radius: int
) -> HammerAudit:
    """Vectorized audit over per-cell event streams.

    Every hammering record (ACT or VICTIM_REFRESH) expands into its blast
    profile of damage events plus one reset event on the activated cell,
    all stamped with the record's chronological index; the expansion is one
    numpy broadcast per profile slot instead of a Python loop per record.
    Events are then grouped by cell and accumulated with one ``cumsum``
    per between-resets segment — ``cumsum`` folds left exactly like the
    scalar accumulator, so every per-cell pressure is bit-identical to the
    reference loop.  The scalar loop crowns the *first* event that
    strictly exceeds the running maximum, which over one stream equals the
    earliest damage event attaining the global maximum — so the winning
    (bank, row) is recovered exactly, tie-breaking included.
    """
    import numpy as np

    config.validate()
    audit = HammerAudit()
    profile = hammer_profile(blast_radius)

    records = sorted(log.records, key=lambda r: r.time)
    hammering = [r for r in records if r.kind in (ACT, VICTIM_REFRESH)]
    audit.activations = sum(1 for r in hammering if r.kind == ACT)
    audit.victim_refreshes = len(hammering) - audit.activations
    if not hammering:
        audit.pressure = {}
        return audit

    rows_per_bank = config.rows_per_bank
    banks = np.fromiter((r.bank for r in hammering), dtype=np.int64,
                        count=len(hammering))
    rows = np.fromiter((r.row for r in hammering), dtype=np.int64,
                       count=len(hammering))
    n = rows.shape[0]
    k = len(profile)

    # Event table: k damage events then 1 reset event per record, laid out
    # record-major / slot-minor so flattening reproduces the scalar apply
    # order exactly.
    cells = np.empty((n, k + 1), dtype=np.int64)
    deltas = np.empty((n, k + 1), dtype=np.float64)
    valid = np.empty((n, k + 1), dtype=bool)
    for slot, (offset, damage) in enumerate(profile):
        target = rows + offset
        cells[:, slot] = banks * rows_per_bank + target
        deltas[:, slot] = damage
        valid[:, slot] = (target >= 0) & (target < rows_per_bank)
    cells[:, k] = banks * rows_per_bank + rows
    deltas[:, k] = 0.0
    valid[:, k] = True
    is_reset = np.zeros((n, k + 1), dtype=bool)
    is_reset[:, k] = True

    flat_valid = valid.reshape(-1)
    order_cells = cells.reshape(-1)[flat_valid]
    order_deltas = deltas.reshape(-1)[flat_valid]
    order_reset = is_reset.reshape(-1)[flat_valid]
    total = order_cells.shape[0]
    seq = np.arange(total, dtype=np.int64)

    # Group events by cell, chronological order preserved inside a group.
    sort_idx = np.argsort(order_cells, kind="stable")
    g_cells = order_cells[sort_idx]
    g_deltas = order_deltas[sort_idx]
    g_reset = order_reset[sort_idx]
    g_seq = seq[sort_idx]
    group_starts = np.flatnonzero(
        np.concatenate(([True], g_cells[1:] != g_cells[:-1]))
    )
    group_bounds = np.append(group_starts, total)

    # Per-cell accumulation: cumsum per between-resets segment (exact
    # left-fold, bit-identical to the scalar accumulator); resets pin the
    # cell back to 0.0.
    pressure_after = np.empty(total, dtype=np.float64)
    reset_positions = np.flatnonzero(g_reset)
    for gi in range(group_bounds.shape[0] - 1):
        s, e = group_bounds[gi], group_bounds[gi + 1]
        lo = np.searchsorted(reset_positions, s)
        hi = np.searchsorted(reset_positions, e)
        seg_start = s
        for rp in reset_positions[lo:hi]:
            if rp > seg_start:
                pressure_after[seg_start:rp] = np.cumsum(
                    g_deltas[seg_start:rp]
                )
            pressure_after[rp] = 0.0
            seg_start = rp + 1
        if seg_start < e:
            pressure_after[seg_start:e] = np.cumsum(g_deltas[seg_start:e])

    damage_mask = ~g_reset
    if damage_mask.any():
        dmg_pressure = pressure_after[damage_mask]
        max_pressure = dmg_pressure.max()
        if max_pressure > 0.0:
            dmg_seq = g_seq[damage_mask]
            dmg_cell = g_cells[damage_mask]
            at_max = dmg_pressure == max_pressure
            winner = np.argmin(np.where(at_max, dmg_seq, total + 1))
            audit.max_pressure = float(max_pressure)
            cell = int(dmg_cell[winner])
            audit.max_pressure_bank = cell // rows_per_bank
            audit.max_pressure_row = cell % rows_per_bank

    # Final per-cell pressure: the last event's value in each group.
    final_idx = group_bounds[1:] - 1
    audit.pressure = {
        (int(c) // rows_per_bank, int(c) % rows_per_bank): float(p)
        for c, p in zip(g_cells[final_idx], pressure_after[final_idx])
    }
    return audit
