"""Rowhammer threshold history (Table II, Fig. 1a) and the empirical
Monte-Carlo tolerated-threshold sweep (Table III's experimental twin).

The analytical models (:mod:`repro.security.mint_model`) predict the
tolerated threshold per window; :func:`threshold_sweep` measures it by
replaying the window-optimal (ABCD)^K attack across many seeds with the
batched kernel engine and reporting the worst pressure any seed produced.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple


@dataclass(frozen=True)
class ThresholdEntry:
    """One DRAM generation's measured thresholds (activations)."""

    generation: str
    year: int
    trh_single: Optional[int]  # TRH-S, single-sided
    trh_double_low: Optional[int]  # TRH-D range
    trh_double_high: Optional[int]

    @property
    def representative(self) -> int:
        """The value the trend plot uses: TRH-D low end, else TRH-S."""
        if self.trh_double_low is not None:
            return self.trh_double_low
        if self.trh_single is not None:
            return self.trh_single
        raise ValueError(f"{self.generation} has no threshold data")


#: Table II: thresholds from [21] (Kim 2014), [17] (Kim 2020), [23]
#: (Half-Double).
TRH_HISTORY: List[ThresholdEntry] = [
    ThresholdEntry("DDR3-old", 2014, 139_000, None, None),
    ThresholdEntry("DDR3-new", 2016, None, 22_400, 22_400),
    ThresholdEntry("DDR4", 2018, None, 10_000, 17_500),
    ThresholdEntry("LPDDR4", 2020, None, 4_800, 9_000),
]


def threshold_trend() -> List[Tuple[int, int]]:
    """(year, representative threshold) pairs for the Fig. 1a trend."""
    return [(e.year, e.representative) for e in TRH_HISTORY]


def halving_time_years() -> float:
    """Average time for the threshold to halve across the history."""
    import math

    first, last = TRH_HISTORY[0], TRH_HISTORY[-1]
    halvings = math.log2(first.representative / last.representative)
    return (last.year - first.year) / halvings


# ----------------------------------------------------------------------
# Empirical Monte-Carlo threshold sweep (batched kernel engine)
# ----------------------------------------------------------------------
#: Compiled-pattern memo. A sweep replays the same row stream across many
#: windows (the scenario path does not depend on the window at all) and a
#: campaign probes the same cell hundreds of times; rebuilding the pattern
#: — a full payload parse/resolve/unroll for scenarios — per call was pure
#: waste. Keyed by everything the stream depends on; values are tuples, so
#: a cached pattern cannot be mutated by any caller. FIFO-evicted at a cap
#: that comfortably covers a full sweep's worth of distinct patterns.
_PATTERN_MEMO: dict = {}
_PATTERN_MEMO_CAP = 32


def _sweep_pattern(
    window: int,
    acts: int,
    base_row: int,
    scenario: Optional[str],
    scenario_params: Optional[dict],
) -> Tuple[int, ...]:
    if scenario is not None:
        key = (
            "scenario", scenario,
            tuple(sorted((scenario_params or {}).items())), acts,
        )
    else:
        key = ("round_robin", window, base_row, acts)
    pattern = _PATTERN_MEMO.get(key)
    if pattern is None:
        if scenario is not None:
            from repro.payload import compile_scenario

            pattern = tuple(
                compile_scenario(
                    scenario, params=scenario_params, acts=acts
                ).rows
            )
        else:
            from repro.security.kernels import build_pattern

            pattern = tuple(build_pattern(
                "round_robin",
                [base_row + 10 * i for i in range(window)],
                acts,
            ))
        if len(_PATTERN_MEMO) >= _PATTERN_MEMO_CAP:
            _PATTERN_MEMO.pop(next(iter(_PATTERN_MEMO)))
        _PATTERN_MEMO[key] = pattern
    return pattern


@dataclass(frozen=True)
class SweepPoint:
    """Empirical tolerated threshold of one window configuration."""

    window: int
    seeds: int
    acts: int
    #: Worst pressure any seed's replay produced: the defense is safe (in
    #: these runs) for Rowhammer thresholds strictly above this.
    max_pressure: float
    mean_pressure: float
    mitigations: int


def montecarlo_tolerated_threshold(
    window: int,
    *,
    seeds: int = 100,
    acts: int = 20_000,
    tracker: str = "mint",
    policy: str = "fractal",
    base_row: int = 70_000,
    backend: str = "numpy",
    scenario: Optional[str] = None,
    scenario_params: Optional[dict] = None,
) -> SweepPoint:
    """Empirical tolerated threshold of one window via batched replays.

    By default replays the (ABCD)^K round-robin pattern — optimal against
    MINT (Appendix A) — with W unique aggressor rows, across ``seeds``
    seeds in one vectorized program. Passing ``scenario`` instead compiles
    a named payload from the versioned corpus
    (:func:`repro.payload.compile_scenario`), with ``scenario_params``
    overriding the manifest's declared placeholder defaults.
    """
    from repro.security.kernels import (
        policy_spec_from_string,
        run_attack_batch,
        tracker_spec_from_strings,
    )

    if scenario is None and scenario_params:
        raise ValueError("scenario_params requires a scenario")
    pattern = _sweep_pattern(window, acts, base_row, scenario, scenario_params)
    results = run_attack_batch(
        [pattern],
        tracker_spec_from_strings(tracker, window),
        policy_spec_from_string(policy),
        window=window,
        seeds=seeds,
        backend=backend,
        collect_pressure=False,
    )[0]
    pressures = [r.max_pressure for r in results]
    return SweepPoint(
        window=window,
        seeds=seeds,
        acts=acts,
        max_pressure=max(pressures),
        mean_pressure=sum(pressures) / len(pressures),
        mitigations=sum(r.mitigations for r in results),
    )


def threshold_sweep(
    windows: Sequence[int],
    *,
    seeds: int = 100,
    acts: int = 20_000,
    tracker: str = "mint",
    policy: str = "fractal",
    backend: str = "numpy",
    scenario: Optional[str] = None,
    scenario_params: Optional[dict] = None,
) -> List[SweepPoint]:
    """Empirical tolerated thresholds across windows (Table III's
    Monte-Carlo companion to the Appendix-A analytical model).

    ``scenario`` swaps the default window-optimal (ABCD)^K generator for a
    named payload from the versioned corpus, replayed against every window.
    """
    return [
        montecarlo_tolerated_threshold(
            w, seeds=seeds, acts=acts, tracker=tracker, policy=policy,
            backend=backend, scenario=scenario,
            scenario_params=scenario_params,
        )
        for w in windows
    ]
