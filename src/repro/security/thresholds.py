"""Rowhammer threshold history (Table II, Fig. 1a)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple


@dataclass(frozen=True)
class ThresholdEntry:
    """One DRAM generation's measured thresholds (activations)."""

    generation: str
    year: int
    trh_single: Optional[int]  # TRH-S, single-sided
    trh_double_low: Optional[int]  # TRH-D range
    trh_double_high: Optional[int]

    @property
    def representative(self) -> int:
        """The value the trend plot uses: TRH-D low end, else TRH-S."""
        if self.trh_double_low is not None:
            return self.trh_double_low
        if self.trh_single is not None:
            return self.trh_single
        raise ValueError(f"{self.generation} has no threshold data")


#: Table II: thresholds from [21] (Kim 2014), [17] (Kim 2020), [23]
#: (Half-Double).
TRH_HISTORY: List[ThresholdEntry] = [
    ThresholdEntry("DDR3-old", 2014, 139_000, None, None),
    ThresholdEntry("DDR3-new", 2016, None, 22_400, 22_400),
    ThresholdEntry("DDR4", 2018, None, 10_000, 17_500),
    ThresholdEntry("LPDDR4", 2020, None, 4_800, 9_000),
]


def threshold_trend() -> List[Tuple[int, int]]:
    """(year, representative threshold) pairs for the Fig. 1a trend."""
    return [(e.year, e.representative) for e in TRH_HISTORY]


def halving_time_years() -> float:
    """Average time for the threshold to halve across the history."""
    import math

    first, last = TRH_HISTORY[0], TRH_HISTORY[-1]
    halvings = math.log2(first.representative / last.representative)
    return (last.year - first.year) / halvings
