"""Security model of Fractal Mitigation (Appendix B, Fig. 15/16).

An attacker hammering an aggressor row triggers N Fractal Mitigation
episodes and tries to use FM's own probabilistic refreshes as activations on
a distant victim R. R's neighbours R- and R+ receive refreshes with
probabilities p and p/4 while R itself escapes with probability
(1 - p/2)^N:

* ``Damage = 1.25 * p * N`` (Eq. 8);
* ``P_escape ~= exp(-Damage / 2.5)`` (Eq. 9);
* at the 10^-18 escape target (10 K-year MTTF), ``Damage <= 104`` so FM is
  safe for TRH-D >= 53 (Eq. 10).
"""

from __future__ import annotations

import math

#: Escape-probability target corresponding to the 10 K-year MTTF.
ESCAPE_TARGET = 1e-18

#: FM is safe against transitive abuse for systems with TRH-D >= this bound.
FM_SAFE_TRHD = 53


def fm_damage(refresh_probability: float, episodes: int) -> float:
    """Expected activations on R's neighbours after N episodes (Eq. 8)."""
    if not 0.0 <= refresh_probability <= 1.0:
        raise ValueError("refresh_probability must be in [0, 1]")
    if episodes < 0:
        raise ValueError("episodes must be non-negative")
    return 1.25 * refresh_probability * episodes


def fm_escape_probability(damage: float) -> float:
    """P(victim row R receives no refresh) given total damage (Eq. 9)."""
    if damage < 0:
        raise ValueError("damage must be non-negative")
    return math.exp(-damage / 2.5)


def fm_max_damage(escape_target: float = ESCAPE_TARGET) -> float:
    """Largest damage whose escape probability still meets the target."""
    if not 0.0 < escape_target < 1.0:
        raise ValueError("escape_target must be in (0, 1)")
    return -2.5 * math.log(escape_target)


def fm_safe_trhd(escape_target: float = ESCAPE_TARGET) -> int:
    """Smallest TRH-D at which FM's transitive refreshes cannot cause failure.

    Damage is double-sided (R+ and R- both hammered), so the attack reaches
    thresholds up to ceil(damage / 2) (Eq. 10: 104 / 2 = 52); FM is safe
    from the next threshold up (53, matching Section V-D).
    """
    return math.ceil(fm_max_damage(escape_target) / 2.0) + 1


def mint_escape_probability(damage: float, window: int) -> float:
    """P(escape) for direct activations under MINT-W (Fig. 16)."""
    if window < 2:
        raise ValueError("window must be at least 2")
    if damage < 0:
        raise ValueError("damage must be non-negative")
    return (1.0 - 1.0 / window) ** damage


def mixed_attack_escape(
    fm_damage_count: float, mint_damage_count: float, window: int
) -> float:
    """Escape probability of a combined FM + direct attack (Appendix B).

    The two attack components escape independently, so the combined escape
    probability is the product — always weaker per activation than the pure
    direct attack, which is why FM does not lower MINT's threshold for
    TRH-D >= 53.
    """
    return fm_escape_probability(fm_damage_count) * mint_escape_probability(
        mint_damage_count, window
    )
