"""Adaptive Monte-Carlo threshold-search campaigns: bisection over the
candidate Rowhammer threshold with SPRT early-stopping per probe.

The fixed-``seeds=`` sweep in :mod:`repro.security.thresholds` spends the
same seed budget on every point, including points whose verdict is
statistically settled after a handful of replays. A campaign cell — one
{tracker x policy x pattern} configuration — instead searches for the
**empirical tolerated threshold**: the smallest integer ``T`` such that
the probability a random seed's replay reaches pressure ``>= T`` is low.

Three ideas make the search cheap:

* **SPRT per probe** (Wald's sequential probability-ratio test). A probe
  at threshold ``T`` tests ``H0: p <= p0`` (safe) against ``H1: p >= p1``
  (unsafe) over the per-seed exceedance indicators. The log-likelihood
  ratio walks by ``log(p1/p0)`` per exceedance and ``log((1-p1)/(1-p0))``
  per survival; the probe stops the moment it crosses
  ``log((1-beta)/alpha)`` (UNSAFE) or ``log(beta/(1-alpha))`` (SAFE) —
  typically after 3-80 seeds at the default ``alpha = beta = 1e-3``
  instead of the full fixed budget. A probe that exhausts ``max_seeds``
  undecided falls back to comparing the exceedance rate against the
  midpoint ``(p0 + p1) / 2`` (``decided_by="budget"``) — the same rule
  the exhaustive oracle uses, so truncation can never create a verdict
  the oracle would not reach.
* **One shared seed pool per cell.** A seed's replay pressure does not
  depend on the probed threshold, so every probe walks the *same* pool of
  per-seed max pressures (seed 0, 1, 2, ... in order) and the pool only
  grows when a probe runs past its frontier — in adaptive chunks sized by
  how far the current likelihood ratio sits from the nearest decision
  bound (small near the boundary, large far from it). ``seeds_spent`` for
  the whole cell is the pool size, not the per-probe sum.
* **Replay-invariant reuse.** The cell compiles its pattern once, builds
  the batch engine (and the cipher's ``encrypt_array`` table) once, and
  replays chunks through :meth:`_BatchEngine.run_prepared` with a
  recycled pressure arena — no per-probe pattern or remap work.

Determinism and resume: the pool's contents are a pure function of the
job description (seed ``s`` always produces the same pressure), and every
probe decision depends only on a prefix of the pool, so chunk sizing,
restarts, and partial frontiers can never change a verdict. A cell given
a result cache persists its frontier (the evaluated pool) after every
extension; a killed campaign reloads it and continues mid-bisection.

See ``docs/threshold_campaign.md`` for the full algorithm and error-bound
discussion.
"""

from __future__ import annotations

import dataclasses
import json
import math
import os
import tempfile
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

__all__ = [
    "SAFE",
    "UNSAFE",
    "CampaignJob",
    "CellEngine",
    "ChunkSchedule",
    "ProbeResult",
    "SprtConfig",
    "frontier_path",
    "load_frontier",
    "oracle_campaign_cell",
    "run_campaign_cell",
    "save_frontier",
    "search_smallest_safe",
    "sprt_probe",
    "summarize_campaign",
]

#: Probe verdicts. ``UNSAFE`` = the exceedance probability at this
#: threshold is high (the defense does not tolerate it); ``SAFE`` = low.
SAFE = "safe"
UNSAFE = "unsafe"

DEFAULT_ALPHA = 1e-3
DEFAULT_BETA = 1e-3
#: Indifference-region edges for the per-seed exceedance probability:
#: ``p <= p0`` reads as safe, ``p >= p1`` as unsafe.
DEFAULT_P0 = 0.01
DEFAULT_P1 = 0.10

DEFAULT_MIN_CHUNK = 8
DEFAULT_MAX_CHUNK = 256

#: Hard ceiling for the exponential search (pressure is bounded by
#: activations x the largest hammer damage, far below this).
_SEARCH_CAP = 1 << 40


# ----------------------------------------------------------------------
# The sequential test
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SprtConfig:
    """Wald SPRT parameters for one probe.

    ``alpha`` bounds the probability of calling a truly-safe threshold
    unsafe, ``beta`` the reverse (both via Wald's inequalities:
    the realized error rates are at most ``alpha / (1 - beta)`` and
    ``beta / (1 - alpha)``).
    """

    alpha: float = DEFAULT_ALPHA
    beta: float = DEFAULT_BETA
    p0: float = DEFAULT_P0
    p1: float = DEFAULT_P1

    def __post_init__(self):
        if not (0.0 < self.alpha < 0.5 and 0.0 < self.beta < 0.5):
            raise ValueError(
                f"alpha/beta must be in (0, 0.5), got "
                f"{self.alpha}/{self.beta}"
            )
        if not (0.0 < self.p0 < self.p1 < 1.0):
            raise ValueError(
                f"need 0 < p0 < p1 < 1, got p0={self.p0} p1={self.p1}"
            )

    # -- log-likelihood geometry --------------------------------------
    @property
    def step_break(self) -> float:
        """LLR increment per exceedance (positive)."""
        return math.log(self.p1 / self.p0)

    @property
    def step_survive(self) -> float:
        """LLR increment per survival (negative)."""
        return math.log((1.0 - self.p1) / (1.0 - self.p0))

    @property
    def upper_bound(self) -> float:
        """Crossing here rejects H0: verdict UNSAFE."""
        return math.log((1.0 - self.beta) / self.alpha)

    @property
    def lower_bound(self) -> float:
        """Crossing here accepts H0: verdict SAFE."""
        return math.log(self.beta / (1.0 - self.alpha))

    def llr(self, exceedances: int, n: int) -> float:
        """The log-likelihood ratio after ``n`` seeds, ``exceedances``
        of which broke the threshold."""
        return (
            exceedances * self.step_break
            + (n - exceedances) * self.step_survive
        )

    def decide(self, exceedances: int, n: int) -> Optional[str]:
        """SPRT decision after ``n`` seeds, or None (keep sampling)."""
        value = self.llr(exceedances, n)
        if value >= self.upper_bound:
            return UNSAFE
        if value <= self.lower_bound:
            return SAFE
        return None

    def budget_verdict(self, exceedances: int, n: int) -> str:
        """Forced verdict at the seed budget: exceedance rate vs the
        indifference-region midpoint. The exhaustive fixed-seed oracle
        uses this same rule over the full budget."""
        return UNSAFE if exceedances / n >= (self.p0 + self.p1) / 2 else SAFE


@dataclass(frozen=True)
class ChunkSchedule:
    """Adaptive pool-extension sizing.

    The next chunk covers the *minimum* number of seeds that could
    possibly finish the running probe (all-break steps to the upper bound
    or all-survive steps to the lower bound, whichever is nearer),
    clamped to ``[min_chunk, max_chunk]`` — small chunks near a decision
    boundary, large chunks when the verdict is still far off.
    """

    min_chunk: int = DEFAULT_MIN_CHUNK
    max_chunk: int = DEFAULT_MAX_CHUNK

    def __post_init__(self):
        if self.min_chunk < 1 or self.max_chunk < self.min_chunk:
            raise ValueError(
                f"need 1 <= min_chunk <= max_chunk, got "
                f"{self.min_chunk}/{self.max_chunk}"
            )

    def next_chunk(self, llr: float, cfg: SprtConfig) -> int:
        """Seeds to evaluate next: the pure-drift distance to the
        nearer Wald bound, clamped to ``[min_chunk, max_chunk]``."""
        to_unsafe = math.ceil((cfg.upper_bound - llr) / cfg.step_break)
        to_safe = math.ceil((llr - cfg.lower_bound) / -cfg.step_survive)
        nearest = max(1, min(to_unsafe, to_safe))
        return max(self.min_chunk, min(self.max_chunk, nearest))


@dataclass(frozen=True)
class ProbeResult:
    """One threshold probe's outcome."""

    threshold: int
    verdict: str
    #: Seeds consumed before the verdict (pool prefix length).
    seeds_used: int
    #: How many of those seeds reached pressure >= threshold.
    exceedances: int
    #: "sprt" (a bound was crossed) or "budget" (max_seeds fallback).
    decided_by: str

    def to_dict(self) -> dict:
        """Plain-JSON form for result records."""
        return dataclasses.asdict(self)


def sprt_probe(
    exceed: Sequence[bool], cfg: SprtConfig, max_seeds: int,
    threshold: int = 0,
) -> ProbeResult:
    """Walk exceedance indicators in order until a bound is crossed.

    Pure decision rule over a fully materialized sequence — the
    :class:`CellEngine` inlines the same walk against its growing pool;
    tests pin this function against exact binomial probabilities.
    """
    exceedances = 0
    for n, broke in enumerate(exceed[:max_seeds], start=1):
        if broke:
            exceedances += 1
        verdict = cfg.decide(exceedances, n)
        if verdict is not None:
            return ProbeResult(threshold, verdict, n, exceedances, "sprt")
    n = min(len(exceed), max_seeds)
    if n < max_seeds:
        raise ValueError(
            f"undecided after {n} indicators; need up to {max_seeds}"
        )
    return ProbeResult(
        threshold, cfg.budget_verdict(exceedances, n), n, exceedances,
        "budget",
    )


# ----------------------------------------------------------------------
# Threshold search
# ----------------------------------------------------------------------
def search_smallest_safe(
    probe: Callable[[int], str], cap: int = _SEARCH_CAP
) -> int:
    """Smallest ``T >= 1`` with ``probe(T) == SAFE``.

    ``probe`` must be monotone (SAFE at ``T`` implies SAFE at every
    larger threshold) — which the shared-pool SPRT probe is, because the
    per-seed exceedance indicators are pointwise non-increasing in ``T``
    over the same pool prefix. Exponential search brackets the boundary,
    then integer bisection pins it: ``O(log T*)`` probes total.
    """
    if probe(1) == SAFE:
        return 1
    lo, hi = 1, 2
    while probe(hi) == UNSAFE:
        lo = hi
        hi *= 2
        if hi > cap:
            raise RuntimeError(f"no safe threshold found below {cap}")
    while hi - lo > 1:
        mid = (lo + hi) // 2
        if probe(mid) == SAFE:
            hi = mid
        else:
            lo = mid
    return hi


# ----------------------------------------------------------------------
# Campaign jobs (wire/cache identity lives in repro.analysis.runner)
# ----------------------------------------------------------------------
_CAMPAIGN_ATTACKS = (
    "round_robin", "single_sided", "double_sided", "half_double",
)
_CAMPAIGN_TRACKERS = ("mint", "mint-transitive", "graphene", "para")
_CAMPAIGN_POLICIES = ("fractal", "blast")


@dataclass(frozen=True)
class CampaignJob:
    """One campaign cell: a {tracker x policy x pattern} configuration
    plus the search's statistical contract.

    Mirrors :class:`repro.analysis.runner.SecurityJob`: describes *what*
    to search, not how. ``backend`` is excluded from the cache key (both
    kernel backends produce exactly equal pressures). The SPRT and
    chunk-schedule parameters **are** key material — a cell probed under
    different error bounds is a different artifact.

    With no ``scenario``, the pattern is ``attack`` over ``rows`` (or,
    for the default ``round_robin`` with empty ``rows``, the
    window-optimal (ABCD)^K aggressors ``base_row + 10*i``). A scenario
    compiles from the versioned corpus and pins its manifest version and
    compiled-rows digest into the cell identity.
    """

    tracker: str = "mint"
    policy: str = "fractal"
    window: int = 4
    acts: int = 6_000
    attack: str = "round_robin"
    rows: Tuple[int, ...] = ()
    base_row: int = 70_000
    scenario: Optional[str] = None
    scenario_version: Optional[str] = None
    #: sha256 of the scenario's compiled row stream (corpus-pinned);
    #: auto-filled from the manifest at construction.
    scenario_digest: Optional[str] = None
    scenario_params: Tuple[Tuple[str, int], ...] = ()
    rows_per_bank: int = 128 * 1024
    blast_radius: int = 2
    refresh_interval_acts: Optional[int] = None
    rubix_key: Optional[int] = None
    #: Per-probe seed budget (the fixed-sweep cost one probe would pay).
    max_seeds: int = 400
    alpha: float = DEFAULT_ALPHA
    beta: float = DEFAULT_BETA
    p0: float = DEFAULT_P0
    p1: float = DEFAULT_P1
    min_chunk: int = DEFAULT_MIN_CHUNK
    max_chunk: int = DEFAULT_MAX_CHUNK
    backend: str = "numpy"  # repro: key-blind[backend]

    def __post_init__(self):
        if self.scenario is not None:
            from repro.payload import load_scenario

            meta = load_scenario(self.scenario)
            if self.scenario_version is None:
                object.__setattr__(self, "scenario_version", meta.version)
            elif self.scenario_version != meta.version:
                raise ValueError(
                    f"scenario {self.scenario!r} is version {meta.version} "
                    f"in the corpus, not {self.scenario_version!r}"
                )
            if self.scenario_digest is None:
                object.__setattr__(
                    self, "scenario_digest", meta.rows_sha256
                )
            elif self.scenario_digest != meta.rows_sha256:
                raise ValueError(
                    f"scenario {self.scenario!r} compiles to digest "
                    f"{meta.rows_sha256[:12]}..., not "
                    f"{str(self.scenario_digest)[:12]}..."
                )
            declared = dict(meta.params)
            raw = (
                self.scenario_params.items()
                if isinstance(self.scenario_params, dict)
                else self.scenario_params
            )
            normalized = tuple(sorted((str(k), int(v)) for k, v in raw))
            for name, _ in normalized:
                if name not in declared:
                    raise ValueError(
                        f"scenario {self.scenario!r} declares no parameter "
                        f"{name!r} (has {sorted(declared)})"
                    )
            object.__setattr__(self, "scenario_params", normalized)
        elif (
            self.scenario_version is not None
            or self.scenario_digest is not None
            or self.scenario_params
        ):
            raise ValueError(
                "scenario_version/scenario_digest/scenario_params require "
                "a scenario"
            )
        if self.attack not in _CAMPAIGN_ATTACKS:
            raise ValueError(
                f"unknown attack {self.attack!r}; expected one of "
                f"{_CAMPAIGN_ATTACKS}"
            )
        if self.tracker not in _CAMPAIGN_TRACKERS:
            raise ValueError(
                f"unknown tracker {self.tracker!r}; expected one of "
                f"{_CAMPAIGN_TRACKERS}"
            )
        if self.policy not in _CAMPAIGN_POLICIES:
            raise ValueError(
                f"unknown policy {self.policy!r}; expected one of "
                f"{_CAMPAIGN_POLICIES}"
            )
        if self.backend not in ("numpy", "scalar"):
            raise ValueError(f"unknown backend {self.backend!r}")
        if self.window < 1:
            raise ValueError("window must be >= 1")
        if self.acts < self.window:
            raise ValueError("acts must cover at least one window")
        if self.max_seeds < 2:
            raise ValueError("max_seeds must be >= 2")
        # Validate the statistical contract eagerly (same errors a probe
        # would raise, but at construction time).
        self.sprt_config()
        self.chunk_schedule()

    def sprt_config(self) -> SprtConfig:
        """The probe decision rule this job pins."""
        return SprtConfig(self.alpha, self.beta, self.p0, self.p1)

    def chunk_schedule(self) -> ChunkSchedule:
        """The pool-growth schedule this job pins."""
        return ChunkSchedule(self.min_chunk, self.max_chunk)

    def pattern_rows(self) -> List[int]:
        """Compile/generate this cell's logical row stream."""
        if self.scenario is not None:
            from repro.payload import compile_scenario

            return list(
                compile_scenario(
                    self.scenario,
                    params=dict(self.scenario_params),
                    acts=self.acts,
                ).rows
            )
        from repro.security.kernels import build_pattern

        rows = list(self.rows)
        if not rows and self.attack == "round_robin":
            rows = [self.base_row + 10 * i for i in range(self.window)]
        elif not rows:
            raise ValueError(f"attack {self.attack!r} needs explicit rows")
        return build_pattern(self.attack, rows, self.acts)

    def cell_label(self) -> str:
        """Human-readable cell identity for tables and logs."""
        pattern = self.scenario or f"{self.attack}"
        return f"{self.tracker}/{self.policy} W={self.window} {pattern}"


# ----------------------------------------------------------------------
# Frontier persistence (mid-bisection resume)
# ----------------------------------------------------------------------
#: Partial-frontier files live next to the cell's result cache entry.
FRONTIER_SUFFIX = ".part.json"


def frontier_path(cache_dir: str, key: str) -> str:
    """Where the cell keyed ``key`` persists its in-progress seed pool."""
    return os.path.join(cache_dir, f"{key}{FRONTIER_SUFFIX}")


def save_frontier(cache_dir: str, key: str, pool: Sequence[float]) -> None:
    """Atomically persist the evaluated seed pool (resume checkpoint).

    JSON float round-trips are exact in Python, so a reloaded frontier is
    bit-identical to the pool that was saved.
    """
    os.makedirs(cache_dir, exist_ok=True)
    payload = {"pool": list(pool)}
    fd, tmp = tempfile.mkstemp(dir=cache_dir, suffix=".tmp")
    try:
        with os.fdopen(fd, "w") as f:
            json.dump(payload, f, separators=(",", ":"))
        os.replace(tmp, frontier_path(cache_dir, key))
    except BaseException:
        if os.path.exists(tmp):
            os.unlink(tmp)
        raise


def load_frontier(cache_dir: str, key: str) -> Optional[List[float]]:
    """The persisted pool for ``key`` (None if absent or unreadable)."""
    try:
        with open(frontier_path(cache_dir, key)) as f:
            data = json.load(f)
        pool = data["pool"]
        if not isinstance(pool, list):
            raise ValueError("malformed frontier")
        return [float(v) for v in pool]
    except (OSError, ValueError, KeyError, TypeError):
        return None


def drop_frontier(cache_dir: str, key: str) -> None:
    """Remove the scratch frontier (the cell's record reached the cache)."""
    try:
        os.unlink(frontier_path(cache_dir, key))
    except OSError:
        pass


# ----------------------------------------------------------------------
# The cell engine
# ----------------------------------------------------------------------
class CellEngine:
    """One campaign cell's shared-pool prober.

    Owns the compiled pattern, the prepared batch engine, and the growing
    pool of per-seed max pressures. ``cache_dir``/``key`` opt into
    frontier persistence: the pool is saved after every extension and
    reloaded at construction, so a killed campaign resumes exactly where
    the frontier stood.
    """

    def __init__(
        self,
        job: CampaignJob,
        cache_dir: Optional[str] = None,
        key: Optional[str] = None,
    ):
        self.job = job
        self.cfg = job.sprt_config()
        self.chunks = job.chunk_schedule()
        self.cache_dir = cache_dir
        self.key = key
        #: Per-seed max pressures for seeds ``0..len(pool)-1``.
        self.pool: List[float] = []
        #: Seeds actually replayed by *this* engine (excludes the resumed
        #: frontier) — the resume tests read this.
        self.seeds_executed = 0
        self._engine = None
        self._prep = None
        if cache_dir is not None and key is not None:
            resumed = load_frontier(cache_dir, key)
            if resumed:
                self.pool = resumed[:job.max_seeds]

    # ------------------------------------------------------------------
    def _ensure_engine(self):
        if self._engine is not None:
            return
        from repro.mapping.kcipher import KCipher
        from repro.security.kernels import (
            _BatchEngine,
            policy_spec_from_string,
            tracker_spec_from_strings,
        )

        job = self.job
        cipher = (
            KCipher(job.rows_per_bank, job.rubix_key)
            if job.rubix_key is not None
            else None
        )
        self._engine = _BatchEngine(
            tracker_spec_from_strings(job.tracker, job.window),
            policy_spec_from_string(job.policy),
            job.window,
            job.rows_per_bank,
            job.blast_radius,
            job.refresh_interval_acts,
            cipher,
            False,  # collect_pressure: only max pressures matter
        )
        self._prep = self._engine.prepare(job.pattern_rows())

    def ensure_seeds(self, n: int) -> None:
        """Grow the pool to cover seeds ``0..n-1`` (one batched replay).

        The scalar backend routes through :func:`run_attack_batch` for
        oracle parity; the numpy backend replays the prepared pattern.
        """
        n = min(n, self.job.max_seeds)
        if len(self.pool) >= n:
            return
        start = len(self.pool)
        seeds = list(range(start, n))
        if self.job.backend == "scalar":
            from repro.security.kernels import (
                policy_spec_from_string,
                run_attack_batch,
                tracker_spec_from_strings,
            )
            from repro.mapping.kcipher import KCipher

            job = self.job
            cipher = (
                KCipher(job.rows_per_bank, job.rubix_key)
                if job.rubix_key is not None
                else None
            )
            results = run_attack_batch(
                [job.pattern_rows()],
                tracker_spec_from_strings(job.tracker, job.window),
                policy_spec_from_string(job.policy),
                window=job.window,
                seeds=seeds,
                rows_per_bank=job.rows_per_bank,
                blast_radius=job.blast_radius,
                refresh_interval_acts=job.refresh_interval_acts,
                row_cipher=cipher,
                backend="scalar",
                collect_pressure=False,
            )[0]
        else:
            self._ensure_engine()
            results = self._engine.run_prepared(self._prep, seeds)
        self.pool.extend(r.max_pressure for r in results)
        self.seeds_executed += len(seeds)
        if self.cache_dir is not None and self.key is not None:
            save_frontier(self.cache_dir, self.key, self.pool)

    # ------------------------------------------------------------------
    def probe(self, threshold: int) -> ProbeResult:
        """SPRT probe at ``threshold`` over the shared pool, extending it
        in adaptive chunks only when the walk runs past the frontier."""
        cfg = self.cfg
        max_seeds = self.job.max_seeds
        exceedances = 0
        n = 0
        while n < max_seeds:
            if n == len(self.pool):
                llr = cfg.llr(exceedances, n)
                self.ensure_seeds(n + self.chunks.next_chunk(llr, cfg))
            if self.pool[n] >= threshold:
                exceedances += 1
            n += 1
            verdict = cfg.decide(exceedances, n)
            if verdict is not None:
                return ProbeResult(
                    threshold, verdict, n, exceedances, "sprt"
                )
        return ProbeResult(
            threshold, cfg.budget_verdict(exceedances, n), n, exceedances,
            "budget",
        )

    def run(self) -> dict:
        """Bisect to the tolerated threshold; returns the cell's result
        record (JSON-round-trippable, cacheable)."""
        probes: List[ProbeResult] = []

        def probing(threshold: int) -> str:
            result = self.probe(threshold)
            probes.append(result)
            return result.verdict

        tolerated = search_smallest_safe(probing)
        seeds_spent = len(self.pool)
        fixed_cost = len(probes) * self.job.max_seeds
        result = {
            "tolerated_threshold": tolerated,
            "seeds_spent": seeds_spent,
            "probes": [p.to_dict() for p in probes],
            "fixed_cost_seeds": fixed_cost,
            "seeds_saved_pct": round(
                100.0 * (1.0 - seeds_spent / fixed_cost), 2
            ),
            "cell": {
                "tracker": self.job.tracker,
                "policy": self.job.policy,
                "window": self.job.window,
                "acts": self.job.acts,
                "scenario": self.job.scenario,
                "attack": self.job.attack,
                "max_seeds": self.job.max_seeds,
            },
        }
        if self.cache_dir is not None and self.key is not None:
            # The frontier outlives the run only as scratch; the final
            # record supersedes it.
            drop_frontier(self.cache_dir, self.key)
        return result


def run_campaign_cell(
    job: CampaignJob,
    cache_dir: Optional[str] = None,
    key: Optional[str] = None,
) -> dict:
    """Search one cell (resuming from a persisted frontier if present)."""
    return CellEngine(job, cache_dir=cache_dir, key=key).run()


def oracle_campaign_cell(job: CampaignJob) -> dict:
    """The exhaustive fixed-seed reference for one cell.

    Evaluates the **full** ``max_seeds`` pool up front and decides every
    probe with the budget rule over all of it — what the fixed-``seeds=``
    sweep would conclude, at the cost the campaign is supposed to avoid.
    The differential suite holds the SPRT cell to this oracle's verdicts.
    """
    engine = CellEngine(job)
    engine.ensure_seeds(job.max_seeds)
    pool = engine.pool
    cfg = job.sprt_config()
    probes: List[ProbeResult] = []

    def probing(threshold: int) -> str:
        exceedances = sum(1 for p in pool if p >= threshold)
        verdict = cfg.budget_verdict(exceedances, len(pool))
        probes.append(ProbeResult(
            threshold, verdict, len(pool), exceedances, "budget"
        ))
        return verdict

    tolerated = search_smallest_safe(probing)
    return {
        "tolerated_threshold": tolerated,
        "seeds_spent": len(pool) ,
        "probes": [p.to_dict() for p in probes],
        "fixed_cost_seeds": len(probes) * job.max_seeds,
        "seeds_saved_pct": 0.0,
        "cell": {
            "tracker": job.tracker,
            "policy": job.policy,
            "window": job.window,
            "acts": job.acts,
            "scenario": job.scenario,
            "attack": job.attack,
            "max_seeds": job.max_seeds,
        },
    }


# ----------------------------------------------------------------------
# Campaign-level aggregation and obs
# ----------------------------------------------------------------------
def summarize_campaign(results: Sequence[dict], metrics=None) -> dict:
    """Aggregate cell records into campaign totals.

    ``metrics`` (a :class:`repro.obs.MetricsRegistry`) receives the
    deterministic ``campaign.*`` counters — cells, probes, seeds_spent,
    and seeds_saved_vs_fixed. Wall-clock-derived rates
    (``cells_per_second``) are deliberately **not** registry material
    (the registry is determinism-contracted); they ride on the runner's
    :class:`~repro.obs.PhaseProfiler` snapshot instead.
    """
    cells = len(results)
    probes = sum(len(r["probes"]) for r in results)
    seeds_spent = sum(r["seeds_spent"] for r in results)
    fixed = sum(r["fixed_cost_seeds"] for r in results)
    saved = fixed - seeds_spent
    summary = {
        "cells": cells,
        "probes": probes,
        "seeds_spent": seeds_spent,
        "fixed_cost_seeds": fixed,
        "seeds_saved_vs_fixed": saved,
        "seeds_saved_pct": (
            round(100.0 * saved / fixed, 2) if fixed else 0.0
        ),
    }
    if metrics is not None:
        metrics.counter("campaign.cells").inc(cells)
        metrics.counter("campaign.probes").inc(probes)
        metrics.counter("campaign.seeds_spent").inc(seeds_spent)
        metrics.counter("campaign.seeds_saved_vs_fixed").inc(saved)
    return summary
