"""Vectorized Monte-Carlo security kernels: S seeds × P patterns per call.

:func:`repro.security.montecarlo.run_attack` replays one pattern against
one live tracker/policy pair, one activation at a time.  The paper's
security results (Tables III/VI, Figs 14/16) need *thousands* of such
replays — same pattern, different RNG seeds — and the whole batch is
data-parallel.  This module runs the batch as one numpy program:

* pressure lives in an ``(arena_rows, seeds)`` float array, so each hammer
  offset is one contiguous vector add across every seed at once;
* tracker nominations are pre-computed per window — MINT's slot draws,
  PARA's samples, and Fractal Mitigation's distance draws are batched RNG
  calls that consume the *identical* stream the scalar trackers would
  (``Generator.integers(..., size=n)`` equals n single draws, pinned by
  ``tests/test_security_kernels.py``);
* policy victim refreshes are per-window index gathers, applied in the
  exact slot-and-offset order of the scalar engine;
* transitive-refresh feedback (MINT's W+1 slot re-nominating the previous
  mitigation at level+1) is a small per-window scalar epilogue over seed
  vectors.

Because every floating-point add happens to the same cell in the same
chronological order, and max-pressure updates use the same strictly-greater
rule in the same cell order, the batch engine's results are **exactly
equal** to the scalar reference — bit-identical pressures, identical
max-pressure rows, identical tie-breaking.  ``backend="scalar"`` runs the
same batch through :func:`run_attack` (the oracle); the differential suite
asserts both backends agree on every tested configuration.

RNG convention: replay seed ``s`` derives its generators as
``tracker_rng, policy_rng = SeedSequence(s).spawn(2)`` in both backends.

Rubix-style row remapping is supported through ``row_cipher``: the numpy
backend batches the remap over the whole row space up front with
:meth:`~repro.mapping.kcipher.KCipher.encrypt_array`; the scalar oracle
wraps the same cipher in :class:`CipherRowRemapper`.  Dynamic remappers
(RowSwap/Migration policies) mutate per-replay state and stay scalar-only.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.core.mitigation import (
    BlastRadiusMitigation,
    FractalMitigation,
    MitigationPolicy,
)
from repro.mapping.kcipher import KCipher
from repro.security.blast import hammer_profile
from repro.security.montecarlo import AttackResult, run_attack
from repro.trackers.base import Tracker
from repro.trackers.graphene import GrapheneTracker
from repro.trackers.mint import MintTracker
from repro.trackers.para import ParaTracker

__all__ = [
    "MintSpec",
    "GrapheneSpec",
    "ParaSpec",
    "FractalPolicySpec",
    "BlastPolicySpec",
    "CipherRowRemapper",
    "DEFAULT_ROWS_PER_BANK",
    "PreparedPattern",
    "build_pattern",
    "build_policy",
    "build_tracker",
    "cipher_table",
    "run_attack_batch",
    "seed_rngs",
]

#: Default bank geometry for attack-space replays (128K rows, Table I).
DEFAULT_ROWS_PER_BANK = 128 * 1024

#: Seed-chunk sizing: bound the per-chunk pressure arena to this many bytes
#: so thousand-seed batches never materialize multi-GB arrays.  The per-act
#: Python overhead is paid once per chunk regardless of width, so wider
#: chunks are faster until the arena stops fitting in memory; tune with
#: ``run_attack_batch(seed_chunk=...)``.
_CHUNK_BUDGET_BYTES = 512 * 1024 * 1024


# ----------------------------------------------------------------------
# Specs: picklable value descriptions of trackers and policies.  The batch
# API takes specs instead of live objects because every seed needs its own
# freshly-seeded instance (and worker processes need to rebuild them).
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class MintSpec:
    """MINT tracker (Section II-D): window W, optional transitive slot."""

    window: int
    transitive_slot: bool = False
    kind: str = field(default="mint", init=False)


@dataclass(frozen=True)
class GrapheneSpec:
    """Graphene tracker (Section VII-D): Misra-Gries table + threshold."""

    entries: int
    mitigation_count: int
    kind: str = field(default="graphene", init=False)


@dataclass(frozen=True)
class ParaSpec:
    """PARA sampling tracker (Section VII-B)."""

    probability: float
    kind: str = field(default="para", init=False)


@dataclass(frozen=True)
class FractalPolicySpec:
    """Fractal Mitigation (Section V-C): d=1 pair + probabilistic far pair."""

    kind: str = field(default="fractal", init=False)


@dataclass(frozen=True)
class BlastPolicySpec:
    """Recursive blast-radius mitigation (Fig. 9b): level-scaled victims."""

    kind: str = field(default="blast", init=False)


TrackerSpec = Union[MintSpec, GrapheneSpec, ParaSpec]
PolicySpec = Union[FractalPolicySpec, BlastPolicySpec]


def seed_rngs(seed: int) -> Tuple[np.random.Generator, np.random.Generator]:
    """The batch engine's RNG convention: one spawned child each for the
    tracker and the policy, derived from the replay seed."""
    tracker_seq, policy_seq = np.random.SeedSequence(seed).spawn(2)
    return (
        np.random.default_rng(tracker_seq),
        np.random.default_rng(policy_seq),
    )


def build_tracker(spec: TrackerSpec, rng: np.random.Generator) -> Tracker:
    """Live tracker for ``spec`` (used by the scalar oracle backend)."""
    if isinstance(spec, MintSpec):
        return MintTracker(
            spec.window, rng, transitive_slot=spec.transitive_slot
        )
    if isinstance(spec, GrapheneSpec):
        return GrapheneTracker(spec.entries, spec.mitigation_count, rng)
    if isinstance(spec, ParaSpec):
        return ParaTracker(spec.probability, rng)
    raise TypeError(f"unknown tracker spec {spec!r}")


def build_policy(
    spec: PolicySpec, rows_per_bank: int, rng: np.random.Generator
) -> MitigationPolicy:
    """Live policy for ``spec`` (used by the scalar oracle backend)."""
    if isinstance(spec, FractalPolicySpec):
        return FractalMitigation(rows_per_bank, rng)
    if isinstance(spec, BlastPolicySpec):
        return BlastRadiusMitigation(rows_per_bank)
    raise TypeError(f"unknown policy spec {spec!r}")


def tracker_spec_from_strings(name: str, window: int) -> TrackerSpec:
    """CLI/job-friendly spec construction from a tracker name."""
    if name == "mint":
        return MintSpec(window)
    if name == "mint-transitive":
        return MintSpec(window, transitive_slot=True)
    if name == "graphene":
        return GrapheneSpec(entries=64, mitigation_count=max(1, window))
    if name == "para":
        return ParaSpec(probability=1.0 / max(1, window))
    raise ValueError(f"unknown tracker {name!r}")


def policy_spec_from_string(name: str) -> PolicySpec:
    """CLI/job-friendly spec construction from a policy name."""
    if name == "fractal":
        return FractalPolicySpec()
    if name in ("blast", "recursive"):
        return BlastPolicySpec()
    raise ValueError(f"unknown policy {name!r}")


class CipherRowRemapper:
    """Adapter making a :class:`KCipher` usable as ``run_attack``'s
    ``remapper`` (Rubix-style static row scrambling in attack space)."""

    def __init__(self, cipher: KCipher):
        self.cipher = cipher

    def physical_row(self, row: int) -> int:
        """The physical row a logical ``row`` lands on under the cipher."""
        return self.cipher.encrypt(row)

    def table(self) -> np.ndarray:
        """The whole logical→physical map, batched up front."""
        return self.cipher.encrypt_array(
            np.arange(self.cipher.domain, dtype=np.int64)
        )


#: Memoized ``encrypt_array`` tables, keyed by the cipher's full identity
#: (domain + derived round keys — everything that determines the
#: permutation). A threshold campaign rebuilds the same cipher for every
#: probe; the table is ~1 MB per 128K-row bank, so a handful of entries
#: covers every live configuration.
_CIPHER_TABLE_MEMO: dict = {}
_CIPHER_TABLE_MEMO_CAP = 8


def cipher_table(cipher: KCipher) -> np.ndarray:
    """The memoized logical→physical table for ``cipher``.

    The returned array is shared across callers and must be treated as
    read-only (the batch engine only ever gathers from it).
    """
    key = (cipher.domain, tuple(cipher._round_keys))
    table = _CIPHER_TABLE_MEMO.get(key)
    if table is None:
        table = CipherRowRemapper(cipher).table()
        if len(_CIPHER_TABLE_MEMO) >= _CIPHER_TABLE_MEMO_CAP:
            _CIPHER_TABLE_MEMO.pop(next(iter(_CIPHER_TABLE_MEMO)))
        _CIPHER_TABLE_MEMO[key] = table
    return table


def build_pattern(attack: str, rows: Sequence[int], acts: int) -> List[int]:
    """Named attack pattern (see :mod:`repro.workloads.attacks`).

    ``rows`` parameterizes the pattern: the row list for ``round_robin``,
    ``[victim]`` for ``double_sided``, ``[aggressor]`` for
    ``single_sided``, ``[far_aggressor, decoys]`` for ``half_double``.
    """
    from repro.workloads import attacks

    rows = list(rows)
    if attack == "round_robin":
        return attacks.round_robin_attack(rows, acts)
    if attack == "single_sided":
        return attacks.single_sided(rows[0], acts)
    if attack == "double_sided":
        return attacks.double_sided(rows[0], acts)
    if attack == "half_double":
        decoys = rows[1] if len(rows) > 1 else 8
        return attacks.half_double(rows[0], acts, decoys=decoys)
    raise ValueError(f"unknown attack {attack!r}")


# ----------------------------------------------------------------------
# Batch API
# ----------------------------------------------------------------------
def run_attack_batch(
    patterns: Sequence[Sequence[int]],
    tracker: TrackerSpec,
    policy: PolicySpec,
    *,
    window: int,
    seeds: Union[int, Sequence[int]],
    rows_per_bank: int = DEFAULT_ROWS_PER_BANK,
    blast_radius: int = 2,
    refresh_interval_acts: Optional[int] = None,
    row_cipher: Optional[KCipher] = None,
    backend: str = "numpy",
    seed_chunk: Optional[int] = None,
    collect_pressure: bool = True,
) -> List[List[AttackResult]]:
    """Replay every pattern under every seed; returns ``[pattern][seed]``.

    ``seeds`` is either a count (replay seeds ``0..n-1``) or an explicit
    sequence.  ``backend="numpy"`` runs the vectorized engine;
    ``backend="scalar"`` runs the same batch through the scalar
    :func:`run_attack` oracle — results are exactly equal (the numpy
    backend's ``pressure`` maps list only rows with non-zero pressure,
    while the scalar reference also keeps zero-valued touched rows).

    ``row_cipher`` applies a static Rubix-style logical→physical row
    permutation: the pattern names logical rows, pressure accrues on
    physical neighbours.  The numpy backend builds the full remap table
    once with ``encrypt_array``; its domain must equal ``rows_per_bank``.
    """
    if window < 1:
        raise ValueError("window must be at least 1")
    if isinstance(seeds, (int, np.integer)):
        seed_list = list(range(int(seeds)))
    else:
        seed_list = [int(s) for s in seeds]
    if patterns and isinstance(patterns[0], (int, np.integer)):
        patterns = [patterns]  # type: ignore[list-item]
    if row_cipher is not None and row_cipher.domain != rows_per_bank:
        raise ValueError(
            f"row_cipher domain {row_cipher.domain} != rows_per_bank "
            f"{rows_per_bank}"
        )

    if backend == "scalar":
        return [
            [
                _run_scalar(
                    pattern, tracker, policy, window, seed, rows_per_bank,
                    blast_radius, refresh_interval_acts, row_cipher,
                )
                for seed in seed_list
            ]
            for pattern in patterns
        ]
    if backend != "numpy":
        raise ValueError(f"unknown backend {backend!r}")

    engine = _BatchEngine(
        tracker, policy, window, rows_per_bank, blast_radius,
        refresh_interval_acts, row_cipher, collect_pressure,
    )
    return [
        engine.run_pattern(pattern, seed_list, seed_chunk)
        for pattern in patterns
    ]


def _run_scalar(
    pattern, tracker_spec, policy_spec, window, seed, rows_per_bank,
    blast_radius, refresh_interval_acts, row_cipher,
) -> AttackResult:
    tracker_rng, policy_rng = seed_rngs(seed)
    tracker = build_tracker(tracker_spec, tracker_rng)
    policy = build_policy(policy_spec, rows_per_bank, policy_rng)
    remapper = CipherRowRemapper(row_cipher) if row_cipher is not None else None
    return run_attack(
        pattern,
        tracker,
        policy,
        window=window,
        blast_radius=blast_radius,
        refresh_interval_acts=refresh_interval_acts,
        remapper=remapper,
    )


# ----------------------------------------------------------------------
# The numpy engine
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class PreparedPattern:
    """One pattern's replay-invariant precomputation.

    Everything here depends only on (pattern, engine configuration) — not
    on seeds — so a threshold campaign probing the same cell hundreds of
    times builds it once via :meth:`_BatchEngine.prepare` and replays it
    with :meth:`_BatchEngine.run_prepared`.
    """

    #: Logical pattern rows.
    pattern: np.ndarray
    #: Physical rows after the (optional) cipher remap.
    phys_pattern: np.ndarray
    #: Pressure-array height covering every reachable hammer target.
    arena: int
    #: Per-act hammer schedule: (center, valid (target, damage) pairs).
    schedule: tuple


#: ``2**k`` table for vectorized bit_length (16-bit operands).
_POW2_16 = np.left_shift(np.int64(1), np.arange(17, dtype=np.int64))


def _fractal_distances(rand16: np.ndarray) -> np.ndarray:
    """Vector twin of :meth:`FractalMitigation.draw_distance`:
    ``2 + leading_zeros(rand)`` over a 16-bit operand array."""
    bit_length = np.searchsorted(_POW2_16, rand16, side="right")
    return 2 + FractalMitigation.RAND_BITS - bit_length


# Engine state is transient by design: the pressure scratch buffer is
# derived scratch recycled between chunks, and campaign resume snapshots
# the per-seed pool (repro.security.campaign frontiers), never the engine.
class _BatchEngine:  # repro: lint-ignore[CKPT001]
    """One configured vectorized replay (shared across patterns/chunks)."""

    def __init__(
        self, tracker_spec, policy_spec, window, rows_per_bank,
        blast_radius, refresh_interval_acts, row_cipher, collect_pressure,
    ):
        self.tracker_spec = tracker_spec
        self.policy_spec = policy_spec
        self.window = window
        self.rows_per_bank = rows_per_bank
        self.profile = hammer_profile(blast_radius)
        self.blast_radius = blast_radius
        self.refresh_interval_acts = refresh_interval_acts
        self.collect_pressure = collect_pressure
        self.phys_of: Optional[np.ndarray] = None
        if row_cipher is not None:
            self.phys_of = cipher_table(row_cipher)
        #: Reused flat backing store for per-chunk pressure arrays: grown
        #: to the largest (arena x seeds) ever needed, then recycled, so a
        #: campaign's thousands of probe chunks never re-allocate.
        self._pressure_buf = np.empty(0, dtype=np.float64)
        if isinstance(tracker_spec, MintSpec) and tracker_spec.window != window:
            raise ValueError(
                "numpy backend requires the MINT spec window to equal the "
                "replay window; use backend='scalar' for mismatched windows"
            )

    # -- nominations ---------------------------------------------------
    def _nominate(
        self, pattern: np.ndarray, seeds: List[int]
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Per-(seed, window) nominations: rows (-1 = none) and levels."""
        spec = self.tracker_spec
        n_windows = pattern.shape[0] // self.window
        n_seeds = len(seeds)
        if isinstance(spec, MintSpec):
            return self._nominate_mint(pattern, seeds, n_windows)
        if isinstance(spec, GrapheneSpec):
            row = self._nominate_graphene_shared(pattern, n_windows)
            return (
                np.broadcast_to(row, (n_seeds, n_windows)).copy(),
                np.ones((n_seeds, n_windows), dtype=np.int64),
            )
        if isinstance(spec, ParaSpec):
            return self._nominate_para(pattern, seeds, n_windows)
        raise TypeError(f"unknown tracker spec {spec!r}")

    def _nominate_mint(self, pattern, seeds, n_windows):
        spec = self.tracker_spec
        window = self.window
        slots = window + (1 if spec.transitive_slot else 0)
        n_seeds = len(seeds)
        draws = np.empty((n_seeds, n_windows + 1), dtype=np.int64)
        for i, seed in enumerate(seeds):
            tracker_rng, _ = seed_rngs(seed)
            # One draw at construction plus one per select — batched, this
            # is the identical stream (see the RNG-batching pin test).
            draws[i] = tracker_rng.integers(1, slots + 1, size=n_windows + 1)
        slot = draws[:, :n_windows]
        base = np.arange(n_windows, dtype=np.int64) * window
        if not spec.transitive_slot:
            nom_row = pattern[base[None, :] + slot - 1]
            nom_level = np.ones((n_seeds, n_windows), dtype=np.int64)
            return nom_row, nom_level
        # Transitive slot: a per-window recurrence across seed vectors —
        # slot W+1 re-nominates the previous mitigation at level+1 (or
        # nothing when no mitigation has happened yet).
        nom_row = np.empty((n_seeds, n_windows), dtype=np.int64)
        nom_level = np.empty((n_seeds, n_windows), dtype=np.int64)
        last_row = np.full(n_seeds, -1, dtype=np.int64)
        last_level = np.zeros(n_seeds, dtype=np.int64)
        acts = pattern.shape[0]
        for w in range(n_windows):
            slot_w = slot[:, w]
            transitive = slot_w == window + 1
            cap_idx = np.minimum(base[w] + slot_w - 1, acts - 1)
            cap_row = pattern[cap_idx]
            valid = np.where(transitive, last_row >= 0, True)
            row_w = np.where(transitive, last_row, cap_row)
            lvl_w = np.where(transitive, last_level + 1, 1)
            nom_row[:, w] = np.where(valid, row_w, -1)
            nom_level[:, w] = np.where(valid, lvl_w, 0)
            np.copyto(last_row, row_w, where=valid)
            np.copyto(last_level, lvl_w, where=valid)
        return nom_row, nom_level

    def _nominate_graphene_shared(self, pattern, n_windows):
        """Graphene is deterministic (its rng is unused): one scalar replay
        of the pattern serves every seed."""
        spec = self.tracker_spec
        tracker = GrapheneTracker(
            spec.entries,
            spec.mitigation_count,
            # Graphene never draws from its rng (see the docstring above);
            # the placeholder generator exists only to satisfy the Tracker
            # constructor and can never influence a result.
            np.random.default_rng(0),  # repro: lint-ignore[RNG001]
        )
        nom_row = np.full(n_windows, -1, dtype=np.int64)
        window = self.window
        pat = pattern.tolist()
        for w in range(n_windows):
            for act in pat[w * window:(w + 1) * window]:
                tracker.on_activation(act)
            request = tracker.select_for_mitigation()
            if request is not None:
                nom_row[w] = request.row
        return nom_row

    def _nominate_para(self, pattern, seeds, n_windows):
        spec = self.tracker_spec
        n_seeds = len(seeds)
        window = self.window
        acts = pattern.shape[0]
        nom_row = np.full((n_seeds, n_windows), -1, dtype=np.int64)
        covered = n_windows * window
        for i, seed in enumerate(seeds):
            tracker_rng, _ = seed_rngs(seed)
            sampled = tracker_rng.random(size=acts) < spec.probability
            hits = np.flatnonzero(sampled[:covered])
            if hits.size:
                # A later sample overwrites an unharvested one, and every
                # select clears the pending slot, so window w nominates
                # its own last sampled act (ascending writes keep the max).
                last = np.full(n_windows, -1, dtype=np.int64)
                last[hits // window] = hits
                has = last >= 0
                nom_row[i, has] = pattern[last[has]]
        return nom_row, np.ones((n_seeds, n_windows), dtype=np.int64)

    def _fractal_distance_table(self, nom_row, seeds):
        """Per-(seed, window) fractal distances, drawn only for windows
        that actually mitigate — the scalar policy consumes one 16-bit
        draw per ``victims()`` call and none otherwise."""
        n_seeds, n_windows = nom_row.shape
        dist = np.zeros((n_seeds, n_windows), dtype=np.int64)
        for i, seed in enumerate(seeds):
            _, policy_rng = seed_rngs(seed)
            mitigating = nom_row[i] >= 0
            count = int(mitigating.sum())
            if count:
                rand = policy_rng.integers(
                    0, 1 << FractalMitigation.RAND_BITS, size=count
                )
                dist[i, mitigating] = _fractal_distances(rand)
        return dist

    # -- replay --------------------------------------------------------
    def prepare(self, pattern: Sequence[int]) -> PreparedPattern:
        """Precompute everything about ``pattern`` that seeds share.

        Validation, the cipher remap of the pattern rows, the arena bound,
        and the per-act hammer schedule are all seed-independent; a caller
        probing the same pattern repeatedly (the threshold campaign) pays
        for them once and replays via :meth:`run_prepared`.
        """
        pattern_arr = np.asarray(list(pattern), dtype=np.int64)
        if pattern_arr.size and pattern_arr.min() < 0:
            raise ValueError("row indices must be non-negative")
        if self.phys_of is not None:
            if pattern_arr.size and pattern_arr.max() >= self.rows_per_bank:
                raise ValueError(
                    f"plaintext {int(pattern_arr.max())} outside "
                    f"[0, {self.rows_per_bank})"
                )
            phys_pattern = self.phys_of[pattern_arr]
        else:
            phys_pattern = pattern_arr

        pattern_top = int(phys_pattern.max()) if phys_pattern.size else 0
        arena = max(pattern_top, self.rows_per_bank - 1) + self.blast_radius + 1
        profile = self.profile
        schedule = tuple(
            (
                center,
                tuple(
                    (center + offset, damage)
                    for offset, damage in profile
                    if center + offset >= 0
                ),
            )
            for center in phys_pattern.tolist()
        )
        return PreparedPattern(pattern_arr, phys_pattern, arena, schedule)

    def run_prepared(
        self,
        prep: PreparedPattern,
        seed_list: List[int],
        seed_chunk: Optional[int] = None,
    ) -> List[AttackResult]:
        """Replay a prepared pattern for ``seed_list`` in memory-bounded
        chunks (same results as :meth:`run_pattern`, minus the per-call
        pattern work)."""
        if seed_chunk is None:
            seed_chunk = max(1, _CHUNK_BUDGET_BYTES // (prep.arena * 8))
        results: List[AttackResult] = []
        for start in range(0, len(seed_list), seed_chunk):
            chunk = seed_list[start:start + seed_chunk]
            results.extend(self._run_chunk(prep, chunk))
        return results

    def run_pattern(
        self,
        pattern: Sequence[int],
        seed_list: List[int],
        seed_chunk: Optional[int],
    ) -> List[AttackResult]:
        return self.run_prepared(self.prepare(pattern), seed_list, seed_chunk)

    def _pressure_arena(self, arena: int, n_seeds: int) -> np.ndarray:
        """A zeroed ``(arena, n_seeds)`` view over the reused flat buffer.

        ``fill(0.0)`` on a recycled buffer is bit-identical to a fresh
        ``np.zeros`` — only the allocator traffic changes.
        """
        need = arena * n_seeds
        if self._pressure_buf.size < need:
            self._pressure_buf = np.empty(need, dtype=np.float64)
        view = self._pressure_buf[:need].reshape(arena, n_seeds)
        view.fill(0.0)
        return view

    def _run_chunk(self, prep: PreparedPattern, seeds):
        pattern_arr = prep.pattern
        arena = prep.arena
        n_seeds = len(seeds)
        acts = pattern_arr.shape[0]
        window = self.window
        refresh_every = self.refresh_interval_acts

        nom_row, nom_level = self._nominate(pattern_arr, seeds)
        fractal = isinstance(self.policy_spec, FractalPolicySpec)
        dist = (
            self._fractal_distance_table(nom_row, seeds) if fractal else None
        )

        pressure = self._pressure_arena(arena, n_seeds)
        max_pressure = np.zeros(n_seeds, dtype=np.float64)
        max_row = np.full(n_seeds, -1, dtype=np.int64)
        mitigations = np.zeros(n_seeds, dtype=np.int64)
        victim_refreshes = np.zeros(n_seeds, dtype=np.int64)
        greater = np.empty(n_seeds, dtype=bool)
        seed_index = np.arange(n_seeds, dtype=np.int64)

        # Per-act hammer schedule: (center, valid (target, damage) pairs),
        # precomputed in prepare(). The loop body then only touches numpy.
        schedule = prep.schedule
        np_greater = np.greater
        np_copyto = np.copyto
        for i, (center, targets) in enumerate(schedule):
            for target, damage in targets:
                cells = pressure[target]
                cells += damage
                np_greater(cells, max_pressure, out=greater)
                if greater.any():
                    np_copyto(max_pressure, cells, where=greater)
                    max_row[greater] = target
            pressure[center] = 0.0
            done = i + 1
            if done % window == 0:
                self._apply_window(
                    done // window - 1, nom_row, nom_level, dist, pressure,
                    max_pressure, max_row, mitigations, victim_refreshes,
                    seed_index,
                )
            if refresh_every is not None and done % refresh_every == 0:
                pressure[:] = 0.0

        return self._collect(
            pressure, max_pressure, max_row, mitigations, victim_refreshes,
            acts, n_seeds,
        )

    def _apply_window(
        self, w, nom_row, nom_level, dist, pressure, max_pressure, max_row,
        mitigations, victim_refreshes, seed_index,
    ):
        rows = nom_row[:, w]
        valid = rows >= 0
        if not valid.any():
            return
        mitigations += valid
        if dist is not None:
            d = dist[:, w]
            slots = (rows - d, rows - 1, rows + 1, rows + d)
        else:
            levels = nom_level[:, w]
            near = 2 * levels - 1
            far = 2 * levels
            slots = (rows - far, rows - near, rows + near, rows + far)
        rows_per_bank = self.rows_per_bank
        profile = self.profile
        phys_of = self.phys_of
        min_offset = -self.blast_radius  # deepest negative hammer offset
        for slot_rows in slots:
            ok = valid & (slot_rows >= 0) & (slot_rows < rows_per_bank)
            if not ok.any():
                continue
            if ok.all():
                # Fast path (the common mid-bank case): every lane
                # refreshes this slot, no boolean gathers needed.
                victim_refreshes += 1
                victims = slot_rows
                lanes = seed_index
            else:
                victim_refreshes += ok
                victims = slot_rows[ok]
                lanes = seed_index[ok]
            phys_victims = phys_of[victims] if phys_of is not None else victims
            # One reduction instead of a per-offset bounds check: if the
            # lowest victim clears the deepest negative offset, every
            # hammer target of this slot is in the arena.
            safe = int(phys_victims.min()) + min_offset >= 0
            for offset, damage in profile:
                targets = phys_victims + offset
                if safe:
                    t, s = targets, lanes
                else:
                    in_range = targets >= 0
                    if in_range.all():
                        t, s = targets, lanes
                    else:
                        t, s = targets[in_range], lanes[in_range]
                values = pressure[t, s] + damage
                pressure[t, s] = values
                g = values > max_pressure[s]
                if g.any():
                    winners = s[g]
                    max_pressure[winners] = values[g]
                    max_row[winners] = t[g]
            pressure[phys_victims, lanes] = 0.0

    def _collect(
        self, pressure, max_pressure, max_row, mitigations,
        victim_refreshes, acts, n_seeds,
    ) -> List[AttackResult]:
        per_seed_pressure: List[dict] = [dict() for _ in range(n_seeds)]
        if self.collect_pressure:
            lanes, rows = np.nonzero(pressure.T)
            values = pressure.T[lanes, rows]
            for lane, row, value in zip(
                lanes.tolist(), rows.tolist(), values.tolist()
            ):
                per_seed_pressure[lane][row] = value
        return [
            AttackResult(
                max_pressure=float(max_pressure[s]),
                max_pressure_row=int(max_row[s]),
                activations=acts,
                mitigations=int(mitigations[s]),
                victim_refreshes=int(victim_refreshes[s]),
                pressure=per_seed_pressure[s],
            )
            for s in range(n_seeds)
        ]
