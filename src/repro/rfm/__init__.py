"""Time-provisioning mechanisms at the memory-controller side.

* :mod:`repro.rfm.rfm` — the DDR5 Refresh Management command: per-bank RAA
  counters, blocking RFM of tRFM, REF decrementing RAA (Section II-E).
* :mod:`repro.rfm.prac` — Per-Row Activation Counting + Alert Back-Off, the
  MOAT-style comparison point of Fig. 13 (Section VII-A).
"""

from repro.rfm.prac import PracModel
from repro.rfm.rfm import RfmController

__all__ = ["PracModel", "RfmController"]
