"""PRAC + ABO model (Section VII-A, Fig. 13), in the style of MOAT [36].

Per-Row Activation Counting stores an activation counter inside each DRAM
row; maintaining it lengthens the DRAM timings (the paper reports tRC growing
by ~10 %, which alone costs ~4 % performance regardless of threshold).
Alert Back-Off lets the DRAM chip assert ALERT when some row's counter
crosses an internal threshold; the controller then stalls the subchannel for
a mitigation window (modeled as tRFM) while the chip refreshes the victims.

The ABO threshold follows MOAT: mitigate when a row reaches roughly half the
tolerated Rowhammer threshold, minus the slack an attacker can squeeze in
between ALERT assertion and the back-off taking effect (20-30 extra ACTs per
the works cited in Section VII-A).
"""

from __future__ import annotations

from typing import Dict, List

from repro.sim.config import DramTiming
from repro.ckpt.contract import checkpointable

#: tRC inflation from the counter read-modify-write (Section VII-A).
PRAC_TRC_FACTOR = 1.10

#: Activations an attacker can land between ALERT and the stall (Sec. VII-A).
ABO_SLACK_ACTS = 25


def prac_timing(base: DramTiming) -> DramTiming:
    """DDR5 timings with PRAC's counter update folded into tRC."""
    return base.scaled(trc_factor=PRAC_TRC_FACTOR)


def abo_threshold_for(trh_d: int) -> int:
    """Internal per-row ALERT threshold needed to tolerate ``trh_d``.

    A double-sided threshold of TRH-D allows TRH-D activations per neighbour;
    the chip must mitigate before that, leaving room for the ABO slack.
    """
    threshold = trh_d - ABO_SLACK_ACTS
    if threshold < 1:
        raise ValueError(
            f"PRAC+ABO cannot tolerate TRH-D {trh_d} "
            f"(needs > {ABO_SLACK_ACTS + 1}, Section VII-A)"
        )
    return threshold


@checkpointable(
    state=("_counters", "alerts"),
    const=("num_banks", "abo_threshold"),
)
class PracModel:
    """Per-row counters and the ABO stall rule for one subchannel."""

    def __init__(self, num_banks: int, abo_threshold: int):
        if abo_threshold < 1:
            raise ValueError("abo_threshold must be at least 1")
        self.abo_threshold = abo_threshold
        self.num_banks = num_banks
        self._counters: List[Dict[int, int]] = [{} for _ in range(num_banks)]
        self.alerts = 0

    def on_activation(self, bank: int, row: int) -> bool:
        """Count an ACT; return True when the chip asserts ABO ALERT."""
        counters = self._counters[bank]
        count = counters.get(row, 0) + 1
        if count >= self.abo_threshold:
            # The chip mitigates this row (victim refreshes) during the
            # back-off window; its counter resets.
            counters[row] = 0
            self.alerts += 1
            return True
        counters[row] = count
        return False

    def on_refresh_window(self) -> None:
        """Full tREFW elapsed: every row was refreshed, counters clear."""
        for counters in self._counters:
            counters.clear()

    def row_count(self, bank: int, row: int) -> int:
        """Current per-row activation count (0 when untracked)."""
        return self._counters[bank].get(row, 0)
