"""DDR5 Refresh Management (RFM) bookkeeping (Section II-E).

The memory controller counts activations per bank in a Rolling Accumulated
ACT (RAA) counter. When a bank's RAA reaches ``rfm_th`` the MC must issue an
RFM command — a blocking operation of tRFM during which the bank services no
demand requests — which decrements RAA by ``rfm_th``. A REF also decrements
RAA (by 100 % of ``rfm_th`` here, the paper's assumption in Section II-F).
"""

from __future__ import annotations

from typing import List, Optional
from repro.ckpt.contract import checkpointable


class _RfmObsHooks:
    """Pre-resolved RAA metric objects (one slot on the controller).

    Attached through the memory controller's hook bundle, increments and
    the running RAA peak accumulate in plain ints and :meth:`flush`
    publishes them at the next drain boundary; attached to a bare
    Observability, emission is eager.
    """

    __slots__ = ("m_rfms", "m_ref_decrements", "m_raa_peak",
                 "n_rfms", "n_ref_decrements", "raa_peak", "deferred")

    def __init__(self, obs):
        metrics = obs.metrics
        self.m_rfms = metrics.counter("rfm.issued")
        self.m_ref_decrements = metrics.counter("rfm.ref_decrements")
        self.m_raa_peak = metrics.gauge("rfm.raa_peak")
        self.n_rfms = 0
        self.n_ref_decrements = 0
        self.raa_peak = 0
        children = getattr(obs, "children", None)
        self.deferred = children is not None
        if children is not None:
            children.append(self)

    def flush(self) -> None:
        """Publish accumulated RAA bookkeeping (drain boundary)."""
        if self.n_rfms:
            self.m_rfms.inc(self.n_rfms)
            self.n_rfms = 0
        if self.n_ref_decrements:
            self.m_ref_decrements.inc(self.n_ref_decrements)
            self.n_ref_decrements = 0
        if self.raa_peak > self.m_raa_peak.value:
            self.m_raa_peak.set(self.raa_peak)


@checkpointable(
    state=("raa", "rfms_issued"),
    const=("num_banks", "rfm_th", "raa_max", "ref_decrement"),
    derived=("_obs",),
)
class RfmController:
    """Per-bank RAA counters and the RFM issue rule.

    DDR5 defines two trip points: RAAIMT (here ``rfm_th``), above which an
    RFM is *due*, and RAAMMT (``rfm_th * max_factor``), above which the MC
    must stop activating the bank until an RFM completes. A good controller
    issues due RFMs opportunistically while the bank is idle and only blocks
    demand once the hard cap is reached.
    """

    def __init__(
        self,
        num_banks: int,
        rfm_th: int,
        ref_decrement: int = None,
        max_factor: float = 1.5,
    ):
        if rfm_th < 1:
            raise ValueError("rfm_th must be at least 1")
        if max_factor < 1.0:
            raise ValueError("max_factor must be >= 1")
        self.num_banks = num_banks
        self.rfm_th = rfm_th
        self.raa_max = max(rfm_th, int(rfm_th * max_factor))
        # REF reduces RAA by 50 % or 100 % of RFMTH per the spec; the paper's
        # motivation study assumes 100 %.
        self.ref_decrement = rfm_th if ref_decrement is None else ref_decrement
        self.raa: List[int] = [0] * num_banks
        self.rfms_issued = 0
        # Observability hooks; one slot, None (free) unless attach_obs ran.
        self._obs: Optional[_RfmObsHooks] = None

    def attach_obs(self, obs) -> None:
        """Publish RAA bookkeeping into an :class:`repro.obs.Observability`
        metrics registry (no-op when metrics are off)."""
        if obs.metrics is None:
            return
        self._obs = _RfmObsHooks(obs)

    def on_activation(self, bank: int) -> None:
        """Count one ACT into the bank's RAA counter."""
        self.raa[bank] += 1
        obs = self._obs
        if obs is not None:
            if obs.deferred:
                if self.raa[bank] > obs.raa_peak:
                    obs.raa_peak = self.raa[bank]
            elif self.raa[bank] > obs.m_raa_peak.value:
                obs.m_raa_peak.set(self.raa[bank])

    def rfm_due(self, bank: int) -> bool:
        """RAAIMT reached: an RFM should be issued when convenient."""
        return self.raa[bank] >= self.rfm_th

    def rfm_needed(self, bank: int) -> bool:
        """RAAMMT reached: no more ACTs to ``bank`` until an RFM."""
        return self.raa[bank] >= self.raa_max

    def on_rfm(self, bank: int) -> None:
        """Account an issued RFM: RAA drops by RFMTH."""
        self.raa[bank] = max(0, self.raa[bank] - self.rfm_th)
        self.rfms_issued += 1
        obs = self._obs
        if obs is not None:
            if obs.deferred:
                obs.n_rfms += 1
            else:
                obs.m_rfms.inc()

    def on_refresh(self, bank: int) -> None:
        """Account a REF: RAA drops by the refresh decrement."""
        self.raa[bank] = max(0, self.raa[bank] - self.ref_decrement)
        obs = self._obs
        if obs is not None:
            if obs.deferred:
                obs.n_ref_decrements += 1
            else:
                obs.m_ref_decrements.inc()
