"""DDR5 Refresh Management (RFM) bookkeeping (Section II-E).

The memory controller counts activations per bank in a Rolling Accumulated
ACT (RAA) counter. When a bank's RAA reaches ``rfm_th`` the MC must issue an
RFM command — a blocking operation of tRFM during which the bank services no
demand requests — which decrements RAA by ``rfm_th``. A REF also decrements
RAA (by 100 % of ``rfm_th`` here, the paper's assumption in Section II-F).
"""

from __future__ import annotations

from typing import List


class RfmController:
    """Per-bank RAA counters and the RFM issue rule.

    DDR5 defines two trip points: RAAIMT (here ``rfm_th``), above which an
    RFM is *due*, and RAAMMT (``rfm_th * max_factor``), above which the MC
    must stop activating the bank until an RFM completes. A good controller
    issues due RFMs opportunistically while the bank is idle and only blocks
    demand once the hard cap is reached.
    """

    def __init__(
        self,
        num_banks: int,
        rfm_th: int,
        ref_decrement: int = None,
        max_factor: float = 1.5,
    ):
        if rfm_th < 1:
            raise ValueError("rfm_th must be at least 1")
        if max_factor < 1.0:
            raise ValueError("max_factor must be >= 1")
        self.num_banks = num_banks
        self.rfm_th = rfm_th
        self.raa_max = max(rfm_th, int(rfm_th * max_factor))
        # REF reduces RAA by 50 % or 100 % of RFMTH per the spec; the paper's
        # motivation study assumes 100 %.
        self.ref_decrement = rfm_th if ref_decrement is None else ref_decrement
        self.raa: List[int] = [0] * num_banks
        self.rfms_issued = 0

    def on_activation(self, bank: int) -> None:
        """Count one ACT into the bank's RAA counter."""
        self.raa[bank] += 1

    def rfm_due(self, bank: int) -> bool:
        """RAAIMT reached: an RFM should be issued when convenient."""
        return self.raa[bank] >= self.rfm_th

    def rfm_needed(self, bank: int) -> bool:
        """RAAMMT reached: no more ACTs to ``bank`` until an RFM."""
        return self.raa[bank] >= self.raa_max

    def on_rfm(self, bank: int) -> None:
        """Account an issued RFM: RAA drops by RFMTH."""
        self.raa[bank] = max(0, self.raa[bank] - self.rfm_th)
        self.rfms_issued += 1

    def on_refresh(self, bank: int) -> None:
        """Account a REF: RAA drops by the refresh decrement."""
        self.raa[bank] = max(0, self.raa[bank] - self.ref_decrement)
