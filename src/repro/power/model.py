"""IDD-based DRAM power calculator in the style of Micron's power tool.

The model computes channel power from the simulator's command counts and
runtime, split into the paper's four components (Fig. 12):

* **act_rw** — activate/precharge plus read/write burst power;
* **other**  — standby background and termination;
* **refresh** — the periodic REF current;
* **mitig** — Rowhammer victim refreshes (internal, row-only operations
  without column access or I/O, so each costs a fraction of a full
  ACT/PRE cycle — ``victim_refresh_energy_ratio``).

Only the *relative* component growth matters for reproducing Fig. 12 (extra
activations under Rubix, mitigations under AutoRFM); the IDD values are
DDR5-class datasheet numbers for a x8 device, scaled to a 10-chip rank.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sim.config import SystemConfig
from repro.sim.stats import SimStats


@dataclass(frozen=True)
class PowerParams:
    """Device currents (mA per chip) and rail voltage for a DDR5 x8 part.

    A 32-bit DDR5 subchannel is built from four x8 chips. The IDD0/IDD3N
    delta is calibrated against the paper's Fig. 12 deltas (Rubix's ~18 %
    extra activations cost ~36 mW, implying ~0.4 nJ per rank-wide ACT+PRE);
    modern fine-grained DDR5 banks have a far smaller ACT current delta than
    DDR3/DDR4-era rules of thumb.
    """

    vdd: float = 1.1
    idd0: float = 57.0  # one-bank ACT-PRE cycling at tRC
    idd2n: float = 32.0  # precharge standby
    idd3n: float = 55.0  # active standby
    idd4r: float = 390.0  # burst read
    idd4w: float = 360.0  # burst write
    idd5b: float = 250.0  # burst refresh
    chips_per_rank: int = 4
    #: A victim refresh is an internal row cycle without column access or
    #: I/O; calibrated so AutoRFM-4's mitigation power lands near the
    #: paper's ~55 mW (Section VI-B).
    victim_refresh_energy_ratio: float = 0.27

    @property
    def act_energy_nj(self) -> float:
        """Rank energy of one ACT+PRE cycle (nJ): VDD*(IDD0-IDD3N)*tRC."""
        trc_s = 48e-9
        per_chip = self.vdd * (self.idd0 - self.idd3n) * 1e-3 * trc_s
        return per_chip * self.chips_per_rank * 1e9


@dataclass
class PowerBreakdown:
    """Average channel power in milliwatts, per Fig. 12 component.

    ``act_mw`` (activate/precharge) and ``rw_mw`` (read/write bursts) are
    kept separate internally — mapping studies change only the former —
    and combined as ``act_rw_mw`` for the Fig. 12 component.
    """

    act_mw: float
    rw_mw: float
    other_mw: float
    refresh_mw: float
    mitig_mw: float

    @property
    def act_rw_mw(self) -> float:
        return self.act_mw + self.rw_mw

    @property
    def total_mw(self) -> float:
        return self.act_rw_mw + self.other_mw + self.refresh_mw + self.mitig_mw


class DramPowerModel:
    """Compute a :class:`PowerBreakdown` from simulation statistics."""

    def __init__(self, config: SystemConfig, params: PowerParams = PowerParams()):
        self.config = config
        self.params = params

    def breakdown(self, stats: SimStats) -> PowerBreakdown:
        """Average channel power split into the Fig. 12 components."""
        if stats.cycles <= 0:
            raise ValueError("stats.cycles must be positive")
        p = self.params
        timing = self.config.timing
        seconds = stats.cycles / 4e9  # 4 GHz CPU clock

        # --- Activate / read / write ---------------------------------
        act_w = stats.total_activations * p.act_energy_nj * 1e-9 / seconds
        burst_s = timing.burst / 4e9
        reads = sum(b.reads for b in stats.banks)
        writes = sum(b.writes for b in stats.banks)
        rd_w = (
            reads * p.vdd * (p.idd4r - p.idd3n) * 1e-3 * burst_s
            * p.chips_per_rank / seconds
        )
        wr_w = (
            writes * p.vdd * (p.idd4w - p.idd3n) * 1e-3 * burst_s
            * p.chips_per_rank / seconds
        )

        # --- Refresh --------------------------------------------------
        ref_fraction = timing.trfc_ns / timing.trefi_ns
        ranks = self.config.num_subchannels
        refresh_w = (
            p.vdd * (p.idd5b - p.idd3n) * 1e-3 * p.chips_per_rank
            * ref_fraction * ranks
        )

        # --- Background / termination ("other") -----------------------
        other_w = p.vdd * p.idd2n * 1e-3 * p.chips_per_rank * ranks

        # --- Rowhammer mitigation -------------------------------------
        mitig_w = (
            stats.total_victim_refreshes
            * p.act_energy_nj * p.victim_refresh_energy_ratio
            * 1e-9 / seconds
        )

        return PowerBreakdown(
            act_mw=act_w * 1e3,
            rw_mw=(rd_w + wr_w) * 1e3,
            other_mw=other_w * 1e3,
            refresh_mw=refresh_w * 1e3,
            mitig_mw=mitig_w * 1e3,
        )
