"""Micron-style DRAM power model (Section VI-B, Fig. 12)."""

from repro.power.model import DramPowerModel, PowerBreakdown, PowerParams

__all__ = ["DramPowerModel", "PowerBreakdown", "PowerParams"]
