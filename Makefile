# Convenience targets for the AutoRFM reproduction.

.PHONY: install test lint lint-fast lint-baseline payload-verify bench bench-smoke bench-security bench-sim bench-svc bench-campaign examples audit clean

install:
	pip install -e . || python setup.py develop

test:
	PYTHONPATH=src python -m pytest -x -q

lint:
	PYTHONPATH=src python -m repro lint src/repro
	@command -v ruff >/dev/null 2>&1 && ruff check src/repro || echo "ruff not installed; skipping"
	@command -v mypy >/dev/null 2>&1 && mypy src/repro/lint || echo "mypy not installed; skipping"

# Pre-commit speed path: only git-modified files, per-module passes only
# (the whole-program call-graph passes need the full tree and run in CI
# and `make lint`).
lint-fast:
	PYTHONPATH=src python -m repro lint --changed src/repro

lint-baseline:
	PYTHONPATH=src python -m repro lint --update-baseline src/repro

# Corpus integrity: every scenario file must match its pinned source and
# compiled-shape digests in corpus.json (see docs/payload_dsl.md).
payload-verify:
	PYTHONPATH=src python -m repro payload verify

bench:
	pytest benchmarks/ --benchmark-only

bench-smoke:
	PYTHONPATH=src python benchmarks/bench_perf_smoke.py

bench-security:
	PYTHONPATH=src python benchmarks/bench_security_smoke.py

# Scalar-vs-batch timing backends over the lane fleet (writes
# sim_batch_speedup into BENCH_perf.json; see docs/sim_batch.md).
bench-sim:
	PYTHONPATH=src python benchmarks/bench_perf_smoke.py

# Sweep-service throughput: cold jobs/sec through the daemon's worker
# pool and warm cache-hit latency (writes svc_jobs_per_second and
# svc_hit_latency_ms into BENCH_perf.json; see docs/sweep_service.md).
bench-svc:
	PYTHONPATH=src python benchmarks/bench_svc_smoke.py

# Adaptive threshold-campaign engine: cells/sec over the smoke grid and
# seeds saved vs the fixed sweep (writes campaign_cells_per_second and
# campaign_seeds_saved_pct into BENCH_perf.json; see
# docs/threshold_campaign.md).
bench-campaign:
	PYTHONPATH=src python benchmarks/bench_campaign_smoke.py

examples:
	python examples/quickstart.py
	python examples/rowhammer_attack_analysis.py
	python examples/custom_tracker.py
	python examples/design_space_sweep.py
	python examples/full_cpu_path.py
	python examples/generate_report.py

audit:
	python -m repro audit

clean:
	rm -rf benchmarks/results report_out .pytest_cache .hypothesis
	find . -name __pycache__ -type d -exec rm -rf {} +
