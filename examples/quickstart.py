"""Quickstart: measure AutoRFM's cost on one workload.

Runs the bwaves workload (the paper's most memory-intensive SPEC benchmark)
on the 8-core Table IV system three ways — unmitigated baseline, blocking
RFM-4, and AutoRFM-4 with Rubix + Fractal Mitigation — and prints the
slowdowns plus the ALERT rate. This is the paper's headline comparison in
about thirty lines.

Run:  python examples/quickstart.py
"""

from repro import (
    MitigationSetup,
    SystemConfig,
    WORKLOADS,
    make_rate_traces,
    simulate,
)


def main() -> None:
    config = SystemConfig()  # Table IV: 8 cores, 64 banks, 256 subarrays
    traces = make_rate_traces(WORKLOADS["bwaves"], config, requests=4000)

    baseline = simulate(traces, MitigationSetup("none"), config, mapping="zen")
    print(
        f"baseline: {baseline.stats.act_pki:.1f} ACT-PKI, "
        f"{baseline.stats.row_hit_rate:.0%} row hits"
    )

    rfm = simulate(
        traces, MitigationSetup("rfm", threshold=4), config, mapping="zen"
    )
    print(
        f"RFM-4 (blocking):    {rfm.slowdown_vs(baseline):6.1%} slowdown, "
        f"{rfm.stats.total_rfm_commands} RFM commands"
    )

    autorfm = simulate(
        traces,
        MitigationSetup("autorfm", threshold=4, policy="fractal"),
        config,
        mapping="rubix",
    )
    print(
        f"AutoRFM-4 (this paper): {autorfm.slowdown_vs(baseline):6.1%} slowdown, "
        f"{autorfm.stats.total_mitigations} transparent mitigations, "
        f"ALERT per ACT {autorfm.stats.alerts_per_act:.2%}"
    )

    from repro.security import mint_tolerated_trhd

    print(
        f"\ntolerated Rowhammer threshold (TRH-D): "
        f"{mint_tolerated_trhd(4, recursive=False)} "
        f"(MINT window 4 + Fractal Mitigation, 10K-year MTTF)"
    )


if __name__ == "__main__":
    main()
