"""Generate a machine-readable experiment report (JSON + CSV).

Runs a small mechanism-comparison matrix over three contrasting workloads
and writes the flattened records with full provenance (configuration dump
included) to ``report_out/``. The shape downstream tooling (plots,
dashboards, regression tracking) consumes.

Run:  python examples/generate_report.py
"""

import json
import os

from repro import MitigationSetup, SystemConfig, WORKLOADS, make_rate_traces, simulate
from repro.analysis.export import (
    config_record,
    result_record,
    to_csv,
    write_records,
)

WORKLOAD_NAMES = ("bwaves", "mcf", "add")
SETUPS = [
    (MitigationSetup("none"), "zen"),
    (MitigationSetup("rfm", threshold=4), "zen"),
    (MitigationSetup("autorfm", threshold=4, policy="fractal"), "rubix"),
    (MitigationSetup("autorfm", threshold=8, policy="fractal"), "rubix"),
    (MitigationSetup("prac", prac_trh_d=100), "zen"),
]
OUT_DIR = "report_out"


def main() -> None:
    config = SystemConfig()
    os.makedirs(OUT_DIR, exist_ok=True)

    records = []
    for name in WORKLOAD_NAMES:
        traces = make_rate_traces(WORKLOADS[name], config, requests=2500)
        baseline = simulate(traces, MitigationSetup("none"), config, "zen")
        for setup, mapping in SETUPS:
            result = simulate(traces, setup, config, mapping)
            records.append(
                result_record(
                    result,
                    workload=name,
                    config=config,
                    baseline=baseline,
                )
            )
            print(
                f"{name:8s} {setup.describe():38s} "
                f"slowdown={records[-1].get('slowdown', 0.0):+.3f}"
            )

    write_records(records, os.path.join(OUT_DIR, "results.json"))
    write_records(records, os.path.join(OUT_DIR, "results.csv"))
    with open(os.path.join(OUT_DIR, "config.json"), "w") as handle:
        json.dump(config_record(config), handle, indent=2, sort_keys=True)

    print(f"\nwrote {len(records)} records to {OUT_DIR}/results.(json|csv)")
    print(f"columns: {to_csv(records).splitlines()[0]}")


if __name__ == "__main__":
    main()
