"""Kill-and-resume: a segment-checkpointed sweep that survives its process.

Runs a small AutoRFM sweep in checkpointed segments, then simulates a
crash by deleting the finished results while keeping the on-disk segment
snapshots — exactly the state a killed process leaves behind — and
re-invokes the runner with ``resume=True``. The resumed sweep restarts
each job from its last snapshot boundary instead of cycle 0 and produces
bit-identical results, which this script verifies.

Run:  python examples/resumable_sweep.py
"""

import json
import os
import tempfile

from repro import MitigationSetup, SystemConfig
from repro.analysis.runner import ExperimentRunner, Job, result_to_dict


def main() -> None:
    config = SystemConfig(
        num_cores=2,
        num_subchannels=2,
        banks_per_subchannel=4,
        rows_per_bank=4096,
        subarrays_per_bank=16,
    )
    setup = MitigationSetup("autorfm", threshold=4, policy="fractal")
    jobs = [
        Job("bwaves", setup, "rubix", requests=400, seed=seed,
            segment_cycles=10_000)
        for seed in (1, 2, 3)
    ]

    with tempfile.TemporaryDirectory() as cache_dir:
        runner = ExperimentRunner(config=config, cache_dir=cache_dir,
                                  requests=400)
        first = runner.run_many(jobs)
        for job, result in zip(jobs, first):
            print(
                f"seed {job.seed}: {result.stats.cycles} cycles, "
                f"{result.ckpt['captured']} segment snapshots"
            )

        # Simulate the kill: the results never landed, only the segment
        # snapshots survive on disk.
        for job in jobs:
            os.unlink(os.path.join(cache_dir, runner.key_for(job) + ".json"))
        print("\n-- process killed; results lost, snapshots kept --\n")

        resumed = runner.run_many(jobs, resume=True)
        for job, result in zip(jobs, resumed):
            print(
                f"seed {job.seed}: resumed from cycle "
                f"{result.ckpt['resumed_from']}, "
                f"re-simulated only the tail"
            )

        identical = all(
            json.dumps(result_to_dict(a), sort_keys=True)
            == json.dumps(result_to_dict(b), sort_keys=True)
            for a, b in zip(first, resumed)
        )
        print(f"\nresumed results bit-identical to the first run: {identical}")
        stats = runner.cache.stats()
        print(
            f"cache: {stats['results']} results, {stats['snapshots']} "
            f"snapshots, {stats['total_bytes'] / 1024:.0f} KiB "
            f"(bound it with REPRO_CACHE_MAX_MB or `repro cache --prune`)"
        )


if __name__ == "__main__":
    main()
