"""Design-space sweep: slowdown vs tolerated threshold across mechanisms.

For a DRAM vendor choosing a mitigation, the question is: "for the
Rowhammer threshold my chips need, what does each mechanism cost?" This
example sweeps RFM and AutoRFM windows plus PRAC on two contrasting
workloads (streaming `add`, pointer-chasing `mcf`) and prints the
cost-vs-protection frontier.

Run:  python examples/design_space_sweep.py
"""

from repro import MitigationSetup, SystemConfig, WORKLOADS, make_rate_traces, simulate
from repro.analysis.tables import render_table
from repro.security import mint_tolerated_trhd

WORKLOAD_NAMES = ("add", "mcf")
REQUESTS = 3000


def sweep_workload(name: str):
    config = SystemConfig()
    traces = make_rate_traces(WORKLOADS[name], config, requests=REQUESTS)
    baseline = simulate(traces, MitigationSetup("none"), config, "zen")

    rows = []
    for th in (4, 8, 16):
        trhd = mint_tolerated_trhd(th, recursive=True)
        run = simulate(traces, MitigationSetup("rfm", threshold=th), config, "zen")
        rows.append([f"RFM-{th}", trhd, f"{run.slowdown_vs(baseline):.1%}", "-"])
    for th in (4, 8, 16):
        trhd = mint_tolerated_trhd(th, recursive=False)
        run = simulate(
            traces,
            MitigationSetup("autorfm", threshold=th, policy="fractal"),
            config,
            "rubix",
        )
        rows.append(
            [
                f"AutoRFM-{th}",
                trhd,
                f"{run.slowdown_vs(baseline):.1%}",
                f"{run.stats.alerts_per_act:.2%}",
            ]
        )
    prac = simulate(traces, MitigationSetup("prac", prac_trh_d=74), config, "zen")
    rows.append(["PRAC+ABO", 74, f"{prac.slowdown_vs(baseline):.1%}", "-"])
    return rows


def main() -> None:
    for name in WORKLOAD_NAMES:
        rows = sweep_workload(name)
        print(
            render_table(
                ["mechanism", "tolerated TRH-D", "slowdown", "ALERT/ACT"],
                rows,
                title=f"--- design space for {name} ---",
            )
        )
        print()
    print(
        "Reading the frontier: RFM is cheap only while its window is long\n"
        "(high thresholds); PRAC pays a flat tRC tax everywhere; AutoRFM\n"
        "holds a few percent all the way down to TRH-D 73."
    )


if __name__ == "__main__":
    main()
