"""Design-space sweep: slowdown vs tolerated threshold across mechanisms.

For a DRAM vendor choosing a mitigation, the question is: "for the
Rowhammer threshold my chips need, what does each mechanism cost?" This
example sweeps RFM and AutoRFM windows plus PRAC on two contrasting
workloads (streaming `add`, pointer-chasing `mcf`) and prints the
cost-vs-protection frontier.

The whole sweep goes through :class:`repro.analysis.runner.ExperimentRunner`
as one batch: independent simulations fan out across ``REPRO_JOBS`` worker
processes, and completed runs land in the persistent result cache, so a
second invocation prints the tables instantly.

Run:  python examples/design_space_sweep.py
"""

from repro import MitigationSetup, SystemConfig
from repro.analysis.runner import ExperimentRunner, Job
from repro.analysis.tables import render_table
from repro.security import mint_tolerated_trhd

WORKLOAD_NAMES = ("add", "mcf")
REQUESTS = 3000
SEED = 0

RFM_WINDOWS = (4, 8, 16)
AUTORFM_WINDOWS = (4, 8, 16)
PRAC_TRHD = 74


def build_jobs(name: str):
    """(description, job) pairs for one workload; the baseline comes first."""
    jobs = [("baseline", Job(name, MitigationSetup("none"), "zen", REQUESTS, SEED))]
    for th in RFM_WINDOWS:
        jobs.append(
            (f"RFM-{th}",
             Job(name, MitigationSetup("rfm", threshold=th), "zen", REQUESTS, SEED))
        )
    for th in AUTORFM_WINDOWS:
        setup = MitigationSetup("autorfm", threshold=th, policy="fractal")
        jobs.append((f"AutoRFM-{th}", Job(name, setup, "rubix", REQUESTS, SEED)))
    jobs.append(
        ("PRAC+ABO",
         Job(name, MitigationSetup("prac", prac_trh_d=PRAC_TRHD), "zen",
             REQUESTS, SEED))
    )
    return jobs


def rows_for(labelled, results):
    baseline = results[0]
    rows = []
    for (label, job), run in zip(labelled[1:], results[1:]):
        setup = job.setup
        if setup.mechanism == "rfm":
            trhd = mint_tolerated_trhd(setup.threshold, recursive=True)
            alert = "-"
        elif setup.mechanism == "autorfm":
            trhd = mint_tolerated_trhd(setup.threshold, recursive=False)
            alert = f"{run.stats.alerts_per_act:.2%}"
        else:  # prac
            trhd = setup.prac_trh_d
            alert = "-"
        rows.append([label, trhd, f"{run.slowdown_vs(baseline):.1%}", alert])
    return rows


def main() -> None:
    runner = ExperimentRunner(config=SystemConfig())
    labelled = {name: build_jobs(name) for name in WORKLOAD_NAMES}
    # One flat batch over both workloads: maximum pool utilization.
    flat = [job for jobs in labelled.values() for _, job in jobs]
    flat_results = runner.run_many(flat)

    cursor = 0
    for name in WORKLOAD_NAMES:
        jobs = labelled[name]
        results = flat_results[cursor:cursor + len(jobs)]
        cursor += len(jobs)
        print(
            render_table(
                ["mechanism", "tolerated TRH-D", "slowdown", "ALERT/ACT"],
                rows_for(jobs, results),
                title=f"--- design space for {name} ---",
            )
        )
        print()
    print(
        f"({runner.simulations_run} simulations run, "
        f"{runner.cache_hits} answered from cache)\n"
    )
    print(
        "Reading the frontier: RFM is cheap only while its window is long\n"
        "(high thresholds); PRAC pays a flat tRC tax everywhere; AutoRFM\n"
        "holds a few percent all the way down to TRH-D 73."
    )


if __name__ == "__main__":
    main()
