"""Full CPU path: LLC-level access stream -> shared cache -> memory system.

The benchmark fast path feeds post-LLC traces directly to the memory
controller (DESIGN.md); this example exercises the complete path instead:
it generates an LLC-level stream with a hot reuse set, filters it through
the 8 MB 16-way shared cache (misses + dirty writebacks), and simulates the
resulting post-LLC trace under AutoRFM.

Run:  python examples/full_cpu_path.py
"""

import numpy as np

from repro import MitigationSetup, SystemConfig, simulate
from repro.cpu.cache import SetAssociativeCache, llc_filter
from repro.workloads.synthetic import generate_trace


def llc_level_trace(config: SystemConfig, core_id: int, rng) -> "Trace":
    """An LLC-level stream: streaming traffic plus a cache-resident hot set."""
    region = config.total_lines // config.num_cores
    trace = generate_trace(
        "mixed",
        num_requests=12_000,
        mpki=60.0,  # pre-LLC rate; the cache will filter ~half
        region_start=core_id * region,
        region_lines=region,
        rng=rng,
        sequential_fraction=0.5,
        write_fraction=0.3,
        revisit_probability=0.3,
    )
    # Fold in a hot working set that fits in the LLC (these become hits).
    hot = rng.integers(core_id * region, core_id * region + 4096, len(trace))
    reuse = rng.random(len(trace)) < 0.35
    trace.addrs = [
        int(hot[i]) if reuse[i] else a for i, a in enumerate(trace.addrs)
    ]
    return trace


def main() -> None:
    config = SystemConfig()
    rng_root = np.random.default_rng(11)

    post_llc = []
    total_hits = total_misses = writebacks = 0
    for core in range(config.num_cores):
        cache_slice = SetAssociativeCache(
            size_bytes=config.llc_size_bytes // config.num_cores,
            ways=config.llc_ways,
        )
        raw = llc_level_trace(config, core, rng_root)
        filtered = llc_filter(raw, cache_slice)
        post_llc.append(filtered)
        total_hits += cache_slice.stats.hits
        total_misses += cache_slice.stats.misses
        writebacks += cache_slice.stats.writebacks

    hit_rate = total_hits / (total_hits + total_misses)
    print(f"LLC: {hit_rate:.0%} hit rate, {writebacks} writebacks")
    print(
        f"post-LLC traffic: {sum(len(t) for t in post_llc)} requests "
        f"({sum(len(t) for t in post_llc) / config.num_cores:.0f} per core)"
    )

    baseline = simulate(post_llc, MitigationSetup("none"), config, "zen")
    autorfm = simulate(
        post_llc,
        MitigationSetup("autorfm", threshold=4, policy="fractal"),
        config,
        "rubix",
    )
    print(
        f"memory system: {baseline.stats.act_pki:.1f} ACT-PKI, "
        f"{baseline.stats.row_hit_rate:.0%} row-buffer hits"
    )
    print(
        f"AutoRFM-4 over the full path: "
        f"{autorfm.slowdown_vs(baseline):.1%} slowdown, "
        f"ALERT/ACT {autorfm.stats.alerts_per_act:.2%}"
    )


if __name__ == "__main__":
    main()
