"""Extending the library: plug a custom tracker into AutoRFM.

AutoRFM is tracker-agnostic (Appendix D): anything implementing the
``Tracker`` interface can nominate aggressors. This example implements a
*last-activation* tracker — always mitigate the final row of the window, the
simplest possible policy — wires it into a bank-level AutoRFM engine by
hand, and contrasts its security with MINT's using the Monte-Carlo harness.

(A last-activation tracker is trivially broken: an attacker hammers the
target W-1 times per window and spends the last slot on a sacrificial row.
The harness shows exactly that.)

Run:  python examples/custom_tracker.py
"""

from typing import Optional

import numpy as np

from repro.core.mitigation import FractalMitigation
from repro.security.montecarlo import run_attack
from repro.trackers.base import MitigationRequest, Tracker
from repro.trackers.mint import MintTracker
from repro.workloads.attacks import interleave, round_robin_attack

ROWS = 128 * 1024
WINDOW = 4


class LastActivationTracker(Tracker):
    """Always nominate the most recent activation (deterministic, broken)."""

    def __init__(self, rng):
        super().__init__(rng)
        self._last: Optional[int] = None

    def on_activation(self, row: int) -> None:
        self._last = row

    def select_for_mitigation(self) -> Optional[MitigationRequest]:
        if self._last is None:
            return None
        request = MitigationRequest(self._last, level=1)
        self._last = None
        return request

    @property
    def storage_bits(self) -> int:
        return 18  # one row address


def evade_last_slot_attack(target: int, acts: int):
    """Hammer `target` in slots 1..3 of every window; sacrifice slot 4."""
    sacrificial = target + 40_000
    return interleave(
        [[target - 1, target + 1, target - 1], [sacrificial]], acts
    )


def pressure_under(tracker_factory, pattern) -> float:
    tracker = tracker_factory()
    policy = FractalMitigation(ROWS, np.random.default_rng(1))
    result = run_attack(pattern, tracker, policy, window=WINDOW)
    return result.max_pressure


def main() -> None:
    target = 70_000
    acts = 80_000
    evading = evade_last_slot_attack(target, acts)
    naive = round_robin_attack([target - 1, target + 1], acts)

    def last_tracker():
        return LastActivationTracker(np.random.default_rng(0))

    def mint_tracker():
        return MintTracker(window=WINDOW, rng=np.random.default_rng(0))

    print(f"attack budget: {acts} activations, window {WINDOW}\n")
    print("pattern: naive double-sided hammer")
    print(f"  last-activation tracker: max pressure {pressure_under(last_tracker, naive):8.0f}")
    print(f"  MINT:                    max pressure {pressure_under(mint_tracker, naive):8.0f}")
    print("\npattern: slot-evading attack (hammer slots 1-3, sacrifice slot 4)")
    last_p = pressure_under(last_tracker, evading)
    mint_p = pressure_under(mint_tracker, evading)
    print(f"  last-activation tracker: max pressure {last_p:8.0f}   <-- broken")
    print(f"  MINT:                    max pressure {mint_p:8.0f}")
    print(
        "\nDeterministic slot choice is evadable; MINT's pre-randomized slot"
        "\nmakes every activation equally likely to be caught — which is why"
        "\nthe paper builds AutoRFM on probabilistic low-cost trackers."
    )
    assert last_p > 10 * mint_p


if __name__ == "__main__":
    main()
