"""Security analysis: replay Rowhammer attacks against tracker/mitigation
pairs and compare with the paper's analytical models.

Three scenarios:

1. the optimal anti-MINT pattern, (ABCD)^K round-robin (Appendix A);
2. a Half-Double-style transitive attack (Section V) — showing why plain
   blast-radius-2 refresh fails while Fractal Mitigation holds;
3. the Appendix-B escape-probability curve, checked against Monte Carlo.

Run:  python examples/rowhammer_attack_analysis.py
"""

import numpy as np

from repro.core.mitigation import BlastRadiusMitigation, FractalMitigation
from repro.security import mint_tolerated_trhd, run_attack
from repro.security.fractal_model import fm_escape_probability, fm_safe_trhd
from repro.trackers.mint import MintTracker
from repro.workloads.attacks import round_robin_attack, single_sided

ROWS = 128 * 1024
WINDOW = 4


def mint_fm(seed):
    return (
        MintTracker(window=WINDOW, rng=np.random.default_rng(seed)),
        FractalMitigation(ROWS, np.random.default_rng(seed + 1)),
    )


def scenario_round_robin() -> None:
    print("=== 1. (ABCD)^K round-robin vs MINT-4 + Fractal Mitigation ===")
    acts = 200_000
    pattern = round_robin_attack([50_000, 50_010, 50_020, 50_030], acts)
    worst = 0.0
    trials = 8
    for seed in range(trials):
        tracker, policy = mint_fm(seed)
        result = run_attack(pattern, tracker, policy, window=WINDOW)
        worst = max(worst, result.max_pressure)
    analytic = mint_tolerated_trhd(WINDOW, recursive=False)
    print(f"  activations per aggressor row: {acts // 4}")
    print(f"  worst unmitigated pressure over {trials} trials: {worst:.0f}")
    print(f"  analytical TRH-D operating point (10K-yr MTTF): {analytic}")
    print("  (short Monte-Carlo runs probe the bulk of the distribution;")
    print("   the analytical model covers the 1e-18 tail)\n")


def scenario_transitive() -> None:
    print("=== 2. Half-Double transitive attack ===")
    acts = 120_000
    aggressor = 60_000

    def far_pressure(tracker, policy):
        result = run_attack(
            single_sided(aggressor, acts), tracker, policy, window=WINDOW
        )
        far = {
            row: p
            for row, p in result.pressure.items()
            if abs(row - aggressor) >= 3
        }
        row, pressure = max(far.items(), key=lambda kv: kv[1])
        return row, pressure

    tracker, policy = mint_fm(0)
    fm_row, fm_p = far_pressure(tracker, policy)

    blast2 = BlastRadiusMitigation(ROWS)
    naive_tracker = MintTracker(window=WINDOW, rng=np.random.default_rng(0))
    b2_row, b2_p = far_pressure(naive_tracker, blast2)

    print(f"  hammering row {aggressor} with {acts} activations")
    print(f"  plain blast-2:      worst distant-row pressure {b2_p:8.0f} (row {b2_row})")
    print(f"  Fractal Mitigation: worst distant-row pressure {fm_p:8.0f} (row {fm_row})")
    print("  blast-2 never refreshes distance >= 3, so its victim refreshes")
    print("  hammer distant rows unboundedly; FM's 2^(1-d) refreshes keep")
    print("  every distance protected without recursive mitigation.\n")


def scenario_escape_curve() -> None:
    print("=== 3. Appendix-B escape probability (model vs Monte Carlo) ===")
    # P(row R escapes N FM episodes) should track exp(-damage/2.5).
    episodes = 2_000
    trials = 3_000
    rng = np.random.default_rng(7)
    policy = FractalMitigation(ROWS, rng)
    target_distance = 6  # watch the row 6 away from the aggressor
    escapes = 0
    for _ in range(trials):
        hit = False
        # Sample a geometric number of episodes cheaply per trial.
        for _ in range(40):  # 40 episodes per trial keeps damage small
            if abs(policy.draw_distance()) == target_distance:
                hit = True
                break
        escapes += not hit
    p_refresh = FractalMitigation.refresh_probability(target_distance)
    model = (1 - p_refresh) ** 40
    print(f"  P(row at d={target_distance} untouched after 40 episodes):")
    print(f"    Monte Carlo {escapes / trials:.3f}   model {model:.3f}")
    print(f"  FM-abuse bound: safe for TRH-D >= {fm_safe_trhd()} "
          f"(escape target 1e-18 => damage <= 104,")
    print(f"  e.g. P_escape(104) = {fm_escape_probability(104):.1e})")


def main() -> None:
    scenario_round_robin()
    scenario_transitive()
    scenario_escape_curve()


if __name__ == "__main__":
    main()
