"""Tests for inverse mappings and adversarial trace generation."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mapping import LineLocation, RubixMapping, ZenMapping
from repro.sim.config import SystemConfig
from repro.workloads.adversarial import hammer_trace, subarray_dos_trace

CONFIG = SystemConfig()


class TestInverseMapping:
    @given(st.integers(min_value=0, max_value=CONFIG.total_lines - 1))
    @settings(max_examples=200, deadline=None)
    def test_zen_round_trip(self, line):
        zen = ZenMapping(CONFIG)
        assert zen.line_for(zen.locate(line)) == line

    @given(st.integers(min_value=0, max_value=CONFIG.total_lines - 1))
    @settings(max_examples=200, deadline=None)
    def test_rubix_round_trip(self, line):
        rubix = RubixMapping(CONFIG, key=9)
        assert rubix.line_for(rubix.locate(line)) == line

    def test_line_for_hits_requested_location(self):
        for mapping in (ZenMapping(CONFIG), RubixMapping(CONFIG, key=3)):
            target = LineLocation(subchannel=1, bank=17, row=70_000, column=5)
            line = mapping.line_for(target)
            assert mapping.locate(line) == target

    def test_line_for_rejects_bad_location(self):
        zen = ZenMapping(CONFIG)
        with pytest.raises(ValueError):
            zen.line_for(LineLocation(0, 0, CONFIG.rows_per_bank, 0))
        with pytest.raises(ValueError):
            zen.line_for(LineLocation(0, 99, 0, 0))
        with pytest.raises(ValueError):
            zen.line_for(LineLocation(5, 0, 0, 0))
        with pytest.raises(ValueError):
            zen.line_for(LineLocation(0, 0, 0, 64))


class TestHammerTrace:
    def test_targets_requested_rows(self):
        zen = ZenMapping(CONFIG)
        rows = [1000, 1002]
        trace = hammer_trace(zen, rows, num_requests=10, bank=3)
        for addr in trace.addrs:
            loc = zen.locate(addr)
            assert loc.bank == 3
            assert loc.row in rows

    def test_round_robin_order(self):
        zen = ZenMapping(CONFIG)
        trace = hammer_trace(zen, [10, 20], num_requests=4)
        rows = [zen.locate(a).row for a in trace.addrs]
        assert rows == [10, 20, 10, 20]

    def test_works_through_rubix(self):
        # The strongest attacker knows the key: rows still reachable.
        rubix = RubixMapping(CONFIG, key=77)
        trace = hammer_trace(rubix, [500, 502], num_requests=6, bank=9)
        for addr in trace.addrs:
            loc = rubix.locate(addr)
            assert loc.bank == 9
            assert loc.row in (500, 502)

    def test_gap_throttles(self):
        zen = ZenMapping(CONFIG)
        trace = hammer_trace(zen, [1], num_requests=5, gap=100)
        assert trace.gaps == [100] * 5

    def test_rejects_empty_rows(self):
        with pytest.raises(ValueError):
            hammer_trace(ZenMapping(CONFIG), [], num_requests=5)


class TestSubarrayDos:
    def test_all_requests_in_one_subarray(self):
        zen = ZenMapping(CONFIG)
        trace = subarray_dos_trace(zen, CONFIG, num_requests=40, subarray=7)
        for addr in trace.addrs:
            loc = zen.locate(addr)
            assert CONFIG.subarray_of_row(loc.row) == 7
            assert loc.bank == 0

    def test_uses_multiple_rows(self):
        zen = ZenMapping(CONFIG)
        trace = subarray_dos_trace(zen, CONFIG, num_requests=40)
        rows = {zen.locate(a).row for a in trace.addrs}
        assert len(rows) >= 2  # forces fresh ACTs

    def test_rejects_bad_subarray(self):
        with pytest.raises(ValueError):
            subarray_dos_trace(
                ZenMapping(CONFIG), CONFIG, 10, subarray=CONFIG.subarrays_per_bank
            )
