"""Tests for the analysis helpers: tables, storage, experiment harness."""

import pytest

from repro.analysis.storage import storage_overheads
from repro.analysis.tables import render_series, render_table
from repro.mc.setup import MitigationSetup
from repro.sim.config import SystemConfig


class TestRenderTable:
    def test_alignment_and_content(self):
        out = render_table(
            ["workload", "slowdown"],
            [["bwaves", 0.123456], ["mcf", 0.5]],
            title="Fig. X",
        )
        lines = out.splitlines()
        assert lines[0] == "Fig. X"
        assert "workload" in lines[1]
        assert "bwaves" in out and "0.1235" in out

    def test_small_floats_use_scientific(self):
        out = render_table(["p"], [[0.0001]])
        assert "e-04" in out

    def test_row_width_mismatch_raises(self):
        with pytest.raises(ValueError):
            render_table(["a", "b"], [[1]])

    def test_render_series(self):
        out = render_series("slowdown", [(4, 0.33), (8, 0.13)], unit="frac")
        assert "slowdown:" in out
        assert "4 -> 0.33 frac" in out


class TestStorageOverheads:
    def test_paper_numbers(self):
        # Section VI-C: 128 B at the MC; ~5 B per DRAM bank.
        overheads = storage_overheads(SystemConfig())
        assert overheads.mc_bytes_total == 128
        assert overheads.dram_saum_bits_per_bank == 9  # valid + 8-bit id
        assert 4.0 <= overheads.dram_bytes_per_bank <= 6.0

    def test_scales_with_banks(self):
        import dataclasses

        config = dataclasses.replace(SystemConfig(), banks_per_subchannel=16)
        assert storage_overheads(config).mc_bytes_total == 64


class TestMitigationSetup:
    def test_describe(self):
        assert "baseline" in MitigationSetup("none").describe()
        assert "RFM-4" in MitigationSetup("rfm", threshold=4).describe()
        assert "AutoRFM-8" in MitigationSetup("autorfm", threshold=8).describe()
        assert "PRAC" in MitigationSetup("prac").describe()

    def test_validation(self):
        with pytest.raises(ValueError):
            MitigationSetup("tm")
        with pytest.raises(ValueError):
            MitigationSetup("rfm", tracker="lru")
        with pytest.raises(ValueError):
            MitigationSetup("autorfm", policy="none")
        with pytest.raises(ValueError):
            MitigationSetup("rfm", threshold=0)

    def test_uses_tracker(self):
        assert MitigationSetup("rfm").uses_tracker
        assert MitigationSetup("autorfm").uses_tracker
        assert not MitigationSetup("none").uses_tracker
        assert not MitigationSetup("prac").uses_tracker

    def test_hashable_for_memoization(self):
        a = MitigationSetup("autorfm", threshold=4)
        b = MitigationSetup("autorfm", threshold=4)
        assert hash(a) == hash(b)
        assert a == b
