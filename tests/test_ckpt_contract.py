"""The state-contract lint: every checkpointable class fully classified.

The contract system (:mod:`repro.ckpt.contract`) makes state omission a
test failure instead of a silent checkpoint divergence: each registered
class declares its attributes as live state, derived wiring, or
construction constants, and :func:`verify_contract` AST-walks every method
for ``self.X`` assignments the declaration does not account for.
"""

import dataclasses

import pytest

import repro.cpu.system  # noqa: F401  (registers the full simulator tree)
from repro.ckpt.contract import (
    REGISTRY,
    ContractError,
    checkpointable,
    effective_contract,
    verify_contract,
)


def _registered_classes():
    return sorted(REGISTRY, key=lambda cls: f"{cls.__module__}.{cls.__qualname__}")


class TestContractLint:
    def test_registry_is_populated(self):
        # The simulator import above must have registered the whole tree;
        # a collapsing registry would make the lint below vacuous.
        assert len(REGISTRY) > 30

    @pytest.mark.parametrize(
        "cls",
        _registered_classes(),
        ids=lambda cls: f"{cls.__module__}.{cls.__qualname__}",
    )
    def test_every_assigned_attribute_is_classified(self, cls):
        unaccounted = verify_contract(cls)
        assert unaccounted == frozenset(), (
            f"{cls.__module__}.{cls.__qualname__} assigns attributes its "
            f"state contract does not classify: {sorted(unaccounted)}. "
            f"Add each to state= (live, checkpointed), derived= (rebuilt "
            f"by the constructor), or const= (construction input)."
        )

    def test_expected_classes_are_registered(self):
        from repro.cpu.core import Core
        from repro.cpu.system import SimulatedSystem
        from repro.dram.bank import Bank
        from repro.mc.controller import MemoryController
        from repro.obs.metrics import MetricsRegistry
        from repro.rfm.rfm import RfmController
        from repro.sim.engine import Engine
        from repro.sim.rng import RngStreams
        from repro.sim.stats import SimStats
        from repro.trackers.hydra import HydraTracker
        from repro.trackers.mint import MintTracker

        for cls in (Engine, RngStreams, SimStats, Bank, MemoryController,
                    Core, SimulatedSystem, RfmController, MintTracker,
                    HydraTracker, MetricsRegistry):
            assert cls in REGISTRY, f"{cls.__qualname__} lost its contract"

    def test_every_tracker_is_registered(self):
        from repro.mc.setup import TRACKERS, MitigationSetup, build_tracker
        from repro.sim.rng import RngStreams

        streams = RngStreams(0)
        for name in TRACKERS:
            setup = MitigationSetup(mechanism="autorfm", tracker=name)
            tracker = build_tracker(setup, streams, bank=0)
            assert type(tracker) in REGISTRY, (
                f"tracker {name!r} ({type(tracker).__qualname__}) has no "
                f"state contract"
            )


class TestContractMechanics:
    def test_overlapping_fields_rejected(self):
        with pytest.raises(ContractError):
            @checkpointable(state=("x",), derived=("x",))
            class Bad:  # noqa: F811
                pass

    def test_lint_catches_undeclared_attribute(self):
        @checkpointable(state=("declared",))
        class Partial:
            def __init__(self):
                self.declared = 0

            def tick(self):
                self.sneaky = 1  # never declared

        assert "sneaky" in verify_contract(Partial)

    def test_lint_sees_dataclass_fields(self):
        from repro.ckpt.contract import checkpointable_dataclass

        @checkpointable_dataclass
        @dataclasses.dataclass
        class Record:
            a: int = 0
            b: str = ""

        assert verify_contract(Record) == frozenset()
        assert set(effective_contract(Record).state_fields) == {"a", "b"}

    def test_contract_unions_across_inheritance(self):
        @checkpointable(state=("base_state",))
        class Base:
            def __init__(self):
                self.base_state = 0

        @checkpointable(state=("sub_state",))
        class Sub(Base):
            def __init__(self):
                super().__init__()
                self.sub_state = 1

        fields = effective_contract(Sub).state_fields
        assert "base_state" in fields and "sub_state" in fields
        assert verify_contract(Sub) == frozenset()
