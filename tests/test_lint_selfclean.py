"""The tree lints its own source: ``src/repro`` is clean by construction.

Two layers of regression pinning:

* the whole tree must produce zero *new* findings against the committed
  ``lint-baseline.json`` (exactly what the blocking CI step runs), and the
  baseline itself must stay justified and non-stale;
* a set of per-pass "clean module" pins — files that exercise each pass's
  target constructs heavily (the engine for callbacks, the RNG module for
  seeding, the controller for determinism) must stay individually clean,
  so a regression is attributed to the module that caused it rather than
  surfacing as an opaque tree-wide failure.
"""

import os

import pytest

from repro.lint import Baseline, load_baseline, run_lint
from repro.lint.passes import (
    CallbackPass,
    ContractPass,
    DeterminismPass,
    ObsNamesPass,
    PayloadLiteralPass,
    RngStreamPass,
    SvcClockPass,
)

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SRC = os.path.join(REPO_ROOT, "src", "repro")
BASELINE = os.path.join(REPO_ROOT, "lint-baseline.json")


def lint_tree():
    """Lint src/repro exactly the way CI does."""
    return run_lint(
        [SRC], baseline=load_baseline(BASELINE), relative_to=REPO_ROOT
    )


def test_tree_is_lint_clean_against_committed_baseline():
    """The acceptance gate: zero new findings over the whole tree."""
    result = lint_tree()
    assert result.new_findings == [], "\n".join(
        f"{f.location()}: {f.rule_id}: {f.message}"
        for f in result.new_findings
    )


def test_committed_baseline_has_no_stale_entries():
    """Healed code must shed its baseline entries, not hoard them."""
    result = lint_tree()
    assert result.stale_baseline == [], [
        (e.rule, e.path) for e in result.stale_baseline
    ]


def test_committed_baseline_is_justified_and_small():
    """Every grandfathered finding says why, and the list stays short."""
    baseline = Baseline.load(BASELINE)
    for entry in baseline.entries:
        assert entry.justification.strip(), (entry.rule, entry.path)
        assert "TODO" not in entry.justification, (entry.rule, entry.path)
    # The baseline is a debt ledger, not a landfill: growing it should be
    # a deliberate, reviewed act. Bump only with a justification.
    assert len(baseline.entries) <= 4


def test_committed_baseline_entries_still_anchor_to_real_lines():
    """Audit the ledger: each entry's context line must still exist in the
    file it names. A baseline entry whose anchor line was rewritten or
    deleted is dead weight — either the finding healed (prune the entry;
    the no-stale test will also flag it) or the code moved enough that the
    suppression needs re-review.
    """
    baseline = Baseline.load(BASELINE)
    for entry in baseline.entries:
        target = os.path.join(REPO_ROOT, entry.path)
        assert os.path.exists(target), (entry.rule, entry.path)
        with open(target, "r", encoding="utf-8") as handle:
            lines = {line.strip() for line in handle}
        assert entry.context.strip() in lines, (
            f"{entry.rule} baseline entry anchors to a line no longer in "
            f"{entry.path}: {entry.context!r}"
        )


#: Per-pass pins: modules dense in each pass's target constructs that are
#: (and must stay) clean for that pass with no baseline help at all.
CLEAN_PINS = [
    (CallbackPass(), "sim/engine.py"),
    (CallbackPass(), "mc/controller.py"),
    (CallbackPass(), "cpu/core.py"),
    (RngStreamPass(), "sim/rng.py"),
    (RngStreamPass(), "ckpt/state.py"),
    (DeterminismPass(), "mc/controller.py"),
    (DeterminismPass(), "sim/engine.py"),
    (DeterminismPass(), "security/kernels.py"),
    (ContractPass(), "sim/engine.py"),
    (ContractPass(), "dram/bank.py"),
    (ObsNamesPass(), "mc/controller.py"),
    # The attack-generation surface holds no inlined activation sequences:
    # patterns flow from the payload DSL (or parameterized generators).
    (PayloadLiteralPass(), "workloads/attacks.py"),
    (PayloadLiteralPass(), "workloads/adversarial.py"),
    (PayloadLiteralPass(), "security/thresholds.py"),
    (PayloadLiteralPass(), "security/kernels.py"),
    # The service's scheduling/queue/worker layers never read the host
    # clock directly: every wall-time need goes through repro.svc.clock.
    (SvcClockPass(), "svc/scheduler.py"),
    (SvcClockPass(), "svc/queue.py"),
    (SvcClockPass(), "svc/workers.py"),
    (SvcClockPass(), "svc/client.py"),
]


@pytest.mark.parametrize(
    "lint_pass,rel_path",
    CLEAN_PINS,
    ids=[f"{p.name}:{m}" for p, m in CLEAN_PINS],
)
def test_pinned_module_is_clean_for_pass(lint_pass, rel_path):
    """Each pinned module stays clean for its pass, baseline-free."""
    target = os.path.join(SRC, rel_path)
    assert os.path.exists(target), f"pinned module moved: {rel_path}"
    result = run_lint([target], passes=[lint_pass], relative_to=REPO_ROOT)
    new = [
        f for f in result.new_findings
        # The controller's _ObsHooks bundle is the one known CKPT001
        # baseline entry; every other finding is a regression.
        if not (f.rule_id == "CKPT001" and "_ObsHooks" in f.message)
    ]
    assert new == [], "\n".join(
        f"{f.location()}: {f.rule_id}: {f.message}" for f in new
    )


def test_drain_writes_services_banks_in_sorted_order():
    """Pin the DET005 fix: write-drain bank order is index order.

    ``MemoryController.drain_writes`` used to iterate a raw set of touched
    banks; the service order (and with it the engine's tie-breaking event
    sequence numbers) then depended on hash-table layout. The fix iterates
    ``sorted(...)``; this pin keeps the determinism pass able to see that
    (no DET005 finding in the controller) from regressing.
    """
    target = os.path.join(SRC, "mc", "controller.py")
    result = run_lint([target], passes=[DeterminismPass()],
                      relative_to=REPO_ROOT)
    det005 = [f for f in result.findings if f.rule_id == "DET005"]
    assert det005 == []
    with open(target, "r", encoding="utf-8") as handle:
        source = handle.read()
    assert "sorted({r.flat_bank for r in buffer})" in source
