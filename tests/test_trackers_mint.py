"""Tests for the MINT tracker."""

import numpy as np
import pytest

from repro.trackers.mint import MintTracker


def make(window=4, transitive=False, strict=True, seed=0):
    return MintTracker(
        window=window,
        rng=np.random.default_rng(seed),
        transitive_slot=transitive,
        strict=strict,
    )


class TestMintBasics:
    def test_selects_exactly_one_row_per_window(self):
        mint = make(window=4)
        for start in range(0, 400, 4):
            for offset in range(4):
                mint.on_activation(1000 + start + offset)
            request = mint.select_for_mitigation()
            assert request is not None
            assert request.level == 1
            assert 1000 + start <= request.row < 1000 + start + 4

    def test_selection_is_uniform_over_slots(self):
        mint = make(window=4, seed=7)
        counts = [0, 0, 0, 0]
        for _ in range(4000):
            for slot in range(4):
                mint.on_activation(slot)
            counts[mint.select_for_mitigation().row] += 1
        for count in counts:
            assert 800 < count < 1200  # ~1000 each, generous tolerance

    def test_window_one(self):
        mint = make(window=1)
        mint.on_activation(5)
        assert mint.select_for_mitigation().row == 5

    def test_strict_overrun_raises(self):
        mint = make(window=2, strict=True)
        mint.on_activation(1)
        mint.on_activation(2)
        with pytest.raises(RuntimeError, match="overran"):
            mint.on_activation(3)

    def test_non_strict_overrun_wraps(self):
        mint = make(window=2, strict=False)
        for row in range(10):
            mint.on_activation(row)  # never harvested: windows re-roll
        request = mint.select_for_mitigation()
        # May or may not have captured depending on slot; must not raise.
        assert request is None or request.row < 10

    def test_window_complete(self):
        mint = make(window=3)
        assert not mint.window_complete()
        for row in range(3):
            mint.on_activation(row)
        assert mint.window_complete()
        mint.select_for_mitigation()
        assert not mint.window_complete()

    def test_rejects_bad_window(self):
        with pytest.raises(ValueError):
            make(window=0)

    def test_selection_probability(self):
        assert make(window=4).selection_probability == 0.25
        assert make(window=4, transitive=True).selection_probability == 0.2

    def test_storage_is_minimal(self):
        assert make().storage_bits <= 64  # a few bytes (Section VI-C)


class TestMintTransitiveSlot:
    def test_transitive_slot_escalates_level(self):
        mint = make(window=2, transitive=True, seed=3)
        levels = []
        for burst in range(600):
            mint.on_activation(40)
            mint.on_activation(41)
            request = mint.select_for_mitigation()
            if request is not None:
                levels.append(request.level)
        assert 1 in levels
        assert any(level >= 2 for level in levels)  # transitive re-mitigation

    def test_transitive_share_is_one_over_w_plus_one(self):
        mint = make(window=4, transitive=True, seed=11)
        transitive = total = 0
        for _ in range(4000):
            for row in range(4):
                mint.on_activation(row)
            request = mint.select_for_mitigation()
            if request is None:
                continue
            total += 1
            if request.level > 1:
                transitive += 1
        assert 0.13 < transitive / total < 0.27  # expect ~1/5

    def test_no_transitive_before_first_mitigation(self):
        mint = make(window=1, transitive=True, seed=0)
        # Force the transitive slot by searching seeds: with window=1 the
        # chosen slot is 1 or 2; slot 2 with no history yields None.
        saw_none = False
        for _ in range(50):
            mint._last_mitigation = None
            mint._chosen_slot = 2  # the transitive slot
            mint.on_activation(9)
            if mint.select_for_mitigation() is None:
                saw_none = True
        assert saw_none
