"""Tests for the RRS-style row-migration mitigation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.rowswap import SWAP_ROW_CYCLES, RowSwapMitigation, RowSwapRemapper
from repro.cpu.system import simulate
from repro.mc.setup import MitigationSetup
from repro.security.montecarlo import run_attack
from repro.trackers.base import MitigationRequest
from repro.trackers.mint import MintTracker
from repro.workloads.attacks import double_sided
from tests.test_system import make_traces

ROWS = 4096


def rng(seed=0):
    return np.random.default_rng(seed)


class TestRemapper:
    def test_identity_by_default(self):
        remapper = RowSwapRemapper(ROWS, rng())
        assert remapper.physical_row(100) == 100
        assert remapper.logical_row(100) == 100
        assert remapper.displaced_rows() == 0

    def test_swap_relocates_both_parties(self):
        remapper = RowSwapRemapper(ROWS, rng(1))
        old, new = remapper.swap(100)
        assert old == 100
        assert remapper.physical_row(100) == new
        assert remapper.logical_row(new) == 100
        assert remapper.physical_row(remapper.logical_row(100)) == 100

    def test_swap_never_self(self):
        remapper = RowSwapRemapper(2, rng(0))
        for _ in range(16):
            remapper.swap(0)
            assert remapper.physical_row(0) != remapper.physical_row(1)

    def test_rejects_out_of_range(self):
        remapper = RowSwapRemapper(ROWS, rng())
        with pytest.raises(ValueError):
            remapper.physical_row(ROWS)
        with pytest.raises(ValueError):
            remapper.swap(-1)

    @given(st.lists(st.integers(min_value=0, max_value=63), max_size=60))
    @settings(max_examples=60, deadline=None)
    def test_remains_a_permutation(self, swaps):
        """Invariant: after any swap sequence the mapping is a bijection."""
        remapper = RowSwapRemapper(64, rng(7))
        for logical in swaps:
            remapper.swap(logical)
        images = [remapper.physical_row(r) for r in range(64)]
        assert sorted(images) == list(range(64))
        for r in range(64):
            assert remapper.logical_row(remapper.physical_row(r)) == r

    def test_storage_grows_with_displacement(self):
        remapper = RowSwapRemapper(ROWS, rng(3))
        assert remapper.storage_bits == 0
        remapper.swap(5)
        assert remapper.storage_bits > 0


class TestRowSwapMitigation:
    def test_no_victim_refreshes(self):
        policy = RowSwapMitigation(ROWS, rng())
        assert policy.victims(MitigationRequest(row=10)) == []

    def test_busy_time_longer_than_refresh(self):
        policy = RowSwapMitigation(ROWS, rng())
        assert policy.busy_cycles(192) == SWAP_ROW_CYCLES * 192
        assert policy.busy_cycles(192) > 4 * 192

    def test_perform_swap_updates_remapper(self):
        policy = RowSwapMitigation(ROWS, rng(2))
        policy.perform_swap(MitigationRequest(row=42))
        assert policy.remapper.swaps == 1


class TestRowSwapSecurity:
    def test_swaps_void_accumulated_pressure(self):
        """The victim's neighbourhood changes before pressure can build:
        max physical pressure stays far below the per-row activation count."""
        tracker = MintTracker(window=4, rng=rng(5))
        policy = RowSwapMitigation(1 << 17, rng(6))
        acts = 40_000
        result = run_attack(double_sided(50_000, acts), tracker, policy, window=4)
        assert result.mitigations > 1_000
        assert result.max_pressure < 500

    def test_remapper_threaded_through_accounting(self):
        tracker = MintTracker(window=2, rng=rng(0))
        policy = RowSwapMitigation(1 << 17, rng(1))
        # One mitigation guaranteed within the first window of 2.
        run_attack([100, 100, 100, 100], tracker, policy, window=2)
        assert policy.remapper.swaps >= 1


class TestRowSwapTiming:
    def test_simulation_completes_and_swaps(self, small_config):
        traces = make_traces(small_config, n=600)
        setup = MitigationSetup("autorfm", threshold=4, policy="rowswap")
        result = simulate(traces, setup, small_config, "rubix")
        assert result.stats.total_row_swaps > 0
        assert result.stats.total_victim_refreshes == 0

    def test_swaps_cost_more_than_fractal(self, small_config):
        """A swap locks the subarray 4x longer than a victim refresh, so
        row migration is the costlier mitigation under the same cadence."""
        traces = make_traces(small_config, n=1000)
        base = simulate(traces, MitigationSetup("none"), small_config, "zen")
        fm = simulate(
            traces,
            MitigationSetup("autorfm", threshold=4, policy="fractal"),
            small_config,
            "zen",
        )
        swap = simulate(
            traces,
            MitigationSetup("autorfm", threshold=4, policy="rowswap"),
            small_config,
            "zen",
        )
        assert swap.slowdown_vs(base) > fm.slowdown_vs(base)
        # Each swap locks the subarray 16 tRC vs 4 tRC per refresh; note
        # the *rate* of ALERTs can be lower (relocation decorrelates the
        # stream from the SAUM) — the cost is in the longer blocks.