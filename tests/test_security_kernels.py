"""Differential suite for the vectorized security kernels.

The numpy batch engine promises results *exactly* equal to the scalar
reference — bit-identical pressures, identical max-pressure rows and
tie-breaking — across every tracker/policy combination. These tests hold
it to that, and pin the numpy RNG-batching identities the engine's
equality argument rests on.
"""

import dataclasses

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mapping.kcipher import KCipher
from repro.security.audit import audit_hammer_pressure
from repro.security.blast import FAR_DAMAGE, hammer_profile
from repro.security.kernels import (
    BlastPolicySpec,
    FractalPolicySpec,
    GrapheneSpec,
    MintSpec,
    ParaSpec,
    build_pattern,
    policy_spec_from_string,
    run_attack_batch,
    tracker_spec_from_strings,
)
from repro.security.montecarlo import run_attack
from repro.sim.cmdlog import ACT, VICTIM_REFRESH, CommandLog
from repro.trackers.mint import MintTracker
from repro.core.mitigation import FractalMitigation

ROWS = 128 * 1024

TRACKERS = ["mint", "mint-transitive", "graphene", "para"]
POLICIES = ["fractal", "blast"]


def assert_equal_results(scalar, vector):
    """Exact equality, field by field; pressure compared on non-zero rows
    (the numpy backend's maps list only rows with non-zero pressure)."""
    assert len(scalar) == len(vector)
    for s, v in zip(scalar, vector):
        assert v.max_pressure == s.max_pressure
        assert v.max_pressure_row == s.max_pressure_row
        assert v.activations == s.activations
        assert v.mitigations == s.mitigations
        assert v.victim_refreshes == s.victim_refreshes
        nonzero = {row: p for row, p in s.pressure.items() if p != 0.0}
        assert v.pressure == nonzero


def differential(pattern, tracker_spec, policy_spec, *, window, seeds, **kw):
    scalar = run_attack_batch(
        [pattern], tracker_spec, policy_spec, window=window, seeds=seeds,
        backend="scalar", **kw,
    )[0]
    vector = run_attack_batch(
        [pattern], tracker_spec, policy_spec, window=window, seeds=seeds,
        backend="numpy", **kw,
    )[0]
    assert_equal_results(scalar, vector)
    return scalar, vector


class TestDifferential:
    """Scalar-vs-numpy equality across trackers x policies x >= 50 seeds."""

    @pytest.mark.parametrize("tracker", TRACKERS)
    @pytest.mark.parametrize("policy", POLICIES)
    def test_round_robin_matrix(self, tracker, policy):
        window = 4
        pattern = build_pattern(
            "round_robin", [70_000 + 10 * i for i in range(window)], 400
        )
        differential(
            pattern,
            tracker_spec_from_strings(tracker, window),
            policy_spec_from_string(policy),
            window=window,
            seeds=50,
        )

    @pytest.mark.parametrize("attack,rows", [
        ("double_sided", [70_000]),
        ("single_sided", [70_000]),
        ("half_double", [70_000, 5]),
    ])
    def test_attack_shapes(self, attack, rows):
        pattern = build_pattern(attack, rows, 400)
        differential(
            pattern, MintSpec(4), FractalPolicySpec(), window=4, seeds=50
        )

    def test_refresh_interval(self):
        pattern = build_pattern("double_sided", [70_000], 600)
        differential(
            pattern, MintSpec(4), FractalPolicySpec(), window=4, seeds=50,
            refresh_interval_acts=133,
        )

    def test_blast_radius_one(self):
        pattern = build_pattern("double_sided", [70_000], 400)
        differential(
            pattern, MintSpec(4), BlastPolicySpec(), window=4, seeds=50,
            blast_radius=1,
        )

    def test_row_cipher(self):
        cipher = KCipher(ROWS, key=42)
        pattern = build_pattern("double_sided", [70_000], 200)
        differential(
            pattern, MintSpec(4), FractalPolicySpec(), window=4, seeds=20,
            row_cipher=cipher,
        )

    def test_seed_chunking_is_invisible(self):
        pattern = build_pattern("double_sided", [70_000], 200)
        whole = run_attack_batch(
            [pattern], MintSpec(4), FractalPolicySpec(), window=4, seeds=20,
        )[0]
        chunked = run_attack_batch(
            [pattern], MintSpec(4), FractalPolicySpec(), window=4, seeds=20,
            seed_chunk=3,
        )[0]
        assert_equal_results(whole, chunked)

    def test_edge_of_bank(self):
        # Victim next to row 0 and aggressors at the top of the bank: the
        # clamping rules must match exactly on both backends.
        for pattern in (
            build_pattern("double_sided", [1], 120),
            build_pattern("round_robin", [ROWS - 1, ROWS - 2], 120),
        ):
            differential(
                pattern, MintSpec(4), FractalPolicySpec(), window=4, seeds=20
            )

    def test_explicit_seed_list_and_multi_pattern(self):
        patterns = [
            build_pattern("double_sided", [70_000], 160),
            build_pattern("single_sided", [50_000], 160),
        ]
        seeds = [7, 99, 1234]
        scalar = run_attack_batch(
            patterns, ParaSpec(0.25), FractalPolicySpec(), window=4,
            seeds=seeds, backend="scalar",
        )
        vector = run_attack_batch(
            patterns, ParaSpec(0.25), FractalPolicySpec(), window=4,
            seeds=seeds, backend="numpy",
        )
        for s, v in zip(scalar, vector):
            assert_equal_results(s, v)

    def test_graphene_custom_spec(self):
        pattern = build_pattern("round_robin", [70_000, 70_010, 70_020], 300)
        differential(
            pattern, GrapheneSpec(entries=8, mitigation_count=3),
            BlastPolicySpec(), window=3, seeds=50,
        )


class TestRngBatchingPins:
    """The equality argument rests on these numpy Generator identities:
    one size=n call consumes the identical stream as n single calls."""

    @pytest.mark.parametrize("seed", [0, 1, 1234])
    def test_integers_batch_equals_sequential(self, seed):
        batched = np.random.default_rng(seed).integers(1, 6, size=64)
        sequential = np.random.default_rng(seed)
        assert batched.tolist() == [
            int(sequential.integers(1, 6)) for _ in range(64)
        ]

    @pytest.mark.parametrize("seed", [0, 1, 1234])
    def test_random_batch_equals_sequential(self, seed):
        batched = np.random.default_rng(seed).random(size=64)
        sequential = np.random.default_rng(seed)
        np.testing.assert_array_equal(
            batched, np.array([sequential.random() for _ in range(64)])
        )


class TestEncryptArray:
    def test_matches_scalar(self):
        cipher = KCipher(1000, key=7)
        arr = np.arange(1000, dtype=np.int64)
        enc = cipher.encrypt_array(arr)
        assert enc.tolist() == [cipher.encrypt(i) for i in range(1000)]
        np.testing.assert_array_equal(cipher.decrypt_array(enc), arr)

    @given(
        domain=st.integers(min_value=2, max_value=3000),
        key=st.integers(min_value=0, max_value=(1 << 32) - 1),
    )
    @settings(max_examples=60, deadline=None)
    def test_bijective_on_any_domain(self, domain, key):
        # Non-power-of-four domains exercise the per-element cycle walk.
        cipher = KCipher(domain, key)
        enc = cipher.encrypt_array(np.arange(domain, dtype=np.int64))
        assert sorted(enc.tolist()) == list(range(domain))
        np.testing.assert_array_equal(
            cipher.decrypt_array(enc), np.arange(domain, dtype=np.int64)
        )

    def test_rejects_out_of_domain(self):
        cipher = KCipher(100, key=1)
        with pytest.raises(ValueError):
            cipher.encrypt_array(np.array([100]))
        with pytest.raises(ValueError):
            cipher.decrypt_array(np.array([-1]))
        with pytest.raises(ValueError):
            cipher.encrypt_array(np.arange(4).reshape(2, 2))


class TestBlastProfile:
    """Satellite: one shared blast-profile table drives both engines."""

    def test_profile_shape(self):
        assert hammer_profile(1) == ((-1, 1.0), (1, 1.0))
        assert hammer_profile(2) == (
            (-1, 1.0), (1, 1.0), (-2, FAR_DAMAGE), (2, FAR_DAMAGE),
        )
        with pytest.raises(ValueError):
            hammer_profile(0)

    def test_run_attack_blast_radius_one(self):
        # Regression: blast_radius=1 must not touch distance-2 bookkeeping.
        tracker = MintTracker(window=4, rng=np.random.default_rng(0))
        policy = FractalMitigation(ROWS, np.random.default_rng(1))
        pattern = [70_000] * 40
        result = run_attack(
            pattern, tracker, policy, window=4, blast_radius=1
        )
        # Only the d=1 neighbours of activations/victims can carry
        # pressure; no cell may hold a FAR_DAMAGE fraction.
        for row, value in result.pressure.items():
            assert value == int(value), (
                f"row {row} carries fractional pressure {value} despite "
                f"blast_radius=1"
            )

    def test_blast_radius_three_reaches_distance_three(self):
        tracker = MintTracker(window=4, rng=np.random.default_rng(0))
        policy = FractalMitigation(ROWS, np.random.default_rng(1))
        result = run_attack(
            [70_000] * 8, tracker, policy, window=4, blast_radius=3
        )
        assert result.pressure.get(70_003, 0.0) > 0.0


class TestAuditBackends:
    """audit_hammer_pressure's numpy path equals its scalar path."""

    def _differential(self, log, config):
        scalar = audit_hammer_pressure(log, config, backend="scalar")
        vector = audit_hammer_pressure(log, config, backend="numpy")
        assert vector.pressure == scalar.pressure
        assert vector.max_pressure == scalar.max_pressure
        assert vector.max_pressure_bank == scalar.max_pressure_bank
        assert vector.max_pressure_row == scalar.max_pressure_row
        assert vector.activations == scalar.activations
        assert vector.victim_refreshes == scalar.victim_refreshes
        return scalar

    def test_mixed_log(self, small_config):
        rng = np.random.default_rng(3)
        log = CommandLog()
        t = 0
        for _ in range(600):
            t += int(rng.integers(1, 200))
            bank = int(rng.integers(0, 4))
            row = int(rng.integers(0, 64))
            if rng.random() < 0.15:
                log.record(t, VICTIM_REFRESH, bank, row)
            else:
                log.record(t, ACT, bank, row)
        audit = self._differential(log, small_config)
        assert audit.max_pressure > 0.0

    def test_empty_log(self, small_config):
        self._differential(CommandLog(), small_config)


class TestKernelValidation:
    def test_negative_rows_rejected(self):
        with pytest.raises(ValueError):
            run_attack_batch(
                [[-1, 5]], MintSpec(2), FractalPolicySpec(), window=2,
                seeds=1,
            )

    def test_mint_window_mismatch_rejected(self):
        with pytest.raises(ValueError):
            run_attack_batch(
                [[1, 2, 3, 4]], MintSpec(2), FractalPolicySpec(), window=4,
                seeds=1,
            )

    def test_cipher_domain_mismatch_rejected(self):
        with pytest.raises(ValueError):
            run_attack_batch(
                [[1, 2]], MintSpec(2), FractalPolicySpec(), window=2,
                seeds=1, row_cipher=KCipher(64, key=1),
            )

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError):
            run_attack_batch(
                [[1, 2]], MintSpec(2), FractalPolicySpec(), window=2,
                seeds=1, backend="cuda",
            )

    def test_spec_strings(self):
        assert tracker_spec_from_strings("mint", 4) == MintSpec(4)
        assert tracker_spec_from_strings("mint-transitive", 4) == MintSpec(
            4, transitive_slot=True
        )
        assert isinstance(policy_spec_from_string("recursive"),
                          BlastPolicySpec)
        with pytest.raises(ValueError):
            tracker_spec_from_strings("hydra", 4)
        with pytest.raises(ValueError):
            policy_spec_from_string("none")


class TestSecurityJobs:
    """The runner's SecurityJob batch API: caching and backend-blindness."""

    def test_cache_round_trip_and_backend_blind_key(self, tmp_path):
        from repro.analysis.runner import (
            ExperimentRunner, SecurityJob, security_job_key,
        )

        job = SecurityJob(
            attack="double_sided", rows=(70_000,), acts=200, window=4,
            tracker="mint", policy="fractal", seeds=6,
        )
        twin = dataclasses.replace(job, backend="scalar")
        assert security_job_key(job) == security_job_key(twin)
        assert security_job_key(job) != security_job_key(
            dataclasses.replace(job, seeds=7)
        )

        runner = ExperimentRunner(cache_dir=str(tmp_path), use_cache=True,
                                  jobs=1)
        first = runner.run_security_many([job, twin])
        assert first[0] == first[1]  # deduped to one execution
        assert runner.simulations_run == 0  # security jobs don't count sims
        again = ExperimentRunner(
            cache_dir=str(tmp_path), use_cache=True, jobs=1
        ).run_security(job)
        assert again == first[0]
        assert all(r.pressure == {} for r in again)

    def test_job_validation(self):
        from repro.analysis.runner import SecurityJob

        with pytest.raises(ValueError):
            SecurityJob(tracker="nope")
        with pytest.raises(ValueError):
            SecurityJob(policy="nope")
        with pytest.raises(ValueError):
            SecurityJob(attack="nope")
        with pytest.raises(ValueError):
            SecurityJob(seeds=0)
        with pytest.raises(ValueError):
            SecurityJob(rows=())

    def test_matches_direct_kernel_call(self):
        from repro.analysis.runner import ExperimentRunner, SecurityJob

        job = SecurityJob(
            attack="round_robin", rows=(70_000, 70_010), acts=200, window=2,
            tracker="para", policy="blast", seeds=5,
        )
        runner = ExperimentRunner(use_cache=False, jobs=1)
        via_runner = runner.run_security(job)
        direct = run_attack_batch(
            [build_pattern("round_robin", [70_000, 70_010], 200)],
            tracker_spec_from_strings("para", 2),
            policy_spec_from_string("blast"),
            window=2, seeds=5, collect_pressure=False,
        )[0]
        assert via_runner == direct


class TestThresholdSweep:
    def test_sweep_points(self):
        from repro.security.thresholds import threshold_sweep

        points = threshold_sweep([2, 4], seeds=5, acts=200)
        assert [p.window for p in points] == [2, 4]
        for p in points:
            assert p.max_pressure >= p.mean_pressure > 0.0
            assert p.mitigations > 0


class TestPreparedReplay:
    """prepare()/run_prepared() — the campaign engine's hot path — must
    be invisible: bit-identical to the one-shot run_pattern path."""

    def engine(self, cipher=None, collect=True):
        from repro.security.kernels import _BatchEngine

        return _BatchEngine(
            tracker_spec_from_strings("mint", 4),
            policy_spec_from_string("fractal"),
            4, ROWS, 2, None, cipher, collect,
        )

    def test_run_prepared_equals_run_pattern(self):
        pattern = build_pattern("round_robin", [70_000 + 10 * i
                                                for i in range(4)], 800)
        seeds = list(range(12))
        one_shot = self.engine().run_pattern(pattern, seeds, None)
        engine = self.engine()
        prep = engine.prepare(pattern)
        replayed = engine.run_prepared(prep, seeds)
        assert replayed == one_shot
        # Replays share the prepared state: disjoint seed batches glue
        # together into exactly the one-shot result.
        glued = engine.run_prepared(prep, seeds[:5]) + engine.run_prepared(
            prep, seeds[5:]
        )
        assert glued == one_shot

    def test_run_prepared_with_cipher(self):
        cipher = KCipher(ROWS, 11)
        pattern = build_pattern("double_sided", [70_000, 70_002], 600)
        engine = self.engine(cipher=cipher)
        prep = engine.prepare(pattern)
        assert engine.run_prepared(prep, [0, 1, 2]) == self.engine(
            cipher=cipher
        ).run_pattern(pattern, [0, 1, 2], None)

    def test_prepare_validates_rows(self):
        engine = self.engine()
        with pytest.raises(ValueError):
            engine.prepare([-1, 5])

    def test_chunked_replay_is_invisible(self):
        pattern = build_pattern("round_robin", [70_000, 70_010], 500)
        engine = self.engine()
        prep = engine.prepare(pattern)
        seeds = list(range(9))
        assert engine.run_prepared(prep, seeds, seed_chunk=2) == \
            engine.run_prepared(prep, seeds)


class TestCipherTableMemo:
    def test_hit_returns_same_object(self):
        from repro.security.kernels import cipher_table

        a = cipher_table(KCipher(1024, 5))
        b = cipher_table(KCipher(1024, 5))
        assert a is b

    def test_distinct_ciphers_distinct_tables(self):
        from repro.security.kernels import cipher_table

        a = cipher_table(KCipher(1024, 5))
        b = cipher_table(KCipher(1024, 6))
        assert a is not b
        assert not np.array_equal(a, b)

    def test_table_matches_uncached_remapper(self):
        from repro.security.kernels import CipherRowRemapper, cipher_table

        cipher = KCipher(2048, 9)
        np.testing.assert_array_equal(
            cipher_table(cipher), CipherRowRemapper(cipher).table()
        )
