"""Tests for the timing-level Rowhammer security audit."""

import pytest

from repro.cpu.system import build_mapping, simulate
from repro.mc.setup import MitigationSetup
from repro.security.audit import audit_hammer_pressure
from repro.sim.cmdlog import ACT, VICTIM_REFRESH, CommandLog
from repro.workloads.adversarial import hammer_trace
from tests.test_system import make_traces


class TestAuditRules:
    def test_act_hammers_neighbours(self, small_config):
        log = CommandLog()
        for i in range(5):
            log.record(i * 200, ACT, bank=0, row=100)
        audit = audit_hammer_pressure(log, small_config)
        assert audit.pressure[(0, 99)] == 5.0
        assert audit.pressure[(0, 101)] == 5.0
        assert audit.pressure[(0, 98)] == pytest.approx(0.5)
        assert audit.max_pressure == 5.0

    def test_activation_restores_own_row(self, small_config):
        log = CommandLog()
        log.record(0, ACT, bank=0, row=100)  # hammers 101
        log.record(200, ACT, bank=0, row=101)  # restores 101
        audit = audit_hammer_pressure(log, small_config)
        assert audit.pressure[(0, 101)] == 0.0

    def test_victim_refresh_restores_and_hammers(self, small_config):
        log = CommandLog()
        for i in range(4):
            log.record(i * 200, ACT, bank=0, row=100)
        log.record(1000, VICTIM_REFRESH, bank=0, row=101)
        audit = audit_hammer_pressure(log, small_config)
        assert audit.pressure[(0, 101)] == 0.0  # restored
        assert audit.pressure[(0, 102)] >= 1.0  # transitive hammer

    def test_banks_independent(self, small_config):
        log = CommandLog()
        log.record(0, ACT, bank=0, row=100)
        log.record(10, ACT, bank=1, row=100)
        audit = audit_hammer_pressure(log, small_config)
        assert audit.pressure[(0, 101)] == 1.0
        assert audit.pressure[(1, 101)] == 1.0

    def test_edge_rows_clamped(self, small_config):
        log = CommandLog()
        log.record(0, ACT, bank=0, row=0)
        audit = audit_hammer_pressure(log, small_config)
        assert all(row >= 0 for (_, row) in audit.pressure)

    def test_is_safe_for(self, small_config):
        log = CommandLog()
        for i in range(10):
            log.record(i * 200, ACT, bank=0, row=50)
        audit = audit_hammer_pressure(log, small_config)
        assert audit.is_safe_for(11)
        assert not audit.is_safe_for(10)


class TestEndToEndSecurity:
    """The headline security property, verified against the full simulator:
    under AutoRFM the worst row pressure stays bounded even for a deliberate
    hammer; without mitigation it grows with the attack."""

    def _run(self, small_config, setup, acts=4000):
        mapping = build_mapping("zen", small_config)
        # gap=700 paces the attacker past the tRAS hit window, so every
        # request is a fresh ACT (a real attacker times accesses this way;
        # back-to-back requests would coalesce into row hits and weaken
        # the hammer).
        attacker = hammer_trace(
            mapping, [1000, 1002], num_requests=acts, gap=700
        )
        idle = attacker.sliced(0)
        log = CommandLog()
        simulate([attacker, idle], setup, small_config, "zen", command_log=log)
        return audit_hammer_pressure(log, small_config)

    def test_unmitigated_hammer_pressure_grows(self, small_config):
        audit = self._run(small_config, MitigationSetup("none"))
        # Two alternating rows, 2000 ACTs each: row 1001 takes ~4000.
        assert audit.max_pressure > 3000

    def test_autorfm_bounds_the_same_attack(self, small_config):
        setup = MitigationSetup("autorfm", threshold=4, policy="fractal")
        audit = self._run(small_config, setup)
        assert audit.victim_refreshes > 100
        # MINT-4 mitigates the hot rows every few windows: pressure stays
        # two orders of magnitude below the unmitigated case.
        assert audit.max_pressure < 150

    def test_benign_traffic_pressure_is_tiny(self, small_config):
        log = CommandLog()
        traces = make_traces(small_config, n=1500)
        simulate(
            traces,
            MitigationSetup("autorfm", threshold=4),
            small_config,
            "rubix",
            command_log=log,
        )
        audit = audit_hammer_pressure(log, small_config)
        # Benign streams never concentrate thousands of ACTs on one row.
        assert audit.max_pressure < 100
