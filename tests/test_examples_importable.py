"""Smoke checks on the example scripts: importable, documented, guarded.

The examples run real (multi-second) simulations, so CI executes only their
module top level; the `__main__` guard keeps that cheap. A separate check
runs the fastest example end to end.
"""

import importlib.util
import os
import pathlib
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).parent.parent / "examples"
EXAMPLES = sorted(EXAMPLES_DIR.glob("*.py"))


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.stem)
def test_example_imports_cleanly(path):
    spec = importlib.util.spec_from_file_location(f"example_{path.stem}", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)  # __main__ guard keeps this instant
    assert callable(getattr(module, "main", None)), "examples expose main()"
    assert module.__doc__, "examples start with a usage docstring"
    assert "Run:" in module.__doc__


def test_expected_example_set():
    names = {p.stem for p in EXAMPLES}
    assert {
        "quickstart",
        "design_space_sweep",
        "rowhammer_attack_analysis",
        "full_cpu_path",
        "custom_tracker",
        "generate_report",
    } <= names


def test_fastest_example_runs_end_to_end(tmp_path):
    # custom_tracker is pure Monte Carlo (no timing sim): a few seconds.
    # The subprocess runs from tmp_path, so any relative PYTHONPATH entry
    # (e.g. the "src" the suite itself was launched with) would no longer
    # resolve — rebuild it around the absolute src directory.
    env = dict(os.environ)
    src = str(EXAMPLES_DIR.parent / "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    result = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / "custom_tracker.py")],
        capture_output=True,
        text=True,
        timeout=300,
        cwd=tmp_path,
        env=env,
    )
    assert result.returncode == 0, result.stderr
    assert "broken" in result.stdout
