"""Tests for the per-bank DRAM state machine."""

import numpy as np
import pytest

from repro.core.mitigation import BlastRadiusMitigation
from repro.dram.bank import NO_ROW, Bank
from repro.sim.stats import BankStats
from repro.trackers.mint import MintTracker


def make_bank(small_config, with_rfm_tracker=False):
    stats = BankStats()
    tracker = policy = None
    if with_rfm_tracker:
        tracker = MintTracker(window=4, rng=np.random.default_rng(0), strict=False)
        policy = BlastRadiusMitigation(small_config.rows_per_bank)
    return Bank(small_config, stats, rfm_tracker=tracker, rfm_policy=policy)


class TestBankTiming:
    def test_activate_opens_row(self, small_config):
        bank = make_bank(small_config)
        bank.activate(10, now=0)
        assert bank.open_row == 10
        assert bank.is_open(100)
        assert bank.open_until == small_config.timing.tras

    def test_trc_spacing_enforced(self, small_config):
        bank = make_bank(small_config)
        bank.activate(10, now=0)
        bank.auto_precharge(small_config.timing.tras)
        with pytest.raises(RuntimeError):
            bank.activate(11, now=small_config.timing.trc - 1)

    def test_next_act_allowed_at_trc(self, small_config):
        bank = make_bank(small_config)
        bank.activate(10, now=0)
        bank.auto_precharge(small_config.timing.tras)
        bank.activate(11, now=small_config.timing.trc)
        assert bank.open_row == 11

    def test_cannot_activate_over_open_row(self, small_config):
        bank = make_bank(small_config)
        bank.activate(10, now=0)
        assert not bank.can_activate(now=50)

    def test_row_hit_window(self, small_config):
        bank = make_bank(small_config)
        bank.activate(10, now=0)
        assert bank.row_hits(10, now=small_config.timing.tras)
        assert not bank.row_hits(11, now=50)
        assert not bank.row_hits(10, now=small_config.timing.tras + 1)

    def test_auto_precharge_closes(self, small_config):
        bank = make_bank(small_config)
        bank.activate(10, now=0)
        bank.auto_precharge(now=small_config.timing.tras)
        assert bank.open_row == NO_ROW
        assert not bank.is_open(small_config.timing.tras)

    def test_activation_counted(self, small_config):
        bank = make_bank(small_config)
        bank.activate(10, now=0)
        assert bank.stats.activations == 1


class TestBankRefresh:
    def test_refresh_blocks_for_trfc(self, small_config):
        bank = make_bank(small_config)
        bank.start_refresh(now=1000)
        assert bank.ready_at == 1000 + small_config.timing.trfc
        assert bank.stats.refreshes == 1

    def test_refresh_closes_open_row(self, small_config):
        bank = make_bank(small_config)
        bank.activate(10, now=0)
        bank.start_refresh(now=50)
        assert bank.open_row == NO_ROW

    def test_refresh_harvests_pending_window(self, small_config):
        bank = make_bank(small_config, with_rfm_tracker=True)
        now = 0
        for row in (1, 2, 3, 4):
            bank.activate(row, now)
            bank.auto_precharge(now + small_config.timing.tras)
            now += small_config.timing.trc
        bank.start_refresh(now)
        assert bank.stats.mitigations == 1


class TestBankRfm:
    def test_rfm_blocks_for_trfm(self, small_config):
        bank = make_bank(small_config, with_rfm_tracker=True)
        free_at = bank.issue_rfm(now=500)
        assert free_at == 500 + small_config.timing.trfm
        assert bank.ready_at == free_at
        assert bank.stats.rfm_commands == 1

    def test_rfm_requires_precharged_bank(self, small_config):
        bank = make_bank(small_config, with_rfm_tracker=True)
        bank.activate(10, now=0)
        with pytest.raises(RuntimeError):
            bank.issue_rfm(now=50)

    def test_rfm_performs_mitigation(self, small_config):
        bank = make_bank(small_config, with_rfm_tracker=True)
        now = 0
        for row in (7, 8, 9, 10):
            bank.activate(row, now)
            bank.auto_precharge(now + small_config.timing.tras)
            now += small_config.timing.trc
        bank.issue_rfm(now)
        assert bank.stats.mitigations == 1
        assert bank.stats.victim_refreshes == 4

    def test_rfm_starts_after_ready(self, small_config):
        bank = make_bank(small_config, with_rfm_tracker=True)
        bank.activate(10, now=0)
        bank.auto_precharge(small_config.timing.tras)
        # RFM issued before tRC elapses starts when the bank is ready.
        free_at = bank.issue_rfm(now=small_config.timing.tras)
        assert free_at == small_config.timing.trc + small_config.timing.trfm

    def test_tracker_policy_pairing_enforced(self, small_config):
        tracker = MintTracker(window=4, rng=np.random.default_rng(0))
        with pytest.raises(ValueError):
            Bank(small_config, BankStats(), rfm_tracker=tracker)

    def test_stall_until_only_extends(self, small_config):
        bank = make_bank(small_config)
        bank.stall_until(100)
        assert bank.ready_at == 100
        bank.stall_until(50)
        assert bank.ready_at == 100
