"""Tests for victim-refresh policies: blast-radius and Fractal Mitigation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.mitigation import (
    REFRESHES_PER_MITIGATION,
    BlastRadiusMitigation,
    FractalMitigation,
)
from repro.trackers.base import MitigationRequest

ROWS = 4096


def fractal(seed=0, rows=ROWS):
    return FractalMitigation(rows_per_bank=rows, rng=np.random.default_rng(seed))


class TestBlastRadius:
    def test_level_one_refreshes_distance_1_and_2(self):
        policy = BlastRadiusMitigation(ROWS)
        victims = policy.victims(MitigationRequest(row=100, level=1))
        assert sorted(victims) == [98, 99, 101, 102]

    def test_level_two_shifts_outward(self):
        # Fig. 9b: level-2 mitigation refreshes distances 3 and 4.
        policy = BlastRadiusMitigation(ROWS)
        victims = policy.victims(MitigationRequest(row=100, level=2))
        assert sorted(victims) == [96, 97, 103, 104]

    def test_level_l_distances(self):
        policy = BlastRadiusMitigation(ROWS)
        for level in range(1, 6):
            victims = policy.victims(MitigationRequest(row=1000, level=level))
            distances = sorted(abs(v - 1000) for v in victims)
            assert distances == [2 * level - 1, 2 * level - 1, 2 * level, 2 * level]

    def test_edge_clamping(self):
        policy = BlastRadiusMitigation(ROWS)
        assert sorted(policy.victims(MitigationRequest(row=0))) == [1, 2]
        assert sorted(policy.victims(MitigationRequest(row=ROWS - 1))) == [
            ROWS - 3,
            ROWS - 2,
        ]

    def test_invalid_level(self):
        policy = BlastRadiusMitigation(ROWS)
        with pytest.raises(ValueError):
            policy.victims(MitigationRequest(row=5, level=0))

    def test_requires_recursive_tracking(self):
        assert BlastRadiusMitigation(ROWS).requires_recursive_tracking
        assert not fractal().requires_recursive_tracking

    def test_busy_cycles_is_four_trc(self):
        # Four victim refreshes keep the subarray busy ~200 ns.
        policy = BlastRadiusMitigation(ROWS)
        assert policy.busy_cycles(192) == REFRESHES_PER_MITIGATION * 192


class TestFractalMitigation:
    def test_always_refreshes_immediate_neighbours(self):
        policy = fractal()
        for _ in range(200):
            victims = policy.victims(MitigationRequest(row=2000))
            assert 1999 in victims
            assert 2001 in victims
            assert len(victims) == 4

    def test_distant_pair_is_symmetric(self):
        policy = fractal()
        for _ in range(200):
            victims = sorted(policy.victims(MitigationRequest(row=2000)))
            near = [v for v in victims if abs(v - 2000) == 1]
            far = [v for v in victims if abs(v - 2000) >= 2]
            assert len(near) == 2 and len(far) == 2
            assert far[0] + far[1] == 4000  # mirrored around the aggressor

    def test_distance_two_or_more(self):
        policy = fractal()
        for _ in range(300):
            distance = policy.draw_distance()
            assert 2 <= distance <= 18

    def test_distance_distribution_halves(self):
        # Fig. 10: P(d) = 2^(1-d) -> d=2 ~50 %, d=3 ~25 %, d=4 ~12.5 %.
        policy = fractal(seed=5)
        draws = [policy.draw_distance() for _ in range(20000)]
        total = len(draws)
        assert 0.46 < draws.count(2) / total < 0.54
        assert 0.22 < draws.count(3) / total < 0.28
        assert 0.10 < draws.count(4) / total < 0.15

    def test_leading_zero_implementation(self):
        # Fig. 10b: d = 2 + leading zeros of a 16-bit random number.
        assert FractalMitigation._leading_zeros(0b1000_0000_0000_0000) == 0
        assert FractalMitigation._leading_zeros(0b0100_0000_0000_0000) == 1
        assert FractalMitigation._leading_zeros(1) == 15
        assert FractalMitigation._leading_zeros(0) == 16

    def test_refresh_probability_formula(self):
        assert FractalMitigation.refresh_probability(1) == 1.0
        assert FractalMitigation.refresh_probability(2) == 0.5
        assert FractalMitigation.refresh_probability(3) == 0.25
        assert FractalMitigation.refresh_probability(10) == 2.0 ** -9
        assert FractalMitigation.refresh_probability(18) == 2.0 ** -16
        assert FractalMitigation.refresh_probability(19) == 0.0

    def test_refresh_probability_rejects_bad_distance(self):
        with pytest.raises(ValueError):
            FractalMitigation.refresh_probability(0)

    def test_edge_clamping(self):
        policy = fractal()
        victims = policy.victims(MitigationRequest(row=0))
        assert all(0 <= v < ROWS for v in victims)

    @given(row=st.integers(min_value=0, max_value=ROWS - 1))
    @settings(max_examples=100, deadline=None)
    def test_victims_always_in_bank(self, row):
        policy = fractal(seed=row)
        victims = policy.victims(MitigationRequest(row=row))
        assert all(0 <= v < ROWS for v in victims)
        assert row not in victims  # never refresh the aggressor itself

    def test_empirical_matches_refresh_probability(self):
        policy = fractal(seed=9)
        n = 40000
        hits = {2: 0, 3: 0, 4: 0, 5: 0}
        for _ in range(n):
            d = policy.draw_distance()
            if d in hits:
                hits[d] += 1
        for d, count in hits.items():
            expected = FractalMitigation.refresh_probability(d)
            assert count / n == pytest.approx(expected, rel=0.15)
