"""Metamorphic properties of the simulator.

These relations must hold for *any* correct memory-system simulator, so
they catch structural bugs that calibrated benchmarks cannot: throughput
stationarity, cost monotonicity, and symmetry under core relabeling.
"""

import pytest

from repro.cpu.system import simulate
from repro.mc.setup import MitigationSetup
from tests.test_system import make_traces


class TestStationarity:
    def test_cycles_scale_linearly_with_work(self, small_config):
        """Twice the requests take ~twice the cycles (steady state)."""
        short = make_traces(small_config, n=700, seed=3)
        long = make_traces(small_config, n=1400, seed=3)
        a = simulate(short, MitigationSetup("none"), small_config, "zen")
        b = simulate(long, MitigationSetup("none"), small_config, "zen")
        ratio = b.stats.cycles / a.stats.cycles
        assert 1.6 < ratio < 2.4


class TestMonotonicity:
    def test_rfm_never_helps(self, small_config):
        traces = make_traces(small_config, n=1000)
        base = simulate(traces, MitigationSetup("none"), small_config, "zen")
        for th in (4, 8, 16):
            rfm = simulate(
                traces, MitigationSetup("rfm", threshold=th), small_config, "zen"
            )
            assert rfm.slowdown_vs(base) > -0.01, th

    def test_tighter_rfm_costs_weakly_more(self, small_config):
        traces = make_traces(small_config, n=1000)
        base = simulate(traces, MitigationSetup("none"), small_config, "zen")
        costs = [
            simulate(
                traces, MitigationSetup("rfm", threshold=th), small_config, "zen"
            ).slowdown_vs(base)
            for th in (4, 8, 16)
        ]
        assert costs[0] >= costs[1] - 0.02 >= costs[2] - 0.04

    def test_autorfm_bounded_by_rfm(self, small_config):
        """Transparent mitigation can never cost more than blocking the
        whole bank for the same cadence (same mapping, same traces)."""
        traces = make_traces(small_config, n=1000)
        base = simulate(traces, MitigationSetup("none"), small_config, "zen")
        rfm = simulate(
            traces, MitigationSetup("rfm", threshold=4), small_config, "zen"
        )
        auto = simulate(
            traces,
            MitigationSetup("autorfm", threshold=4, policy="fractal"),
            small_config,
            "zen",
        )
        assert auto.slowdown_vs(base) < rfm.slowdown_vs(base) + 0.02


class TestSymmetry:
    def test_core_relabeling_preserves_aggregates(self, small_config):
        """Swapping which core runs which trace must not change totals."""
        traces = make_traces(small_config, n=800, seed=7)
        forward = simulate(traces, MitigationSetup("none"), small_config, "zen")
        swapped = simulate(
            list(reversed(traces)), MitigationSetup("none"), small_config, "zen"
        )
        assert (
            forward.stats.total_memory_requests
            == swapped.stats.total_memory_requests
        )
        # Aggregate activations agree closely (scheduling interleave may
        # shift a handful of row hits).
        assert forward.stats.total_activations == pytest.approx(
            swapped.stats.total_activations, rel=0.05
        )
        # Per-core finish times are exchanged, not changed, up to
        # interleaving noise.
        f = sorted(c.finish_cycle for c in forward.stats.cores)
        s = sorted(c.finish_cycle for c in swapped.stats.cores)
        for x, y in zip(f, s):
            assert x == pytest.approx(y, rel=0.1)

    def test_idle_cores_do_not_perturb(self, small_config):
        """Adding an idle core must not change the busy core's progress."""
        traces = make_traces(small_config, n=600, seed=9)
        both = simulate(traces, MitigationSetup("none"), small_config, "zen")
        solo = simulate(
            [traces[0], traces[1].sliced(0)],
            MitigationSetup("none"),
            small_config,
            "zen",
        )
        # Core 0 can only get faster with core 1 idle.
        assert (
            solo.stats.cores[0].finish_cycle
            <= both.stats.cores[0].finish_cycle + 10
        )
