"""Tests for Graphene (secure, deterministic) and TRR (deliberately broken)."""

import numpy as np
import pytest

from repro.core.mitigation import FractalMitigation
from repro.security.montecarlo import run_attack
from repro.trackers.graphene import GrapheneTracker
from repro.trackers.trr import TrrTracker
from repro.workloads.attacks import single_sided


def rng(seed=0):
    return np.random.default_rng(seed)


class TestGraphene:
    def test_nominates_when_threshold_crossed(self):
        graphene = GrapheneTracker(entries=4, mitigation_count=5, rng=rng(0))
        for _ in range(4):
            graphene.on_activation(9)
            assert graphene.select_for_mitigation() is None
        graphene.on_activation(9)
        request = graphene.select_for_mitigation()
        assert request is not None and request.row == 9

    def test_counter_resets_after_mitigation(self):
        graphene = GrapheneTracker(entries=4, mitigation_count=3, rng=rng(0))
        for _ in range(3):
            graphene.on_activation(9)
        graphene.select_for_mitigation()
        assert graphene.effective_count(9) == 0

    def test_refresh_window_clears_table(self):
        graphene = GrapheneTracker(entries=4, mitigation_count=3, rng=rng(0))
        graphene.on_activation(9)
        graphene.on_refresh_window()
        assert graphene.effective_count(9) == 0
        assert graphene.select_for_mitigation() is None

    def test_decrement_path_when_full(self):
        graphene = GrapheneTracker(entries=2, mitigation_count=10, rng=rng(0))
        graphene.on_activation(1)
        graphene.on_activation(2)
        graphene.on_activation(3)  # full: decrement, not insert
        assert graphene.effective_count(3) == 0
        assert graphene.effective_count(1) == 0

    def test_no_aggressor_escapes_threshold(self):
        """Deterministic guarantee: with a large enough table no row exceeds
        mitigation_count + table slack without being nominated."""
        graphene = GrapheneTracker(entries=64, mitigation_count=8, rng=rng(0))
        policy = FractalMitigation(1 << 17, rng(1))
        result = run_attack(
            single_sided(5000, 20_000), graphene, policy, window=1
        )
        # Bound: mitigation_count plus the transitive/far-damage slack the
        # accounting adds (d=2 neighbours take 0.1 damage per ACT).
        assert result.max_pressure < 6 * 8

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            GrapheneTracker(entries=0, mitigation_count=1, rng=rng(0))
        with pytest.raises(ValueError):
            GrapheneTracker(entries=1, mitigation_count=0, rng=rng(0))

    def test_storage_scales_with_threshold(self):
        small = GrapheneTracker(4, 15, rng(0)).storage_bits
        large = GrapheneTracker(4, 4000, rng(0)).storage_bits
        assert large > small


class TestTrr:
    def test_catches_naive_single_target(self):
        trr = TrrTracker(rng(0), entries=4, sample_period=1)
        policy = FractalMitigation(1 << 17, rng(1))
        result = run_attack(single_sided(5000, 20_000), trr, policy, window=4)
        # A lone aggressor is always in the table: pressure stays bounded.
        assert result.max_pressure < 100

    @staticmethod
    def _sampling_sync_pattern(target, acts):
        """TRRespass-style break of deterministic sampling: hammer the
        victim's neighbours on the non-sampled slots and park a rotating
        decoy on every 4th slot (the only ones a period-4 sampler sees)."""
        pattern = []
        decoy = target + 10_000
        i = 0
        while len(pattern) < acts:
            pattern.extend([target - 1, target + 1, target - 1, decoy + 2 * i])
            i += 1
        return pattern[:acts]

    def test_sampling_sync_attack_breaks_trr(self):
        trr = TrrTracker(rng(0), entries=4, sample_period=4)
        policy = FractalMitigation(1 << 17, rng(1))
        target = 5000
        result = run_attack(
            self._sampling_sync_pattern(target, 40_000), trr, policy, window=4
        )
        # The aggressors never land on a sampled slot: the victim's pressure
        # grows with the attack, i.e. the tracker is broken.
        assert result.pressure.get(target, 0) > 10_000

    def test_mint_survives_the_same_pattern(self):
        from repro.trackers.mint import MintTracker

        mint = MintTracker(window=4, rng=rng(0))
        policy = FractalMitigation(1 << 17, rng(1))
        target = 5000
        result = run_attack(
            self._sampling_sync_pattern(target, 40_000), mint, policy, window=4
        )
        # MINT's slot is random: no phase for the attacker to hide in.
        assert result.pressure.get(target, 0) < 300

    def test_deterministic_sampling_period(self):
        trr = TrrTracker(rng(0), entries=4, sample_period=4)
        # Rows on non-sampled slots are never tracked.
        for i in range(100):
            trr.on_activation(7 if i % 4 == 3 else 1)
        request = trr.select_for_mitigation()
        assert request is not None and request.row == 7

    def test_empty_table(self):
        assert TrrTracker(rng(0)).select_for_mitigation() is None

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            TrrTracker(rng(0), entries=0)
        with pytest.raises(ValueError):
            TrrTracker(rng(0), sample_period=0)
