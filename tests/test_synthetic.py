"""Tests for synthetic trace generation and the workload catalog."""

import numpy as np
import pytest

from repro.sim.config import SystemConfig
from repro.workloads.catalog import WORKLOADS, workload_names, workloads_by_suite
from repro.workloads.rate import make_rate_traces
from repro.workloads.synthetic import generate_trace


def gen(pattern, n=2000, **kwargs):
    defaults = dict(
        mpki=20.0,
        region_start=1000,
        region_lines=100_000,
        rng=np.random.default_rng(7),
    )
    defaults.update(kwargs)
    return generate_trace(pattern, n, **defaults)


class TestGenerateTrace:
    def test_request_count(self):
        assert len(gen("stream", n=500)) == 500

    def test_addresses_inside_region(self):
        for pattern in ("stream", "random", "mixed", "strided"):
            trace = gen(pattern, revisit_probability=0.3)
            assert all(1000 <= a < 101_000 for a in trace.addrs)

    def test_mpki_calibration(self):
        trace = gen("random", n=20_000, mpki=25.0)
        assert trace.mpki == pytest.approx(25.0, rel=0.1)

    def test_write_fraction(self):
        trace = gen("stream", n=10_000, write_fraction=0.4)
        frac = sum(trace.writes) / len(trace)
        assert 0.35 < frac < 0.45

    def test_stream_is_mostly_sequential(self):
        trace = gen("stream", streams=1, chunk=1, revisit_probability=0.0)
        sequential = sum(
            1 for a, b in zip(trace.addrs, trace.addrs[1:]) if b == a + 1
        )
        assert sequential / len(trace.addrs) > 0.9

    def test_chunked_streams_emit_runs(self):
        trace = gen("stream", streams=4, chunk=4, revisit_probability=0.0)
        sequential = sum(
            1 for a, b in zip(trace.addrs, trace.addrs[1:]) if b == a + 1
        )
        # Three of every four transitions are within a chunk.
        assert sequential / len(trace.addrs) > 0.6

    def test_random_is_not_sequential(self):
        trace = gen("random")
        sequential = sum(
            1 for a, b in zip(trace.addrs, trace.addrs[1:]) if b == a + 1
        )
        assert sequential / len(trace.addrs) < 0.05

    def test_strided_uses_stride(self):
        trace = gen("strided", streams=1, stride=8, chunk=1,
                    revisit_probability=0.0)
        strided = sum(
            1 for a, b in zip(trace.addrs, trace.addrs[1:]) if b == a + 8
        )
        assert strided / len(trace.addrs) > 0.9

    def test_mixed_fraction_controls_sequentiality(self):
        seq_high = gen("mixed", sequential_fraction=0.9, revisit_probability=0.0)
        seq_low = gen("mixed", sequential_fraction=0.1, revisit_probability=0.0)

        def seq_rate(trace):
            return sum(
                1 for a, b in zip(trace.addrs, trace.addrs[1:]) if b == a + 1
            ) / len(trace.addrs)

        assert seq_rate(seq_high) > seq_rate(seq_low) + 0.3

    def test_revisits_create_neighbourhood_reuse(self):
        trace = gen("random", revisit_probability=0.5, n=5000)
        # Many addresses should be a pair/sibling of a recent address.
        reuse = 0
        recent = []
        for addr in trace.addrs:
            if any(addr in (r ^ 1, r + 128, r - 128, r + 256, r - 256)
                   for r in recent[-64:]):
                reuse += 1
            recent.append(addr)
        assert reuse / len(trace.addrs) > 0.2

    def test_deterministic_given_rng_seed(self):
        a = gen("mixed", rng=np.random.default_rng(42))
        b = gen("mixed", rng=np.random.default_rng(42))
        assert a.addrs == b.addrs and a.gaps == b.gaps

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            gen("bogus")
        with pytest.raises(ValueError):
            gen("stream", mpki=0.0)
        with pytest.raises(ValueError):
            gen("stream", region_lines=0)
        with pytest.raises(ValueError):
            gen("mixed", sequential_fraction=1.5)


class TestCatalog:
    def test_twenty_one_workloads(self):
        assert len(WORKLOADS) == 21

    def test_suites(self):
        assert len(workloads_by_suite("SPEC2K17")) == 11
        assert len(workloads_by_suite("GAP")) == 6
        assert len(workloads_by_suite("Stream")) == 4

    def test_unknown_suite_raises(self):
        with pytest.raises(ValueError):
            workloads_by_suite("nope")

    def test_names_match_paper_table5(self):
        for name in ("bwaves", "mcf", "ConnComp", "PageRank", "add", "triad"):
            assert name in workload_names()

    def test_mpki_at_least_act_pki(self):
        # Request rate must exceed the ACT rate (hits only remove ACTs).
        for workload in WORKLOADS.values():
            assert workload.mpki >= workload.paper_act_pki

    def test_trace_generation_for_every_workload(self):
        config = SystemConfig()
        for workload in WORKLOADS.values():
            trace = workload.trace(
                num_requests=64,
                config=config,
                core_id=0,
                rng=np.random.default_rng(0),
            )
            assert len(trace) == 64
            assert trace.name == workload.name


class TestRateTraces:
    def test_one_trace_per_core(self):
        config = SystemConfig()
        traces = make_rate_traces(WORKLOADS["roms"], config, requests=32)
        assert len(traces) == config.num_cores

    def test_cores_use_disjoint_regions(self):
        config = SystemConfig()
        traces = make_rate_traces(WORKLOADS["mcf"], config, requests=200)
        region = config.total_lines // config.num_cores
        for core, trace in enumerate(traces):
            assert all(
                core * region <= a < (core + 1) * region for a in trace.addrs
            )

    def test_cores_get_different_streams(self):
        config = SystemConfig()
        traces = make_rate_traces(WORKLOADS["mcf"], config, requests=100)
        assert traces[0].addrs != traces[1].addrs

    def test_seed_reproducibility(self):
        config = SystemConfig()
        a = make_rate_traces(WORKLOADS["xz"], config, requests=50, seed=3)
        b = make_rate_traces(WORKLOADS["xz"], config, requests=50, seed=3)
        assert all(x.addrs == y.addrs for x, y in zip(a, b))
