"""Tests for the set-associative LLC and the post-LLC trace filter."""

import pytest

from repro.cpu.cache import SetAssociativeCache, llc_filter
from repro.workloads.trace import Trace


def small_cache(ways=2, sets=4):
    return SetAssociativeCache(size_bytes=ways * sets * 64, ways=ways)


class TestCacheBasics:
    def test_first_access_misses_then_hits(self):
        cache = small_cache()
        hit, _ = cache.access(10, is_write=False)
        assert not hit
        hit, _ = cache.access(10, is_write=False)
        assert hit

    def test_lru_eviction(self):
        cache = small_cache(ways=2, sets=1)
        cache.access(0, False)
        cache.access(1, False)
        cache.access(0, False)  # refresh 0's recency
        cache.access(2, False)  # evicts 1, not 0
        assert cache.contains(0)
        assert not cache.contains(1)

    def test_dirty_eviction_returns_writeback(self):
        cache = small_cache(ways=1, sets=1)
        cache.access(5, is_write=True)
        _, writeback = cache.access(6, is_write=False)
        assert writeback == 5
        assert cache.stats.writebacks == 1

    def test_clean_eviction_no_writeback(self):
        cache = small_cache(ways=1, sets=1)
        cache.access(5, is_write=False)
        _, writeback = cache.access(6, is_write=False)
        assert writeback is None

    def test_write_hit_marks_dirty(self):
        cache = small_cache(ways=1, sets=1)
        cache.access(5, is_write=False)
        cache.access(5, is_write=True)
        _, writeback = cache.access(6, is_write=False)
        assert writeback == 5

    def test_set_indexing(self):
        cache = small_cache(ways=1, sets=4)
        cache.access(0, False)
        cache.access(1, False)  # different set: no conflict
        assert cache.contains(0)
        assert cache.contains(1)

    def test_miss_rate(self):
        cache = small_cache()
        for _ in range(2):
            for addr in range(4):
                cache.access(addr, False)
        assert cache.stats.miss_rate == pytest.approx(0.5)

    def test_rejects_bad_geometry(self):
        with pytest.raises(ValueError):
            SetAssociativeCache(size_bytes=0, ways=4)
        with pytest.raises(ValueError):
            SetAssociativeCache(size_bytes=100, ways=3)


class TestLlcFilter:
    def test_hits_are_filtered_out(self):
        trace = Trace(gaps=[0, 0, 0], addrs=[1, 1, 1], writes=[False] * 3)
        out = llc_filter(trace, small_cache())
        assert len(out) == 1
        assert out.addrs == [1]

    def test_gaps_accumulate_over_hits(self):
        trace = Trace(gaps=[5, 5, 5], addrs=[1, 1, 2], writes=[False] * 3)
        out = llc_filter(trace, small_cache())
        # Second access hits: its gap (5) plus the hit instruction fold into
        # the third request's gap.
        assert out.addrs == [1, 2]
        assert out.gaps == [5, 11]

    def test_instruction_count_preserved(self):
        trace = Trace(
            gaps=[3, 4, 5, 6],
            addrs=[1, 1, 2, 1],
            writes=[False] * 4,
            tail_instructions=9,
        )
        out = llc_filter(trace, small_cache())
        assert out.total_instructions == trace.total_instructions

    def test_writebacks_appear_as_writes(self):
        cache = small_cache(ways=1, sets=1)
        trace = Trace(gaps=[0, 0], addrs=[5, 6], writes=[True, False])
        out = llc_filter(trace, cache)
        assert out.addrs == [5, 6, 5]
        assert out.writes == [True, False, True]

    def test_empty_trace(self):
        out = llc_filter(Trace(), small_cache())
        assert len(out) == 0
