"""Tests for the DRAM power model (Fig. 12 shapes)."""

import pytest

from repro.power.model import DramPowerModel, PowerParams
from repro.sim.config import SystemConfig
from repro.sim.stats import SimStats


def stats_with(acts=0, reads=0, writes=0, victim_refreshes=0, cycles=4_000_000):
    stats = SimStats.with_shape(num_banks=2, num_cores=1)
    stats.cycles = cycles
    stats.banks[0].activations = acts
    stats.banks[0].reads = reads
    stats.banks[0].writes = writes
    stats.banks[0].victim_refreshes = victim_refreshes
    return stats


class TestPowerModel:
    def setup_method(self):
        self.model = DramPowerModel(SystemConfig())

    def test_idle_has_background_and_refresh_only(self):
        breakdown = self.model.breakdown(stats_with())
        assert breakdown.act_rw_mw == 0.0
        assert breakdown.mitig_mw == 0.0
        assert breakdown.other_mw > 0.0
        assert breakdown.refresh_mw > 0.0

    def test_act_power_scales_with_activations(self):
        low = self.model.breakdown(stats_with(acts=1000, reads=1000))
        high = self.model.breakdown(stats_with(acts=2000, reads=2000))
        assert high.act_rw_mw == pytest.approx(2 * low.act_rw_mw)

    def test_mitigation_power_scales_with_victim_refreshes(self):
        # AutoRFM-4 does ~2x the mitigations of AutoRFM-8 (Fig. 12).
        auto8 = self.model.breakdown(stats_with(acts=8000, victim_refreshes=4000))
        auto4 = self.model.breakdown(stats_with(acts=8000, victim_refreshes=8000))
        assert auto4.mitig_mw == pytest.approx(2 * auto8.mitig_mw)

    def test_victim_refresh_cheaper_than_demand_act(self):
        demand = self.model.breakdown(stats_with(acts=1000))
        mitig = self.model.breakdown(stats_with(victim_refreshes=1000))
        assert mitig.mitig_mw < demand.act_rw_mw

    def test_total_is_sum_of_components(self):
        b = self.model.breakdown(
            stats_with(acts=500, reads=400, writes=100, victim_refreshes=250)
        )
        assert b.total_mw == pytest.approx(
            b.act_rw_mw + b.other_mw + b.refresh_mw + b.mitig_mw
        )

    def test_mitigation_overhead_order_of_magnitude(self):
        """Fig. 12: AutoRFM-4's mitigation component is tens of mW at
        Table V activation rates (~28 ACT/tREFI/bank over 64 banks)."""
        config = SystemConfig()
        stats = SimStats.with_shape(config.num_banks, 8)
        trefi_windows = 1000
        stats.cycles = trefi_windows * config.timing.trefi
        for bank in stats.banks:
            bank.activations = 28 * trefi_windows
            bank.victim_refreshes = 28 * trefi_windows  # AutoRFM-4: 4 per 4
        breakdown = DramPowerModel(config).breakdown(stats)
        assert 20 < breakdown.mitig_mw < 150  # paper: ~55 mW

    def test_rubix_act_overhead_order_of_magnitude(self):
        """Fig. 12: Rubix's +18 % activations cost ~36 mW."""
        config = SystemConfig()

        def acts(per_trefi):
            stats = SimStats.with_shape(config.num_banks, 8)
            stats.cycles = 1000 * config.timing.trefi
            for bank in stats.banks:
                bank.activations = int(per_trefi * 1000)
            return DramPowerModel(config).breakdown(stats).act_rw_mw

        delta = acts(28 * 1.18) - acts(28)
        assert 15 < delta < 90  # paper: ~36 mW

    def test_zero_cycles_rejected(self):
        with pytest.raises(ValueError):
            self.model.breakdown(stats_with(cycles=0))

    def test_act_energy_positive(self):
        assert PowerParams().act_energy_nj > 0
