"""Tests for the trace-driven core model (frontend, ROB, MSHRs, retire)."""

import pytest

from repro.cpu.core import Core
from repro.sim.config import SystemConfig
from repro.sim.engine import Engine
from repro.sim.stats import CoreStats
from repro.workloads.trace import Trace


class FixedLatencyMemory:
    """Completes every read after a fixed delay; records submissions."""

    def __init__(self, engine, latency):
        self.engine = engine
        self.latency = latency
        self.submissions = []

    def submit(self, request):
        self.submissions.append((self.engine.now, request.line_addr, request.is_write))
        if request.on_complete is not None:
            self.engine.schedule(self.engine.now + self.latency, request.on_complete)


def run_core(trace, config=None, latency=100):
    config = config or SystemConfig(num_cores=1)
    engine = Engine()
    memory = FixedLatencyMemory(engine, latency)
    stats = CoreStats()
    core = Core(0, trace, config, engine, memory.submit, stats)
    core.start()
    engine.run()
    assert core.finished
    return stats, memory


class TestCoreBasics:
    def test_empty_trace_finishes_immediately(self):
        stats, _ = run_core(Trace())
        assert stats.finish_cycle >= 1
        assert stats.memory_requests == 0

    def test_pure_compute_tail(self):
        # 4000 instructions at width 4 -> 1000 cycles.
        stats, _ = run_core(Trace(tail_instructions=4000))
        assert stats.finish_cycle == 1000
        assert stats.instructions == 4000

    def test_single_read_latency_bounds_finish(self):
        trace = Trace(gaps=[0], addrs=[5], writes=[False])
        stats, _ = run_core(trace, latency=500)
        assert stats.finish_cycle >= 500
        assert stats.reads_completed == 1

    def test_instruction_accounting(self):
        trace = Trace(gaps=[9, 9], addrs=[1, 2], writes=[False, False],
                      tail_instructions=10)
        stats, _ = run_core(trace)
        assert stats.instructions == 9 + 1 + 9 + 1 + 10

    def test_writes_do_not_block(self):
        # A long chain of writes finishes at frontend speed even with slow
        # memory (fire-and-forget).
        n = 64
        trace = Trace(gaps=[3] * n, addrs=list(range(n)), writes=[True] * n)
        stats, _ = run_core(trace, latency=100_000)
        assert stats.finish_cycle < 2000

    def test_reads_block_on_latency(self):
        n = 8
        config = SystemConfig(num_cores=1, mshrs_per_core=1)
        trace = Trace(gaps=[0] * n, addrs=list(range(n)), writes=[False] * n)
        stats, _ = run_core(trace, config=config, latency=100)
        # One MSHR serializes all reads: >= n * latency.
        assert stats.finish_cycle >= n * 100


class TestCoreLimits:
    def test_mshr_limits_outstanding(self):
        config = SystemConfig(num_cores=1, mshrs_per_core=2, rob_size=10_000)
        n = 6
        trace = Trace(gaps=[0] * n, addrs=list(range(n)), writes=[False] * n)
        engine = Engine()
        memory = FixedLatencyMemory(engine, 1000)
        core = Core(0, trace, config, engine, memory.submit, CoreStats())
        core.start()
        engine.run(until=999)
        # Only 2 reads may be outstanding before the first completion.
        assert len(memory.submissions) == 2

    def test_rob_limits_runahead(self):
        config = SystemConfig(num_cores=1, mshrs_per_core=64, rob_size=100)
        # Requests 100 instructions apart: at most ~1 extra can dispatch
        # while the first is outstanding.
        n = 8
        trace = Trace(gaps=[99] * n, addrs=list(range(n)), writes=[False] * n)
        engine = Engine()
        memory = FixedLatencyMemory(engine, 10_000)
        core = Core(0, trace, config, engine, memory.submit, CoreStats())
        core.start()
        engine.run(until=9_999)
        assert len(memory.submissions) <= 2

    def test_frontend_width_paces_dispatch(self):
        config = SystemConfig(num_cores=1, core_width=4)
        trace = Trace(gaps=[399], addrs=[1], writes=[False])
        engine = Engine()
        memory = FixedLatencyMemory(engine, 10)
        core = Core(0, trace, config, engine, memory.submit, CoreStats())
        core.start()
        engine.run()
        # 400 instructions at width 4 -> dispatched at cycle 100.
        assert memory.submissions[0][0] == 100

    def test_higher_latency_lowers_ipc(self):
        n = 64
        trace = Trace(gaps=[10] * n, addrs=list(range(n)), writes=[False] * n)
        fast, _ = run_core(trace, latency=50)
        slow, _ = run_core(trace, latency=500)
        assert slow.finish_cycle > fast.finish_cycle
        assert slow.ipc < fast.ipc

    def test_avg_read_latency_tracks_memory(self):
        n = 16
        config = SystemConfig(num_cores=1, mshrs_per_core=1)
        trace = Trace(gaps=[50] * n, addrs=list(range(n)), writes=[False] * n)
        stats, _ = run_core(trace, config=config, latency=123)
        assert stats.avg_read_latency == pytest.approx(123)


class TestTraceValidation:
    def test_misaligned_trace_rejected(self):
        with pytest.raises(ValueError):
            Trace(gaps=[1], addrs=[], writes=[])

    def test_trace_helpers(self):
        trace = Trace(gaps=[9, 19], addrs=[1, 2], writes=[False, True],
                      tail_instructions=70)
        assert len(trace) == 2
        assert trace.total_instructions == 100
        assert trace.mpki == pytest.approx(20.0)
        sliced = trace.sliced(1)
        assert len(sliced) == 1
        assert sliced.addrs == [1]
