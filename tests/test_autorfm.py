"""Tests for the AutoRFM engine (SAUM lifecycle, ALERT conflicts)."""

import numpy as np
import pytest

from repro.core.autorfm import AutoRfmEngine
from repro.core.mitigation import BlastRadiusMitigation, FractalMitigation
from repro.sim.stats import BankStats
from repro.trackers.mint import MintTracker


def make_engine(small_config, th=4, policy_kind="fractal", seed=0):
    rng = np.random.default_rng(seed)
    tracker = MintTracker(window=th, rng=rng, transitive_slot=(policy_kind == "recursive"))
    if policy_kind == "fractal":
        policy = FractalMitigation(small_config.rows_per_bank, np.random.default_rng(seed + 1))
    else:
        policy = BlastRadiusMitigation(small_config.rows_per_bank)
    return AutoRfmEngine(small_config, tracker, policy, autorfm_th=th, stats=BankStats())


class TestAutoRfmEngine:
    def test_no_mitigation_before_window_completes(self, small_config):
        engine = make_engine(small_config)
        for i, row in enumerate([10, 20, 30]):
            engine.on_activation(row, now=i * 200)
            engine.on_precharge(now=i * 200 + 144)
        assert engine.stats.mitigations == 0
        assert engine.saum is None

    def test_mitigation_starts_at_window_closing_precharge(self, small_config):
        engine = make_engine(small_config)
        rows = [100, 200, 300, 400]
        for i, row in enumerate(rows):
            engine.on_activation(row, now=i * 200)
            engine.on_precharge(now=i * 200 + 144)
        assert engine.stats.mitigations == 1
        # SAUM is the subarray of one of the window's rows.
        subarrays = {small_config.subarray_of_row(r) for r in rows}
        assert engine.saum in subarrays

    def test_saum_busy_exactly_four_trc(self, small_config):
        engine = make_engine(small_config)
        for i in range(4):
            engine.on_activation(512, now=i * 200)  # subarray 2
            engine.on_precharge(now=i * 200 + 144)
        start = 3 * 200 + 144
        assert engine.saum_busy_until == start + 4 * small_config.timing.trc

    def test_conflict_only_for_saum_rows_during_busy(self, small_config):
        engine = make_engine(small_config)
        for i in range(4):
            engine.on_activation(512, now=i * 200)  # all in subarray 2
            engine.on_precharge(now=i * 200 + 144)
        t = engine.saum_busy_until - 1
        assert engine.saum == 2
        assert engine.conflicts(513, t)  # same subarray
        assert engine.conflicts(767, t)  # still subarray 2
        assert not engine.conflicts(100, t)  # subarray 0
        assert not engine.conflicts(768, t)  # subarray 3

    def test_no_conflict_after_busy_expires(self, small_config):
        engine = make_engine(small_config)
        for i in range(4):
            engine.on_activation(512, now=i * 200)
            engine.on_precharge(now=i * 200 + 144)
        assert not engine.conflicts(513, engine.saum_busy_until)

    def test_windows_repeat(self, small_config):
        engine = make_engine(small_config, th=4)
        now = 0
        for burst in range(10):
            for _ in range(4):
                engine.on_activation(1000 + burst, now)
                engine.on_precharge(now + 144)
                now += 5000  # far apart: each mitigation expires
        assert engine.stats.mitigations == 10
        assert engine.stats.victim_refreshes == 40

    def test_victim_refresh_count_per_mitigation(self, small_config):
        engine = make_engine(small_config, policy_kind="recursive")
        now = 0
        for _ in range(8):  # several windows: the transitive slot may skip
            for _ in range(4):
                engine.on_activation(2048, now)
                engine.on_precharge(now + 144)
                now += 2000
        assert engine.stats.mitigations >= 1
        assert engine.stats.victim_refreshes == 4 * engine.stats.mitigations

    def test_recursive_rounds_counted(self, small_config):
        engine = make_engine(small_config, th=2, policy_kind="recursive", seed=3)
        now = 0
        for _ in range(400):
            for _ in range(2):
                engine.on_activation(128, now)
                engine.on_precharge(now + 144)
                now += 2000
        assert engine.stats.recursive_rounds > 0
        assert engine.stats.recursive_rounds < engine.stats.mitigations

    def test_precharge_without_pending_is_noop(self, small_config):
        engine = make_engine(small_config)
        engine.on_precharge(now=50)
        assert engine.stats.mitigations == 0

    def test_rejects_bad_threshold(self, small_config):
        with pytest.raises(ValueError):
            make_engine(small_config, th=0)

    def test_mitigation_busy_cycles_matches_policy(self, small_config):
        engine = make_engine(small_config)
        assert engine.mitigation_busy_cycles == 4 * small_config.timing.trc
