"""Tests for the Zen and Rubix memory mappings."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mapping import LineLocation, RubixMapping, ZenMapping
from repro.sim.config import SystemConfig

CONFIG = SystemConfig()
LINES = CONFIG.total_lines


class TestZenMapping:
    def setup_method(self):
        self.zen = ZenMapping(CONFIG)

    def test_line_pair_shares_bank_and_row(self):
        # The paper's Zen property: two lines of a 4 KB page per bank row.
        for base in (0, 64, 4096, 123456 * 2):
            a = self.zen.locate(base)
            b = self.zen.locate(base + 1)
            assert (a.subchannel, a.bank, a.row) == (b.subchannel, b.bank, b.row)
            assert a.column != b.column

    def test_page_stripes_across_all_banks(self):
        # The 64 lines of a 4 KB page touch all 32 banks of one subchannel.
        locations = [self.zen.locate(line) for line in range(64)]
        banks = {(loc.subchannel, loc.bank) for loc in locations}
        assert len(banks) == 32
        assert len({loc.subchannel for loc in locations}) == 1

    def test_consecutive_pages_alternate_subchannels(self):
        a = self.zen.locate(0)
        b = self.zen.locate(64)  # next 4 KB page
        assert a.subchannel != b.subchannel

    def test_sibling_page_shares_row(self):
        # +8 KB (page + 2) lands in the same subchannel, bank, and row —
        # the neighbourhood-revisit property the SAUM conflicts rely on.
        a = self.zen.locate(0)
        b = self.zen.locate(128)
        assert (a.subchannel, a.bank, a.row) == (b.subchannel, b.bank, b.row)

    def test_row_range(self):
        last = self.zen.locate(LINES - 1)
        assert 0 <= last.row < CONFIG.rows_per_bank

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            self.zen.locate(LINES)
        with pytest.raises(ValueError):
            self.zen.locate(-1)

    def test_flat_bank(self):
        loc = LineLocation(subchannel=1, bank=3, row=0, column=0)
        assert loc.flat_bank(32) == 35

    def test_subarray_of(self):
        loc = self.zen.locate(0)
        assert self.zen.subarray_of(loc) == loc.row // CONFIG.rows_per_subarray

    @given(st.integers(min_value=0, max_value=LINES - 1))
    @settings(max_examples=300, deadline=None)
    def test_locations_are_distinct_and_in_range(self, line):
        loc = self.zen.locate(line)
        assert 0 <= loc.subchannel < CONFIG.num_subchannels
        assert 0 <= loc.bank < CONFIG.banks_per_subchannel
        assert 0 <= loc.row < CONFIG.rows_per_bank
        assert 0 <= loc.column < CONFIG.lines_per_row

    def test_bijective_on_sample_block(self):
        seen = set()
        for line in range(1 << 14):
            loc = self.zen.locate(line)
            key = (loc.subchannel, loc.bank, loc.row, loc.column)
            assert key not in seen
            seen.add(key)


class TestRubixMapping:
    def setup_method(self):
        self.rubix = RubixMapping(CONFIG, key=42)

    def test_has_cipher_latency(self):
        assert self.rubix.extra_latency == 3
        assert ZenMapping(CONFIG).extra_latency == 0

    def test_breaks_pair_correlation(self):
        # Under Rubix, pair mates should almost never share a bank row.
        same = 0
        for base in range(0, 2000, 2):
            a = self.rubix.locate(base)
            b = self.rubix.locate(base + 1)
            if (a.subchannel, a.bank, a.row) == (b.subchannel, b.bank, b.row):
                same += 1
        assert same <= 2

    def test_subarray_distribution_is_uniform(self):
        # Sequential lines spread across subarrays ~uniformly (1/256 each).
        counts = {}
        n = 8192
        for line in range(n):
            loc = self.rubix.locate(line)
            sub = self.rubix.subarray_of(loc)
            counts[sub] = counts.get(sub, 0) + 1
        assert len(counts) > 200  # most of the 256 subarrays touched
        assert max(counts.values()) < 10 * n / 256

    def test_deterministic_per_key(self):
        again = RubixMapping(CONFIG, key=42)
        for line in (0, 999, 123456):
            assert self.rubix.locate(line) == again.locate(line)

    def test_different_keys_differ(self):
        other = RubixMapping(CONFIG, key=43)
        assert any(
            self.rubix.locate(line) != other.locate(line) for line in range(32)
        )

    def test_inverse_recovers_line(self):
        for line in (0, 1, 77, 1 << 20):
            enc = self.rubix.cipher.encrypt(line)
            assert self.rubix.inverse(enc) == line

    def test_bijective_on_sample(self):
        seen = set()
        for line in range(1 << 13):
            loc = self.rubix.locate(line)
            key = (loc.subchannel, loc.bank, loc.row, loc.column)
            assert key not in seen
            seen.add(key)
