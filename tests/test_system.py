"""End-to-end tests of repro.simulate with the small configuration."""

import pytest

from repro import MitigationSetup, simulate
from repro.cpu.system import build_mapping
from repro.mapping import RubixMapping, ZenMapping
from repro.sim.rng import RngStreams
from repro.workloads.synthetic import generate_trace


def make_traces(small_config, n=400, pattern="stream", seed=0):
    streams = RngStreams(seed)
    region = small_config.total_lines // small_config.num_cores
    return [
        generate_trace(
            pattern,
            n,
            mpki=30.0,
            region_start=core * region,
            region_lines=region,
            rng=streams.get(f"core/{core}"),
            revisit_probability=0.3,
        )
        for core in range(small_config.num_cores)
    ]


class TestSimulate:
    def test_baseline_runs_to_completion(self, small_config):
        traces = make_traces(small_config)
        result = simulate(traces, MitigationSetup("none"), small_config, "zen")
        assert result.stats.cycles > 0
        assert result.stats.total_memory_requests == sum(len(t) for t in traces)
        assert result.stats.total_activations > 0

    def test_deterministic_given_seed(self, small_config):
        traces = make_traces(small_config)
        setup = MitigationSetup("autorfm", threshold=4)
        a = simulate(traces, setup, small_config, "rubix", seed=5)
        b = simulate(traces, setup, small_config, "rubix", seed=5)
        assert a.stats.cycles == b.stats.cycles
        assert a.stats.total_activations == b.stats.total_activations
        assert a.stats.total_alerts == b.stats.total_alerts

    def test_every_mechanism_completes(self, small_config):
        traces = make_traces(small_config, n=300)
        for setup in (
            MitigationSetup("none"),
            MitigationSetup("rfm", threshold=4),
            MitigationSetup("autorfm", threshold=4, policy="fractal"),
            MitigationSetup("autorfm", threshold=4, policy="recursive"),
            MitigationSetup("prac", prac_trh_d=100),
        ):
            result = simulate(traces, setup, small_config, "zen")
            assert result.stats.cycles > 0, setup.describe()

    def test_rfm_slows_down_baseline(self, small_config):
        traces = make_traces(small_config, n=800)
        base = simulate(traces, MitigationSetup("none"), small_config, "zen")
        rfm = simulate(
            traces, MitigationSetup("rfm", threshold=4), small_config, "zen"
        )
        assert rfm.stats.total_rfm_commands > 0
        assert rfm.slowdown_vs(base) > 0.0

    def test_autorfm_cheaper_than_rfm(self, small_config):
        # The paper's headline: transparent RFM beats blocking RFM.
        traces = make_traces(small_config, n=800)
        base = simulate(traces, MitigationSetup("none"), small_config, "zen")
        rfm = simulate(
            traces, MitigationSetup("rfm", threshold=4), small_config, "zen"
        )
        auto = simulate(
            traces,
            MitigationSetup("autorfm", threshold=4),
            small_config,
            "rubix",
        )
        assert auto.slowdown_vs(base) < rfm.slowdown_vs(base)

    def test_alerts_only_in_autorfm(self, small_config):
        traces = make_traces(small_config, n=400)
        base = simulate(traces, MitigationSetup("none"), small_config, "zen")
        rfm = simulate(
            traces, MitigationSetup("rfm", threshold=4), small_config, "zen"
        )
        assert base.stats.total_alerts == 0
        assert rfm.stats.total_alerts == 0

    def test_mitigation_rate_tracks_threshold(self, small_config):
        traces = make_traces(small_config, n=800)
        setup = MitigationSetup("autorfm", threshold=4)
        result = simulate(traces, setup, small_config, "zen")
        acts = result.stats.total_activations
        mitigations = result.stats.total_mitigations
        # One mitigation per ~4 ACTs per bank (minus partial windows).
        assert mitigations <= acts / 4 + len(result.stats.banks)
        assert mitigations >= acts / 4 - len(result.stats.banks) * 2

    def test_rubix_reduces_row_hits(self, small_config):
        traces = make_traces(small_config, n=800)
        zen = simulate(traces, MitigationSetup("none"), small_config, "zen")
        rubix = simulate(traces, MitigationSetup("none"), small_config, "rubix")
        assert rubix.stats.row_hit_rate < zen.stats.row_hit_rate
        assert rubix.stats.total_activations > zen.stats.total_activations

    def test_wrong_trace_count_raises(self, small_config):
        traces = make_traces(small_config)[:-1]
        with pytest.raises(ValueError, match="one per core"):
            simulate(traces, MitigationSetup("none"), small_config)


class TestBuildMapping:
    def test_builds_zen(self, small_config):
        assert isinstance(build_mapping("zen", small_config), ZenMapping)

    def test_builds_rubix(self, small_config):
        assert isinstance(build_mapping("rubix", small_config), RubixMapping)

    def test_rubix_key_depends_on_seed(self, small_config):
        a = build_mapping("rubix", small_config, seed=1)
        b = build_mapping("rubix", small_config, seed=2)
        assert any(a.locate(i) != b.locate(i) for i in range(32))

    def test_unknown_mapping_raises(self, small_config):
        with pytest.raises(ValueError, match="unknown mapping"):
            build_mapping("open-page", small_config)
