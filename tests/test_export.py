"""Tests for the JSON/CSV result exporters."""

import json

import pytest

from repro.analysis.export import (
    config_record,
    result_record,
    to_csv,
    to_json,
    write_records,
)
from repro.cpu.system import simulate
from repro.mc.setup import MitigationSetup
from tests.test_system import make_traces


@pytest.fixture
def result_pair(small_config):
    traces = make_traces(small_config, n=300)
    baseline = simulate(traces, MitigationSetup("none"), small_config, "zen")
    run = simulate(
        traces,
        MitigationSetup("autorfm", threshold=4),
        small_config,
        "rubix",
    )
    return baseline, run


class TestResultRecord:
    def test_contains_setup_and_metrics(self, small_config, result_pair):
        baseline, run = result_pair
        record = result_record(
            run, workload="synthetic", config=small_config, baseline=baseline
        )
        assert record["mechanism"] == "autorfm"
        assert record["mapping"] == "rubix"
        assert record["activations"] > 0
        assert "slowdown" in record
        assert "act_per_trefi" in record

    def test_optional_fields_absent_without_inputs(self, result_pair):
        _, run = result_pair
        record = result_record(run)
        assert "slowdown" not in record
        assert "act_per_trefi" not in record


class TestSerializers:
    def test_json_round_trip(self, small_config, result_pair):
        baseline, run = result_pair
        records = [result_record(run, "a", small_config, baseline)]
        parsed = json.loads(to_json(records))
        assert parsed[0]["mechanism"] == "autorfm"

    def test_csv_has_header_and_rows(self, result_pair):
        _, run = result_pair
        text = to_csv([result_record(run, "a"), result_record(run, "b")])
        lines = text.strip().splitlines()
        assert lines[0].startswith("workload,")
        assert len(lines) == 3

    def test_csv_handles_heterogeneous_records(self):
        text = to_csv([{"a": 1}, {"a": 2, "b": 3}])
        lines = text.strip().splitlines()
        assert lines[0] == "a,b"
        assert lines[1] == "1,"

    def test_empty_csv(self):
        assert to_csv([]) == ""

    def test_write_json_and_csv(self, tmp_path, result_pair):
        _, run = result_pair
        records = [result_record(run, "x")]
        json_path = tmp_path / "out.json"
        csv_path = tmp_path / "out.csv"
        write_records(records, str(json_path))
        write_records(records, str(csv_path))
        assert json.loads(json_path.read_text())[0]["workload"] == "x"
        assert csv_path.read_text().startswith("workload,")

    def test_write_rejects_unknown_extension(self, tmp_path):
        with pytest.raises(ValueError):
            write_records([], str(tmp_path / "out.parquet"))


class TestConfigRecord:
    def test_flattens_timing(self, small_config):
        record = config_record(small_config)
        assert record["num_cores"] == small_config.num_cores
        assert record["timing"]["trc_ns"] == 48.0
