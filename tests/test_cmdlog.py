"""Tests for the command log and the post-hoc timing verifier."""

import pytest

from repro.cpu.system import simulate
from repro.mc.setup import MitigationSetup
from repro.sim.cmdlog import ACT, ALERT, MITIGATION, REF, RFM, CommandLog
from repro.sim.config import SystemConfig
from tests.test_system import make_traces

CONFIG = SystemConfig()


class TestCommandLogBasics:
    def test_records_append(self):
        log = CommandLog()
        log.record(10, ACT, bank=3, row=7)
        log.record(20, REF, bank=3)
        assert len(log) == 2
        assert log.of_kind(ACT)[0].row == 7
        assert log.banks() == [3]

    def test_rejects_unknown_kind(self):
        with pytest.raises(ValueError):
            CommandLog().record(0, "NOP", bank=0)


class TestVerifierRules:
    def test_trc_violation_detected(self):
        log = CommandLog()
        log.record(0, ACT, bank=0, row=1)
        log.record(CONFIG.timing.trc - 1, ACT, bank=0, row=2)
        violations = log.verify(CONFIG)
        assert len(violations) == 1
        assert violations[0].rule == "tRC"
        assert "tRC" in str(violations[0])

    def test_trc_ok_at_exact_spacing(self):
        log = CommandLog()
        log.record(0, ACT, bank=0, row=1)
        log.record(CONFIG.timing.trc, ACT, bank=0, row=2)
        assert log.verify(CONFIG) == []

    def test_banks_independent(self):
        log = CommandLog()
        log.record(0, ACT, bank=0, row=1)
        log.record(1, ACT, bank=1, row=1)
        assert log.verify(CONFIG) == []

    def test_act_during_ref_detected(self):
        log = CommandLog()
        log.record(100, REF, bank=2)
        log.record(100 + CONFIG.timing.trfc - 1, ACT, bank=2, row=0)
        assert any(v.rule == "REF-block" for v in log.verify(CONFIG))

    def test_act_during_rfm_detected(self):
        log = CommandLog()
        log.record(100, RFM, bank=2)
        log.record(100 + CONFIG.timing.trfm - 1, ACT, bank=2, row=0)
        assert any(v.rule == "RFM-block" for v in log.verify(CONFIG))

    def test_alert_requires_mitigation(self):
        log = CommandLog()
        log.record(50, ALERT, bank=0, row=9)
        assert any(
            v.rule == "ALERT-without-mitigation" for v in log.verify(CONFIG)
        )

    def test_alert_during_mitigation_ok(self):
        log = CommandLog()
        log.record(40, MITIGATION, bank=0)
        log.record(50, ALERT, bank=0, row=9)
        log.record(50 + 4 * CONFIG.timing.trc, ACT, bank=0, row=9)
        assert log.verify(CONFIG) == []

    def test_act_during_alert_busy_detected(self):
        log = CommandLog()
        log.record(40, MITIGATION, bank=0)
        log.record(50, ALERT, bank=0, row=9)
        log.record(60, ACT, bank=0, row=3)
        assert any(v.rule == "ALERT-busy" for v in log.verify(CONFIG))

    def test_per_request_mode_skips_alert_busy(self):
        log = CommandLog()
        log.record(40, MITIGATION, bank=0)
        log.record(50, ALERT, bank=0, row=9)
        log.record(50 + CONFIG.timing.trc, ACT, bank=0, row=3)
        assert log.verify(CONFIG, per_request_retry=True) == []

    def test_out_of_order_records_sorted(self):
        log = CommandLog()
        log.record(CONFIG.timing.trc, ACT, bank=0, row=2)
        log.record(0, ACT, bank=0, row=1)  # logged late, happened first
        assert log.verify(CONFIG) == []


class TestEndToEndAudit:
    """Run real simulations and assert the scheduler never violates timing."""

    @pytest.mark.parametrize(
        "setup,mapping",
        [
            (MitigationSetup("none"), "zen"),
            (MitigationSetup("rfm", threshold=4), "zen"),
            (MitigationSetup("autorfm", threshold=4), "rubix"),
            (MitigationSetup("autorfm", threshold=4, policy="recursive"), "zen"),
            (MitigationSetup("smd", threshold=5), "zen"),
        ],
    )
    def test_simulation_is_timing_clean(self, small_config, setup, mapping):
        log = CommandLog()
        traces = make_traces(small_config, n=600)
        simulate(traces, setup, small_config, mapping, command_log=log)
        assert len(log.of_kind(ACT)) > 0
        violations = log.verify(small_config)
        assert violations == [], violations[:5]

    def test_per_request_retry_audit(self, small_config):
        log = CommandLog()
        setup = MitigationSetup("autorfm", threshold=4, per_request_retry=True)
        traces = make_traces(small_config, n=600)
        simulate(traces, setup, small_config, "zen", command_log=log)
        violations = log.verify(small_config, per_request_retry=True)
        assert violations == [], violations[:5]

    def test_open_page_audit(self, small_config):
        import dataclasses

        config = dataclasses.replace(small_config, page_policy="open")
        log = CommandLog()
        traces = make_traces(config, n=600)
        simulate(
            traces,
            MitigationSetup("autorfm", threshold=4),
            config,
            "rubix",
            command_log=log,
        )
        assert log.verify(config) == []
