"""Tests for the open-page row-buffer policy."""

import dataclasses

import pytest

from repro.cpu.system import simulate
from repro.dram.bank import NO_ROW, Bank
from repro.mc.setup import MitigationSetup
from repro.sim.stats import BankStats
from tests.test_system import make_traces


def open_config(small_config):
    return dataclasses.replace(small_config, page_policy="open")


class TestOpenPageBank:
    def test_row_stays_open_past_tras(self, small_config):
        bank = Bank(open_config(small_config), BankStats())
        bank.activate(10, now=0)
        assert bank.row_hits(10, now=100_000)

    def test_conflict_precharge_closes(self, small_config):
        config = open_config(small_config)
        bank = Bank(config, BankStats())
        bank.activate(10, now=0)
        bank.precharge_for_conflict(now=500)
        assert bank.open_row == NO_ROW
        assert bank.ready_at == 500 + config.timing.trp

    def test_early_conflict_waits_for_tras(self, small_config):
        config = open_config(small_config)
        bank = Bank(config, BankStats())
        bank.activate(10, now=0)
        bank.precharge_for_conflict(now=10)  # long before tRAS
        assert bank.ready_at == config.timing.tras + config.timing.trp

    def test_precharge_noop_when_closed(self, small_config):
        bank = Bank(open_config(small_config), BankStats())
        bank.precharge_for_conflict(now=10)
        assert bank.ready_at == 0

    def test_closed_page_unchanged(self, small_config):
        bank = Bank(small_config, BankStats())
        bank.activate(10, now=0)
        assert not bank.row_hits(10, now=small_config.timing.tras + 1)


class TestOpenPageSystem:
    def test_simulation_completes(self, small_config):
        config = open_config(small_config)
        traces = make_traces(config, n=500)
        result = simulate(traces, MitigationSetup("none"), config, "zen")
        assert result.stats.cycles > 0

    def test_open_page_gets_more_row_hits(self, small_config):
        closed = small_config
        opened = open_config(small_config)
        traces = make_traces(closed, n=800)
        closed_run = simulate(traces, MitigationSetup("none"), closed, "zen")
        open_run = simulate(traces, MitigationSetup("none"), opened, "zen")
        assert open_run.stats.row_hit_rate > closed_run.stats.row_hit_rate
        assert open_run.stats.total_activations < closed_run.stats.total_activations

    def test_autorfm_works_under_open_page(self, small_config):
        config = open_config(small_config)
        traces = make_traces(config, n=800)
        setup = MitigationSetup("autorfm", threshold=4)
        result = simulate(traces, setup, config, "rubix")
        assert result.stats.total_mitigations > 0

    def test_rfm_works_under_open_page(self, small_config):
        config = open_config(small_config)
        traces = make_traces(config, n=800)
        result = simulate(
            traces, MitigationSetup("rfm", threshold=4), config, "zen"
        )
        assert result.stats.total_rfm_commands > 0

    def test_bad_policy_rejected(self, small_config):
        config = dataclasses.replace(small_config, page_policy="adaptive")
        with pytest.raises(ValueError, match="page_policy"):
            config.validate()
